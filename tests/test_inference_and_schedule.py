"""Additional pipeline coverage: epoch scheduling edge cases, stats rows,
and failure-injection behaviour of the trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import RunConfig
from repro.pipeline import EpochStats, TrainingPipeline


class TestEpochScheduling:
    def test_k_larger_than_epoch_is_one_bulk(self, labeled_graph):
        cfg = RunConfig(
            p=2, c=1, fanout=(4,), batch_size=32, hidden=8, k=10**6,
            train_model=False,
        )
        stats = TrainingPipeline(labeled_graph, cfg).train_epoch()
        assert stats.n_batches == labeled_graph.num_batches(32)

    def test_k_one_equals_per_batch_schedule(self, labeled_graph):
        """k=1 degenerates into the per-batch pipeline and costs more
        sampling time than the full bulk."""
        times = {}
        for k in (1, None):
            cfg = RunConfig(
                p=2, c=1, fanout=(4,), batch_size=32, hidden=8, k=k,
                train_model=False,
            )
            times[k] = TrainingPipeline(labeled_graph, cfg).train_epoch().sampling
        assert times[1] > times[None]

    def test_more_ranks_than_batches(self, labeled_graph):
        """Ranks without a batch in a round must idle gracefully."""
        p = 8
        batch_size = 128
        assert p > labeled_graph.num_batches(batch_size)  # idle ranks exist
        cfg = RunConfig(
            p=p, c=2, fanout=(4,), batch_size=batch_size, hidden=8,
            train_model=False,
        )
        stats = TrainingPipeline(labeled_graph, cfg).train_epoch()
        assert stats.total > 0

    def test_single_rank_world(self, labeled_graph):
        cfg = RunConfig(
            p=1, c=1, fanout=(4,), batch_size=32, hidden=8, lr=0.01
        )
        pipe = TrainingPipeline(labeled_graph, cfg)
        stats = pipe.train_epoch()
        assert stats.loss is not None
        assert stats.feature_fetch >= 0  # degenerate fetch is free-ish


class TestTrainerRobustness:
    def test_deterministic_same_seed(self, labeled_graph):
        losses = []
        for _ in range(2):
            cfg = RunConfig(
                p=2, c=1, fanout=(4, 3), batch_size=32, hidden=8, lr=0.01,
                seed=42,
            )
            pipe = TrainingPipeline(labeled_graph, cfg)
            losses.append(pipe.train_epoch(0).loss)
        assert losses[0] == pytest.approx(losses[1])

    def test_different_seeds_differ(self, labeled_graph):
        losses = []
        for seed in (0, 1):
            cfg = RunConfig(
                p=2, c=1, fanout=(4, 3), batch_size=32, hidden=8, lr=0.01,
                seed=seed,
            )
            losses.append(TrainingPipeline(labeled_graph, cfg).train_epoch(0).loss)
        assert losses[0] != losses[1]

    def test_gat_conv_override(self, labeled_graph):
        cfg = RunConfig(
            p=2, c=1, fanout=(4,), batch_size=32, hidden=8, conv="gat",
            lr=0.01,
        )
        stats = TrainingPipeline(labeled_graph, cfg).train_epoch()
        assert stats.loss is not None

    def test_stats_row_roundtrip(self):
        s = EpochStats(
            sampling=1.0, feature_fetch=0.5, propagation=0.25, loss=0.1,
            n_batches=7,
        )
        row = s.row()
        assert row["total_s"] == pytest.approx(1.75)
        assert row["loss"] == 0.1
        assert row["batches"] == 7
