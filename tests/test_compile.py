"""Unit tests for the sampling-plan compiler (:mod:`repro.core.compile`).

Each optimizer pass is tested in isolation for legality — what it may and
may not rewrite — plus the fused-step rendering of ``describe()``, the
probability cache's keying/reuse behaviour, the in-place NORM variants'
bit-equality with their copying counterparts, and the plain interpreters'
loud refusal of fused steps.  End-to-end bit-identity of the compiled
path lives in the golden suites and ``test_compile_differential.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import Communicator, ProcessGrid
from repro.core import (
    FastGCNSampler,
    GraphSaintRWSampler,
    LadiesSampler,
    SageSampler,
)
from repro.core.compile import (
    CompiledLocalExecutor,
    FusedProbNormStep,
    FusedSampleExtractStep,
    ProbCache,
    compact_layer_from_mask,
    eliminate_dead_steps,
    fuse_prob_norm,
    fuse_sample_extract,
    optimize,
    selector_aware_spgemm,
)
from repro.core.plan import (
    ExtractStep,
    LocalExecutor,
    NormStep,
    ProbStep,
    SampleStep,
    SamplingPlan,
    step_phase,
)
from repro.distributed.partitioned import (
    PartitionedExecutor,
    partitioned_bulk_sampling,
)
from repro.graphs import rmat
from repro.partition import BlockRows
from repro.sparse import row_normalize
from repro.sparse.kernels import KERNELS, get_kernel


def _graph(seed=0, scale=8, deg=6):
    return rmat(scale, deg, np.random.default_rng(seed))


def _batches(adj, k=3, size=12, seed=1):
    rng = np.random.default_rng(seed)
    return [
        rng.choice(adj.shape[0], size, replace=False) for _ in range(k)
    ]


def _layers_equal(a, b):
    assert len(a) == len(b)
    for ma, mb in zip(a, b):
        assert np.array_equal(ma.batch, mb.batch)
        assert len(ma.layers) == len(mb.layers)
        for la, lb in zip(ma.layers, mb.layers):
            assert la.adj.shape == lb.adj.shape
            assert np.array_equal(la.adj.indptr, lb.adj.indptr)
            assert np.array_equal(la.adj.indices, lb.adj.indices)
            assert np.array_equal(la.adj.data, lb.adj.data)
            assert np.array_equal(la.src_ids, lb.src_ids)
            assert np.array_equal(la.dst_ids, lb.dst_ids)


# --------------------------------------------------------------------- #
# Registry / config surface
# --------------------------------------------------------------------- #
def test_compiled_kernel_registered():
    assert "compiled" in KERNELS.names()
    backend = get_kernel("compiled")
    assert backend.compiles_plans
    # The SpGEMM itself is hash's: bit-identical products by construction.
    assert not get_kernel("hash").compiles_plans
    assert not get_kernel("esc").compiles_plans


def test_run_config_accepts_compiled():
    from repro.api.config import RunConfig

    assert RunConfig(kernel="compiled").kernel == "compiled"


# --------------------------------------------------------------------- #
# fuse_prob_norm
# --------------------------------------------------------------------- #
def test_fuse_prob_norm_on_sage_plan():
    plan = SageSampler().plan((5, 3))
    fused = fuse_prob_norm(plan)
    assert len(fused.steps) == len(plan.steps) - 2
    assert isinstance(fused.steps[0], FusedProbNormStep)
    assert fused.steps[0].source == "frontier"
    # Fused PROB+NORM is attributed wholly to the probability phase.
    assert step_phase(fused.steps[0]) == "probability"


def test_fuse_prob_norm_skips_non_adjacent():
    plan = SamplingPlan(
        (ProbStep("frontier"), SampleStep(4), ExtractStep("compact"))
    )
    assert fuse_prob_norm(plan).steps == plan.steps


def test_fuse_prob_norm_does_not_refuse_fused_input():
    plan = fuse_prob_norm(SageSampler().plan((5,)))
    # Idempotent: a FusedProbNormStep is not a plain ProbStep.
    assert fuse_prob_norm(plan).steps == plan.steps


# --------------------------------------------------------------------- #
# fuse_sample_extract
# --------------------------------------------------------------------- #
def test_fuse_sample_extract_on_ladies_plan():
    plan = LadiesSampler().plan((16,))
    fused = fuse_sample_extract(plan)
    kinds = [type(s).__name__ for s in fused.steps]
    assert "FusedSampleExtractStep" in kinds
    fse = next(
        s for s in fused.steps if isinstance(s, FusedSampleExtractStep)
    )
    assert fse.count == 16
    assert fse.extract.kind == "bipartite"
    assert step_phase(fse) == "sampling"


def test_fuse_sample_extract_rejects_subgraph():
    with pytest.raises(ValueError, match="subgraph"):
        FusedSampleExtractStep(3, ExtractStep("subgraph", n_layers=2))
    # The pass never fuses SAMPLE with a subgraph EXTRACT either.
    plan = SamplingPlan(
        (
            ProbStep("frontier"),
            SampleStep(1),
            ExtractStep("walk"),
            ExtractStep("subgraph", n_layers=2),
        )
    )
    fused = fuse_sample_extract(plan)
    assert isinstance(fused.steps[-1], ExtractStep)
    assert fused.steps[-1].kind == "subgraph"


def test_fuse_sample_extract_blocked_by_later_q_reader():
    # Two EXTRACTs share one SAMPLE's q_next: fusing the first would
    # leave nothing for the second to read.
    plan = SamplingPlan(
        (
            ProbStep("frontier"),
            NormStep(),
            SampleStep(4),
            ExtractStep("compact"),
            ExtractStep("compact"),
        )
    )
    fused = fuse_sample_extract(plan)
    assert not any(s.fused for s in fused.steps)


def test_fuse_sample_extract_allows_q_rewrite_between():
    # A later SAMPLE rewrites q_next before the second EXTRACT reads it:
    # the first pair may fuse.
    plan = SamplingPlan(
        (
            ProbStep("frontier"),
            SampleStep(4),
            ExtractStep("compact"),
            ProbStep("frontier"),
            SampleStep(2),
            ExtractStep("compact"),
        )
    )
    fused = fuse_sample_extract(plan)
    assert isinstance(fused.steps[1], FusedSampleExtractStep)
    assert isinstance(fused.steps[3], FusedSampleExtractStep)


def test_fastgcn_plan_has_no_norm_to_fuse():
    plan = FastGCNSampler().plan((8,))
    opt = optimize(plan)
    assert isinstance(opt.steps[0], ProbStep)
    assert not opt.steps[0].fused
    assert isinstance(opt.steps[1], FusedSampleExtractStep)


# --------------------------------------------------------------------- #
# eliminate_dead_steps
# --------------------------------------------------------------------- #
def test_dse_removes_overwritten_prob_and_norm():
    plan = SamplingPlan(
        (
            ProbStep("indicator"),
            NormStep(),  # dead: P overwritten before any reader
            ProbStep("indicator"),
            NormStep(),
            SampleStep(4),
            ExtractStep("bipartite"),
        )
    )
    out = eliminate_dead_steps(plan)
    assert len(out.steps) == 4
    assert isinstance(out.steps[0], ProbStep)
    assert isinstance(out.steps[1], NormStep)


def test_dse_never_removes_sample():
    # SAMPLE consumes RNG: even a sampled Q nobody extracts must stay.
    plan = SamplingPlan(
        (
            ProbStep("frontier"),
            SampleStep(4),
            ProbStep("frontier"),
            SampleStep(2),
            ExtractStep("compact"),
        )
    )
    out = eliminate_dead_steps(plan)
    assert sum(isinstance(s, SampleStep) for s in out.steps) == 2


def test_dse_keeps_norm_read_by_debias():
    plan = SamplingPlan(
        (
            ProbStep("indicator"),
            NormStep(),
            SampleStep(4),
            ExtractStep("bipartite", debias=True),
        )
    )
    assert eliminate_dead_steps(plan).steps == plan.steps


def test_dse_removes_trailing_dead_norm():
    plan = SamplingPlan(
        (
            ProbStep("frontier"),
            NormStep(),
            SampleStep(4),
            ExtractStep("compact"),
            NormStep(),  # trailing: nothing reads P again
        )
    )
    out = eliminate_dead_steps(plan)
    assert len(out.steps) == 4
    assert not isinstance(out.steps[-1], NormStep)


def test_dse_frontier_guard_keeps_prob_before_walk():
    # frontier-source PROB also records the walk frontier, which a
    # non-frontier PROB does not rewrite: it stays live if a walk
    # extraction can still read it.
    plan = SamplingPlan(
        (
            ProbStep("frontier"),
            ProbStep("indicator"),
            SampleStep(1),
            ExtractStep("walk"),
        )
    )
    assert eliminate_dead_steps(plan).steps == plan.steps
    # Without a walk reader the first PROB really is dead.
    no_walk = SamplingPlan(
        (
            ProbStep("frontier"),
            ProbStep("indicator"),
            SampleStep(4),
            ExtractStep("bipartite"),
        )
    )
    assert len(eliminate_dead_steps(no_walk).steps) == 3


def test_dse_fixpoint_cascades():
    plan = SamplingPlan(
        (
            ProbStep("indicator"),
            NormStep(),
            NormStep(),
            ProbStep("indicator"),
            NormStep(),
            SampleStep(4),
            ExtractStep("bipartite"),
        )
    )
    out = eliminate_dead_steps(plan)
    assert len(out.steps) == 4


def test_dse_preserves_stock_plans():
    for sampler, fanout in [
        (SageSampler(), (5, 3)),
        (LadiesSampler(), (16,)),
        (FastGCNSampler(), (16,)),
        (GraphSaintRWSampler(walk_length=3), (3, 3)),
    ]:
        plan = sampler.plan(fanout)
        assert eliminate_dead_steps(plan).steps == plan.steps


# --------------------------------------------------------------------- #
# describe() rendering
# --------------------------------------------------------------------- #
def test_describe_renders_fusions():
    text = optimize(SageSampler().plan((5, 3))).describe()
    assert text.splitlines() == [
        "probability  PROB+NORM(frontier)",
        "sampling     SAMPLE+EXTRACT(s=5, compact)",
        "probability  PROB+NORM(frontier)",
        "sampling     SAMPLE+EXTRACT(s=3, compact)",
    ]


def test_describe_saint_keeps_subgraph_interpreted():
    text = optimize(GraphSaintRWSampler(walk_length=2).plan((4,))).describe()
    lines = text.splitlines()
    assert lines[0] == "probability  PROB+NORM(frontier)"
    assert lines[1] == "sampling     SAMPLE+EXTRACT(s=1, walk)"
    assert lines[-1] == "extraction   EXTRACT(subgraph, n_layers=1)"


# --------------------------------------------------------------------- #
# Interpreters refuse fused steps
# --------------------------------------------------------------------- #
def test_plain_local_executor_refuses_fused_steps():
    adj = _graph()
    batches = _batches(adj)
    sampler = SageSampler()
    plan = optimize(sampler.plan((4,)))
    ex = LocalExecutor(
        sampler, adj, batches, np.random.default_rng(0),
        get_kernel("hash").spgemm,
    )
    with pytest.raises(TypeError, match="compiled"):
        ex.run(plan)


def test_plain_partitioned_executor_refuses_fused_steps():
    adj = _graph()
    batches = _batches(adj)
    grid = ProcessGrid(2, 1)
    blocks = BlockRows.partition(adj, grid.n_rows)
    sampler = SageSampler()
    ex = PartitionedExecutor(
        Communicator(2), grid, sampler, blocks, batches, 0
    )
    with pytest.raises(TypeError, match="Compiled"):
        ex.run(optimize(sampler.plan((4,))))


# --------------------------------------------------------------------- #
# In-place NORM bit-equality
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "sampler", [SageSampler(), LadiesSampler()], ids=["sage", "ladies"]
)
def test_norm_inplace_matches_norm(sampler):
    adj = _graph()
    p = get_kernel("hash").spgemm(
        SageSampler.make_q(np.arange(40, dtype=np.int64), adj.shape[0]),
        adj,
    )
    expected = sampler.norm(p)
    got = sampler.norm_inplace(
        type(p)(p.indptr.copy(), p.indices.copy(), p.data.copy(), p.shape)
    )
    assert np.array_equal(expected.indptr, got.indptr)
    assert np.array_equal(expected.indices, got.indices)
    assert np.array_equal(expected.data, got.data)


# --------------------------------------------------------------------- #
# ProbCache
# --------------------------------------------------------------------- #
def test_prob_cache_hits_across_bulks_sharing_frontier():
    adj = _graph()
    batches = _batches(adj)
    sampler = SageSampler(kernel="compiled")
    cache = ProbCache()
    baseline = sampler.sample_bulk(
        adj, batches, (5, 3), np.random.default_rng(7)
    )
    first = sampler.sample_bulk(
        adj, batches, (5, 3), np.random.default_rng(7), prob_cache=cache
    )
    assert cache.misses > 0 and cache.hits == 0
    misses_after_first = cache.misses
    second = sampler.sample_bulk(
        adj, batches, (5, 3), np.random.default_rng(7), prob_cache=cache
    )
    # Layer 0 shares the batch frontier across calls and must hit; deeper
    # layers depend on sampled frontiers (same rng seed -> same frontier,
    # so they hit too).
    assert cache.hits > 0
    assert cache.misses == misses_after_first
    _layers_equal(baseline, first)
    _layers_equal(baseline, second)


def test_prob_cache_keyed_by_frontier_identity():
    adj = _graph()
    sampler = SageSampler(kernel="compiled")
    cache = ProbCache()
    b1 = _batches(adj, seed=1)
    b2 = _batches(adj, seed=2)
    sampler.sample_bulk(adj, b1, (4,), np.random.default_rng(0), prob_cache=cache)
    assert cache.hits == 0
    # A different frontier must not hit.
    sampler.sample_bulk(adj, b2, (4,), np.random.default_rng(0), prob_cache=cache)
    assert cache.hits == 0
    # The same frontier (fresh arrays, same values) must hit.
    b1_copy = [b.copy() for b in b1]
    sampler.sample_bulk(
        adj, b1_copy, (4,), np.random.default_rng(0), prob_cache=cache
    )
    assert cache.hits == 1


def test_prob_cache_global_source_keyed_by_batch_count():
    adj = _graph()
    sampler = FastGCNSampler(kernel="compiled")
    cache = ProbCache()
    b1 = _batches(adj, k=3, seed=1)
    b2 = _batches(adj, k=3, seed=9)  # different vertices, same count
    out1 = sampler.sample_bulk(
        adj, b1, (8,), np.random.default_rng(0), prob_cache=cache
    )
    assert cache.hits == 0
    sampler.sample_bulk(adj, b2, (8,), np.random.default_rng(0), prob_cache=cache)
    # The global importance stack depends only on the batch count.
    assert cache.hits == 1
    # And hits are bit-identical to the uncached path.
    baseline = sampler.sample_bulk(adj, b1, (8,), np.random.default_rng(0))
    _layers_equal(baseline, out1)


def test_prob_cache_lru_eviction_and_clear():
    cache = ProbCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh a
    cache.put("c", 3)  # evicts b
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert len(cache) == 2
    cache.clear()
    assert len(cache) == 0
    with pytest.raises(ValueError):
        ProbCache(max_entries=0)


# --------------------------------------------------------------------- #
# Fused kernel helpers
# --------------------------------------------------------------------- #
def test_compact_layer_from_mask_matches_extract_batch_layer():
    adj = _graph()
    sampler = SageSampler(include_dst=True)
    dst = np.arange(20, dtype=np.int64)
    p = sampler.norm(
        get_kernel("hash").spgemm(sampler.make_q(dst, adj.shape[0]), adj)
    )
    sel = sampler.sample_mask(p, 3, np.random.default_rng(5))
    q_next = sampler.sample(p, 3, np.random.default_rng(5))
    want = sampler.extract_batch_layer(q_next, dst)
    got = compact_layer_from_mask(
        p, sel, 0, p.shape[0], dst, include_dst=True
    )
    assert np.array_equal(want.adj.indptr, got.adj.indptr)
    assert np.array_equal(want.adj.indices, got.adj.indices)
    assert np.array_equal(want.adj.data, got.adj.data)
    assert np.array_equal(want.src_ids, got.src_ids)
    assert np.array_equal(want.dst_ids, got.dst_ids)


def test_selector_aware_spgemm_gather_is_bit_identical():
    """A unit row selector on the left turns SpGEMM into a row gather:
    same indptr/indices/data bytes as the general kernel, and the wrapped
    kernel is never called."""
    adj = _graph()
    rng = np.random.default_rng(9)
    rows = rng.choice(adj.shape[0], 50, replace=True)  # duplicates allowed
    q = SageSampler.make_q(rows, adj.shape[0])
    calls = []

    def recording(a, b):
        calls.append((a.shape, b.shape))
        return get_kernel("hash").spgemm(a, b)

    wrapped = selector_aware_spgemm(recording)
    got = wrapped(q, adj)
    want = get_kernel("hash").spgemm(q, adj)
    assert calls == []  # gather fast path, general kernel skipped
    assert np.array_equal(want.indptr, got.indptr)
    assert np.array_equal(want.indices, got.indices)
    assert np.array_equal(want.data, got.data)
    assert want.shape == got.shape


def test_selector_aware_spgemm_falls_through_for_non_selectors():
    """Indicator rows (multi-entry) and weighted selectors must take the
    general kernel — the gather is only exact for unit single-entry rows."""
    adj = _graph()
    batches = _batches(adj)
    q_ind = LadiesSampler.make_q(batches, adj.shape[0])
    calls = []

    def recording(a, b):
        calls.append(a.nnz)
        return get_kernel("hash").spgemm(a, b)

    wrapped = selector_aware_spgemm(recording)
    out = wrapped(q_ind, adj)
    assert len(calls) == 1
    assert out.equal(get_kernel("hash").spgemm(q_ind, adj), 0.0)

    q_sel = SageSampler.make_q(np.arange(10), adj.shape[0])
    weighted = type(q_sel)(
        q_sel.indptr, q_sel.indices, q_sel.data * 2.0, q_sel.shape
    )
    wrapped(weighted, adj)
    assert len(calls) == 2


def test_compiled_executor_nulls_q_next():
    adj = _graph()
    batches = _batches(adj)
    sampler = SageSampler()
    ex = CompiledLocalExecutor(
        sampler, adj, batches, np.random.default_rng(0),
        get_kernel("hash").spgemm,
    )
    ex.run(optimize(sampler.plan((4,))))
    assert ex.q_next is None


# --------------------------------------------------------------------- #
# End-to-end: compiled == interpreted (spot check; the golden and
# differential suites are the full surface)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "factory,fanout",
    [
        (lambda: SageSampler(), (5, 3)),
        (lambda: SageSampler(include_dst=False), (5, 3)),
        (lambda: LadiesSampler(), (16,)),
        (lambda: LadiesSampler(debias=True), (16,)),
        (lambda: LadiesSampler(include_dst=True), (16,)),
        (lambda: FastGCNSampler(), (16,)),
        (lambda: GraphSaintRWSampler(walk_length=3), (3, 3)),
    ],
    ids=[
        "sage", "sage-nodst", "ladies", "ladies-debias", "ladies-dst",
        "fastgcn", "saint",
    ],
)
def test_compiled_local_matches_interpreted(factory, fanout):
    adj = _graph(seed=3)
    batches = _batches(adj, k=4)
    want = factory().sample_bulk(
        adj, batches, fanout, np.random.default_rng(11)
    )
    sampler = factory()
    sampler.kernel = "compiled"
    got = sampler.sample_bulk(adj, batches, fanout, np.random.default_rng(11))
    _layers_equal(want, got)


def test_compiled_partitioned_matches_interpreted():
    adj = _graph(seed=3)
    batches = _batches(adj, k=4)
    grid = ProcessGrid(2, 2)
    blocks = BlockRows.partition(adj, grid.n_rows)
    want, _ = partitioned_bulk_sampling(
        Communicator(2), grid, SageSampler(), blocks, batches, (5, 3),
        seed=7,
    )
    got, _ = partitioned_bulk_sampling(
        Communicator(2), grid, SageSampler(), blocks, batches, (5, 3),
        seed=7, kernel="compiled",
    )
    _layers_equal(want, got)
