"""Distributed algorithms: 1.5D SpGEMM, replicated & partitioned sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import Communicator, ProcessGrid
from repro.core import FastGCNSampler, LadiesSampler, SageSampler
from repro.distributed import (
    ProbCostInputs,
    RecordingSpGEMM,
    partitioned_bulk_sampling,
    predict_prob_costs,
    replicated_bulk_sampling,
    spgemm_15d,
    stage_blocks,
)
from repro.baselines import per_batch_sampling
from repro.partition import BlockRows
from repro.sparse import spgemm, sprand, vstack


class TestSpgemm15D:
    @pytest.mark.parametrize(
        "p,c,aware",
        [(4, 1, True), (4, 2, True), (8, 2, True), (8, 2, False),
         (8, 4, True), (16, 4, True), (16, 4, False)],
    )
    def test_matches_serial(self, p, c, aware, rng):
        q = sprand(50, 96, 0.03, rng)
        a = sprand(96, 96, 0.06, rng)
        comm = Communicator(p)
        grid = ProcessGrid(p, c)
        out = spgemm_15d(
            comm, grid,
            BlockRows.partition(q, grid.n_rows),
            BlockRows.partition(a, grid.n_rows),
            sparsity_aware=aware,
        )
        assert vstack(out).equal(spgemm(q, a))

    def test_stage_blocks_partition_the_rows(self):
        grid = ProcessGrid(12, 3)  # 4 rows, 3 columns
        all_blocks = sorted(sum((stage_blocks(grid, j) for j in range(3)), []))
        assert all_blocks == list(range(4))

    def test_sparsity_aware_sends_fewer_bytes(self, rng):
        """The Ballard-style optimization: only needed rows travel."""
        q = sprand(40, 128, 0.01, rng)  # very sparse Q
        a = sprand(128, 128, 0.08, rng)
        volumes = {}
        for aware in (True, False):
            comm = Communicator(8)
            grid = ProcessGrid(8, 2)
            with comm.phase("prob"):
                spgemm_15d(
                    comm, grid,
                    BlockRows.partition(q, 4),
                    BlockRows.partition(a, 4),
                    sparsity_aware=aware,
                )
            volumes[aware] = comm.ledger.sent("prob")
        assert volumes[True] < volumes[False]

    def test_block_count_validation(self, rng):
        comm = Communicator(8)
        grid = ProcessGrid(8, 2)
        q = BlockRows.partition(sprand(10, 20, 0.2, rng), 2)  # wrong count
        a = BlockRows.partition(sprand(20, 20, 0.2, rng), 4)
        with pytest.raises(ValueError):
            spgemm_15d(comm, grid, q, a)

    def test_dimension_validation(self, rng):
        comm = Communicator(4)
        grid = ProcessGrid(4, 2)
        q = BlockRows.partition(sprand(10, 15, 0.2, rng), 2)
        a = BlockRows.partition(sprand(20, 20, 0.2, rng), 2)
        with pytest.raises(ValueError):
            spgemm_15d(comm, grid, q, a)

    @given(
        st.sampled_from([(4, 1), (4, 2), (8, 2), (8, 4)]),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_any_grid_matches_serial(self, grid_shape, seed):
        p, c = grid_shape
        rng = np.random.default_rng(seed)
        q = sprand(24, 40, 0.08, rng)
        a = sprand(40, 40, 0.1, rng)
        comm = Communicator(p)
        grid = ProcessGrid(p, c)
        out = spgemm_15d(
            comm, grid,
            BlockRows.partition(q, grid.n_rows),
            BlockRows.partition(a, grid.n_rows),
        )
        assert vstack(out).equal(spgemm(q, a))


class TestReplicated:
    def test_covers_all_batches(self, small_adj, batches):
        comm = Communicator(4)
        out = replicated_bulk_sampling(
            comm, SageSampler(), small_adj, batches, (4, 2), seed=0
        )
        assert sum(len(o) for o in out) == len(batches)

    def test_no_communication(self, small_adj, batches):
        """Section 5.1's headline property: sampling is communication-free."""
        comm = Communicator(8)
        replicated_bulk_sampling(
            comm, SageSampler(), small_adj, batches, (4, 2), seed=0
        )
        assert comm.ledger.sent() == 0
        assert comm.clock.phase_seconds("sampling", "comm") == 0.0

    def test_sampling_time_scales_with_p(self, small_adj, rng):
        """More ranks, fewer batches each: near-linear sampling scaling.

        Run at paper-scale work (work_scale) so the scalable flop/byte work
        dominates the fixed per-kernel overheads, as in the real system.
        """
        n = small_adj.shape[0]
        many = [rng.choice(n, 32, replace=False) for _ in range(32)]
        times = {}
        for p in (1, 2, 4, 8):
            comm = Communicator(p, work_scale=1e6)
            replicated_bulk_sampling(
                comm, SageSampler(), small_adj, many, (4, 2), seed=0
            )
            times[p] = comm.clock.phase_seconds("sampling")
        assert times[8] < times[4] < times[2] < times[1]
        assert times[1] / times[8] > 4  # at least halfway to linear

    @pytest.mark.parametrize(
        "make_sampler,fanout",
        [
            (lambda: SageSampler(), (4, 2)),
            (lambda: LadiesSampler(), (16,)),
            (lambda: FastGCNSampler(), (16,)),
        ],
    )
    def test_world_size_invariant(self, make_sampler, fanout, small_adj, batches):
        """Seeding by global batch index: the same batch draws the same
        sample at any world size (bug fixed in this revision — seeding by
        rank made p=2 and p=4 runs sample differently)."""

        def by_global_index(out):
            p = len(out)
            flat = {}
            for r, lst in enumerate(out):
                for x, mb in enumerate(lst):
                    flat[r + x * p] = mb
            return [flat[i] for i in sorted(flat)]

        runs = []
        for p in (1, 2, 4):
            out = replicated_bulk_sampling(
                Communicator(p), make_sampler(), small_adj, batches,
                fanout, seed=5,
            )
            runs.append(by_global_index(out))
        for a, b in zip(runs[0], runs[1]):
            for la, lb in zip(a.layers, b.layers):
                assert np.array_equal(la.src_ids, lb.src_ids)
                assert la.adj.equal(lb.adj)
        for a, b in zip(runs[0], runs[2]):
            for la, lb in zip(a.layers, b.layers):
                assert np.array_equal(la.src_ids, lb.src_ids)
                assert la.adj.equal(lb.adj)

    def test_bulk_matches_per_batch_samples(self, small_adj, batches):
        """Bulk and per-batch drivers share per-batch RNG streams, so the
        amortization ablation compares identical samples."""
        bulk = replicated_bulk_sampling(
            Communicator(4), SageSampler(), small_adj, batches, (4, 2), seed=2
        )
        solo = per_batch_sampling(
            Communicator(4), SageSampler(), small_adj, batches, (4, 2), seed=2
        )
        for ra, rb in zip(bulk, solo):
            for x, y in zip(ra, rb):
                assert np.array_equal(x.batch, y.batch)
                for la, lb in zip(x.layers, y.layers):
                    assert np.array_equal(la.src_ids, lb.src_ids)
                    assert la.adj.equal(lb.adj)

    def test_rng_list_length_validated(self, small_adj, batches):
        with pytest.raises(ValueError):
            SageSampler().sample_bulk(
                small_adj, batches, (4,),
                [np.random.default_rng(0)],  # one rng for many batches
            )

    def test_rng_one_shot_iterator_accepted(self, small_adj, batches):
        """A generator expression of per-batch rngs must work: it is
        materialized exactly once, not drained by validation."""
        from repro.distributed import batch_rng

        k = len(batches)
        a = SageSampler().sample_bulk(
            small_adj, batches, (4, 2), [batch_rng(1, i) for i in range(k)]
        )
        b = SageSampler().sample_bulk(
            small_adj, batches, (4, 2), (batch_rng(1, i) for i in range(k))
        )
        for x, y in zip(a, b):
            for la, lb in zip(x.layers, y.layers):
                assert np.array_equal(la.src_ids, lb.src_ids)
                assert la.adj.equal(lb.adj)

    def test_deterministic_given_seed(self, small_adj, batches):
        a = replicated_bulk_sampling(
            Communicator(4), SageSampler(), small_adj, batches, (4,), seed=3
        )
        b = replicated_bulk_sampling(
            Communicator(4), SageSampler(), small_adj, batches, (4,), seed=3
        )
        for ra, rb in zip(a, b):
            for x, y in zip(ra, rb):
                assert x.layers[0].adj.equal(y.layers[0].adj)

    def test_bulk_beats_per_batch(self, small_adj, rng):
        """The amortization claim (section 8.1.1): bulk sampling is faster
        than sampling the same batches one call each."""
        n = small_adj.shape[0]
        many = [rng.choice(n, 32, replace=False) for _ in range(32)]
        comm_bulk = Communicator(4)
        replicated_bulk_sampling(
            comm_bulk, SageSampler(), small_adj, many, (4, 2), seed=0
        )
        comm_solo = Communicator(4)
        per_batch_sampling(
            comm_solo, SageSampler(), small_adj, many, (4, 2), seed=0
        )
        assert (
            comm_bulk.clock.phase_seconds("sampling")
            < comm_solo.clock.phase_seconds("sampling")
        )


class TestPartitioned:
    @pytest.mark.parametrize("p,c", [(4, 1), (4, 2), (8, 2), (8, 4)])
    def test_sage_valid_samples(self, p, c, small_adj, batches):
        comm = Communicator(p)
        grid = ProcessGrid(p, c)
        ab = BlockRows.partition(small_adj, grid.n_rows)
        samples, owners = partitioned_bulk_sampling(
            comm, grid, SageSampler(), ab, batches, (4, 2), seed=0
        )
        assert len(samples) == len(batches)
        dense = small_adj.to_dense()
        for mb in samples:
            for layer in mb.layers:
                rows, cols, _ = layer.adj.to_coo()
                assert np.all(dense[layer.dst_ids[rows], layer.src_ids[cols]] != 0)

    def test_ladies_extraction_complete(self, small_adj, batches):
        comm = Communicator(8)
        grid = ProcessGrid(8, 2)
        ab = BlockRows.partition(small_adj, grid.n_rows)
        samples, _ = partitioned_bulk_sampling(
            comm, grid, LadiesSampler(), ab, batches, (16,), seed=0
        )
        dense = small_adj.to_dense()
        for mb in samples:
            layer = mb.layers[0]
            sub = dense[np.ix_(layer.dst_ids, layer.src_ids)]
            assert np.allclose(layer.adj.to_dense(), sub)

    def test_fastgcn_partitioned(self, small_adj, batches):
        comm = Communicator(8)
        grid = ProcessGrid(8, 2)
        ab = BlockRows.partition(small_adj, grid.n_rows)
        samples, _ = partitioned_bulk_sampling(
            comm, grid, FastGCNSampler(), ab, batches, (16,), seed=0
        )
        assert all(s.layers[0].n_src <= 16 for s in samples)

    def test_phases_are_attributed(self, small_adj, batches):
        comm = Communicator(8)
        grid = ProcessGrid(8, 2)
        ab = BlockRows.partition(small_adj, grid.n_rows)
        partitioned_bulk_sampling(
            comm, grid, SageSampler(), ab, batches, (4, 2), seed=0
        )
        bd = comm.clock.breakdown()
        assert {"probability", "sampling", "extraction"} <= set(bd)
        assert all(v > 0 for v in bd.values())

    def test_probability_has_communication(self, small_adj, batches):
        """Unlike the replicated algorithm, the 1.5D path communicates."""
        comm = Communicator(8)
        grid = ProcessGrid(8, 2)
        ab = BlockRows.partition(small_adj, grid.n_rows)
        partitioned_bulk_sampling(
            comm, grid, SageSampler(), ab, batches, (4,), seed=0
        )
        assert comm.ledger.sent("probability") > 0

    def test_wrong_block_count_rejected(self, small_adj, batches):
        comm = Communicator(8)
        grid = ProcessGrid(8, 2)
        ab = BlockRows.partition(small_adj, 2)
        with pytest.raises(ValueError):
            partitioned_bulk_sampling(
                comm, grid, SageSampler(), ab, batches, (4,), seed=0
            )

    def test_unsupported_sampler_rejected(self, small_adj, batches):
        comm = Communicator(4)
        grid = ProcessGrid(4, 2)
        ab = BlockRows.partition(small_adj, 2)

        class WeirdSampler:
            pass

        with pytest.raises(TypeError):
            partitioned_bulk_sampling(
                comm, grid, WeirdSampler(), ab, batches, (4,), seed=0
            )


class TestInstrumentAndAnalysis:
    def test_recording_spgemm_counts(self, rng):
        rec = RecordingSpGEMM()
        a = sprand(10, 10, 0.3, rng)
        b = sprand(10, 10, 0.3, rng)
        out = rec(a, b)
        assert out.equal(spgemm(a, b))
        assert rec.kernels == 2
        assert rec.flops > 0
        assert len(rec.outputs) == 1

    def test_prob_cost_prediction_shapes(self):
        """T_prob scales with the harmonic mean of p/c and c (section 5.2.1):
        for fixed p, row-data time falls with c while all-reduce time rises."""
        base = dict(k=64, b=1024, d=50.0)
        t_c2 = predict_prob_costs(ProbCostInputs(p=64, c=2, **base))
        t_c8 = predict_prob_costs(ProbCostInputs(p=64, c=8, **base))
        assert t_c8.t_rowdata < t_c2.t_rowdata
        assert t_c8.t_allreduce > t_c2.t_allreduce

    def test_prob_cost_validation(self):
        with pytest.raises(ValueError):
            ProbCostInputs(p=8, c=3, k=1, b=1, d=1.0)
        with pytest.raises(ValueError):
            ProbCostInputs(p=8, c=2, k=0, b=1, d=1.0)

    def test_measured_rowdata_volume_tracks_prediction(self, rng):
        """The simulator's per-rank received row-data bytes should be within
        a small factor of the closed-form kbd/c estimate."""
        from repro.graphs import erdos_renyi

        n, d = 512, 16
        adj = erdos_renyi(n, d, rng)
        k, b = 8, 32
        batches = [rng.choice(n, b, replace=False) for _ in range(k)]
        p, c = 8, 2
        comm = Communicator(p)
        grid = ProcessGrid(p, c)
        ab = BlockRows.partition(adj, grid.n_rows)
        partitioned_bulk_sampling(
            comm, grid, LadiesSampler(), ab, batches, (16,), seed=0
        )
        pred = predict_prob_costs(
            ProbCostInputs(p=p, c=c, k=k, b=b, d=adj.nnz / n)
        )
        measured = comm.ledger.received("probability") / p
        assert 0.1 * pred.rowdata_bytes_per_rank < measured < 10 * pred.rowdata_bytes_per_rank
