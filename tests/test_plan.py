"""The sampling-plan IR: emission, validation, and executor genericity.

The tentpole claim of the plan refactor is that every sampler is *data*
(a PROB/NORM/SAMPLE/EXTRACT program) plus row-local primitives, and that
executors — local and 1.5D partitioned — interpret that data generically.
These tests pin the emitted programs against the paper's Algorithm 1/2
step tables and check the derived-capability machinery around them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ExtractStep,
    FastGCNSampler,
    GraphSaintRWSampler,
    LadiesSampler,
    MatrixSampler,
    NormStep,
    ProbStep,
    SageSampler,
    SampleStep,
    SamplingPlan,
    step_phase,
)


class TestStepValidation:
    def test_prob_source_checked(self):
        with pytest.raises(ValueError, match="PROB source"):
            ProbStep("sideways")

    def test_sample_count_positive(self):
        with pytest.raises(ValueError, match="positive"):
            SampleStep(0)

    def test_extract_kind_checked(self):
        with pytest.raises(ValueError, match="EXTRACT kind"):
            ExtractStep("teleport")

    def test_subgraph_needs_depth(self):
        with pytest.raises(ValueError, match="n_layers"):
            ExtractStep("subgraph")

    def test_steps_are_frozen(self):
        step = SampleStep(4)
        with pytest.raises(Exception):
            step.count = 5


class TestPlanValidation:
    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError, match="at least one step"):
            SamplingPlan(())

    def test_sample_needs_prob(self):
        with pytest.raises(ValueError, match="SAMPLE before"):
            SamplingPlan((SampleStep(3),))

    def test_extract_needs_sample(self):
        with pytest.raises(ValueError, match="EXTRACT"):
            SamplingPlan((ProbStep(), ExtractStep("compact")))

    def test_norm_needs_prob(self):
        with pytest.raises(ValueError, match="NORM before"):
            SamplingPlan((NormStep(),))

    def test_non_step_rejected(self):
        with pytest.raises(TypeError, match="not a plan step"):
            SamplingPlan(("sample",))


class TestPhaseAttribution:
    """Figure-7 phases are derived from step types, not hand-placed."""

    def test_phase_by_type(self):
        assert step_phase(ProbStep("indicator")) == "probability"
        assert step_phase(NormStep()) == "sampling"
        assert step_phase(SampleStep(2)) == "sampling"
        assert step_phase(ExtractStep("bipartite")) == "extraction"

    def test_non_step_raises(self):
        with pytest.raises(TypeError):
            step_phase("probability")


class TestEmittedPrograms:
    """Each built-in's plan matches its Algorithm 1/2 row in the paper."""

    def test_sage_program(self):
        plan = SageSampler().plan((5, 3))
        assert [type(s).__name__ for s in plan.steps] == [
            "ProbStep", "NormStep", "SampleStep", "ExtractStep",
        ] * 2
        probs = [s for s in plan.steps if isinstance(s, ProbStep)]
        assert all(s.source == "frontier" for s in probs)
        counts = [s.count for s in plan.steps if isinstance(s, SampleStep)]
        assert counts == [5, 3]
        extracts = [s for s in plan.steps if isinstance(s, ExtractStep)]
        assert all(s.kind == "compact" for s in extracts)

    def test_ladies_program(self):
        plan = LadiesSampler(include_dst=True).plan((32,))
        kinds = [type(s).__name__ for s in plan.steps]
        assert kinds == ["ProbStep", "NormStep", "SampleStep", "ExtractStep"]
        assert plan.steps[0].source == "indicator"
        assert plan.steps[-1].kind == "bipartite"
        assert plan.steps[-1].union_dst is True

    def test_ladies_debias_flows_into_plan(self):
        plan = LadiesSampler(debias=True).plan((16,))
        assert plan.steps[-1].debias is True

    def test_fastgcn_program_has_no_norm_and_no_per_layer_spgemm(self):
        plan = FastGCNSampler().plan((32, 32))
        assert not any(isinstance(s, NormStep) for s in plan.steps)
        probs = [s for s in plan.steps if isinstance(s, ProbStep)]
        assert all(s.source == "global" for s in probs)

    def test_saint_program(self):
        plan = GraphSaintRWSampler(walk_length=4).plan((3, 3))
        walks = [
            s for s in plan.steps
            if isinstance(s, ExtractStep) and s.kind == "walk"
        ]
        assert len(walks) == 4
        counts = [s.count for s in plan.steps if isinstance(s, SampleStep)]
        assert counts == [1] * 4  # one neighbor per walker per step
        last = plan.steps[-1]
        assert isinstance(last, ExtractStep) and last.kind == "subgraph"
        assert last.n_layers == 2

    def test_describe_is_readable(self):
        text = SageSampler().plan((4,)).describe()
        assert "probability" in text and "PROB(frontier)" in text
        assert "SAMPLE(s=4)" in text and "EXTRACT(compact)" in text


class TestPlanDrivenSampleBulk:
    """sample_bulk is one shared interpreter, not per-sampler loops."""

    def test_plan_emitting_subclass_needs_no_sample_bulk(self, small_adj, rng):
        """A plugin that only overrides NORM inherits the whole driver."""

        class SquaredSage(SageSampler):
            def norm(self, p):
                from repro.sparse import CSRMatrix, row_normalize

                sq = CSRMatrix(
                    p.indptr.copy(), p.indices.copy(), p.data**2, p.shape
                )
                return row_normalize(sq)

        batches = [rng.choice(small_adj.shape[0], 16, replace=False)
                   for _ in range(3)]
        out = SquaredSage().sample_bulk(small_adj, batches, (4, 2), rng)
        assert len(out) == 3 and out[0].num_layers == 2

    def test_planless_sampler_raises_type_error(self, small_adj, rng):
        class NoPlan(MatrixSampler):
            def norm(self, p):
                return p

        with pytest.raises(TypeError, match="sampling plan"):
            NoPlan().sample_bulk(
                small_adj, [np.arange(8)], (4,), rng
            )

    def test_plans_are_deterministic_data(self):
        """Same sampler, same fanout: the same (hashable) program."""
        a = SageSampler().plan((5, 3))
        b = SageSampler().plan((5, 3))
        assert a == b
        assert len({a, b}) == 1
