"""The parallel serving fleet (``workers > 0``): each replica's timeline
in its own worker process must reproduce the serial cluster loop bit for
bit — digests, batch counts, clocks, shed decisions, churn — and refuse
loudly whenever the per-replica decomposition would change semantics."""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.api import Engine, RunConfig
from repro.parallel import parallel_support_error
from repro.serve import ClosedLoopWorkload, ServingCluster, TraceWorkload
from repro.stream import StreamingGraph, UpdateStream

pytestmark = pytest.mark.skipif(
    parallel_support_error() is not None,
    reason=f"no shared-memory support here: {parallel_support_error()}",
)


@pytest.fixture(scope="module")
def trained_engine() -> Engine:
    cfg = RunConfig(
        dataset="products", scale=0.05, train_split=0.5, p=1, c=1,
        algorithm="single", sampler="sage", fanout=(4, 3), batch_size=8,
        hidden=16, epochs=1, seed=0,
    )
    engine = Engine(cfg)
    engine.train(1)
    return engine


def _run(
    engine: Engine,
    *,
    workers: int,
    replicas: int = 3,
    stream: bool = False,
    n_requests: int = 24,
    **overrides,
):
    """One fleet run over a fresh graph copy (stream runs rebind ``adj``,
    so churn must stay run-local — same trick as bench_streaming)."""
    cfg = engine.config.replace(
        replicas=replicas, router="round_robin", workers=workers,
        stream_updates=stream, serve_batch_size=4, **overrides,
    )
    graph = copy.copy(engine.graph)
    streaming = (
        StreamingGraph(graph, compaction_threshold=cfg.compaction_threshold)
        if stream else None
    )
    cluster = ServingCluster(engine.model, graph, cfg, stream=streaming)
    if stream:
        workload = UpdateStream.synthetic(
            graph.adj, engine.graph.test_idx, n_requests=n_requests,
            update_ratio=0.5, edges_per_update=4, seed=0, interarrival=1e-4,
        )
    else:
        workload = TraceWorkload.synthetic(
            n_requests, engine.graph.test_idx, seed=0, interarrival=1e-4,
        )
    return cluster.process(workload)


def _assert_reports_identical(serial, parallel) -> None:
    assert parallel.digest() == serial.digest()
    assert parallel.batches == serial.batches
    assert parallel.shed == serial.shed
    assert parallel.per_replica == serial.per_replica
    assert parallel.n_requests == serial.n_requests
    assert parallel.throughput == pytest.approx(serial.throughput, rel=1e-12)
    for phase, seconds in serial.phase_seconds.items():
        assert parallel.phase_seconds[phase] == pytest.approx(
            seconds, rel=1e-12
        ), phase
    batch_indices = {
        r.request.rid: r.batch_index for r in serial.results
    }
    assert {
        r.request.rid: r.batch_index for r in parallel.results
    } == batch_indices


class TestFleetParity:
    def test_three_replica_trace_parity(self, trained_engine):
        serial = _run(trained_engine, workers=0)
        parallel = _run(trained_engine, workers=2)
        _assert_reports_identical(serial, parallel)

    def test_single_replica_parity(self, trained_engine):
        serial = _run(trained_engine, workers=0, replicas=1)
        parallel = _run(trained_engine, workers=1, replicas=1)
        _assert_reports_identical(serial, parallel)

    def test_workers_beyond_replicas_capped(self, trained_engine):
        """workers=8 over 3 replicas spawns only 3 processes and still
        matches (each replica's timeline is the unit of parallelism)."""
        serial = _run(trained_engine, workers=0)
        parallel = _run(trained_engine, workers=8)
        _assert_reports_identical(serial, parallel)

    def test_streaming_churn_parity(self, trained_engine):
        serial = _run(trained_engine, workers=0, stream=True)
        parallel = _run(trained_engine, workers=2, stream=True)
        _assert_reports_identical(serial, parallel)
        assert serial.update_stats is not None
        assert vars(parallel.update_stats) == vars(serial.update_stats)

    def test_shedding_parity(self, trained_engine):
        """Deadline shedding decisions are per-replica and must replay
        identically in the workers."""
        serial = _run(
            trained_engine, workers=0,
            shed_policy="deadline", shed_deadline=1e-4,
        )
        parallel = _run(
            trained_engine, workers=2,
            shed_policy="deadline", shed_deadline=1e-4,
        )
        assert serial.shed > 0  # the knob actually bit
        _assert_reports_identical(serial, parallel)


class TestFleetValidation:
    """Outside the decomposable regime the parallel path must raise an
    actionable error, not serve different semantics.  All of these fail
    *before* any worker spawns, so they are cheap."""

    def test_closed_loop_workload_rejected(self, trained_engine):
        cfg = trained_engine.config.replace(
            replicas=2, router="round_robin", workers=2,
        )
        cluster = ServingCluster(
            trained_engine.model, trained_engine.graph, cfg
        )
        workload = ClosedLoopWorkload(
            8, trained_engine.graph.test_idx, clients=2
        )
        with pytest.raises(ValueError, match="open-loop"):
            cluster.process(workload)

    def test_autoscaler_rejected(self, trained_engine):
        cfg = trained_engine.config.replace(
            replicas=2, router="round_robin", workers=2, slo_p99=0.5,
        )
        cluster = ServingCluster(
            trained_engine.model, trained_engine.graph, cfg
        )
        workload = TraceWorkload.synthetic(
            8, trained_engine.graph.test_idx, seed=0
        )
        with pytest.raises(ValueError, match="autoscal"):
            cluster.process(workload)

    def test_sampled_serving_rejected(self, trained_engine):
        cfg = trained_engine.config.replace(
            replicas=2, router="round_robin", workers=2,
        )
        cluster = ServingCluster(
            trained_engine.model, trained_engine.graph, cfg, fanout=(4, 3)
        )
        workload = TraceWorkload.synthetic(
            8, trained_engine.graph.test_idx, seed=0
        )
        with pytest.raises(ValueError, match="exact serving"):
            cluster.process(workload)

    def test_error_messages_name_the_fix(self, trained_engine):
        """Every refusal points at the serial path."""
        cfg = trained_engine.config.replace(
            replicas=2, router="round_robin", workers=2, slo_p99=0.5,
        )
        cluster = ServingCluster(
            trained_engine.model, trained_engine.graph, cfg
        )
        workload = TraceWorkload.synthetic(
            8, trained_engine.graph.test_idx, seed=0
        )
        with pytest.raises(ValueError, match="workers=0"):
            cluster.process(workload)


class TestEngineIntegration:
    def test_engine_serving_autodetects_fleet_on_workers(self, trained_engine):
        """cfg.workers > 0 alone promotes serving() to a cluster."""
        engine = Engine(
            trained_engine.config.replace(workers=2, replicas=1)
        )
        server = engine.serving()
        assert isinstance(server, ServingCluster)

    def test_engine_close_is_idempotent_and_safe_untrained(self):
        cfg = RunConfig(
            dataset="products", scale=0.05, train_split=0.5,
            sampler="sage", fanout=(3, 2), batch_size=8, hidden=8,
            epochs=1, seed=0,
        )
        with Engine(cfg) as engine:
            engine.close()  # never built a pipeline: still a no-op
