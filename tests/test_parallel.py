"""The multi-core execution layer: shared-memory publication, the warm
worker pool, bit-identity with serial sampling, and — because leaked
segments outlive the process — the lifecycle guarantees: refcounted
release, crash/interrupt cleanup, and the serial path importing nothing
from ``multiprocessing``."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.bulk import batch_rng
from repro.graphs import Graph, rmat
from repro.parallel import (
    SamplerSpec,
    SegmentGroup,
    SharedFeatures,
    SharedGraph,
    WorkerError,
    WorkerPool,
    parallel_support_error,
)
from repro.parallel.shm import (
    attach_array,
    owned_segment_names,
    publish_array,
)
from repro.sparse import CSRMatrix
from repro.stream import EdgeBatch, StreamingGraph

SRC = str(Path(__file__).parent.parent / "src")

pytestmark = pytest.mark.skipif(
    parallel_support_error() is not None,
    reason=f"no shared-memory support here: {parallel_support_error()}",
)


def _digest(samples) -> bytes:
    import hashlib

    h = hashlib.sha256()
    for mb in samples:
        h.update(np.ascontiguousarray(mb.batch, dtype=np.int64).tobytes())
        for layer in mb.layers:
            for arr in (
                layer.adj.indptr, layer.adj.indices, layer.adj.data,
                np.asarray(layer.src_ids, dtype=np.int64),
                np.asarray(layer.dst_ids, dtype=np.int64),
            ):
                h.update(np.ascontiguousarray(arr).tobytes())
            h.update(repr(layer.adj.shape).encode())
    return h.digest()


def _serial(spec: SamplerSpec, adj, batches, seed: int):
    sampler = spec.build(adj)
    rngs = [batch_rng(seed, i) for i in range(len(batches))]
    return sampler.sample_bulk(adj, batches, spec.fanout, rngs)


# Module-level so spawn can pickle them by qualified name.
def _degree_of(adj, features, vertex: int) -> int:
    return int(adj.indptr[vertex + 1] - adj.indptr[vertex])


def _boom(adj, features, payload):
    raise ValueError(f"intentional worker failure on {payload!r}")


@pytest.fixture(scope="module")
def shared_pool(request):
    """One published graph + 2 warm workers shared across the pool tests
    (spawn startup is ~1s per worker, so tests reuse the fleet)."""
    adj = rmat(9, 8, np.random.default_rng(7))
    shared = SharedGraph.publish(adj)
    pool = WorkerPool(2, shared)
    shared.release()  # the pool holds its own reference
    yield adj, pool
    pool.shutdown()


@pytest.fixture()
def pool_batches(rng):
    return [rng.choice(512, 32, replace=False) for _ in range(8)]


# ---------------------------------------------------------------------- #
# Array publication
# ---------------------------------------------------------------------- #
class TestSharedArrays:
    def test_publish_attach_roundtrip(self):
        array = np.arange(37, dtype=np.float64).reshape(-1)
        spec, shm = publish_array(array, "t-roundtrip")
        try:
            view, handle = attach_array(spec)
            np.testing.assert_array_equal(view, array)
            assert not view.flags.writeable
            handle.close()
        finally:
            with SegmentGroup() as group:
                group.adopt(shm)

    def test_attached_view_is_zero_copy(self):
        array = np.arange(16, dtype=np.int64)
        spec, shm = publish_array(array, "t-zerocopy")
        try:
            view, handle = attach_array(spec)
            assert view.base is not None  # backed by the segment buffer
            with pytest.raises((ValueError, RuntimeError)):
                view[0] = 99
            handle.close()
        finally:
            with SegmentGroup() as group:
                group.adopt(shm)

    def test_publication_is_a_copy(self):
        """Mutating the source after publish must not change the segment
        (the published graph is frozen)."""
        array = np.ones(8)
        spec, shm = publish_array(array, "t-frozen")
        try:
            array[:] = -1.0
            view, handle = attach_array(spec)
            assert (np.asarray(view) == 1.0).all()
            handle.close()
        finally:
            with SegmentGroup() as group:
                group.adopt(shm)


class TestSegmentGroup:
    def test_refcounted_release(self, small_adj):
        shared = SharedGraph.publish(small_adj)
        names = {
            shared.handle.indptr.name,
            shared.handle.indices.name,
            shared.handle.data.name,
        }
        assert names <= set(owned_segment_names())
        shared.retain()
        shared.release()  # one of two references gone
        assert names <= set(owned_segment_names())
        shared.release()  # last reference: segments unlink
        assert not (names & set(owned_segment_names()))

    def test_retain_after_close_rejected(self, small_adj):
        shared = SharedGraph.publish(small_adj)
        shared.close()
        with pytest.raises(RuntimeError, match="closed"):
            shared.retain()

    def test_release_is_idempotent(self, small_adj):
        shared = SharedGraph.publish(small_adj)
        shared.release()
        shared.release()  # no error, no double unlink

    def test_context_manager_releases(self, small_adj):
        with SharedGraph.publish(small_adj) as shared:
            names = {
                shared.handle.indptr.name,
                shared.handle.indices.name,
                shared.handle.data.name,
            }
            assert names <= set(owned_segment_names())
        assert not (names & set(owned_segment_names()))


# ---------------------------------------------------------------------- #
# Graph publication and attachment
# ---------------------------------------------------------------------- #
class TestSharedGraph:
    def test_worker_view_matches_source(self, small_adj):
        with SharedGraph.publish(small_adj) as shared:
            adj, handles = shared.handle.attach()
            assert adj.shape == small_adj.shape
            np.testing.assert_array_equal(adj.indptr, small_adj.indptr)
            np.testing.assert_array_equal(adj.indices, small_adj.indices)
            np.testing.assert_array_equal(adj.data, small_adj.data)
            for h in handles:
                h.close()

    def test_republish_bumps_version_and_swaps_arrays(self, small_adj):
        other = rmat(9, 4, np.random.default_rng(11))
        with SharedGraph.publish(small_adj) as shared:
            first = shared.handle
            assert first.version == 0
            second = shared.republish(other)
            assert second.version == 1
            adj, handles = second.attach()
            np.testing.assert_array_equal(adj.indices, other.indices)
            for h in handles:
                h.close()

    def test_republish_after_close_rejected(self, small_adj):
        shared = SharedGraph.publish(small_adj)
        shared.release()
        with pytest.raises(RuntimeError, match="closed"):
            shared.republish(small_adj)

    def test_track_republishes_on_compaction(self, small_adj):
        graph = Graph(name="t", adj=small_adj)
        stream = StreamingGraph(graph, auto_compact=False)
        with SharedGraph.publish(small_adj) as shared:
            shared.track(stream)
            stream.apply(EdgeBatch(
                src=np.array([0, 1, 2]), dst=np.array([5, 6, 7])
            ))
            assert shared.handle.version == 0  # no compaction yet
            stream.compact()
            assert shared.handle.version == 1
            adj, handles = shared.handle.attach()
            np.testing.assert_array_equal(adj.indptr, stream.adj.indptr)
            for h in handles:
                h.close()


class TestSharedFeatures:
    def test_roundtrip_and_republish(self):
        feats = np.random.default_rng(0).standard_normal((64, 8))
        with SharedFeatures.publish(feats) as shared:
            view, handles = shared.handle.attach()
            np.testing.assert_array_equal(view, feats)
            assert not view.flags.writeable
            for h in handles:
                h.close()
            shared.republish(feats * 2.0)
            assert shared.handle.version == 1


# ---------------------------------------------------------------------- #
# SamplerSpec
# ---------------------------------------------------------------------- #
class TestSamplerSpec:
    def test_digest_distinguishes_specs(self):
        a = SamplerSpec(sampler="sage", fanout=(4, 3))
        assert a.digest() == SamplerSpec(sampler="sage", fanout=(4, 3)).digest()
        for other in (
            SamplerSpec(sampler="ladies", fanout=(4, 3)),
            SamplerSpec(sampler="sage", fanout=(4, 2)),
            SamplerSpec(sampler="sage", fanout=(4, 3), kernel="esc"),
            SamplerSpec(sampler="sage", fanout=(4, 3), for_training=False),
        ):
            assert a.digest() != other.digest()

    def test_build_matches_registry_sampler(self, small_adj):
        spec = SamplerSpec(sampler="ladies", fanout=(16,))
        sampler = spec.build(small_adj)
        assert type(sampler).__name__ == "LadiesSampler"


# ---------------------------------------------------------------------- #
# WorkerPool
# ---------------------------------------------------------------------- #
class TestWorkerPool:
    def test_rejects_zero_workers(self, small_adj):
        with SharedGraph.publish(small_adj) as shared:
            with pytest.raises(ValueError, match="workers >= 1"):
                WorkerPool(0, shared)

    def test_bulk_bit_identical_to_serial(self, shared_pool, pool_batches):
        adj, pool = shared_pool
        for spec in (
            SamplerSpec(sampler="sage", fanout=(4, 3), for_training=False),
            SamplerSpec(sampler="ladies", fanout=(32,), for_training=False),
        ):
            reference = _digest(_serial(spec, adj, pool_batches, seed=3))
            samples, totals = pool.sample_bulk(
                spec, pool_batches, list(range(len(pool_batches))), 3
            )
            assert _digest(samples) == reference
            assert totals["flops"] > 0 and totals["kernels"] > 0

    def test_global_indices_key_the_streams(self, shared_pool, pool_batches):
        """Sampling a *slice* of the bulk with its original global indices
        reproduces exactly that slice of the full serial run — the property
        that makes the batch partition invisible."""
        adj, pool = shared_pool
        spec = SamplerSpec(sampler="sage", fanout=(4, 3), for_training=False)
        full = _serial(spec, adj, pool_batches, seed=9)
        part, _ = pool.sample_bulk(spec, pool_batches[4:6], [4, 5], 9)
        assert _digest(part) == _digest(full[4:6])

    def test_register_is_idempotent(self, shared_pool):
        _, pool = shared_pool
        spec = SamplerSpec(sampler="sage", fanout=(4, 3), for_training=False)
        assert pool.register(spec) == pool.register(spec) == spec.digest()

    def test_run_preserves_payload_order(self, shared_pool):
        adj, pool = shared_pool
        vertices = [0, 5, 17, 100, 3, 250, 8]
        out = pool.run(_degree_of, vertices)
        expected = [
            int(adj.indptr[v + 1] - adj.indptr[v]) for v in vertices
        ]
        assert out == expected

    def test_worker_exception_propagates_and_pool_survives(
        self, shared_pool, pool_batches
    ):
        adj, pool = shared_pool
        with pytest.raises(WorkerError, match="intentional worker failure"):
            pool.run(_boom, ["mid-batch"])
        # The worker caught the exception and kept serving: the pool is
        # still usable and still bit-identical afterwards.
        spec = SamplerSpec(sampler="sage", fanout=(4, 3), for_training=False)
        samples, _ = pool.sample_bulk(
            spec, pool_batches, list(range(len(pool_batches))), 3
        )
        assert _digest(samples) == _digest(_serial(spec, adj, pool_batches, 3))

    def test_mismatched_indices_rejected(self, shared_pool, pool_batches):
        _, pool = shared_pool
        spec = SamplerSpec(sampler="sage", fanout=(4, 3), for_training=False)
        with pytest.raises(ValueError, match="one global index per batch"):
            pool.sample_bulk(spec, pool_batches, [0], 0)

    def test_pool_rebinds_after_compaction(self, small_adj, rng):
        """A tracked republish reaches warm workers on their next task."""
        graph = Graph(name="t", adj=small_adj)
        stream = StreamingGraph(graph, auto_compact=False)
        shared = SharedGraph.publish(small_adj)
        spec = SamplerSpec(sampler="sage", fanout=(3, 2), for_training=False)
        batches = [rng.choice(512, 16, replace=False) for _ in range(4)]
        with WorkerPool(1, shared) as pool:
            shared.release()
            shared.track(stream)
            stream.apply(EdgeBatch(
                src=rng.integers(0, 512, 40), dst=rng.integers(0, 512, 40)
            ))
            stream.compact()
            samples, _ = pool.sample_bulk(spec, batches, [0, 1, 2, 3], 5)
            assert _digest(samples) == _digest(
                _serial(spec, stream.adj, batches, 5)
            )


# ---------------------------------------------------------------------- #
# Lifecycle: segments must never outlive their owner
# ---------------------------------------------------------------------- #
class TestLifecycle:
    def test_segments_freed_after_pool_shutdown(self, small_adj):
        shared = SharedGraph.publish(small_adj)
        names = {
            shared.handle.indptr.name,
            shared.handle.indices.name,
            shared.handle.data.name,
        }
        pool = WorkerPool(1, shared)
        shared.release()
        assert names <= set(owned_segment_names())  # pool keeps them alive
        pool.shutdown()
        assert not (names & set(owned_segment_names()))
        pool.shutdown()  # idempotent

    def test_sigint_in_owner_unlinks_segments(self, tmp_path):
        """A ^C in the publishing process must not strand /dev/shm files:
        the chained signal handler unlinks before KeyboardInterrupt."""
        script = tmp_path / "owner.py"
        script.write_text(
            "import sys, time\n"
            f"sys.path.insert(0, {SRC!r})\n"
            "import numpy as np\n"
            "from repro.graphs import rmat\n"
            "from repro.parallel import SharedGraph\n"
            "from repro.parallel.shm import owned_segment_names\n"
            "shared = SharedGraph.publish(rmat(8, 4, np.random.default_rng(0)))\n"
            "for name in owned_segment_names():\n"
            "    print(name, flush=True)\n"
            "print('READY', flush=True)\n"
            "time.sleep(60)\n"
        )
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        )
        names = []
        try:
            for line in proc.stdout:
                if line.strip() == "READY":
                    break
                names.append(line.strip())
            assert names, "owner script published no segments"
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=30) != 0  # died of KeyboardInterrupt
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            proc.stdout.close()
        if os.path.isdir("/dev/shm"):
            leaked = [n for n in names if os.path.exists(f"/dev/shm/{n}")]
            assert not leaked, f"SIGINT leaked segments: {leaked}"

    def test_normal_exit_unlinks_segments(self, tmp_path):
        """Without any explicit release, the atexit guard still cleans up."""
        script = tmp_path / "owner_exit.py"
        script.write_text(
            "import sys\n"
            f"sys.path.insert(0, {SRC!r})\n"
            "import numpy as np\n"
            "from repro.graphs import rmat\n"
            "from repro.parallel import SharedGraph\n"
            "from repro.parallel.shm import owned_segment_names\n"
            "shared = SharedGraph.publish(rmat(8, 4, np.random.default_rng(0)))\n"
            "for name in owned_segment_names():\n"
            "    print(name, flush=True)\n"
        )
        out = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, timeout=120, check=True,
        )
        names = out.stdout.split()
        assert names
        assert "leaked shared_memory" not in out.stderr
        if os.path.isdir("/dev/shm"):
            leaked = [n for n in names if os.path.exists(f"/dev/shm/{n}")]
            assert not leaked, f"normal exit leaked segments: {leaked}"


# ---------------------------------------------------------------------- #
# Serial purity: workers=0 must not touch multiprocessing
# ---------------------------------------------------------------------- #
class TestSerialPurity:
    def test_workers_zero_never_imports_multiprocessing(self, tmp_path):
        """The default path stays lean: a full workers=0 train (through the
        parallel backend!) must not pull in multiprocessing at all."""
        script = tmp_path / "serial.py"
        script.write_text(
            "import sys\n"
            f"sys.path.insert(0, {SRC!r})\n"
            "from repro.api import Engine, RunConfig\n"
            "cfg = RunConfig(dataset='products', scale=0.05, train_split=0.5,\n"
            "                algorithm='parallel', p=1, sampler='sage',\n"
            "                fanout=(3, 2), batch_size=8, hidden=8, epochs=1,\n"
            "                seed=0, workers=0)\n"
            "engine = Engine(cfg)\n"
            "engine.train(1)\n"
            "engine.close()\n"
            "mods = [m for m in sys.modules if m.split('.')[0] == 'multiprocessing']\n"
            "assert not mods, f'workers=0 imported {mods}'\n"
            "print('SERIAL-PURE')\n"
        )
        out = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, timeout=300,
        )
        assert out.returncode == 0, out.stderr
        assert "SERIAL-PURE" in out.stdout

    def test_csr_buffers_roundtrip_aliases(self, small_adj):
        indptr, indices, data = small_adj.buffers()
        assert indptr is small_adj.indptr
        rebuilt = CSRMatrix.from_buffers(
            indptr, indices, data, small_adj.shape
        )
        assert rebuilt.indices is small_adj.indices
        assert rebuilt.equal(small_adj, 0.0)
