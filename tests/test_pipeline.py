"""End-to-end pipeline: training, accuracy parity, phase accounting, memory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import RunConfig
from repro.config import SAGE_ARCH
from repro.graphs.datasets import PAPER_DATASETS
from repro.pipeline import (
    EpochStats,
    MemoryModel,
    TrainingPipeline,
    choose_c_k,
    quiver_fits,
)


class TestConfigValidation:
    def test_rejects_bad_combinations(self):
        with pytest.raises(ValueError):
            RunConfig(p=4, algorithm="magic")
        with pytest.raises(ValueError):
            RunConfig(p=4, sampler="magic")
        with pytest.raises(ValueError):
            RunConfig(p=4, c=3)
        with pytest.raises(ValueError):
            RunConfig(p=4, k=0)

    def test_requires_features(self, small_adj):
        from repro.graphs import Graph

        g = Graph("bare", small_adj, train_idx=np.arange(10))
        with pytest.raises(ValueError):
            TrainingPipeline(g, RunConfig(p=2, fanout=(3,)))


class TestTraining:
    def test_loss_decreases(self, labeled_graph):
        cfg = RunConfig(
            p=2, c=1, fanout=(5, 3), batch_size=32, hidden=16, lr=0.01
        )
        pipe = TrainingPipeline(labeled_graph, cfg)
        first = pipe.train_epoch(0).loss
        for e in range(1, 5):
            last = pipe.train_epoch(e).loss
        assert last < first

    def test_learns_planted_labels(self, labeled_graph):
        cfg = RunConfig(
            p=2, c=1, fanout=(5, 3), batch_size=32, hidden=32, lr=0.01
        )
        pipe = TrainingPipeline(labeled_graph, cfg)
        for e in range(6):
            pipe.train_epoch(e)
        assert pipe.evaluate("test") > 0.8

    def test_accuracy_parity_bulk_vs_small_bulk(self, labeled_graph):
        """Section 8.1.3: bulk sampling must not change final accuracy."""
        accs = {}
        for k in (None, 2):  # all-at-once vs tiny bulks
            cfg = RunConfig(
                p=2, c=1, fanout=(5, 3), batch_size=32, hidden=32,
                lr=0.01, k=k, seed=0,
            )
            pipe = TrainingPipeline(labeled_graph, cfg)
            for e in range(6):
                pipe.train_epoch(e)
            accs[k] = pipe.evaluate("test")
        assert abs(accs[None] - accs[2]) < 0.05

    def test_accuracy_parity_replicated_vs_partitioned(self, labeled_graph):
        accs = {}
        for algo in ("replicated", "partitioned"):
            cfg = RunConfig(
                p=4, c=2, algorithm=algo, fanout=(5, 3), batch_size=32,
                hidden=32, lr=0.01, seed=0,
            )
            pipe = TrainingPipeline(labeled_graph, cfg)
            for e in range(6):
                pipe.train_epoch(e)
            accs[algo] = pipe.evaluate("test")
        assert abs(accs["replicated"] - accs["partitioned"]) < 0.05

    def test_ladies_pipeline_trains(self, labeled_graph):
        cfg = RunConfig(
            p=2, c=1, sampler="ladies", fanout=(64,), batch_size=32,
            hidden=32, lr=0.01,
        )
        pipe = TrainingPipeline(labeled_graph, cfg)
        first = pipe.train_epoch(0).loss
        for e in range(1, 6):
            last = pipe.train_epoch(e).loss
        assert last < first

    def test_fastgcn_pipeline_runs(self, labeled_graph):
        cfg = RunConfig(
            p=2, c=1, sampler="fastgcn", fanout=(64,), batch_size=32,
            hidden=16,
        )
        stats = TrainingPipeline(labeled_graph, cfg).train_epoch()
        assert stats.loss is not None


class TestPhaseAccounting:
    def test_stats_have_all_phases(self, perf_graph):
        cfg = RunConfig(
            p=4, c=2, fanout=(5, 3), batch_size=64, train_model=False
        )
        stats = TrainingPipeline(perf_graph, cfg).train_epoch()
        assert stats.sampling > 0
        assert stats.feature_fetch > 0
        assert stats.propagation > 0
        assert stats.total == pytest.approx(
            stats.sampling + stats.feature_fetch + stats.propagation
        )
        assert stats.loss is None  # perf-only mode
        row = stats.row()
        assert "loss" not in row and row["batches"] == stats.n_batches

    def test_partitioned_sub_phases(self, perf_graph):
        cfg = RunConfig(
            p=4, c=2, algorithm="partitioned", fanout=(5, 3), batch_size=64,
            train_model=False,
        )
        stats = TrainingPipeline(perf_graph, cfg).train_epoch()
        assert {"probability", "sampling", "extraction"} <= set(stats.sub_phases)

    def test_comm_comp_split_covers_phases(self, perf_graph):
        cfg = RunConfig(
            p=4, c=2, algorithm="partitioned", fanout=(5, 3), batch_size=64,
            train_model=False,
        )
        stats = TrainingPipeline(perf_graph, cfg).train_epoch()
        assert stats.comm_seconds > 0 and stats.comp_seconds > 0

    def test_epoch_stats_reset_between_epochs(self, perf_graph):
        cfg = RunConfig(
            p=2, c=1, fanout=(5,), batch_size=64, train_model=False
        )
        pipe = TrainingPipeline(perf_graph, cfg)
        a = pipe.train_epoch(0)
        b = pipe.train_epoch(1)
        # Same workload, same costs: stats must not accumulate.
        assert b.total == pytest.approx(a.total, rel=0.2)

    def test_replication_reduces_fetch_time(self, perf_graph):
        """Figure 6: no replication (c=1) pays more feature-fetch time."""
        times = {}
        for c in (1, 4):
            cfg = RunConfig(
                p=8, c=c, fanout=(5, 3), batch_size=64, train_model=False,
                work_scale=1e4,
            )
            times[c] = TrainingPipeline(perf_graph, cfg).train_epoch().feature_fetch
        assert times[4] < times[1]


class TestMemoryModel:
    def test_graph_bytes_scale(self):
        m = MemoryModel(PAPER_DATASETS["papers"], SAGE_ARCH)
        # Papers CSR is over 19 GB; a 128-way c=1 partition is ~150 MB.
        assert m.graph_bytes() > 15e9
        assert m.graph_partition_bytes(128, 1) < 0.5e9

    def test_feature_bytes_scale_with_c(self):
        m = MemoryModel(PAPER_DATASETS["products"], SAGE_ARCH)
        assert m.feature_bytes(16, 4) == pytest.approx(
            4 * m.feature_bytes(16, 1)
        )

    def test_choose_c_k_monotone_in_p(self):
        """More GPUs buy more aggregate memory: c and k never shrink."""
        spec = PAPER_DATASETS["papers"]
        prev_c, prev_k = 0, 0
        for p in (4, 8, 16, 32, 64, 128):
            c, k = choose_c_k(spec, SAGE_ARCH, p)
            assert c >= prev_c and k >= prev_k
            prev_c, prev_k = c, k

    def test_choose_c_k_small_p_limited(self):
        """At p=4 dense datasets cannot afford full replication or full k —
        the paper's Figure 4 annotations (e.g. Products: c=1, k=81)."""
        c4, k4 = choose_c_k(PAPER_DATASETS["protein"], SAGE_ARCH, 4)
        c128, k128 = choose_c_k(PAPER_DATASETS["protein"], SAGE_ARCH, 128)
        assert c4 <= 2
        assert k128 == PAPER_DATASETS["protein"].batches  # "k=all"
        assert c128 >= 4

    def test_quiver_oom_on_papers_only(self):
        """The paper's missing datapoint: Quiver preprocessing OOMs on
        Papers but not on Products/Protein."""
        assert not quiver_fits(PAPER_DATASETS["papers"])
        assert quiver_fits(PAPER_DATASETS["products"])

    def test_epoch_stats_total(self):
        s = EpochStats(sampling=1.0, feature_fetch=2.0, propagation=3.0)
        assert s.total == 6.0
