"""Baselines: Quiver (GPU/UVA), serial CPU LADIES, per-batch sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    QuiverBaseline,
    QuiverConfig,
    per_batch_sampling,
    reference_cpu_ladies,
)
from repro.comm import Communicator
from repro.core import LadiesSampler, SageSampler
from repro.api import RunConfig
from repro.pipeline import TrainingPipeline


class TestQuiverConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuiverConfig(p=4, mode="tpu")
        with pytest.raises(ValueError):
            QuiverConfig(p=0)
        with pytest.raises(ValueError):
            QuiverConfig(p=4, dram_feature_fraction=2.0)


class TestQuiverBehavior:
    def _epoch(self, graph, **kw):
        defaults = dict(p=8, fanout=(5, 3), batch_size=64, work_scale=1e4)
        defaults.update(kw)
        return QuiverBaseline(graph, QuiverConfig(**defaults)).train_epoch()

    def test_produces_phase_breakdown(self, perf_graph):
        stats = self._epoch(perf_graph)
        assert stats.sampling > 0
        assert stats.feature_fetch > 0
        assert stats.propagation > 0
        assert stats.n_batches == perf_graph.num_batches(64)

    def test_uva_slower_than_gpu(self, perf_graph):
        """Figure 5: GPU sampling beats UVA sampling."""
        gpu = self._epoch(perf_graph, mode="gpu")
        uva = self._epoch(perf_graph, mode="uva")
        assert uva.sampling > gpu.sampling
        assert uva.total > gpu.total

    def test_our_pipeline_beats_quiver_at_scale(self, perf_graph):
        """Figure 4's headline: at larger p our bulk pipeline wins.

        Batch size 16 gives every rank several minibatches, so bulk
        sampling has overheads to amortize (the paper's regime: hundreds of
        batches per epoch).
        """
        p = 16
        quiver = self._epoch(perf_graph, p=p, batch_size=16)
        cfg = RunConfig(
            p=p, c=4, fanout=(5, 3), batch_size=16, train_model=False,
            work_scale=1e4,
        )
        ours = TrainingPipeline(perf_graph, cfg).train_epoch()
        assert ours.total < quiver.total
        # Sampling amortization is part of the win.
        assert ours.sampling < quiver.sampling

    def test_quiver_node_boundary_regression(self, perf_graph):
        """Quiver slows down crossing from one node (p=4) to two (p=8)."""
        t4 = self._epoch(perf_graph, p=4).feature_fetch
        t8 = self._epoch(perf_graph, p=8).feature_fetch
        assert t8 > t4

    def test_requires_features(self, small_adj):
        from repro.graphs import Graph

        bare = Graph("bare", small_adj, train_idx=np.arange(64))
        with pytest.raises(ValueError):
            QuiverBaseline(bare, QuiverConfig(p=2))


class TestCpuLadies:
    def test_returns_valid_samples(self, perf_graph):
        batches = perf_graph.make_batches(64)[:4]
        res = reference_cpu_ladies(perf_graph, batches, 16)
        assert res.n_batches == 4
        assert len(res.samples) == 4
        assert res.seconds > 0
        dense = perf_graph.adj.to_dense()
        layer = res.samples[0].layers[0]
        sub = dense[np.ix_(layer.dst_ids, layer.src_ids)]
        assert np.allclose(layer.adj.to_dense(), sub)

    def test_serial_time_linear_in_batches(self, perf_graph):
        batches = perf_graph.make_batches(64)
        t4 = reference_cpu_ladies(perf_graph, batches[:4], 16).seconds
        t8 = reference_cpu_ladies(perf_graph, batches[:8], 16).seconds
        assert 1.5 < t8 / t4 < 2.5

    def test_distributed_beats_cpu_at_scale(self, perf_graph):
        """Section 8.2.2: distributed LADIES crosses the serial reference
        once enough GPUs participate."""
        from repro.comm import ProcessGrid
        from repro.distributed import partitioned_bulk_sampling
        from repro.partition import BlockRows

        batches = perf_graph.make_batches(64)
        scale = 1e4
        cpu = reference_cpu_ladies(
            perf_graph, batches, 16, work_scale=scale
        ).seconds

        comm = Communicator(16, work_scale=scale)
        grid = ProcessGrid(16, 4)
        ab = BlockRows.partition(perf_graph.adj, grid.n_rows)
        partitioned_bulk_sampling(
            comm, grid, LadiesSampler(), ab, batches, (16,), seed=0
        )
        assert comm.clock.elapsed() < cpu

    def test_validation(self, perf_graph):
        with pytest.raises(ValueError):
            reference_cpu_ladies(perf_graph, [], 0)


class TestPerBatch:
    def test_same_coverage_as_bulk(self, small_adj, batches):
        comm = Communicator(4)
        out = per_batch_sampling(
            comm, SageSampler(), small_adj, batches, (4, 2), seed=0
        )
        assert sum(len(o) for o in out) == len(batches)

    def test_pays_more_kernel_overhead_than_bulk(self, small_adj, rng):
        from repro.distributed import replicated_bulk_sampling

        n = small_adj.shape[0]
        many = [rng.choice(n, 32, replace=False) for _ in range(24)]
        comm_solo = Communicator(2)
        per_batch_sampling(comm_solo, SageSampler(), small_adj, many, (4, 2))
        comm_bulk = Communicator(2)
        replicated_bulk_sampling(
            comm_bulk, SageSampler(), small_adj, many, (4, 2)
        )
        # Identical flop work, so the gap is pure per-call overhead.
        assert (
            comm_solo.clock.phase_seconds("sampling")
            > 2 * comm_bulk.clock.phase_seconds("sampling")
        )
