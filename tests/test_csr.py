"""Unit tests for the CSR matrix substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import CSRMatrix, sprand


class TestConstruction:
    def test_from_coo_sorts_and_sums_duplicates(self):
        m = CSRMatrix.from_coo(
            rows=[1, 0, 1, 1], cols=[2, 1, 2, 0], vals=[1.0, 2.0, 3.0, 4.0],
            shape=(2, 3),
        )
        assert m.nnz == 3
        dense = m.to_dense()
        assert dense[1, 2] == 4.0  # 1 + 3 summed
        assert dense[0, 1] == 2.0
        assert dense[1, 0] == 4.0
        m.check()

    def test_from_coo_default_values_are_ones(self):
        m = CSRMatrix.from_coo([0, 1], [1, 0], None, (2, 2))
        assert np.array_equal(m.data, [1.0, 1.0])

    def test_from_coo_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_coo([0], [5], None, (2, 3))
        with pytest.raises(ValueError):
            CSRMatrix.from_coo([2], [0], None, (2, 3))
        with pytest.raises(ValueError):
            CSRMatrix.from_coo([-1], [0], None, (2, 3))

    def test_from_coo_shape_mismatch(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_coo([0, 1], [0], None, (2, 2))

    def test_from_dense_roundtrip(self, rng):
        dense = rng.random((7, 5))
        dense[dense < 0.6] = 0.0
        m = CSRMatrix.from_dense(dense)
        assert np.allclose(m.to_dense(), dense)
        m.check()

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_dense(np.ones(4))

    def test_zeros(self):
        m = CSRMatrix.zeros((3, 4))
        assert m.nnz == 0
        assert m.shape == (3, 4)
        m.check()

    def test_identity(self):
        m = CSRMatrix.identity(5)
        assert np.allclose(m.to_dense(), np.eye(5))
        m.check()

    def test_scipy_roundtrip(self, rng):
        m = sprand(20, 30, 0.1, rng)
        back = CSRMatrix.from_scipy(m.to_scipy())
        assert m.equal(back)


class TestIntrospection:
    def test_nnz_per_row_and_row_sums(self):
        m = CSRMatrix.from_dense([[1.0, 2.0, 0.0], [0.0, 0.0, 0.0], [3.0, 0.0, 4.0]])
        assert np.array_equal(m.nnz_per_row(), [2, 0, 2])
        assert np.allclose(m.row_sums(), [3.0, 0.0, 7.0])

    def test_row_access(self):
        m = CSRMatrix.from_dense([[0.0, 5.0], [6.0, 0.0]])
        cols, vals = m.row(0)
        assert np.array_equal(cols, [1]) and np.allclose(vals, [5.0])
        with pytest.raises(IndexError):
            m.row(2)

    def test_row_ids(self, rng):
        m = sprand(15, 15, 0.2, rng)
        rows, cols, _ = m.to_coo()
        assert np.array_equal(rows, m.row_ids())

    def test_check_detects_corruption(self, rng):
        m = sprand(10, 10, 0.3, rng)
        bad = m.copy()
        bad.indices[0] = 99
        with pytest.raises(ValueError):
            bad.check()
        bad2 = m.copy()
        bad2.indptr[-1] += 1
        with pytest.raises(ValueError):
            bad2.check()


class TestStructuralOps:
    def test_transpose(self, rng):
        m = sprand(12, 18, 0.15, rng)
        assert np.allclose(m.transpose().to_dense(), m.to_dense().T)
        m.transpose().check()

    def test_transpose_involution(self, rng):
        m = sprand(10, 10, 0.2, rng)
        assert m.transpose().transpose().equal(m)

    def test_extract_rows_order_and_duplicates(self, rng):
        m = sprand(10, 8, 0.3, rng)
        sel = np.array([3, 3, 0, 9])
        sub = m.extract_rows(sel)
        assert np.allclose(sub.to_dense(), m.to_dense()[sel])
        sub.check()

    def test_extract_rows_out_of_range(self, rng):
        m = sprand(5, 5, 0.2, rng)
        with pytest.raises(IndexError):
            m.extract_rows([5])

    def test_row_block(self, rng):
        m = sprand(20, 10, 0.25, rng)
        blk = m.row_block(5, 12)
        assert np.allclose(blk.to_dense(), m.to_dense()[5:12])
        blk.check()
        with pytest.raises(IndexError):
            m.row_block(12, 5)

    def test_row_block_empty(self, rng):
        m = sprand(10, 10, 0.2, rng)
        blk = m.row_block(4, 4)
        assert blk.shape == (0, 10) and blk.nnz == 0

    def test_select_columns(self, rng):
        m = sprand(8, 10, 0.4, rng)
        mask = np.zeros(10, dtype=bool)
        mask[[1, 4, 7]] = True
        sub = m.select_columns(mask)
        assert np.allclose(sub.to_dense(), m.to_dense()[:, [1, 4, 7]])
        sub.check()

    def test_select_columns_bad_mask(self, rng):
        m = sprand(4, 6, 0.5, rng)
        with pytest.raises(ValueError):
            m.select_columns(np.ones(3, dtype=bool))

    def test_nonzero_columns(self):
        m = CSRMatrix.from_coo([0, 1, 1], [5, 2, 5], None, (2, 8))
        assert np.array_equal(m.nonzero_columns(), [2, 5])

    def test_scale_rows(self, rng):
        m = sprand(6, 6, 0.4, rng)
        f = rng.random(6)
        assert np.allclose(m.scale_rows(f).to_dense(), m.to_dense() * f[:, None])

    def test_prune_zeros(self):
        m = CSRMatrix.from_coo([0, 0, 1], [0, 1, 1], [0.0, 2.0, -0.0], (2, 2))
        pruned = m.prune_zeros()
        assert pruned.nnz == 1
        assert pruned.to_dense()[0, 1] == 2.0


class TestArithmetic:
    def test_add(self, rng):
        a = sprand(9, 9, 0.2, rng)
        b = sprand(9, 9, 0.2, rng)
        assert np.allclose(a.add(b).to_dense(), a.to_dense() + b.to_dense())

    def test_add_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            sprand(3, 3, 0.5, rng).add(sprand(4, 3, 0.5, rng))

    def test_matmul_operator_sparse_and_dense(self, rng):
        a = sprand(5, 6, 0.4, rng)
        b = sprand(6, 4, 0.4, rng)
        x = rng.random((6, 3))
        assert np.allclose((a @ b).to_dense(), a.to_dense() @ b.to_dense())
        assert np.allclose(a @ x, a.to_dense() @ x)

    def test_equal_ignores_explicit_zeros(self):
        a = CSRMatrix.from_coo([0], [0], [1.0], (2, 2))
        b = CSRMatrix.from_coo([0, 1], [0, 1], [1.0, 0.0], (2, 2))
        assert a.equal(b)

    def test_repr(self, rng):
        m = sprand(3, 4, 0.5, rng)
        assert "CSRMatrix" in repr(m) and "shape=(3, 4)" in repr(m)
