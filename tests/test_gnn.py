"""GNN substrate: numerical gradient checks, losses, optimizers, metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LayerSample, MinibatchSample, SageSampler
from repro.gnn import (
    Adam,
    Dropout,
    GCNConv,
    GNNModel,
    Linear,
    ReLU,
    SGD,
    accuracy,
    full_graph_sample,
    glorot,
    macro_f1,
    propagation_flops,
    softmax,
    softmax_cross_entropy,
)
from repro.sparse import CSRMatrix, sprand


def numeric_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at array x."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        hi = f()
        x[idx] = old - eps
        lo = f()
        x[idx] = old
        g[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return g


def make_layer(rng, n_dst=3, n_src=5, include_dst=True):
    """A small random bipartite LayerSample with dst ⊆ src when asked."""
    dst = np.array([2, 4, 6])[:n_dst]
    src = np.union1d(dst, np.array([1, 3, 9]))[:n_src] if include_dst else np.arange(
        10, 10 + n_src
    )
    dense = (rng.random((n_dst, len(src))) < 0.6).astype(float)
    dense[0, 0] = 1.0  # no empty first row
    return LayerSample(CSRMatrix.from_dense(dense), src, dst)


class TestLinear:
    def test_forward(self, rng):
        lin = Linear(4, 3, rng)
        x = rng.random((5, 4))
        out = lin.forward(x)
        assert np.allclose(out, x @ lin.params["W"] + lin.params["b"])

    def test_gradcheck(self, rng):
        lin = Linear(3, 2, rng)
        x = rng.random((4, 3))
        target = rng.random((4, 2))

        def loss():
            return 0.5 * np.sum((lin.forward(x) - target) ** 2)

        lin.zero_grad()
        dy = lin.forward(x) - target
        dx = lin.backward(dy)
        for name in ("W", "b"):
            num = numeric_grad(loss, lin.params[name])
            assert np.allclose(lin.grads[name], num, atol=1e-5), name
        num_dx = numeric_grad(loss, x)
        assert np.allclose(dx, num_dx, atol=1e-5)

    def test_backward_before_forward(self, rng):
        with pytest.raises(RuntimeError):
            Linear(2, 2, rng).backward(np.ones((1, 2)))

    def test_glorot_range(self, rng):
        w = glorot((100, 100), rng)
        limit = np.sqrt(6 / 200)
        assert np.all(np.abs(w) <= limit)


class TestActivations:
    def test_relu(self):
        r = ReLU()
        x = np.array([[-1.0, 2.0], [0.0, -3.0]])
        assert np.allclose(r.forward(x), [[0, 2], [0, 0]])
        assert np.allclose(r.backward(np.ones_like(x)), [[0, 1], [0, 0]])
        with pytest.raises(RuntimeError):
            ReLU().backward(x)

    def test_dropout_training_vs_eval(self, rng):
        d = Dropout(0.5, rng)
        x = np.ones((100, 10))
        out = d.forward(x, training=True)
        kept = out > 0
        assert 0.2 < kept.mean() < 0.8
        assert np.allclose(out[kept], 2.0)  # inverted scaling
        assert np.allclose(d.forward(x, training=False), x)

    def test_dropout_backward_uses_mask(self, rng):
        d = Dropout(0.3, rng)
        x = np.ones((50, 4))
        out = d.forward(x)
        back = d.backward(np.ones_like(x))
        assert np.allclose(back, out)

    def test_dropout_validation(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestConvGradients:
    @pytest.mark.parametrize("conv_cls", [GCNConv])
    def test_gcn_gradcheck(self, conv_cls, rng):
        layer = make_layer(rng, include_dst=False)
        conv = conv_cls(4, 3, rng)
        h = rng.random((layer.n_src, 4))
        target = rng.random((layer.n_dst, 3))

        def loss():
            return 0.5 * np.sum((conv.forward(layer, h) - target) ** 2)

        conv.zero_grad()
        dy = conv.forward(layer, h) - target
        dh = conv.backward(dy)
        for name in conv.params:
            num = numeric_grad(loss, conv.params[name])
            assert np.allclose(conv.grads[name], num, atol=1e-5), name
        assert np.allclose(dh, numeric_grad(loss, h), atol=1e-5)

    def test_sage_gradcheck_with_self_term(self, rng):
        from repro.gnn import SAGEConv

        layer = make_layer(rng, include_dst=True)
        conv = SAGEConv(4, 3, rng)
        h = rng.random((layer.n_src, 4))
        target = rng.random((layer.n_dst, 3))

        def loss():
            return 0.5 * np.sum((conv.forward(layer, h) - target) ** 2)

        conv.zero_grad()
        dy = conv.forward(layer, h) - target
        dh = conv.backward(dy)
        for name in conv.params:
            num = numeric_grad(loss, conv.params[name])
            assert np.allclose(conv.grads[name], num, atol=1e-5), name
        assert np.allclose(dh, numeric_grad(loss, h), atol=1e-5)

    def test_sage_without_dst_drops_self_term(self, rng):
        from repro.gnn import SAGEConv

        layer = make_layer(rng, include_dst=False)
        conv = SAGEConv(4, 3, rng)
        h = rng.random((layer.n_src, 4))
        out = conv.forward(layer, h)
        # Output independent of W_self when no self positions exist.
        conv.params["W_self"][...] = 99.0
        assert np.allclose(conv.forward(layer, h), out)

    def test_shape_validation(self, rng):
        from repro.gnn import SAGEConv

        layer = make_layer(rng)
        conv = SAGEConv(4, 3, rng)
        with pytest.raises(ValueError):
            conv.forward(layer, np.ones((layer.n_src + 1, 4)))


class TestLossAndMetrics:
    def test_softmax_rows_sum_to_one(self, rng):
        p = softmax(rng.random((6, 4)) * 10)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_cross_entropy_gradcheck(self, rng):
        logits = rng.random((5, 3))
        labels = np.array([0, 2, 1, 1, 0])

        def loss():
            return softmax_cross_entropy(logits, labels)[0]

        _, grad = softmax_cross_entropy(logits.copy(), labels)
        num = numeric_grad(loss, logits, eps=1e-6)
        assert np.allclose(grad, num, atol=1e-5)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_cross_entropy_validation(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.ones((2, 2)), np.array([0]))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.ones((1, 2)), np.array([5]))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.ones(3), np.array([0]))

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
        assert accuracy(np.empty((0, 2)), np.empty(0, dtype=int)) == 0.0

    def test_macro_f1_perfect(self):
        logits = np.eye(3)
        assert macro_f1(logits, np.arange(3)) == 1.0


class TestOptimizers:
    def test_sgd_plain_step(self):
        opt = SGD(lr=0.1)
        params = {"w": np.array([1.0, 2.0])}
        opt.step(params, {"w": np.array([1.0, 1.0])})
        assert np.allclose(params["w"], [0.9, 1.9])

    def test_sgd_momentum_accumulates(self):
        opt = SGD(lr=0.1, momentum=0.9)
        params = {"w": np.array([0.0])}
        g = {"w": np.array([1.0])}
        opt.step(params, g)
        first = params["w"].copy()
        opt.step(params, g)
        assert (first - params["w"]) > -first  # second step larger

    def test_sgd_validation(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)

    def test_adam_converges_on_quadratic(self):
        opt = Adam(lr=0.1)
        params = {"w": np.array([5.0])}
        for _ in range(200):
            opt.step(params, {"w": 2 * params["w"]})
        assert abs(params["w"][0]) < 1e-2

    def test_adam_weight_decay(self):
        opt = Adam(lr=0.01, weight_decay=0.1)
        params = {"w": np.array([1.0])}
        opt.step(params, {"w": np.array([0.0])})
        assert params["w"][0] < 1.0


class TestModel:
    def test_forward_shapes(self, small_adj, rng):
        sampler = SageSampler()
        batch = rng.choice(small_adj.shape[0], 16, replace=False)
        mb = sampler.sample_bulk(small_adj, [batch], (4, 3), rng)[0]
        model = GNNModel(8, 16, 5, 2, rng)
        x = rng.random((mb.input_frontier.size, 8))
        logits = model.forward(mb, x)
        assert logits.shape == (16, 5)

    def test_model_gradcheck(self, rng):
        layer0 = make_layer(rng, include_dst=True)
        # Chain a second layer whose sources are layer0's destinations.
        dense = (rng.random((2, layer0.n_dst)) < 0.7).astype(float)
        dense[0, 0] = 1.0
        layer1 = LayerSample(
            CSRMatrix.from_dense(dense), layer0.dst_ids, layer0.dst_ids[:2]
        )
        mb = MinibatchSample(layer0.dst_ids[:2], [layer0, layer1])
        model = GNNModel(3, 4, 2, 2, rng, conv="gcn")
        x = rng.random((layer0.n_src, 3))
        labels = np.array([0, 1])

        def loss():
            return softmax_cross_entropy(model.forward(mb, x), labels)[0]

        model.zero_grad()
        logits = model.forward(mb, x)
        _, dl = softmax_cross_entropy(logits, labels)
        model.backward(dl)
        grads = model.gradients()
        for name, p in model.parameters().items():
            num = numeric_grad(loss, p)
            assert np.allclose(grads[name], num, atol=1e-5), name

    def test_layer_count_validation(self, small_adj, rng):
        sampler = SageSampler()
        batch = rng.choice(small_adj.shape[0], 8, replace=False)
        mb = sampler.sample_bulk(small_adj, [batch], (4,), rng)[0]
        model = GNNModel(8, 16, 5, 2, rng)
        with pytest.raises(ValueError):
            model.forward(mb, rng.random((mb.input_frontier.size, 8)))

    def test_set_parameters_roundtrip(self, rng):
        m1 = GNNModel(4, 8, 3, 2, np.random.default_rng(0))
        m2 = GNNModel(4, 8, 3, 2, np.random.default_rng(1))
        m2.set_parameters(m1.parameters())
        for a, b in zip(m1.parameters().values(), m2.parameters().values()):
            assert np.allclose(a, b)

    def test_full_graph_sample(self, small_adj):
        mb = full_graph_sample(small_adj, 3)
        assert mb.num_layers == 3
        assert mb.layers[0].n_src == small_adj.shape[0]

    def test_propagation_flops_positive(self, small_adj, rng):
        batch = rng.choice(small_adj.shape[0], 8, replace=False)
        mb = SageSampler().sample_bulk(small_adj, [batch], (4, 2), rng)[0]
        f = propagation_flops(mb, [16, 8, 4])
        assert f > 0
        with pytest.raises(ValueError):
            propagation_flops(mb, [16, 8])

    def test_invalid_conv(self, rng):
        with pytest.raises(ValueError):
            GNNModel(4, 8, 3, 2, rng, conv="transformer")
        with pytest.raises(ValueError):
            GNNModel(4, 8, 3, 0, rng)
