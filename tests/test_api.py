"""The repro.api facade: registries, RunConfig, Engine, capability gating."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import (
    ALGORITHMS,
    DATASETS,
    SAMPLERS,
    CapabilityError,
    Engine,
    Registry,
    RegistryKeyError,
    RunConfig,
    make_sampler,
)
from repro.config import PERLMUTTER_LIKE
from repro.core import MatrixSampler, SageSampler
from repro.pipeline import PipelineConfig, TrainingPipeline


@pytest.fixture
def registry():
    return Registry("widget")


class TestRegistry:
    def test_register_and_get(self, registry):
        registry.register("a", int, color="red")
        assert registry.get("a") is int
        assert registry.spec("a").meta("color") == "red"
        assert "a" in registry and len(registry) == 1

    def test_decorator_form(self, registry):
        @registry.register("b", flavor="sweet")
        class Thing:
            pass

        assert registry.get("b") is Thing
        assert registry.spec("b").meta("flavor") == "sweet"

    def test_duplicate_rejected_unless_overwrite(self, registry):
        registry.register("a", int)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a", float)
        registry.register("a", float, overwrite=True)
        assert registry.get("a") is float

    def test_unknown_key_names_known_keys(self, registry):
        registry.register("alpha", 1)
        registry.register("beta", 2)
        with pytest.raises(RegistryKeyError) as exc:
            registry.get("gamma")
        assert "alpha" in str(exc.value) and "beta" in str(exc.value)
        assert "gamma" in str(exc.value)

    def test_unregister(self, registry):
        registry.register("a", 1)
        registry.unregister("a")
        assert "a" not in registry
        with pytest.raises(RegistryKeyError):
            registry.unregister("a")

    def test_names_sorted_and_iterable(self, registry):
        registry.register("zeta", 1)
        registry.register("alpha", 2)
        assert registry.names() == ["alpha", "zeta"]
        assert list(registry) == ["alpha", "zeta"]


class TestBuiltinRegistries:
    def test_builtin_samplers_present(self):
        assert {"sage", "ladies", "fastgcn", "saint"} <= set(SAMPLERS.names())

    def test_builtin_algorithms_present(self):
        assert {"single", "replicated", "partitioned"} <= set(ALGORITHMS.names())

    def test_builtin_datasets_present(self):
        assert {"products", "protein", "papers"} <= set(DATASETS.names())

    def test_make_sampler_training_kwargs(self):
        s = make_sampler("sage", for_training=True)
        assert isinstance(s, SageSampler) and s.include_dst

    def test_graph_aware_sampler_needs_graph(self, registry):
        SAMPLERS.register("needs-graph", lambda g: SageSampler(),
                          graph_aware=True)
        try:
            with pytest.raises(ValueError, match="graph"):
                make_sampler("needs-graph")
        finally:
            SAMPLERS.unregister("needs-graph")


class TestRunConfig:
    def test_defaults_valid(self):
        cfg = RunConfig()
        assert cfg.sampler == "sage" and cfg.machine == PERLMUTTER_LIKE

    def test_unknown_sampler_names_known_keys(self):
        with pytest.raises(ValueError) as exc:
            RunConfig(sampler="magic")
        msg = str(exc.value)
        assert "sage" in msg and "ladies" in msg

    def test_unknown_algorithm_names_known_keys(self):
        with pytest.raises(ValueError) as exc:
            RunConfig(algorithm="magic")
        assert "replicated" in str(exc.value)

    def test_unknown_dataset_names_known_keys(self):
        with pytest.raises(ValueError) as exc:
            RunConfig(dataset="citeseer")
        assert "products" in str(exc.value)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RunConfig(p=4, c=3)
        with pytest.raises(ValueError):
            RunConfig(k=0)
        with pytest.raises(ValueError):
            RunConfig(algorithm="single", p=4, c=1)
        with pytest.raises(ValueError):
            RunConfig(train_split=1.5)

    def test_fanout_list_coerced_to_tuple(self):
        assert RunConfig(fanout=[5, 3]).fanout == (5, 3)

    def test_dict_round_trip(self):
        cfg = RunConfig(
            dataset="products", scale=0.2, p=4, c=2, sampler="ladies",
            fanout=(64,), k=8, train_split=0.5,
            dataset_kwargs={"n_classes": 4},
        )
        data = cfg.to_dict()
        assert data["fanout"] == [64]
        assert isinstance(data["machine"], dict)
        assert RunConfig.from_dict(data) == cfg

    def test_json_round_trip(self, tmp_path):
        cfg = RunConfig(dataset="papers", sampler="fastgcn", fanout=(32,))
        path = tmp_path / "run.json"
        cfg.to_json(path)
        again = RunConfig.from_json(path)
        assert again == cfg
        # The written file is plain JSON.
        assert json.loads(path.read_text())["sampler"] == "fastgcn"

    def test_from_json_string(self):
        cfg = RunConfig.from_json('{"p": 2, "fanout": [4, 2]}')
        assert cfg.p == 2 and cfg.fanout == (4, 2)

    def test_from_dict_unknown_field_names_valid_fields(self):
        with pytest.raises(ValueError) as exc:
            RunConfig.from_dict({"fan_out": [5]})
        msg = str(exc.value)
        assert "fan_out" in msg and "fanout" in msg

    def test_replace_revalidates(self):
        cfg = RunConfig(p=4)
        with pytest.raises(ValueError):
            cfg.replace(sampler="magic")

    def test_resolved_conv_from_registry(self):
        assert RunConfig(sampler="sage").resolved_conv() == "sage"
        assert RunConfig(sampler="ladies", fanout=(8,)).resolved_conv() == "gcn"
        assert RunConfig(conv="gat", fanout=(4, 2)).resolved_conv() == "gat"


class TestPipelineConfigShim:
    def test_is_deprecated_runconfig(self):
        with pytest.warns(DeprecationWarning, match="RunConfig"):
            cfg = PipelineConfig(p=2, fanout=(5, 3))
        assert isinstance(cfg, RunConfig)
        assert cfg.p == 2 and cfg.fanout == (5, 3)

    def test_still_validates(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                PipelineConfig(p=4, sampler="magic")


class TestCapabilities:
    def test_saint_trains_under_replicated(self, labeled_graph):
        cfg = RunConfig(
            p=2, sampler="saint", fanout=(2, 2), batch_size=32, hidden=16,
        )
        stats = TrainingPipeline(labeled_graph, cfg).train_epoch()
        assert stats.loss is not None and np.isfinite(stats.loss)

    def test_saint_accepted_under_partitioned(self):
        """SAINT emits a sampling plan, so partitioned support is derived —
        the config layer must accept the combination."""
        cfg = RunConfig(p=4, c=2, sampler="saint", algorithm="partitioned",
                        fanout=(2, 2))
        assert cfg.algorithm == "partitioned"

    def test_registered_class_plugin_derives_partitioned(self, labeled_graph):
        """A plugin registered as a class with an inherited plan gets the
        partitioned algorithm for free — through capability gating AND an
        actual epoch of training."""
        from repro.api.registries import sampler_algorithms

        class PluginSage(SageSampler):
            name = "plugin-sage"

        SAMPLERS.register(
            "plugin-sage", PluginSage,
            pipeline_kwargs={"include_dst": True}, default_conv="sage",
        )
        try:
            assert "partitioned" in sampler_algorithms("plugin-sage")
            cfg = RunConfig(
                p=4, c=2, algorithm="partitioned", sampler="plugin-sage",
                fanout=(4, 2), batch_size=32, hidden=16,
            )
            stats = TrainingPipeline(labeled_graph, cfg).train_epoch()
            assert stats.loss is not None and np.isfinite(stats.loss)
        finally:
            SAMPLERS.unregister("plugin-sage")

    def test_planless_factory_rejected_under_partitioned(self):
        """A factory-registered sampler hides its product class, so without
        explicit ``algorithms`` metadata partitioned is ruled out."""
        SAMPLERS.register("opaque", lambda **kw: SageSampler(**kw))
        try:
            with pytest.raises(CapabilityError, match="partitioned"):
                RunConfig(p=4, c=2, sampler="opaque",
                          algorithm="partitioned", fanout=(3,))
        finally:
            SAMPLERS.unregister("opaque")

    def test_sampling_only_entry_rejected_by_pipeline(self, labeled_graph):
        SAMPLERS.register(
            "sample-only", SageSampler, capabilities=("sample",),
            algorithms=("single", "replicated"),
        )
        try:
            cfg = RunConfig(p=2, sampler="sample-only", fanout=(3,))
            with pytest.raises(CapabilityError, match="sampling-only"):
                TrainingPipeline(labeled_graph, cfg)
        finally:
            SAMPLERS.unregister("sample-only")


class TestEngine:
    def _cfg(self, **over):
        base = dict(
            dataset="products", scale=0.1, train_split=0.5, p=2, c=1,
            fanout=(5, 3), batch_size=16, hidden=16, lr=0.01, epochs=2,
            seed=0,
        )
        base.update(over)
        return RunConfig(**base)

    def test_needs_graph_or_dataset(self):
        with pytest.raises(ValueError, match="dataset"):
            Engine(RunConfig())

    def test_loads_dataset_and_applies_split(self):
        engine = Engine(self._cfg())
        expected = max(1, round(0.5 * engine.graph.n))
        assert engine.graph.train_idx.size == expected

    def test_train_split_keeps_splits_disjoint(self):
        """Regression: the redrawn training split must not overlap val or
        test, or evaluate() reports leaked accuracy."""
        g = Engine(self._cfg()).graph
        assert np.intersect1d(g.train_idx, g.test_idx).size == 0
        assert np.intersect1d(g.train_idx, g.val_idx).size == 0
        assert np.intersect1d(g.val_idx, g.test_idx).size == 0
        assert g.train_idx.size + g.val_idx.size + g.test_idx.size == g.n

    def test_sampling_only_sampler_can_sample_via_engine(self):
        """Regression: the pipeline is built lazily, so engine.sample()
        works for a sampling-only entry; training still raises."""
        SAMPLERS.register(
            "probe-only", SageSampler, capabilities=("sample",),
            algorithms=("single", "replicated"), default_conv="sage",
        )
        try:
            engine = Engine(self._cfg(sampler="probe-only"))
            samples = engine.sample()
            assert len(samples) > 0
            with pytest.raises(CapabilityError, match="sampling-only"):
                engine.train_epoch(0)
        finally:
            SAMPLERS.unregister("probe-only")

    def test_train_evaluate(self):
        engine = Engine(self._cfg(epochs=2))
        stats = engine.train()
        assert len(stats) == 2 and stats[0].loss is not None
        assert 0.0 <= engine.evaluate("test") <= 1.0

    def test_sample_uses_config(self):
        engine = Engine(self._cfg())
        samples = engine.sample()
        assert len(samples) == engine.graph.train_idx.size // 16
        assert samples[0].num_layers == 2

    def test_backend_resolved_from_registry(self):
        assert Engine(self._cfg()).backend.name == "replicated"
        single = self._cfg(algorithm="single", p=1)
        assert Engine(single).backend.name == "single"

    def test_stream_bulks_matches_train_epoch(self, labeled_graph):
        cfg = RunConfig(p=2, fanout=(5, 3), batch_size=32, hidden=16,
                        lr=0.01, k=2, seed=0)
        direct = TrainingPipeline(labeled_graph, cfg).train_epoch(0)
        engine = Engine(cfg, graph=labeled_graph)
        bulks = list(engine.stream_bulks(0))
        assert len(bulks) == int(np.ceil(direct.n_batches / 2))
        assert engine.epoch_stats == direct
        assert bulks[0].loss is not None

    def test_json_config_reproduces_direct_path(self, tmp_path):
        """Acceptance: a JSON config written by to_dict reproduces the
        same EpochStats through Engine as the direct constructor path."""
        cfg = self._cfg(epochs=1)
        path = tmp_path / "run.json"
        cfg.to_json(path)
        direct = Engine(cfg).train_epoch(0)
        via_json = Engine.from_json(path).train_epoch(0)
        assert via_json == direct

    def test_from_dict_config(self):
        engine = Engine({"dataset": "products", "scale": 0.1, "p": 2,
                         "fanout": [5, 3], "batch_size": 16, "hidden": 16})
        assert engine.config.fanout == (5, 3)


class TestCustomSamplerPluginThroughCLI:
    def test_registered_plugin_flows_through_cli(self, capsys):
        from repro.cli import build_parser, main

        @SAMPLERS.register(
            "half-uniform",
            default_conv="sage",
            pipeline_kwargs={"include_dst": True},
            algorithms=("single", "replicated"),
            default_fanout=(4, 2),
        )
        class HalfUniformSampler(SageSampler):
            name = "half-uniform"

        try:
            # The new name is a valid argparse choice...
            args = build_parser().parse_args(
                ["sample", "products", "--sampler", "half-uniform"]
            )
            assert args.sampler == "half-uniform"
            # ...and runs end-to-end through both CLI commands.
            assert main(
                ["sample", "products", "--sampler", "half-uniform",
                 "--scale", "0.1", "--batches", "2", "--batch-size", "8",
                 "--fanout", "3,2"]
            ) == 0
            assert "half-uniform" in capsys.readouterr().out
            assert main(
                ["train", "products", "--sampler", "half-uniform",
                 "--scale", "0.1", "--epochs", "1", "--p", "2",
                 "--batch-size", "16"]
            ) == 0
            assert "test accuracy" in capsys.readouterr().out
        finally:
            SAMPLERS.unregister("half-uniform")

    def test_unknown_sampler_rejected_by_cli(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sample", "products", "--sampler", "half-uniform"]
            )
