"""GAT attention layer: gradcheck, attention semantics, pipeline use."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SageSampler
from repro.core.frontier import LayerSample
from repro.gnn import GATConv, GNNModel, load_model_into, save_model
from repro.sparse import CSRMatrix

from tests.test_gnn import make_layer, numeric_grad


class TestGATGradients:
    def test_gradcheck_all_parameters(self, rng):
        layer = make_layer(rng, include_dst=True)
        conv = GATConv(4, 3, rng)
        h = rng.random((layer.n_src, 4))
        target = rng.random((layer.n_dst, 3))

        def loss():
            return 0.5 * np.sum((conv.forward(layer, h) - target) ** 2)

        conv.zero_grad()
        dy = conv.forward(layer, h) - target
        dh = conv.backward(dy)
        for name in conv.params:
            num = numeric_grad(loss, conv.params[name])
            assert np.allclose(conv.grads[name], num, atol=1e-5), name
        assert np.allclose(dh, numeric_grad(loss, h), atol=1e-5)

    def test_backward_before_forward(self, rng):
        with pytest.raises(RuntimeError):
            GATConv(2, 2, rng).backward(np.ones((1, 2)))


class TestGATSemantics:
    def test_attention_weights_sum_to_one(self, rng):
        """Output of a row equals a convex combination of transformed srcs."""
        layer = make_layer(rng, include_dst=True)
        conv = GATConv(4, 3, rng)
        conv.params["b"][...] = 0.0
        h = rng.random((layer.n_src, 4))
        out = conv.forward(layer, h)
        z = h @ conv.params["W"]
        # Each output row must lie in the convex hull of its neighbors' z:
        # check the constant-feature case exactly.
        h1 = np.ones((layer.n_src, 4))
        out1 = conv.forward(layer, h1)
        z1 = h1 @ conv.params["W"]
        assert np.allclose(out1, z1[: layer.n_dst] * 0 + z1[0])

    def test_requires_dst_in_frontier(self, rng):
        layer = make_layer(rng, include_dst=False)
        conv = GATConv(4, 3, rng)
        with pytest.raises(ValueError):
            conv.forward(layer, rng.random((layer.n_src, 4)))

    def test_shape_validation(self, rng):
        layer = make_layer(rng, include_dst=True)
        conv = GATConv(4, 3, rng)
        with pytest.raises(ValueError):
            conv.forward(layer, rng.random((layer.n_src + 2, 4)))

    def test_in_model_on_sampled_batches(self, small_adj, rng):
        batch = rng.choice(small_adj.shape[0], 16, replace=False)
        mb = SageSampler().sample_bulk(small_adj, [batch], (4, 3), rng)[0]
        model = GNNModel(8, 16, 5, 2, rng, conv="gat")
        logits = model.forward(mb, rng.random((mb.input_frontier.size, 8)))
        assert logits.shape == (16, 5)
        # Gradients flow.
        model.zero_grad()
        model.backward(np.ones_like(logits))
        assert any(np.abs(g).sum() > 0 for g in model.gradients().values())


class TestCheckpoint:
    def test_roundtrip(self, tmp_path, rng):
        m1 = GNNModel(6, 8, 3, 2, np.random.default_rng(0), conv="gat")
        path = tmp_path / "model.npz"
        save_model(m1, path)
        m2 = GNNModel(6, 8, 3, 2, np.random.default_rng(1), conv="gat")
        load_model_into(m2, path)
        for a, b in zip(m1.parameters().values(), m2.parameters().values()):
            assert np.allclose(a, b)

    def test_architecture_mismatch_rejected(self, tmp_path, rng):
        m1 = GNNModel(6, 8, 3, 2, rng)
        path = tmp_path / "model.npz"
        save_model(m1, path)
        wrong_depth = GNNModel(6, 8, 3, 3, rng)
        with pytest.raises(ValueError):
            load_model_into(wrong_depth, path)
        wrong_width = GNNModel(6, 16, 3, 2, rng)
        with pytest.raises(ValueError):
            load_model_into(wrong_width, path)
