"""Inverse transform sampling: correctness, statistics, edge cases."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import gumbel_topk_rows, its_flops, its_sample_rows
from repro.sparse import CSRMatrix, row_normalize, sprand


class TestBasics:
    def test_exact_counts_without_replacement(self, rng):
        p = row_normalize(sprand(50, 40, 0.3, rng))
        q = its_sample_rows(p, 5, rng)
        counts = q.nnz_per_row()
        avail = np.minimum(5, p.nnz_per_row())
        assert np.array_equal(counts, avail)
        q.check()

    def test_samples_are_support_subset(self, rng):
        p = row_normalize(sprand(30, 30, 0.2, rng))
        q = its_sample_rows(p, 4, rng)
        dense_p = p.to_dense()
        rows, cols, _ = q.to_coo()
        assert np.all(dense_p[rows, cols] > 0)

    def test_binary_values(self, rng):
        p = row_normalize(sprand(10, 10, 0.5, rng))
        q = its_sample_rows(p, 3, rng)
        assert np.all(q.data == 1.0)

    def test_row_short_of_s_takes_all(self, rng):
        p = CSRMatrix.from_dense([[0.2, 0.8, 0.0], [0.0, 0.0, 0.0]])
        q = its_sample_rows(p, 5, rng)
        assert q.nnz_per_row()[0] == 2
        assert q.nnz_per_row()[1] == 0

    def test_empty_matrix(self, rng):
        q = its_sample_rows(CSRMatrix.zeros((3, 4)), 2, rng)
        assert q.nnz == 0 and q.shape == (3, 4)

    def test_zero_weight_entries_never_selected(self, rng):
        p = CSRMatrix.from_coo([0, 0, 0], [0, 1, 2], [0.0, 1.0, 0.0], (1, 3))
        for _ in range(20):
            q = its_sample_rows(p, 1, rng)
            assert np.array_equal(q.row(0)[0], [1])

    def test_validation(self, rng):
        p = sprand(3, 3, 0.5, rng)
        with pytest.raises(ValueError):
            its_sample_rows(p, 0, rng)
        neg = CSRMatrix.from_dense([[-1.0]])
        with pytest.raises(ValueError):
            its_sample_rows(neg, 1, rng)

    def test_with_replacement_single_round(self, rng):
        p = row_normalize(sprand(20, 20, 0.4, rng))
        q = its_sample_rows(p, 3, rng, replace=True)
        # With replacement duplicates collapse: counts are at most s.
        assert np.all(q.nnz_per_row() <= 3)

    def test_flops_positive_and_monotone(self, rng):
        p = sprand(10, 10, 0.3, rng)
        assert its_flops(p, 2) > 0
        assert its_flops(p, 8) > its_flops(p, 2)


class TestStatistics:
    def test_uniform_row_frequencies(self):
        """Sampling 1 of n uniform entries must be ~uniform over trials."""
        rng = np.random.default_rng(0)
        n = 8
        p = CSRMatrix.from_dense(np.full((1, n), 1.0 / n))
        counts = np.zeros(n)
        trials = 4000
        for _ in range(trials):
            q = its_sample_rows(p, 1, rng)
            counts[q.row(0)[0][0]] += 1
        expected = trials / n
        # Chi-square-ish sanity: within 5 sigma of the binomial std.
        sigma = np.sqrt(trials * (1 / n) * (1 - 1 / n))
        assert np.all(np.abs(counts - expected) < 5 * sigma)

    def test_weighted_frequencies(self):
        """Draw frequencies must track the weights."""
        rng = np.random.default_rng(1)
        weights = np.array([[0.1, 0.2, 0.3, 0.4]])
        p = CSRMatrix.from_dense(weights)
        counts = np.zeros(4)
        trials = 6000
        for _ in range(trials):
            q = its_sample_rows(p, 1, rng)
            counts[q.row(0)[0][0]] += 1
        freq = counts / trials
        assert np.all(np.abs(freq - weights[0]) < 0.03)

    def test_many_rows_single_pass_matches_marginals(self):
        """The vectorized multi-row path draws the same marginals."""
        rng = np.random.default_rng(2)
        trials = 3000
        w = np.array([0.5, 0.25, 0.25])
        p = CSRMatrix.from_dense(np.tile(w, (trials, 1)))
        q = its_sample_rows(p, 1, rng)
        freq = np.bincount(q.indices, minlength=3) / trials
        assert np.all(np.abs(freq - w) < 0.04)

    def test_gumbel_matches_its_marginals(self):
        """Gumbel top-k and ITS draw indistinguishable 1-of-n marginals."""
        rng1, rng2 = np.random.default_rng(3), np.random.default_rng(4)
        trials = 4000
        w = np.array([0.6, 0.3, 0.1])
        p = CSRMatrix.from_dense(np.tile(w, (trials, 1)))
        f_its = np.bincount(
            its_sample_rows(p, 1, rng1).indices, minlength=3
        ) / trials
        f_gum = np.bincount(
            gumbel_topk_rows(p, 1, rng2).indices, minlength=3
        ) / trials
        assert np.all(np.abs(f_its - f_gum) < 0.05)

    def test_without_replacement_distinctness(self, rng):
        p = row_normalize(sprand(100, 50, 0.4, rng))
        q = its_sample_rows(p, 10, rng)
        for i in range(100):
            cols, _ = q.row(i)
            assert len(np.unique(cols)) == len(cols)


class TestGumbel:
    def test_exact_counts(self, rng):
        p = row_normalize(sprand(40, 30, 0.3, rng))
        q = gumbel_topk_rows(p, 5, rng)
        assert np.array_equal(q.nnz_per_row(), np.minimum(5, p.nnz_per_row()))
        q.check()

    def test_zero_weights_excluded(self, rng):
        p = CSRMatrix.from_coo([0, 0], [0, 1], [0.0, 1.0], (1, 2))
        q = gumbel_topk_rows(p, 2, rng)
        assert np.array_equal(q.row(0)[0], [1])

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            gumbel_topk_rows(sprand(2, 2, 0.5, rng), 0, rng)

    def test_empty(self, rng):
        q = gumbel_topk_rows(CSRMatrix.zeros((2, 2)), 1, rng)
        assert q.nnz == 0


@given(st.integers(1, 20), st.integers(1, 8), st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_property_counts_and_support(n_rows, s, seed):
    """For any random P, ITS returns min(s, support) distinct in-support picks."""
    rng = np.random.default_rng(seed)
    p = sprand(n_rows, 16, 0.3, rng)
    q = its_sample_rows(p, s, rng)
    q.check()
    support = p.to_dense() > 0
    rows, cols, _ = q.to_coo()
    assert np.all(support[rows, cols])
    per_row_support = support.sum(axis=1)
    assert np.array_equal(q.nnz_per_row(), np.minimum(s, per_row_support))
