"""Structural sparse operations: stacking, block-diagonal, selectors, NORM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    block_diag,
    col_selector,
    compact_columns,
    hstack,
    indicator_rows,
    row_normalize,
    row_selector,
    spgemm,
    sprand,
    vstack,
)


class TestStacking:
    def test_vstack_matches_dense(self, rng):
        mats = [sprand(i + 2, 7, 0.3, rng) for i in range(3)]
        stacked = vstack(mats)
        ref = np.vstack([m.to_dense() for m in mats])
        assert np.allclose(stacked.to_dense(), ref)
        stacked.check()

    def test_vstack_requires_common_columns(self, rng):
        with pytest.raises(ValueError):
            vstack([sprand(2, 3, 0.5, rng), sprand(2, 4, 0.5, rng)])

    def test_vstack_empty_list(self):
        with pytest.raises(ValueError):
            vstack([])

    def test_vstack_with_empty_blocks(self, rng):
        mats = [CSRMatrix.zeros((0, 5)), sprand(3, 5, 0.4, rng), CSRMatrix.zeros((2, 5))]
        stacked = vstack(mats)
        assert stacked.shape == (5, 5)
        stacked.check()

    def test_hstack_matches_dense(self, rng):
        mats = [sprand(4, i + 2, 0.4, rng) for i in range(3)]
        stacked = hstack(mats)
        ref = np.hstack([m.to_dense() for m in mats])
        assert np.allclose(stacked.to_dense(), ref)
        stacked.check()

    def test_hstack_requires_common_rows(self, rng):
        with pytest.raises(ValueError):
            hstack([sprand(2, 3, 0.5, rng), sprand(3, 3, 0.5, rng)])

    def test_block_diag_matches_scipy(self, rng):
        import scipy.sparse as sp

        mats = [sprand(3, 4, 0.4, rng), sprand(2, 2, 0.6, rng), sprand(4, 1, 0.5, rng)]
        ours = block_diag(mats)
        ref = sp.block_diag([m.to_scipy() for m in mats]).toarray()
        assert np.allclose(ours.to_dense(), ref)
        ours.check()

    def test_vstack_then_slice_roundtrip(self, rng):
        mats = [sprand(3, 6, 0.4, rng) for _ in range(4)]
        stacked = vstack(mats)
        for i, m in enumerate(mats):
            assert stacked.row_block(3 * i, 3 * (i + 1)).equal(m)


class TestSelectors:
    def test_row_selector_gathers_rows(self, rng):
        a = sprand(10, 10, 0.4, rng)
        verts = np.array([4, 1, 4, 9])
        q = row_selector(verts, 10)
        assert np.allclose(spgemm(q, a).to_dense(), a.to_dense()[verts])

    def test_row_selector_bounds(self):
        with pytest.raises(ValueError):
            row_selector(np.array([5]), 5)
        with pytest.raises(ValueError):
            row_selector(np.array([[1, 2]]), 5)

    def test_col_selector_gathers_columns(self, rng):
        a = sprand(8, 12, 0.4, rng)
        verts = np.array([0, 11, 3])
        qc = col_selector(verts, 12)
        assert np.allclose(spgemm(a, qc).to_dense(), a.to_dense()[:, verts])

    def test_indicator_rows(self):
        q = indicator_rows([np.array([1, 5]), np.array([0, 2, 3])], 6)
        dense = q.to_dense()
        assert np.array_equal(dense[0], [0, 1, 0, 0, 0, 1])
        assert np.array_equal(dense[1], [1, 0, 1, 1, 0, 0])

    def test_indicator_rows_empty(self):
        with pytest.raises(ValueError):
            indicator_rows([], 6)


class TestNormalizeAndCompact:
    def test_row_normalize_rows_sum_to_one(self, rng):
        m = sprand(10, 10, 0.4, rng)
        normed = row_normalize(m)
        sums = normed.row_sums()
        nonzero = m.nnz_per_row() > 0
        assert np.allclose(sums[nonzero], 1.0)
        assert np.allclose(sums[~nonzero], 0.0)

    def test_row_normalize_preserves_ratios(self):
        m = CSRMatrix.from_dense([[1.0, 3.0]])
        normed = row_normalize(m).to_dense()
        assert np.allclose(normed, [[0.25, 0.75]])

    def test_compact_columns(self):
        m = CSRMatrix.from_coo([0, 1], [3, 7], [1.0, 2.0], (2, 10))
        compacted, kept = compact_columns(m)
        assert np.array_equal(kept, [3, 7])
        assert compacted.shape == (2, 2)
        assert np.allclose(compacted.to_dense(), [[1, 0], [0, 2]])

    def test_compact_columns_all_empty(self):
        m = CSRMatrix.zeros((3, 5))
        compacted, kept = compact_columns(m)
        assert compacted.shape == (3, 0) and kept.size == 0


class TestRandomGenerators:
    def test_sprand_density(self, rng):
        m = sprand(50, 50, 0.1, rng)
        assert m.nnz == 250
        m.check()

    def test_sprand_bounds(self, rng):
        with pytest.raises(ValueError):
            sprand(5, 5, 1.5, rng)
        with pytest.raises(ValueError):
            sprand(5, 5, 0.5, rng, values="bogus")

    def test_sprand_ones(self, rng):
        m = sprand(10, 10, 0.2, rng, values="ones")
        assert np.all(m.data == 1.0)

    def test_sprand_per_row(self, rng):
        from repro.sparse import sprand_per_row

        m = sprand_per_row(12, 20, 5, rng)
        assert np.all(m.nnz_per_row() == 5)
        m.check()
        with pytest.raises(ValueError):
            sprand_per_row(3, 4, 5, rng)
