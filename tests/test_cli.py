"""Command-line interface tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sample", "citeseer"])

    def test_defaults(self):
        args = build_parser().parse_args(["train", "products"])
        assert args.p == 4 and args.algorithm == "replicated"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "perlmutter-like" in out
        assert "TF/s" in out

    def test_generate_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "g.npz"
        code = main(
            ["generate", "products", "--scale", "0.1", "--out", str(out_path)]
        )
        assert code == 0
        from repro.graphs import load_graph

        g = load_graph(out_path)
        assert g.n > 0 and g.n_features == 100
        assert "vertices" in capsys.readouterr().out

    @pytest.mark.parametrize("sampler", ["sage", "ladies", "fastgcn", "saint"])
    def test_sample_all_samplers(self, sampler, capsys):
        code = main(
            [
                "sample", "products", "--sampler", sampler,
                "--scale", "0.1", "--batches", "2", "--batch-size", "8",
                "--fanout", "3,2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sampled 2 minibatches" in out

    def test_train(self, capsys):
        code = main(
            [
                "train", "products", "--scale", "0.1", "--epochs", "2",
                "--p", "2", "--batch-size", "16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "test accuracy" in out
        assert out.count("epoch") == 2

    def test_train_partitioned(self, capsys):
        code = main(
            [
                "train", "products", "--scale", "0.1", "--epochs", "1",
                "--p", "4", "--c", "2", "--algorithm", "partitioned",
                "--batch-size", "16",
            ]
        )
        assert code == 0
        assert "sim-time" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main(["sweep", "products", "--gpus", "4,8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep" in out and "total_s" in out
