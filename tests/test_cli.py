"""Command-line interface tests."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import _resolve_train_config, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sample", "citeseer"])

    def test_rejects_unknown_sampler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "products", "--sampler", "magic"]
            )

    def test_registry_drives_choices(self):
        # saint is registered trainable, so the train command accepts it.
        args = build_parser().parse_args(
            ["train", "products", "--sampler", "saint"]
        )
        assert args.sampler == "saint"

    def test_train_defaults_resolve(self):
        args = build_parser().parse_args(["train", "products"])
        cfg = _resolve_train_config(args)
        assert cfg.p == 4 and cfg.algorithm == "replicated"
        assert cfg.dataset == "products"
        assert cfg.fanout == (5, 3)  # sage's registry default_fanout
        assert cfg.train_split == 0.5

    def test_train_fanout_and_split_flags(self):
        args = build_parser().parse_args(
            ["train", "products", "--fanout", "7,4,2",
             "--train-split", "0.25"]
        )
        cfg = _resolve_train_config(args)
        assert cfg.fanout == (7, 4, 2)
        assert cfg.train_split == 0.25

    def test_train_default_fanout_follows_sampler(self):
        args = build_parser().parse_args(
            ["train", "products", "--sampler", "ladies"]
        )
        assert _resolve_train_config(args).fanout == (64,)

    def test_cache_and_overlap_flags(self):
        args = build_parser().parse_args(
            ["train", "products", "--cache-budget", "65536",
             "--cache-policy", "lfu", "--overlap"]
        )
        cfg = _resolve_train_config(args)
        assert cfg.cache_budget == 65536.0
        assert cfg.cache_policy == "lfu"
        assert cfg.overlap is True

    def test_cache_flags_default_off(self):
        cfg = _resolve_train_config(
            build_parser().parse_args(["train", "products"])
        )
        assert cfg.cache_budget == 0.0
        assert cfg.overlap is False

    def test_no_overlap_flag_overrides_config(self, tmp_path):
        from repro.api import RunConfig

        path = tmp_path / "run.json"
        RunConfig(dataset="products", overlap=True).to_json(path)
        args = build_parser().parse_args(
            ["train", "--config", str(path), "--no-overlap"]
        )
        assert _resolve_train_config(args).overlap is False

    def test_rejects_unknown_cache_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "products", "--cache-policy", "magic"]
            )

    def test_config_file_with_flag_overrides(self, tmp_path):
        from repro.api import RunConfig

        path = tmp_path / "run.json"
        RunConfig(dataset="products", scale=0.1, p=2, fanout=(5, 3),
                  batch_size=16, epochs=5).to_json(path)
        args = build_parser().parse_args(
            ["train", "--config", str(path), "--epochs", "1", "--p", "4"]
        )
        cfg = _resolve_train_config(args)
        assert cfg.dataset == "products" and cfg.batch_size == 16
        assert cfg.epochs == 1 and cfg.p == 4  # flags beat the file


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "perlmutter-like" in out
        assert "TF/s" in out
        assert "samplers:" in out and "saint" in out

    def test_generate_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "g.npz"
        code = main(
            ["generate", "products", "--scale", "0.1", "--out", str(out_path)]
        )
        assert code == 0
        from repro.graphs import load_graph

        g = load_graph(out_path)
        assert g.n > 0 and g.n_features == 100
        assert "vertices" in capsys.readouterr().out

    @pytest.mark.parametrize("sampler", ["sage", "ladies", "fastgcn", "saint"])
    def test_sample_all_samplers(self, sampler, capsys):
        code = main(
            [
                "sample", "products", "--sampler", sampler,
                "--scale", "0.1", "--batches", "2", "--batch-size", "8",
                "--fanout", "3,2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sampled 2 minibatches" in out

    def test_train(self, capsys):
        code = main(
            [
                "train", "products", "--scale", "0.1", "--epochs", "2",
                "--p", "2", "--batch-size", "16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "test accuracy" in out
        assert out.count("epoch") == 2

    def test_train_partitioned(self, capsys):
        code = main(
            [
                "train", "products", "--scale", "0.1", "--epochs", "1",
                "--p", "4", "--c", "2", "--algorithm", "partitioned",
                "--batch-size", "16",
            ]
        )
        assert code == 0
        assert "sim-time" in capsys.readouterr().out

    def test_train_with_cache_and_overlap(self, capsys):
        code = main(
            [
                "train", "products", "--scale", "0.1", "--epochs", "1",
                "--p", "4", "--c", "2", "--algorithm", "partitioned",
                "--batch-size", "16", "--k", "2",
                "--cache-budget", "65536", "--overlap",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cache hit-rate" in out
        assert "overlap saved" in out

    def test_train_saint_first_class(self, capsys):
        code = main(
            [
                "train", "products", "--sampler", "saint", "--scale", "0.1",
                "--epochs", "1", "--p", "2", "--batch-size", "16",
                "--fanout", "2,2",
            ]
        )
        assert code == 0
        assert "test accuracy" in capsys.readouterr().out

    def test_train_respects_fanout_flag(self, capsys):
        code = main(
            [
                "train", "products", "--scale", "0.1", "--epochs", "1",
                "--p", "2", "--batch-size", "16", "--fanout", "3,2,2",
            ]
        )
        assert code == 0
        assert "test accuracy" in capsys.readouterr().out

    def test_train_without_dataset_uses_default(self, capsys):
        assert main(["train", "--epochs", "1", "--scale", "0.1",
                     "--batch-size", "16", "--hidden", "16"]) == 0
        assert "dataset products" in capsys.readouterr().out

    def test_train_config_without_dataset_errors(self, capsys, tmp_path):
        from repro.api import RunConfig

        path = tmp_path / "run.json"
        RunConfig(p=2, fanout=(5, 3)).to_json(path)
        assert main(["train", "--config", str(path)]) == 2
        assert "no dataset" in capsys.readouterr().err

    def test_train_from_config_file(self, capsys, tmp_path):
        from repro.api import RunConfig

        path = tmp_path / "run.json"
        RunConfig(dataset="products", scale=0.1, train_split=0.5, p=2,
                  fanout=(5, 3), batch_size=16, hidden=16,
                  epochs=1).to_json(path)
        assert main(["train", "--config", str(path)]) == 0
        out = capsys.readouterr().out
        assert "epoch 0" in out and "test accuracy" in out

    def test_train_perf_only_prints_loss_na(self, capsys, tmp_path):
        """Regression: train_model=False stats have loss=None; printing
        must not crash on the float format."""
        from repro.api import RunConfig

        path = tmp_path / "perf.json"
        RunConfig(dataset="products", scale=0.1, train_split=0.5, p=2,
                  fanout=(5, 3), batch_size=16, epochs=1,
                  train_model=False).to_json(path)
        assert main(["train", "--config", str(path)]) == 0
        assert "loss n/a" in capsys.readouterr().out

    def test_plugin_flag_registers_sampler(self, capsys):
        """A plugin module loaded via --plugin is usable end-to-end."""
        code = main(
            [
                "--plugin", "examples.custom_sampler",
                "sample", "products", "--sampler", "degree-biased",
                "--scale", "0.1", "--batches", "2", "--batch-size", "8",
                "--fanout", "3,2",
            ]
        )
        assert code == 0
        assert "degree-biased" in capsys.readouterr().out

    def test_plugin_flag_works_after_subcommand(self, capsys):
        """--plugin is position-independent (stripped before argparse)."""
        code = main(
            [
                "sample", "products", "--sampler", "degree-biased",
                "--plugin", "examples.custom_sampler",
                "--scale", "0.1", "--batches", "2", "--batch-size", "8",
                "--fanout", "3,2",
            ]
        )
        assert code == 0
        assert "degree-biased" in capsys.readouterr().out

    def test_unknown_plugin_is_clean_error(self, capsys):
        assert main(["--plugin", "no.such.module", "info"]) == 2
        assert "could not import plugin" in capsys.readouterr().err

    def test_garbage_fanout_is_clean_error(self, capsys):
        code = main(
            ["train", "products", "--scale", "0.1", "--fanout", "5,x"]
        )
        assert code == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_sweep(self, capsys):
        code = main(["sweep", "products", "--gpus", "4,8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep" in out and "total_s" in out
