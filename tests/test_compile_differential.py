"""Differential plan-fuzzing: compiled execution == interpretation, always.

Hypothesis generates random *valid* sampling plans — stage-structured
mixes of node-wise, layer-wise, global and random-walk stages with dead
steps injected, fusion-blocking double extractions, debiasing, destination
unioning, both NORM styles and both sample backends — and executes each
one on a random graph through every kernel backend.  The compiled path
(optimizer passes + fused row-wise kernels + the plain interpreter for
whatever stays unfused) must produce **byte-identical** samples to the
plain interpreters, for the local executor and for the 1.5D partitioned
executor.

The plans are run by a :class:`FuzzSampler` assembled from the real
samplers' own primitives (GraphSAGE compaction, LADIES row/column
extraction and debiasing, FastGCN's importance row, SAINT's subgraph
induction), so every generated plan exercises production extraction code
— the fuzz surface is the *plan space*, not toy kernels.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.comm import Communicator, ProcessGrid
from repro.core import (
    FastGCNSampler,
    GraphSaintRWSampler,
    LadiesSampler,
    SageSampler,
    batch_rng,
)
from repro.core.plan import (
    ExtractStep,
    NormStep,
    ProbStep,
    SampleStep,
    SamplingPlan,
)
from repro.core.sampler_base import MatrixSampler
from repro.distributed.partitioned import partitioned_bulk_sampling
from repro.graphs import rmat
from repro.partition import BlockRows
from repro.sparse import (
    CSRMatrix,
    indicator_rows,
    row_normalize,
    row_normalize_inplace,
    row_selector,
)

# Kernel names under differential test: esc and hash are independent
# interpreted SpGEMM implementations, compiled is hash's SpGEMM plus the
# plan optimizer and fused executors.
KERNELS_UNDER_TEST = ("esc", "hash", "compiled")

GRAPHS = [
    rmat(7, 6, np.random.default_rng(101)),
    rmat(8, 4, np.random.default_rng(202)),
    rmat(6, 10, np.random.default_rng(303)),
]


class FuzzSampler(MatrixSampler):
    """Executes an arbitrary stored plan with the real samplers' pieces.

    ``make_q`` is polymorphic over the executor's PROB sources: a frontier
    array gets GraphSAGE's row selector, per-batch destination lists get
    LADIES' indicator rows.  Extraction primitives are the production
    implementations, referenced (not reimplemented) so the fuzz runs the
    same code paths the golden suites pin.
    """

    name = "fuzz"

    def __init__(
        self,
        steps,
        *,
        norm_mode="sage",
        include_dst=False,
        sample_backend="its",
        kernel=None,
    ):
        super().__init__(sample_backend, kernel)
        self._steps = tuple(steps)
        self.norm_mode = norm_mode
        self.include_dst = include_dst
        self.split_col_extract = True

    @staticmethod
    def make_q(arg, n):
        if isinstance(arg, np.ndarray):
            return row_selector(arg, n)
        return indicator_rows(arg, n)

    def norm(self, p):
        if self.norm_mode == "ladies":
            squared = CSRMatrix(
                p.indptr.copy(), p.indices.copy(), p.data**2, p.shape
            )
            return row_normalize(squared)
        return row_normalize(p)

    def norm_inplace(self, p):
        if self.norm_mode == "ladies":
            np.power(p.data, 2, out=p.data)
        return row_normalize_inplace(p)

    # Production primitives, by reference.
    extract_batch_layer = SageSampler.extract_batch_layer
    row_extract = staticmethod(LadiesSampler.row_extract)
    col_extract = LadiesSampler.col_extract
    debias_layer = staticmethod(LadiesSampler.debias_layer)
    importance_row = staticmethod(FastGCNSampler.importance_row)
    induced_subgraph = GraphSaintRWSampler.induced_subgraph

    def plan(self, fanout):
        return SamplingPlan(self._steps)


class FuzzSamplerCustomExtract(FuzzSampler):
    """Overrides ``extract_batch_layer``: the compiled executor must take
    the mask-materialization fallback instead of the fully lowered compact
    kernel, and still match bit for bit."""

    def extract_batch_layer(self, q_next_rows, dst_ids):
        return SageSampler.extract_batch_layer(self, q_next_rows, dst_ids)


# --------------------------------------------------------------------- #
# Plan generation
# --------------------------------------------------------------------- #
def _stage_steps(stage, draw_dead):
    """One plan stage: PROB [+NORM] + SAMPLE + EXTRACT, with optional dead
    PROB/NORM prefixes (overwritten before any read — DSE fodder that the
    interpreter must execute neutrally)."""
    kind = stage["kind"]
    steps = []
    if draw_dead:
        steps += [ProbStep(stage["dead_source"]), NormStep()]
    if kind == "node":
        steps.append(ProbStep("frontier"))
        if stage["norm"]:
            steps.append(NormStep())
        steps += [SampleStep(stage["count"]), ExtractStep("compact")]
    elif kind == "walk":
        steps.append(ProbStep("frontier"))
        if stage["norm"]:
            steps.append(NormStep())
        steps += [SampleStep(1), ExtractStep("walk")]
        if stage["double_extract"]:
            # A second walk advance off the same sampled Q: blocks
            # SAMPLE+EXTRACT fusion, both executors replay it identically.
            steps.append(ExtractStep("walk"))
    else:  # "layer" (indicator source) or "global"
        source = "indicator" if kind == "layer" else "global"
        steps.append(ProbStep(source))
        if stage["norm"]:
            steps.append(NormStep())
        steps.append(SampleStep(stage["count"]))
        steps.append(
            ExtractStep(
                "bipartite",
                union_dst=stage["union_dst"],
                debias=stage["debias"],
            )
        )
    return steps


@st.composite
def fuzz_cases(draw):
    graph_idx = draw(st.integers(0, len(GRAPHS) - 1))
    n = GRAPHS[graph_idx].shape[0]
    k = draw(st.integers(1, 3))
    batch_size = draw(st.integers(2, 6))
    seed = draw(st.integers(0, 2**16))
    family = draw(st.sampled_from(["layered", "walk"]))
    n_stages = draw(st.integers(1, 3))
    stages = []
    for _ in range(n_stages):
        if family == "walk":
            kind = "walk"
        else:
            kind = draw(st.sampled_from(["node", "layer", "global"]))
        norm = draw(st.booleans())
        union_dst = debias = double = False
        if kind in ("layer", "global"):
            union_dst = draw(st.booleans())
            if norm and not union_dst:
                debias = draw(st.booleans())
        if kind == "walk":
            double = draw(st.booleans())
        stages.append(
            {
                "kind": kind,
                "norm": norm,
                "count": draw(st.integers(1, 4)),
                "union_dst": union_dst,
                "debias": debias,
                "double_extract": double,
                "dead": draw(st.booleans()),
                "dead_source": draw(
                    st.sampled_from(["frontier", "indicator", "global"])
                ),
            }
        )
    steps = []
    for stage in stages:
        steps += _stage_steps(stage, stage["dead"])
    if family == "walk":
        steps.append(
            ExtractStep("subgraph", n_layers=draw(st.integers(1, 2)))
        )
    return {
        "graph_idx": graph_idx,
        "steps": steps,
        "k": k,
        "batch_size": batch_size,
        "seed": seed,
        "norm_mode": draw(st.sampled_from(["sage", "ladies"])),
        "include_dst": draw(st.booleans()),
        "sample_backend": draw(st.sampled_from(["its", "gumbel"])),
        "custom_extract": draw(st.booleans()),
        "per_batch_rng": draw(st.booleans()),
        "n": n,
    }


def _make_batches(case):
    rng = np.random.default_rng(case["seed"] + 7)
    return [
        np.sort(
            rng.choice(case["n"], case["batch_size"], replace=False)
        ).astype(np.int64)
        for _ in range(case["k"])
    ]


def _make_sampler(case, kernel):
    cls = (
        FuzzSamplerCustomExtract if case["custom_extract"] else FuzzSampler
    )
    return cls(
        case["steps"],
        norm_mode=case["norm_mode"],
        include_dst=case["include_dst"],
        sample_backend=case["sample_backend"],
        kernel=kernel,
    )


def _digest(samples):
    h = hashlib.sha256()
    for mb in samples:
        h.update(np.ascontiguousarray(mb.batch, dtype=np.int64).tobytes())
        for layer in mb.layers:
            for arr in (
                layer.adj.indptr,
                layer.adj.indices,
                layer.adj.data,
                np.asarray(layer.src_ids, dtype=np.int64),
                np.asarray(layer.dst_ids, dtype=np.int64),
            ):
                h.update(np.ascontiguousarray(arr).tobytes())
            h.update(repr(layer.adj.shape).encode())
    return h.hexdigest()


# --------------------------------------------------------------------- #
# Local differential: esc == hash == compiled on every generated plan
# --------------------------------------------------------------------- #
@settings(max_examples=150, deadline=None)
@given(case=fuzz_cases())
def test_local_compiled_matches_interpreted(case):
    adj = GRAPHS[case["graph_idx"]]
    batches = _make_batches(case)

    def rng_for():
        if case["per_batch_rng"]:
            return [batch_rng(case["seed"], i) for i in range(case["k"])]
        return np.random.default_rng(case["seed"])

    digests = {}
    for kernel in KERNELS_UNDER_TEST:
        sampler = _make_sampler(case, kernel)
        out = sampler.sample_bulk(adj, batches, (1,), rng_for())
        digests[kernel] = _digest(out)
    assert digests["esc"] == digests["hash"] == digests["compiled"], digests


# --------------------------------------------------------------------- #
# Partitioned differential: the 1.5D compiled executor matches the 1.5D
# interpreter (and, transitively via the suite above, the local paths)
# --------------------------------------------------------------------- #
@settings(max_examples=60, deadline=None)
@given(case=fuzz_cases(), grid_shape=st.sampled_from([(2, 1), (2, 2), (4, 1)]))
def test_partitioned_compiled_matches_interpreted(case, grid_shape):
    adj = GRAPHS[case["graph_idx"]]
    batches = _make_batches(case)
    p, c = grid_shape
    digests = {}
    for kernel in ("esc", "compiled"):
        grid = ProcessGrid(p, c)
        blocks = BlockRows.partition(adj, grid.n_rows)
        out, _ = partitioned_bulk_sampling(
            Communicator(p), grid, _make_sampler(case, kernel), blocks,
            batches, (1,), seed=case["seed"], kernel=kernel,
        )
        digests[kernel] = _digest(out)
    assert digests["esc"] == digests["compiled"], digests
