"""Golden regression tests for plan-driven partitioned sampling.

The partitioned executor interprets the same sampling plan as the local
one, with per-batch RNG streams keyed by *global* batch index.  Three
properties are pinned:

1. **Pre-refactor bit-compatibility** — at ``k == p/c`` (one batch per
   process row) the per-row streams of the historical hand-coded
   implementation coincide with the per-batch streams, so output must
   match digests recorded from the pre-refactor code, bit for bit.
2. **Grid invariance** — output is identical across ``c ∈ {1, 2}`` at
   fixed ``p`` (and across ``p``), because each batch draws only from its
   own stream and its frontier evolution is batch-local.
3. **Executor parity** — partitioned output equals single-rank replicated
   output, for every plan-emitting sampler *including SAINT*, whose
   partitioned support is new and entirely derived from its plan.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.comm import Communicator, ProcessGrid
from repro.core import (
    FastGCNSampler,
    GraphSaintRWSampler,
    LadiesSampler,
    SageSampler,
)
from repro.distributed import (
    partitioned_bulk_sampling,
    replicated_bulk_sampling,
)
from repro.graphs import rmat
from repro.partition import BlockRows

SEED = 42
DIST_SEED = 7
N_BATCHES = 4  # == n_rows at (p=4, c=1): the pre-refactor-compatible shape
BATCH_SIZE = 24

SAMPLER_CASES = [
    ("sage", lambda: SageSampler(include_dst=True), (5, 3)),
    ("ladies", lambda: LadiesSampler(include_dst=True), (32,)),
    ("fastgcn", lambda: FastGCNSampler(include_dst=True), (32,)),
    ("saint", lambda: GraphSaintRWSampler(walk_length=3), (3, 3)),
]

#: Digests recorded by running the PRE-refactor hand-coded partitioned
#: implementations (commit 01a2a91) at p=4, c=1, seed=7 on this workload.
#: SAINT has no entry: it could not run partitioned before this refactor.
PRE_REFACTOR_DIGESTS = {
    "sage": "650fcd385a8d75bf13ff69229ad181b1377d4f2ec89a49d9e47ee73f3a3dc717",
    "ladies": "e33f57cecc2422dca48c5879d73ea533a024b0264140caacdd7789e303c37963",
    "fastgcn": "2fb939281f77e8e97cac101d9648f2fc5f641cfed446188b966d926a9328010c",
}


def _graph_and_batches():
    rng = np.random.default_rng(SEED)
    adj = rmat(9, 8, rng)
    batches = [
        rng.choice(adj.shape[0], BATCH_SIZE, replace=False)
        for _ in range(N_BATCHES)
    ]
    return adj, batches


def _bulk_digest(samples) -> str:
    h = hashlib.sha256()
    for mb in samples:
        h.update(np.ascontiguousarray(mb.batch, dtype=np.int64).tobytes())
        for layer in mb.layers:
            for arr in (
                layer.adj.indptr,
                layer.adj.indices,
                layer.adj.data,
                np.asarray(layer.src_ids, dtype=np.int64),
                np.asarray(layer.dst_ids, dtype=np.int64),
            ):
                h.update(np.ascontiguousarray(arr).tobytes())
            h.update(repr(layer.adj.shape).encode())
    return h.hexdigest()


def _run_partitioned(name: str, p: int, c: int, kernel=None) -> str:
    adj, batches = _graph_and_batches()
    factory = dict((n, f) for n, f, _ in SAMPLER_CASES)[name]
    fanout = dict((n, fo) for n, _, fo in SAMPLER_CASES)[name]
    grid = ProcessGrid(p, c)
    blocks = BlockRows.partition(adj, grid.n_rows)
    samples, _ = partitioned_bulk_sampling(
        Communicator(p), grid, factory(), blocks, batches, fanout,
        seed=DIST_SEED, kernel=kernel,
    )
    assert len(samples) == N_BATCHES
    return _bulk_digest(samples)


@pytest.mark.parametrize(
    "name", [n for n in PRE_REFACTOR_DIGESTS]
)
def test_matches_pre_refactor_implementation(name):
    """The plan executor reproduces the hand-coded algorithms bit-for-bit
    at the grid shape where their RNG disciplines coincide."""
    assert _run_partitioned(name, 4, 1) == PRE_REFACTOR_DIGESTS[name]


@pytest.mark.parametrize(
    "name", [n for n in PRE_REFACTOR_DIGESTS]
)
@pytest.mark.parametrize("p,c", [(4, 1), (4, 2), (2, 1)])
def test_compiled_matches_pre_refactor_digests(name, p, c):
    """The compiled partitioned executor (kernel="compiled": optimized
    plan, fused per-row kernels) reproduces the pre-refactor digests bit
    for bit at every grid shape — fusion changes execution, never output."""
    assert (
        _run_partitioned(name, p, c, kernel="compiled")
        == PRE_REFACTOR_DIGESTS[name]
    )


@pytest.mark.parametrize("name", [c[0] for c in SAMPLER_CASES])
def test_compiled_matches_interpreted_partitioned(name):
    """Compiled == interpreted on the 1.5D grid for all four samplers
    (SAINT has no pre-refactor digest, so it's pinned by parity)."""
    assert _run_partitioned(name, 4, 2, kernel="compiled") == _run_partitioned(
        name, 4, 2
    )


@pytest.mark.parametrize("name", [c[0] for c in SAMPLER_CASES])
def test_invariant_across_replication_factor(name):
    """c ∈ {1, 2} at fixed p=4: replication never changes what is sampled."""
    assert _run_partitioned(name, 4, 1) == _run_partitioned(name, 4, 2)


@pytest.mark.parametrize("name", [c[0] for c in SAMPLER_CASES])
def test_invariant_across_world_size(name):
    """p ∈ {2, 4}: the grid shape never changes what is sampled."""
    assert _run_partitioned(name, 2, 1) == _run_partitioned(name, 4, 2)


@pytest.mark.parametrize("name", [c[0] for c in SAMPLER_CASES])
def test_parity_with_single_rank_replicated(name):
    """Partitioned output == single-rank sampling output, per batch, for
    every plan-emitting sampler (SAINT included: satellite acceptance for
    its new derived partitioned support)."""
    adj, batches = _graph_and_batches()
    factory = dict((n, f) for n, f, _ in SAMPLER_CASES)[name]
    fanout = dict((n, fo) for n, _, fo in SAMPLER_CASES)[name]
    rep = replicated_bulk_sampling(
        Communicator(1), factory(), adj, batches, fanout, seed=DIST_SEED
    )
    assert _run_partitioned(name, 4, 2) == _bulk_digest(rep[0])


def test_saint_partitioned_samples_are_valid_subgraphs():
    """Structural check independent of digests: every partitioned-SAINT
    layer is the full induced adjacency on its vertex set and ends at the
    batch."""
    adj, batches = _graph_and_batches()
    grid = ProcessGrid(4, 2)
    blocks = BlockRows.partition(adj, grid.n_rows)
    samples, _ = partitioned_bulk_sampling(
        Communicator(4), grid, GraphSaintRWSampler(walk_length=3), blocks,
        batches, (3, 3), seed=DIST_SEED,
    )
    dense = adj.to_dense()
    for mb in samples:
        layer = mb.layers[0]
        sub = dense[np.ix_(layer.dst_ids, layer.src_ids)]
        assert np.allclose(layer.adj.to_dense(), sub)
        assert np.all(np.isin(mb.batch, layer.src_ids))
        assert np.array_equal(mb.layers[-1].dst_ids, mb.batch)


def test_saint_partitioned_charges_all_three_phases():
    """Phase attribution is derived from step types: a graph-wise plan
    still lands work in probability, sampling and extraction."""
    adj, batches = _graph_and_batches()
    comm = Communicator(4)
    grid = ProcessGrid(4, 2)
    blocks = BlockRows.partition(adj, grid.n_rows)
    partitioned_bulk_sampling(
        comm, grid, GraphSaintRWSampler(walk_length=2), blocks, batches,
        (2, 2), seed=0,
    )
    bd = comm.clock.breakdown()
    assert {"probability", "sampling", "extraction"} <= set(bd)
    assert all(v > 0 for v in bd.values())


if __name__ == "__main__":  # golden regeneration helper
    import sys

    if "--regen" in sys.argv:
        for name in PRE_REFACTOR_DIGESTS:
            print(f'    "{name}": "{_run_partitioned(name, 4, 1)}",')
    else:
        print(__doc__)
