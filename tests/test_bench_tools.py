"""Benchmark tooling: ASCII reporting, harness workloads, config objects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    SIM_WORKLOADS,
    format_latency_summary,
    format_series,
    format_stacked_bars,
    format_table,
    latency_summary,
    percentiles,
)
from repro.bench.harness import BenchWorkload, work_scale_for, workload_hidden
from repro.config import ArchitectureConfig, DeviceModel, LinkModel


class TestFormatTable:
    def test_alignment_and_order(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        out = format_table(rows, title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert lines[1].startswith("a")
        assert "22" in lines[4]

    def test_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_float_formatting(self):
        out = format_table([{"x": 0.123456789}])
        assert "0.12346" in out


class TestPercentiles:
    def test_nearest_rank_returns_observed_values(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        pct = percentiles(values, (50, 95, 99))
        # Nearest rank over n=5: p50 -> 3rd value, p95/p99 -> 5th.
        assert pct[50] == 3.0
        assert pct[95] == 5.0
        assert pct[99] == 5.0

    def test_single_value(self):
        assert percentiles([7.5], (50, 99)) == {50: 7.5, 99: 7.5}

    def test_unsorted_input(self):
        assert percentiles([9.0, 1.0], (50,))[50] == 1.0

    def test_large_sample_matches_rank_definition(self):
        values = np.arange(1, 101, dtype=float)  # 1..100
        pct = percentiles(values, (50, 95, 99, 100))
        assert pct[50] == 50.0
        assert pct[95] == 95.0
        assert pct[99] == 99.0
        assert pct[100] == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentiles([])
        with pytest.raises(ValueError):
            percentiles([1.0], (0,))
        with pytest.raises(ValueError):
            percentiles([1.0], (101,))

    def test_latency_summary_fields(self):
        s = latency_summary([2.0, 1.0, 4.0, 3.0])
        assert s["n"] == 4
        assert s["mean"] == pytest.approx(2.5)
        assert s["p50"] == 2.0
        assert s["max"] == 4.0
        assert s["p50"] <= s["p95"] <= s["p99"] <= s["max"]

    def test_latency_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_summary([])

    def test_format_latency_summary_line(self):
        line = format_latency_summary([1.0, 2.0, 3.0], label="lat", unit="ms")
        assert line.startswith("lat: p50 2ms")
        assert "p95 3ms" in line and "(n=3)" in line


class TestStackedBars:
    def test_bar_lengths_proportional(self):
        rows = [
            {"p": 4, "a": 2.0, "b": 0.0},
            {"p": 8, "a": 1.0, "b": 0.0},
        ]
        out = format_stacked_bars(rows, "p", ["a", "b"], width=20)
        lines = [l for l in out.splitlines() if "|" in l]
        long_bar = lines[0].count("#")
        short_bar = lines[1].count("#")
        assert long_bar == 20 and short_bar == 10

    def test_legend_present(self):
        out = format_stacked_bars(
            [{"p": 1, "x": 1.0}], "p", ["x"], title="T"
        )
        assert "=x" in out.splitlines()[1]

    def test_empty(self):
        assert "(no rows)" in format_stacked_bars([], "p", ["x"])


class TestSeries:
    def test_shapes(self):
        out = format_series(
            {"gpu": [1.0, 2.0], "uva": [3.0, 4.0]}, [4, 8], title="S"
        )
        assert "gpu" in out and "uva" in out and "4" in out


class TestWorkloads:
    def test_all_workloads_well_formed(self):
        for name, wl in SIM_WORKLOADS.items():
            assert wl.dataset == name
            assert wl.spec.vertices > 0
            assert len(wl.fanout) == 3

    def test_work_scale_positive(self):
        from repro.bench import load_bench_graph

        wl = SIM_WORKLOADS["products"]
        g = load_bench_graph(wl)
        assert work_scale_for(wl, g) > 100  # sim is far smaller than paper

    def test_workload_hidden_consistent(self):
        assert workload_hidden() > 0

    def test_workload_too_large_rejected(self):
        wl = BenchWorkload(
            dataset="products", scale=0.05, batch_size=1024, n_batches=1024,
            fanout=(2, 2, 2), ladies_width=8,
        )
        from repro.bench import load_bench_graph

        with pytest.raises(ValueError):
            load_bench_graph(wl)


class TestConfigObjects:
    def test_architecture_validation(self):
        with pytest.raises(ValueError):
            ArchitectureConfig("x", 8, (3, 3), 4, 3)  # fanout/layers mismatch
        with pytest.raises(ValueError):
            ArchitectureConfig("x", 0, (3,), 4, 1)

    def test_device_model_validation(self):
        dev = DeviceModel(1e12, 1e11, 1e-6, 1e9)
        with pytest.raises(ValueError):
            dev.time(flops=-1)

    def test_link_model(self):
        link = LinkModel(alpha=1e-6, beta=2e-9)
        assert link.time(0) == 1e-6

    def test_machine_node_mapping(self):
        from repro.config import PERLMUTTER_LIKE as m

        assert m.node_of(0) == m.node_of(3) == 0
        assert m.node_of(4) == 1
        assert m.same_node(1, 2) and not m.same_node(3, 4)
        with pytest.raises(ValueError):
            m.node_of(-1)


class TestBenchArtifacts:
    def test_write_load_roundtrip(self, tmp_path):
        from repro.bench import (
            BENCH_SCHEMA_VERSION,
            load_bench_artifact,
            write_bench_artifact,
        )

        path = write_bench_artifact(
            "demo",
            params={"scale": 0.1, "fanout": (4, 3)},
            metrics={"req_per_s": np.float64(123.456)},
            rows=[{"clients": np.int64(8), "p50_ms": 0.25}],
            path=tmp_path / "BENCH_demo.json",
        )
        data = load_bench_artifact(path)
        assert data["schema_version"] == BENCH_SCHEMA_VERSION
        assert data["bench"] == "demo"
        assert data["params"]["fanout"] == [4, 3]
        assert data["metrics"]["req_per_s"] == pytest.approx(123.456)
        assert data["rows"][0]["clients"] == 8
        # numpy scalars must have become plain JSON types
        assert isinstance(data["rows"][0]["clients"], int)

    def test_writes_are_byte_stable(self, tmp_path):
        from repro.bench import write_bench_artifact

        kwargs = dict(
            params={"b": 2, "a": 1}, metrics={"m": 1.0}, rows=[],
        )
        p1 = write_bench_artifact("stable", path=tmp_path / "one.json", **kwargs)
        p2 = write_bench_artifact("stable", path=tmp_path / "two.json", **kwargs)
        assert p1.read_text() == p2.read_text()

    def test_refuses_unknown_schema_version(self, tmp_path):
        import json

        from repro.bench import load_bench_artifact

        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({
            "schema_version": 999, "bench": "x", "params": {},
            "metrics": {}, "rows": [],
        }))
        with pytest.raises(ValueError, match="schema_version"):
            load_bench_artifact(path)

    def test_refuses_missing_keys(self, tmp_path):
        import json

        from repro.bench import BENCH_SCHEMA_VERSION, load_bench_artifact

        path = tmp_path / "BENCH_y.json"
        path.write_text(json.dumps({
            "schema_version": BENCH_SCHEMA_VERSION, "bench": "y",
        }))
        with pytest.raises(ValueError, match="params"):
            load_bench_artifact(path)

    def test_name_validation_and_default_path(self):
        from repro.bench import bench_artifact, default_artifact_path

        with pytest.raises(ValueError):
            bench_artifact("has space")
        with pytest.raises(ValueError):
            bench_artifact("")
        path = default_artifact_path("serving")
        assert path.name == "BENCH_serving.json"
        assert path.parent.name == "results"

    def test_committed_artifacts_load(self):
        """The trajectory points committed under benchmarks/results/ must
        stay readable by the current schema."""
        from pathlib import Path

        from repro.bench import default_artifact_path, load_bench_artifact

        results = default_artifact_path("x").parent
        committed = sorted(Path(results).glob("BENCH_*.json"))
        assert committed, "no committed benchmark artifacts found"
        for path in committed:
            data = load_bench_artifact(path)
            assert data["bench"]


def _artifact(metrics, params=None, bench="demo"):
    return {
        "bench": bench,
        "params": params if params is not None else {"scale": 0.1},
        "metrics": metrics,
        "rows": [],
    }


class TestMetricDirection:
    def test_classification(self):
        from repro.bench import metric_direction

        assert metric_direction("serve_req_per_s") == "higher"
        assert metric_direction("fleet_speedup_vs_single") == "higher"
        assert metric_direction("cache_hit_rate") == "higher"
        assert metric_direction("p99_ms") == "lower"
        assert metric_direction("makespan") == "lower"
        assert metric_direction("update_latency") == "lower"
        assert metric_direction("autoscale_final_replicas") is None

    def test_higher_better_fragments_win_ties(self):
        from repro.bench import metric_direction

        # "p99" alone is lower-better, but a speedup derived from it is a
        # ratio where up is good — first-match-wins keeps that sane.
        assert metric_direction("p99_speedup") == "higher"


class TestCompareArtifacts:
    def test_identical_artifacts_pass(self):
        from repro.bench import compare_artifacts

        a = _artifact({"req_per_s": 100.0, "p99_ms": 2.0})
        assert compare_artifacts(a, a) == []

    def test_throughput_drop_is_a_regression(self):
        from repro.bench import compare_artifacts

        base = _artifact({"req_per_s": 100.0})
        fresh = _artifact({"req_per_s": 90.0})
        regs = compare_artifacts(base, fresh, tolerance=0.05)
        assert len(regs) == 1
        assert regs[0].metric == "req_per_s"
        assert "dropped" in str(regs[0])

    def test_latency_rise_is_a_regression(self):
        from repro.bench import compare_artifacts

        base = _artifact({"p99_ms": 2.0})
        fresh = _artifact({"p99_ms": 2.5})
        regs = compare_artifacts(base, fresh, tolerance=0.05)
        assert len(regs) == 1 and "rose" in str(regs[0])

    def test_drift_within_tolerance_passes(self):
        from repro.bench import compare_artifacts

        base = _artifact({"req_per_s": 100.0, "p99_ms": 2.0})
        fresh = _artifact({"req_per_s": 96.0, "p99_ms": 2.08})
        assert compare_artifacts(base, fresh, tolerance=0.05) == []

    def test_improvements_never_flagged(self):
        from repro.bench import compare_artifacts

        base = _artifact({"req_per_s": 100.0, "p99_ms": 2.0})
        fresh = _artifact({"req_per_s": 500.0, "p99_ms": 0.1})
        assert compare_artifacts(base, fresh) == []

    def test_informational_metrics_ignored(self):
        from repro.bench import compare_artifacts

        base = _artifact({"final_replicas": 4})
        fresh = _artifact({"final_replicas": 1})
        assert compare_artifacts(base, fresh) == []

    def test_missing_gated_metric_fails(self):
        from repro.bench import compare_artifacts

        base = _artifact({"req_per_s": 100.0})
        fresh = _artifact({})
        regs = compare_artifacts(base, fresh)
        assert len(regs) == 1 and "missing" in regs[0].metric

    def test_different_bench_rejected(self):
        from repro.bench import compare_artifacts

        with pytest.raises(ValueError, match="different benches"):
            compare_artifacts(
                _artifact({}, bench="a"), _artifact({}, bench="b")
            )

    def test_params_mismatch_raises_and_names_keys(self):
        from repro.bench import ParamsMismatch, compare_artifacts

        base = _artifact({}, params={"clients": 64, "scale": 0.1})
        fresh = _artifact({}, params={"clients": 128, "scale": 0.1})
        with pytest.raises(ParamsMismatch, match="clients"):
            compare_artifacts(base, fresh)

    def test_ignore_params_excuses_the_mismatch(self):
        from repro.bench import compare_artifacts

        base = _artifact({"req_per_s": 10.0}, params={"clients": 64})
        fresh = _artifact({"req_per_s": 10.0}, params={"clients": 128})
        assert compare_artifacts(base, fresh, ignore_params=("clients",)) == []

    def test_negative_tolerance_rejected(self):
        from repro.bench import compare_artifacts

        with pytest.raises(ValueError):
            compare_artifacts(_artifact({}), _artifact({}), tolerance=-0.1)

    def test_compare_artifact_files(self, tmp_path):
        from repro.bench import compare_artifact_files, write_bench_artifact

        base = write_bench_artifact(
            "demo", params={"s": 1}, metrics={"req_per_s": 100.0},
            rows=[], path=tmp_path / "base.json",
        )
        fresh = write_bench_artifact(
            "demo", params={"s": 1}, metrics={"req_per_s": 50.0},
            rows=[], path=tmp_path / "fresh.json",
        )
        assert len(compare_artifact_files(base, fresh)) == 1


class TestCheckRegressionCLI:
    """Exit-code contract of benchmarks/check_regression.py (the CI gate)."""

    @pytest.fixture()
    def gate(self):
        import importlib.util
        from pathlib import Path

        path = (
            Path(__file__).parent.parent / "benchmarks" / "check_regression.py"
        )
        spec = importlib.util.spec_from_file_location("check_regression", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def _write(self, tmp_path, name, metrics, params=None):
        from repro.bench import write_bench_artifact

        return write_bench_artifact(
            "gatedemo", params=params or {"s": 1}, metrics=metrics,
            rows=[], path=tmp_path / name,
        )

    def test_exit_0_on_clean_run(self, tmp_path, gate, capsys):
        base = self._write(tmp_path, "base.json", {"req_per_s": 100.0})
        fresh = self._write(tmp_path, "fresh.json", {"req_per_s": 101.0})
        rc = gate.main([str(fresh), "--baseline", str(base)])
        assert rc == 0
        assert "no out-of-tolerance" in capsys.readouterr().out

    def test_exit_1_on_regression(self, tmp_path, gate, capsys):
        base = self._write(tmp_path, "base.json", {"req_per_s": 100.0})
        fresh = self._write(tmp_path, "fresh.json", {"req_per_s": 50.0})
        rc = gate.main([str(fresh), "--baseline", str(base)])
        assert rc == 1
        assert "regression:" in capsys.readouterr().err

    def test_exit_2_on_missing_baseline(self, tmp_path, gate, capsys):
        fresh = self._write(tmp_path, "fresh.json", {"req_per_s": 1.0})
        rc = gate.main(
            [str(fresh), "--baseline", str(tmp_path / "nope.json")]
        )
        assert rc == 2
        assert "no committed baseline" in capsys.readouterr().err

    def test_exit_2_on_unreadable_fresh(self, tmp_path, gate):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert gate.main([str(bad)]) == 2

    def test_exit_3_on_params_mismatch(self, tmp_path, gate, capsys):
        base = self._write(
            tmp_path, "base.json", {"req_per_s": 1.0}, params={"s": 1}
        )
        fresh = self._write(
            tmp_path, "fresh.json", {"req_per_s": 1.0}, params={"s": 2}
        )
        rc = gate.main([str(fresh), "--baseline", str(base)])
        assert rc == 3
        assert "not comparable" in capsys.readouterr().err

    def test_ignore_params_flag(self, tmp_path, gate):
        base = self._write(
            tmp_path, "base.json", {"req_per_s": 1.0}, params={"s": 1}
        )
        fresh = self._write(
            tmp_path, "fresh.json", {"req_per_s": 1.0}, params={"s": 2}
        )
        rc = gate.main(
            [str(fresh), "--baseline", str(base), "--ignore-params", "s"]
        )
        assert rc == 0

    def test_tolerance_flag_widens_the_gate(self, tmp_path, gate):
        base = self._write(tmp_path, "base.json", {"req_per_s": 100.0})
        fresh = self._write(tmp_path, "fresh.json", {"req_per_s": 80.0})
        assert gate.main([str(fresh), "--baseline", str(base)]) == 1
        assert gate.main(
            [str(fresh), "--baseline", str(base), "--tolerance", "0.3"]
        ) == 0

    def _write_bench(self, tmp_path, bench, name, metrics, params=None):
        from repro.bench import write_bench_artifact

        return write_bench_artifact(
            bench, params=params or {"s": 1}, metrics=metrics,
            rows=[], path=tmp_path / name,
        )

    @pytest.fixture()
    def local_baselines(self, tmp_path, gate, monkeypatch):
        """Route default baseline lookup into tmp_path so multi-artifact
        runs (which resolve baselines by bench name) stay hermetic."""
        monkeypatch.setattr(
            gate, "default_artifact_path",
            lambda bench: tmp_path / f"BENCH_{bench}.json",
        )
        return tmp_path

    def test_multiple_artifacts_report_all_regressions(
        self, gate, local_baselines, capsys
    ):
        tmp = local_baselines
        self._write_bench(tmp, "alpha", "BENCH_alpha.json",
                          {"req_per_s": 100.0, "p99_ms": 1.0})
        self._write_bench(tmp, "beta", "BENCH_beta.json",
                          {"req_per_s": 100.0})
        f1 = self._write_bench(tmp, "alpha", "fresh_alpha.json",
                               {"req_per_s": 50.0, "p99_ms": 9.0})
        f2 = self._write_bench(tmp, "beta", "fresh_beta.json",
                               {"req_per_s": 10.0})
        rc = gate.main([str(f1), str(f2)])
        assert rc == 1
        err = capsys.readouterr().err
        # Every regressed metric of every family is reported, and the
        # exit-1 summary names them all.
        assert "regression: alpha: req_per_s" in err
        assert "regression: alpha: p99_ms" in err
        assert "regression: beta: req_per_s" in err
        assert ("3 regressed metric(s): alpha:p99_ms, alpha:req_per_s, "
                "beta:req_per_s" in err)

    def test_regressions_outrank_params_mismatch(
        self, gate, local_baselines, capsys
    ):
        tmp = local_baselines
        self._write_bench(tmp, "alpha", "BENCH_alpha.json",
                          {"req_per_s": 100.0})
        self._write_bench(tmp, "beta", "BENCH_beta.json",
                          {"req_per_s": 100.0}, params={"s": 1})
        f1 = self._write_bench(tmp, "alpha", "fresh_alpha.json",
                               {"req_per_s": 50.0})
        f2 = self._write_bench(tmp, "beta", "fresh_beta.json",
                               {"req_per_s": 100.0}, params={"s": 2})
        assert gate.main([str(f1), str(f2)]) == 1
        err = capsys.readouterr().err
        assert "regression: alpha: req_per_s" in err
        assert "not comparable" in err  # still reported, just outranked

    def test_params_mismatch_alone_still_exits_3(
        self, gate, local_baselines
    ):
        tmp = local_baselines
        self._write_bench(tmp, "beta", "BENCH_beta.json",
                          {"req_per_s": 100.0}, params={"s": 1})
        ok = self._write_bench(tmp, "alpha", "BENCH_alpha.json",
                               {"req_per_s": 100.0})
        f1 = self._write_bench(tmp, "alpha", "fresh_alpha.json",
                               {"req_per_s": 100.0})
        f2 = self._write_bench(tmp, "beta", "fresh_beta.json",
                               {"req_per_s": 100.0}, params={"s": 2})
        assert ok is not None
        assert gate.main([str(f1), str(f2)]) == 3

    def test_baseline_flag_rejected_with_multiple_fresh(
        self, tmp_path, gate, capsys
    ):
        base = self._write(tmp_path, "base.json", {"req_per_s": 100.0})
        f1 = self._write(tmp_path, "f1.json", {"req_per_s": 100.0})
        f2 = self._write(tmp_path, "f2.json", {"req_per_s": 100.0})
        rc = gate.main(
            [str(f1), str(f2), "--baseline", str(base)]
        )
        assert rc == 2
        assert "--baseline" in capsys.readouterr().err

    def test_committed_fleet_artifact_gates_itself(self, gate):
        """The committed BENCH_serving_fleet.json must pass its own gate —
        the invariant the CI serving-fleet job relies on."""
        from repro.bench import default_artifact_path

        path = default_artifact_path("serving_fleet")
        assert path.exists()
        assert gate.main([str(path)]) == 0

    def test_committed_gate_artifacts_gate_themselves(self, gate):
        """Every committed *_gate baseline (and BENCH_parallel.json) must
        pass its own gate, mirroring the CI regression-gates job."""
        from repro.bench import default_artifact_path

        for name in (
            "kernels_gate", "serving_gate", "streaming_gate",
            "feature_cache_gate", "parallel",
        ):
            path = default_artifact_path(name)
            assert path.exists(), f"missing committed baseline {path}"
            assert gate.main([str(path)]) == 0

    def test_exit_4_on_env_mismatch(self, tmp_path, gate, capsys):
        from repro.bench import write_bench_artifact

        base = write_bench_artifact(
            "gatedemo", params={"s": 1}, metrics={"speedup": 2.0}, rows=[],
            env={"cpu_count": 1}, path=tmp_path / "base.json",
        )
        fresh = write_bench_artifact(
            "gatedemo", params={"s": 1}, metrics={"speedup": 2.0}, rows=[],
            env={"cpu_count": 64}, path=tmp_path / "fresh.json",
        )
        rc = gate.main([str(fresh), "--baseline", str(base)])
        assert rc == 4
        assert "different environments" in capsys.readouterr().err
        assert gate.main(
            [str(fresh), "--baseline", str(base), "--ignore-env"]
        ) == 0


class TestEnvFingerprint:
    def test_fingerprint_contents(self):
        import os
        import platform

        from repro.bench import env_fingerprint

        env = env_fingerprint()
        assert env["cpu_count"] == (os.cpu_count() or 1)
        assert env["python"] == platform.python_version()
        assert "numpy" in env and "platform" in env
        assert "workers" not in env
        assert env_fingerprint(workers=4)["workers"] == 4

    def test_artifact_roundtrips_env(self, tmp_path):
        from repro.bench import (
            env_fingerprint,
            load_bench_artifact,
            write_bench_artifact,
        )

        env = env_fingerprint(workers=2)
        path = write_bench_artifact(
            "demo", params={}, metrics={}, rows=[], env=env,
            path=tmp_path / "BENCH_demo.json",
        )
        assert load_bench_artifact(path)["env"] == env

    def test_env_free_artifact_has_no_env_key(self, tmp_path):
        """Simulated artifacts stay byte-stable across machines — no env
        key unless the bench asked for one."""
        from repro.bench import load_bench_artifact, write_bench_artifact

        path = write_bench_artifact(
            "demo", params={}, metrics={}, rows=[],
            path=tmp_path / "BENCH_demo.json",
        )
        assert "env" not in load_bench_artifact(path)

    def test_compare_raises_env_mismatch(self):
        from repro.bench import EnvMismatch, compare_artifacts

        base = dict(_artifact({"speedup": 2.0}), env={"cpu_count": 1})
        fresh = dict(_artifact({"speedup": 2.0}), env={"cpu_count": 64})
        with pytest.raises(EnvMismatch, match="cpu_count"):
            compare_artifacts(base, fresh)
        assert compare_artifacts(base, fresh, ignore_env=True) == []

    def test_env_vs_envless_artifact_mismatches(self):
        """A wall-clock artifact never silently gates against an env-free
        baseline (or vice versa)."""
        from repro.bench import EnvMismatch, compare_artifacts

        base = _artifact({"speedup": 2.0})
        fresh = dict(_artifact({"speedup": 2.0}), env={"cpu_count": 1})
        with pytest.raises(EnvMismatch):
            compare_artifacts(base, fresh)

    def test_matching_env_passes(self):
        from repro.bench import compare_artifacts

        base = dict(_artifact({"speedup": 2.0}), env={"cpu_count": 1})
        assert compare_artifacts(base, dict(base)) == []
