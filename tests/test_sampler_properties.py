"""Property-based tests (hypothesis) over the sampling framework.

For arbitrary random graphs, batch configurations and fanouts, every
sampler must uphold its structural invariants: sampled edges exist in the
graph, layer chains are consistent, fanout bounds hold, and the bulk
stacking never mixes batches.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    FastGCNSampler,
    GraphSaintRWSampler,
    LadiesSampler,
    SageSampler,
)
from repro.graphs import erdos_renyi


@st.composite
def sampling_cases(draw):
    """(adjacency, batches, seed) over small random graphs."""
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    n = draw(st.integers(32, 128))
    avg_deg = draw(st.integers(2, 12))
    adj = erdos_renyi(n, avg_deg, rng)
    k = draw(st.integers(1, 4))
    b = draw(st.integers(1, 16))
    batches = [rng.choice(n, min(b, n), replace=False) for _ in range(k)]
    return adj, batches, seed


def _check_edges_exist(adj, mb):
    dense = adj.to_dense()
    for layer in mb.layers:
        rows, cols, _ = layer.adj.to_coo()
        if rows.size:
            assert np.all(dense[layer.dst_ids[rows], layer.src_ids[cols]] != 0)


def _check_chain(mb, batch):
    assert np.array_equal(mb.layers[-1].dst_ids, batch)
    for lo, hi in zip(mb.layers, mb.layers[1:]):
        assert np.array_equal(lo.dst_ids, hi.src_ids)


@given(sampling_cases(), st.integers(1, 6), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_sage_invariants(case, s, n_layers):
    adj, batches, seed = case
    rng = np.random.default_rng(seed + 1)
    out = SageSampler(include_dst=False).sample_bulk(
        adj, batches, tuple([s] * n_layers), rng
    )
    assert len(out) == len(batches)
    for mb, batch in zip(out, batches):
        _check_chain(mb, np.asarray(batch))
        _check_edges_exist(adj, mb)
        for layer in mb.layers:
            assert layer.adj.nnz_per_row().max(initial=0) <= s


@given(sampling_cases(), st.integers(2, 24))
@settings(max_examples=40, deadline=None)
def test_ladies_invariants(case, s):
    adj, batches, seed = case
    rng = np.random.default_rng(seed + 2)
    out = LadiesSampler().sample_bulk(adj, batches, (s,), rng)
    dense = adj.to_dense()
    for mb, batch in zip(out, batches):
        layer = mb.layers[0]
        assert layer.n_src <= s
        # Extraction completeness: every cross edge kept.
        sub = dense[np.ix_(layer.dst_ids, layer.src_ids)]
        assert np.allclose(layer.adj.to_dense(), sub)
        # Sampled vertices lie in the aggregated neighborhood.
        if layer.n_src:
            neigh = dense[np.asarray(batch)].sum(axis=0) > 0
            assert np.all(neigh[layer.src_ids])


@given(sampling_cases(), st.integers(2, 24))
@settings(max_examples=30, deadline=None)
def test_fastgcn_invariants(case, s):
    adj, batches, seed = case
    rng = np.random.default_rng(seed + 3)
    out = FastGCNSampler().sample_bulk(adj, batches, (s,), rng)
    dense = adj.to_dense()
    indeg = dense.sum(axis=0)
    for mb in out:
        layer = mb.layers[0]
        assert layer.n_src <= s
        # FastGCN only proposes vertices with nonzero in-degree.
        if layer.n_src:
            assert np.all(indeg[layer.src_ids] > 0)
        sub = dense[np.ix_(layer.dst_ids, layer.src_ids)]
        assert np.allclose(layer.adj.to_dense(), sub)


@given(sampling_cases(), st.integers(1, 5))
@settings(max_examples=30, deadline=None)
def test_saint_invariants(case, walk_length):
    adj, batches, seed = case
    rng = np.random.default_rng(seed + 4)
    out = GraphSaintRWSampler(walk_length=walk_length).sample_bulk(
        adj, batches, (2, 2), rng
    )
    dense = adj.to_dense()
    for mb, batch in zip(out, batches):
        batch = np.asarray(batch)
        verts = mb.layers[0].src_ids
        assert np.all(np.isin(batch, verts))
        # Induced subgraph completeness on the shared frontier.
        layer = mb.layers[0]
        sub = dense[np.ix_(layer.dst_ids, layer.src_ids)]
        assert np.allclose(layer.adj.to_dense(), sub)
        assert np.array_equal(mb.layers[-1].dst_ids, batch)


@given(sampling_cases())
@settings(max_examples=30, deadline=None)
def test_distributed_replicated_covers_batches(case):
    from repro.comm import Communicator
    from repro.distributed import replicated_bulk_sampling

    adj, batches, seed = case
    comm = Communicator(4)
    out = replicated_bulk_sampling(
        comm, SageSampler(), adj, batches, (3,), seed=seed
    )
    got = sorted(
        tuple(np.sort(mb.batch)) for rank in out for mb in rank
    )
    want = sorted(tuple(np.sort(np.asarray(b))) for b in batches)
    assert got == want
    assert comm.ledger.sent() == 0  # still communication-free
