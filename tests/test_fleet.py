"""The serving fleet: routers, admission control, the multi-replica
cluster loop, SLO autoscaling, and update broadcast — plus the pinned
single-server digest the refactor must keep bit-identical."""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.api import Engine, RunConfig
from repro.pipeline import layerwise_inference
from repro.serve import (
    AdmissionController,
    Autoscaler,
    ClosedLoopWorkload,
    ConsistentHashRouter,
    DirectRouter,
    InferenceRequest,
    Replica,
    RoundRobinRouter,
    ServingCluster,
    ServingEngine,
    TraceWorkload,
    make_router,
)
from repro.stream import EdgeBatch, StreamingGraph, UpdateStream


@pytest.fixture(scope="module")
def trained_engine() -> Engine:
    cfg = RunConfig(
        dataset="products", scale=0.1, train_split=0.5, p=1, c=1,
        algorithm="single", sampler="sage", fanout=(4, 3), batch_size=16,
        hidden=16, epochs=1, seed=0,
    )
    engine = Engine(cfg)
    engine.train(1)
    return engine


@pytest.fixture(scope="module")
def reference_logits(trained_engine) -> np.ndarray:
    return layerwise_inference(trained_engine.model, trained_engine.graph)


def _cluster(engine: Engine, **overrides) -> ServingCluster:
    return ServingCluster(
        engine.model, engine.graph, engine.config.replace(**overrides)
    )


def _trace(engine: Engine, n=20, seed=5, interarrival=1e-4) -> TraceWorkload:
    return TraceWorkload.synthetic(
        n, engine.graph.test_idx, seed=seed, interarrival=interarrival
    )


def _request(rid: int, vertex: int, arrival: float = 0.0) -> InferenceRequest:
    return InferenceRequest(
        rid=rid, vertices=np.array([vertex]), arrival=arrival
    )


# Digest of the 20-request / seed-5 synthetic trace under the module
# fixture config, pinned before the Replica/Router/Cluster split.  Both
# the single-server engine and an N=1 direct fleet must reproduce it
# bit-identically — the refactor moves code, never floats.
GOLDEN_SERVE_DIGEST = (
    "f066470bfc98efbcce4a88da5bfaceef55d0349aa87a97dd9a990d20808dfc51"
)


# ---------------------------------------------------------------------- #
# Routers
# ---------------------------------------------------------------------- #
class TestRouters:
    def test_direct_routes_to_lowest_id(self):
        r = DirectRouter()
        r.rebalance([3, 1, 7])
        assert all(r.route(_request(i, i)) == 1 for i in range(5))

    def test_round_robin_cycles_in_id_order(self):
        r = RoundRobinRouter()
        r.rebalance([2, 0, 1])
        picks = [r.route(_request(i, i)) for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_round_robin_cursor_survives_rebalance(self):
        r = RoundRobinRouter()
        r.rebalance([0, 1])
        r.route(_request(0, 0))  # cursor advances past replica 0
        r.rebalance([0, 1, 2])
        assert r.route(_request(1, 1)) == 1  # continues, does not restart

    def test_consistent_hash_is_deterministic(self):
        a = ConsistentHashRouter(1000)
        b = ConsistentHashRouter(1000)
        a.rebalance([0, 1, 2])
        b.rebalance([0, 1, 2])
        for v in (0, 17, 500, 999):
            assert a.route(_request(v, v)) == b.route(_request(v, v))

    def test_consistent_hash_same_partition_same_replica(self):
        r = ConsistentHashRouter(1024, n_partitions=8)
        r.rebalance([0, 1, 2, 3])
        # 1024 vertices / 8 partitions: 0 and 100 share partition 0.
        assert r.partition_of(0) == r.partition_of(100)
        assert r.route(_request(0, 0)) == r.route(_request(1, 100))

    def test_consistent_hash_rebalance_is_stable(self):
        """Adding one replica must move only a minority of partitions —
        the consistent-hashing argument for keeping caches warm."""
        r = ConsistentHashRouter(4096, n_partitions=64)
        r.rebalance([0, 1, 2])
        before = r._owner.copy()
        r.rebalance([0, 1, 2, 3])
        moved = int((before != r._owner).sum())
        assert 0 < moved < 32  # some partitions moved, most did not
        # Every moved partition went to the new replica, none reshuffled
        # between the survivors.
        assert set(r._owner[before != r._owner].tolist()) == {3}

    def test_consistent_hash_covers_all_replicas(self):
        r = ConsistentHashRouter(4096, n_partitions=64)
        r.rebalance([0, 1, 2, 3])
        assert set(r._owner.tolist()) == {0, 1, 2, 3}

    def test_consistent_hash_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashRouter(0)

    def test_partitions_capped_at_vertex_count(self):
        r = ConsistentHashRouter(5, n_partitions=64)
        assert r.n_partitions == 5
        r.rebalance([0])
        assert r.route(_request(0, 4)) == 0

    def test_make_router_unknown_name(self):
        with pytest.raises(ValueError, match="unknown router"):
            make_router("random", 10)


# ---------------------------------------------------------------------- #
# Admission control
# ---------------------------------------------------------------------- #
class _FakeReplica:
    """Just enough replica surface for the controller: a queue + stats."""

    def __init__(self, pending=0):
        from repro.serve import RequestQueue
        from repro.serve.cache import ServeStats

        self.queue = RequestQueue()
        for i in range(pending):
            self.queue.push(_request(i, i))
        self.stats = ServeStats()


class TestAdmission:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown shed policy"):
            AdmissionController("drop_all")
        with pytest.raises(ValueError, match="queue_depth"):
            AdmissionController("queue", queue_depth=0)
        with pytest.raises(ValueError, match="deadline"):
            AdmissionController("deadline", deadline=0.0)

    def test_none_admits_everything(self):
        rep = _FakeReplica(pending=1000)
        ctrl = AdmissionController("none")
        assert ctrl.admit(rep, _request(0, 0))
        assert rep.stats.shed == 0

    def test_queue_depth_sheds_and_counts(self):
        rep = _FakeReplica(pending=4)
        ctrl = AdmissionController("queue", queue_depth=4)
        assert not ctrl.admit(rep, _request(9, 9))
        assert rep.stats.shed == 1
        assert ctrl.admit(_FakeReplica(pending=3), _request(9, 9))

    def test_deadline_filters_stale_batch_members(self):
        rep = _FakeReplica()
        ctrl = AdmissionController("deadline", deadline=0.1)
        batch = [_request(0, 0, arrival=0.0), _request(1, 1, arrival=0.25)]
        kept = ctrl.filter_batch(rep, batch, now=0.3)
        assert [r.rid for r in kept] == [1]  # waited 0.05 <= 0.1
        assert rep.stats.shed == 1

    def test_non_deadline_policy_never_filters(self):
        rep = _FakeReplica()
        batch = [_request(0, 0, arrival=0.0)]
        assert AdmissionController("queue").filter_batch(rep, batch, 99.0) == batch


# ---------------------------------------------------------------------- #
# Autoscaler decisions
# ---------------------------------------------------------------------- #
class TestAutoscaler:
    def test_validation(self):
        with pytest.raises(ValueError):
            Autoscaler(0.0)
        with pytest.raises(ValueError):
            Autoscaler(1.0, min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError):
            Autoscaler(1.0, interval=0.0)

    def test_scale_up_on_slo_violation(self):
        scaler = Autoscaler(1e-3, max_replicas=4)
        assert scaler.decide(2e-3, 2) == 3
        assert scaler.decide(2e-3, 4) == 4  # capped

    def test_scale_down_with_hysteresis(self):
        scaler = Autoscaler(1e-3, min_replicas=1)
        assert scaler.decide(4e-4, 3) == 2  # under half the SLO
        assert scaler.decide(4e-4, 1) == 1  # floored
        assert scaler.decide(7e-4, 3) == 3  # inside the band: hold

    def test_empty_window_makes_no_decision(self):
        assert Autoscaler(1e-3).decide(None, 5) == 5


# ---------------------------------------------------------------------- #
# Fleet exactness: the refactor contract
# ---------------------------------------------------------------------- #
class TestFleetExactness:
    def test_single_server_engine_reproduces_pinned_digest(
        self, trained_engine
    ):
        report = trained_engine.serving().process(_trace(trained_engine))
        assert report.digest() == GOLDEN_SERVE_DIGEST

    def test_one_replica_fleet_bit_identical_to_engine(self, trained_engine):
        report = _cluster(trained_engine).process(_trace(trained_engine))
        assert report.digest() == GOLDEN_SERVE_DIGEST

    @pytest.mark.parametrize(
        "replicas,router,budget",
        [
            (2, "round_robin", 0.0),
            (4, "round_robin", 0.0),
            (4, "consistent_hash", 0.0),
            (3, "round_robin", 32768.0),
            (3, "consistent_hash", 32768.0),
        ],
    )
    def test_digest_invariant_to_fleet_shape(
        self, trained_engine, replicas, router, budget
    ):
        """Exact serving means routing and replica count move latency,
        never bits."""
        cluster = _cluster(
            trained_engine,
            replicas=replicas, router=router, embed_budget=budget,
        )
        report = cluster.process(_trace(trained_engine))
        assert report.digest() == GOLDEN_SERVE_DIGEST

    def test_one_shot_serve_matches_layerwise(
        self, trained_engine, reference_logits
    ):
        verts = trained_engine.graph.test_idx[:5]
        cluster = _cluster(trained_engine, replicas=3, router="round_robin")
        assert np.array_equal(
            cluster.serve(verts), reference_logits[verts]
        )

    def test_results_bit_identical_per_request(
        self, trained_engine, reference_logits
    ):
        cluster = _cluster(trained_engine, replicas=4, router="consistent_hash")
        report = cluster.process(_trace(trained_engine))
        for r in report.results:
            assert np.array_equal(
                r.logits, reference_logits[r.request.vertices]
            )


# ---------------------------------------------------------------------- #
# Fleet dynamics: throughput, locality, accounting
# ---------------------------------------------------------------------- #
class TestFleetDynamics:
    def test_four_replicas_out_throughput_one_at_high_load(
        self, trained_engine
    ):
        """The fleet acceptance criterion: at an offered load that saturates
        one server, a routed fleet strictly wins."""
        rates = {}
        for n in (1, 4):
            cluster = _cluster(
                trained_engine, replicas=n, router="round_robin"
            )
            wl = ClosedLoopWorkload(
                96, trained_engine.graph.test_idx, clients=48, seed=2
            )
            rates[n] = cluster.process(wl).throughput
        assert rates[4] > rates[1]

    def test_round_robin_spreads_work_across_replicas(self, trained_engine):
        cluster = _cluster(trained_engine, replicas=2, router="round_robin")
        report = cluster.process(_trace(trained_engine))
        assert sorted(report.per_replica) == [0, 1]
        assert all(count > 0 for count in report.per_replica.values())
        assert sum(report.per_replica.values()) == report.n_requests

    def test_consistent_hash_beats_round_robin_on_cache_locality(
        self, trained_engine
    ):
        """The point of locality-aware routing: a hot vertex's cached rows
        live on one replica instead of being diluted across the fleet."""
        pool = trained_engine.graph.test_idx[:8]
        hit_rates = {}
        for router in ("round_robin", "consistent_hash"):
            cluster = _cluster(
                trained_engine,
                replicas=4, router=router, embed_budget=65536.0,
            )
            wl = TraceWorkload.synthetic(
                64, pool, seed=7, interarrival=5e-5
            )
            hit_rates[router] = cluster.process(wl).cache_stats.hit_rate
        assert hit_rates["consistent_hash"] > hit_rates["round_robin"]

    def test_report_merges_phase_seconds_across_replicas(self, trained_engine):
        cluster = _cluster(trained_engine, replicas=3, router="round_robin")
        report = cluster.process(_trace(trained_engine))
        assert report.phase_seconds["sampling"] > 0
        assert report.phase_seconds["propagation"] > 0
        # No shedding configured: the report says so.
        assert report.shed == 0
        assert "shed" not in report.row()


# ---------------------------------------------------------------------- #
# Load shedding
# ---------------------------------------------------------------------- #
def _burst(engine: Engine, n=32) -> TraceWorkload:
    """n single-vertex requests all arriving at t=0 — a worst-case spike."""
    idx = engine.graph.test_idx
    return TraceWorkload(
        [_request(i, int(idx[i % 16])) for i in range(n)]
    )


class TestShedding:
    def test_queue_policy_sheds_the_burst_overflow(self, trained_engine):
        cluster = _cluster(
            trained_engine, shed_policy="queue", shed_queue_depth=4
        )
        report = cluster.process(_burst(trained_engine))
        assert report.shed > 0
        # Every request was either served or shed — none lost.
        assert report.n_requests + report.shed == 32
        assert report.row()["shed"] == report.shed

    def test_deadline_policy_bounds_queue_wait(self, trained_engine):
        deadline = 2e-4
        cluster = _cluster(
            trained_engine, shed_policy="deadline", shed_deadline=deadline
        )
        report = cluster.process(_burst(trained_engine))
        assert report.shed > 0
        assert report.n_requests + report.shed == 32
        # The surviving requests are exactly the ones served in time.
        assert all(r.queue_wait <= deadline + 1e-12 for r in report.results)

    def test_no_shedding_under_light_load(self, trained_engine):
        cluster = _cluster(
            trained_engine, shed_policy="queue", shed_queue_depth=64
        )
        report = cluster.process(_trace(trained_engine))
        assert report.shed == 0 and report.n_requests == 20


# ---------------------------------------------------------------------- #
# Autoscaling end to end
# ---------------------------------------------------------------------- #
class TestAutoscaling:
    def test_scales_up_under_slo_violating_load(self, trained_engine):
        cluster = _cluster(
            trained_engine,
            replicas=1, router="round_robin", slo_p99=2e-4,
            autoscale_max=4, autoscale_interval=5e-4,
        )
        wl = ClosedLoopWorkload(
            128, trained_engine.graph.test_idx, clients=32, seed=3
        )
        report = cluster.process(wl)
        counts = [n for _, n in report.replica_trace]
        assert counts[0] == 1
        assert counts[-1] > 1  # the violated SLO forced the fleet up
        assert counts == sorted(counts)  # pure scale-up, no thrash
        assert report.n_requests == 128  # nothing lost while scaling

    def test_scales_down_when_slo_trivially_met(self, trained_engine):
        cluster = _cluster(
            trained_engine,
            replicas=3, router="round_robin", slo_p99=1.0,
            autoscale_min=1, autoscale_max=4, autoscale_interval=5e-4,
        )
        report = cluster.process(
            _trace(trained_engine, n=40, seed=9, interarrival=2e-4)
        )
        counts = [n for _, n in report.replica_trace]
        assert counts[0] == 3
        assert counts[-1] == 1  # idle fleet drained to the minimum
        assert counts == sorted(counts, reverse=True)
        # Re-routed orphans from retired replicas all got served.
        assert report.n_requests == 40

    def test_retired_replicas_still_counted_in_report(self, trained_engine):
        cluster = _cluster(
            trained_engine,
            replicas=3, router="round_robin", slo_p99=1.0,
            autoscale_min=1, autoscale_interval=5e-4,
        )
        report = cluster.process(
            _trace(trained_engine, n=40, seed=9, interarrival=2e-4)
        )
        assert cluster.retired  # somebody was retired...
        assert len(cluster.replicas) == 1
        # ...but the per-replica accounting still covers the whole run.
        assert sum(report.per_replica.values()) == report.n_requests

    def test_autoscaled_run_stays_exact(self, trained_engine, reference_logits):
        cluster = _cluster(
            trained_engine,
            replicas=1, router="round_robin", slo_p99=2e-4,
            autoscale_max=4, autoscale_interval=5e-4,
        )
        report = cluster.process(_trace(trained_engine, n=30, interarrival=5e-5))
        for r in report.results:
            assert np.array_equal(
                r.logits, reference_logits[r.request.vertices]
            )

    def test_initial_count_below_minimum_rejected(self, trained_engine):
        cluster = _cluster(
            trained_engine,
            replicas=2, router="round_robin", slo_p99=1.0,
            autoscale_min=3, autoscale_max=4,
        )
        with pytest.raises(ValueError, match="below the autoscaler minimum"):
            cluster.process(_trace(trained_engine, n=4))


# ---------------------------------------------------------------------- #
# Streaming updates broadcast to the fleet
# ---------------------------------------------------------------------- #
def _streaming_cluster(engine: Engine, **overrides) -> ServingCluster:
    graph = copy.copy(engine.graph)
    cfg = engine.config.replace(
        stream_updates=True, serve_batch_size=8, **overrides
    )
    stream = StreamingGraph(graph, compaction_threshold=0.25)
    return ServingCluster(engine.model, graph, cfg, stream=stream)


def _churn(engine: Engine, n=32) -> UpdateStream:
    return UpdateStream.synthetic(
        engine.graph.adj, engine.graph.test_idx,
        n_requests=n, update_ratio=0.5, seed=0,
    )


class TestFleetUpdates:
    def test_one_replica_fleet_reproduces_stream_digest(self, trained_engine):
        """The cluster's update interleaving matches the single engine's —
        pinned by the same streaming golden digest test_stream.py pins."""
        from test_stream import GOLDEN_STREAM_DIGEST

        cluster = _streaming_cluster(trained_engine)
        report = cluster.process(_churn(trained_engine))
        assert report.digest() == GOLDEN_STREAM_DIGEST

    def test_broadcast_invalidates_every_replica(self, trained_engine):
        cluster = _streaming_cluster(
            trained_engine,
            replicas=2, router="round_robin", embed_budget=65536.0,
        )
        report = cluster.process(_churn(trained_engine))
        # Each replica invalidated rows out of its *own* cache; churn is
        # counted as invalidations, never conflated with LFU evictions.
        for rep in cluster.replicas:
            assert rep.stats.invalidations > 0
        assert report.cache_stats.invalidations == sum(
            rep.stats.invalidations for rep in cluster.replicas
        )
        assert report.update_stats is not None
        assert report.update_stats.batches == 16

    def test_post_churn_fleet_serves_updated_graph(self, trained_engine):
        cluster = _streaming_cluster(
            trained_engine,
            replicas=2, router="round_robin", embed_budget=65536.0,
        )
        cluster.process(_churn(trained_engine))
        verts = trained_engine.graph.test_idx[:48]
        rebuilt = cluster.stream.rebuild_from_scratch()
        reference = layerwise_inference(trained_engine.model, rebuilt)
        assert np.array_equal(cluster.serve(verts), reference[verts])

    def test_absorb_update_clears_prob_cache(self, trained_engine):
        """Satellite: ProbCache / EmbeddingCache interplay on one replica.
        An update drops stale probability matrices AND the dirty rows'
        embeddings, leaving clean rows cached."""
        graph = copy.copy(trained_engine.graph)
        cfg = trained_engine.config.replace(
            stream_updates=True, embed_budget=65536.0, kernel="compiled"
        )
        stream = StreamingGraph(graph)
        rep = Replica(trained_engine.model, graph, cfg)
        rng = np.random.default_rng(0)
        targets = np.unique(graph.test_idx[:8])
        rep.logits_for(targets, rng)
        assert len(rep.prob_cache) > 0  # warmed by the serve
        assert len(rep.cache) > 0
        v = int(graph.test_idx[0])
        u = next(
            w for w in range(graph.n)
            if w != v and w not in set(graph.adj.row(v)[0].tolist())
        )
        result = stream.apply(EdgeBatch(np.array([v]), np.array([u]), "insert"))
        spent = rep.absorb_update(result)
        assert spent > 0  # charged to the replica's own clock
        assert len(rep.prob_cache) == 0  # all probability matrices stale
        assert rep.stats.invalidations > 0
        assert rep.stats.evictions == 0  # churn is not budget pressure

    def test_frozen_fleet_rejects_update_workloads(self, trained_engine):
        cluster = _cluster(trained_engine, replicas=2, router="round_robin")
        with pytest.raises(ValueError, match="frozen graph"):
            cluster.process(_churn(trained_engine))


# ---------------------------------------------------------------------- #
# Config / api / CLI wiring
# ---------------------------------------------------------------------- #
class TestFleetWiring:
    def test_runconfig_fleet_fields_validate(self):
        with pytest.raises(ValueError):
            RunConfig(replicas=0)
        with pytest.raises(ValueError):
            RunConfig(router="random")
        with pytest.raises(ValueError):
            RunConfig(shed_policy="drop_all")
        with pytest.raises(ValueError):
            RunConfig(shed_policy="queue", shed_queue_depth=0)
        with pytest.raises(ValueError):
            RunConfig(shed_deadline=-1.0)
        with pytest.raises(ValueError):
            RunConfig(slo_p99=-1.0)
        with pytest.raises(ValueError):
            RunConfig(autoscale_min=3, autoscale_max=2)
        with pytest.raises(ValueError):
            RunConfig(autoscale_interval=0.0)
        with pytest.raises(ValueError):
            RunConfig(slo_p99=1e-3, replicas=9, autoscale_max=8)

    def test_runconfig_fleet_fields_roundtrip(self):
        cfg = RunConfig(
            replicas=4, router="consistent_hash", shed_policy="queue",
            shed_queue_depth=16, slo_p99=1e-3, autoscale_max=6,
        )
        again = RunConfig.from_dict(cfg.to_dict())
        assert again == cfg

    def test_engine_serving_picks_the_fleet(self, trained_engine):
        assert isinstance(trained_engine.serving(), ServingEngine)
        for overrides in (
            {"replicas": 2},
            {"router": "round_robin"},
            {"shed_policy": "queue"},
            {"slo_p99": 1e-3},
        ):
            engine = Engine(
                trained_engine.config.replace(**overrides),
                graph=trained_engine.graph,
            )
            engine._pipeline = trained_engine.pipeline
            assert isinstance(engine.serving(), ServingCluster)

    def test_engine_serving_fleet_flag_overrides(self, trained_engine):
        assert isinstance(
            trained_engine.serving(fleet=True), ServingCluster
        )

    def test_cli_serve_fleet_smoke(self, capsys):
        from repro.cli import main

        rc = main([
            "serve", "products", "--scale", "0.1", "--batch-size", "16",
            "--hidden", "16", "--fanout", "4,3", "--synthetic", "8",
            "--replicas", "2", "--router", "round_robin",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fleet:" in out
        assert "logits digest:" in out
        assert "per-replica" in out

    def test_cli_fleet_digest_matches_single_server(self, capsys):
        """The CLI surface of the exactness contract: same trace, same
        digest line, fleet or not."""
        from repro.cli import main

        argv = [
            "serve", "products", "--scale", "0.1", "--batch-size", "16",
            "--hidden", "16", "--fanout", "4,3", "--synthetic", "8",
        ]
        digests = []
        for extra in ([], ["--replicas", "4", "--router", "consistent_hash"]):
            assert main(argv + extra) == 0
            out = capsys.readouterr().out
            digests.append(
                next(
                    line for line in out.splitlines()
                    if "logits digest:" in line
                )
            )
        assert digests[0] == digests[1]
