"""Property-based tests (hypothesis) on the sparse substrate's invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sparse import CSRMatrix, row_normalize, spgemm, spmm, vstack


@st.composite
def coo_matrices(draw, max_dim: int = 12, max_nnz: int = 40):
    """Random COO triplets (possibly with duplicates) plus a shape."""
    n_rows = draw(st.integers(1, max_dim))
    n_cols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(
        st.lists(st.integers(0, n_rows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return np.array(rows), np.array(cols), np.array(vals), (n_rows, n_cols)


@st.composite
def csr_matrices(draw, max_dim: int = 12, max_nnz: int = 40):
    rows, cols, vals, shape = draw(coo_matrices(max_dim, max_nnz))
    return CSRMatrix.from_coo(rows, cols, vals, shape)


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_from_coo_matches_dense_accumulation(args):
    rows, cols, vals, shape = args
    m = CSRMatrix.from_coo(rows, cols, vals, shape)
    m.check()
    ref = np.zeros(shape)
    np.add.at(ref, (rows.astype(int), cols.astype(int)), vals)
    assert np.allclose(m.to_dense(), ref)


@given(csr_matrices())
@settings(max_examples=60, deadline=None)
def test_transpose_involution(m):
    assert m.transpose().transpose().equal(m)
    assert np.allclose(m.transpose().to_dense(), m.to_dense().T)


@given(csr_matrices(max_dim=8), csr_matrices(max_dim=8))
@settings(max_examples=60, deadline=None)
def test_spgemm_matches_dense(a, b):
    if a.shape[1] != b.shape[0]:
        # Pad/truncate b's row space so the product is defined.
        rows, cols, vals = b.to_coo()
        keep = rows < a.shape[1]
        b = CSRMatrix.from_coo(
            rows[keep], cols[keep], vals[keep], (a.shape[1], b.shape[1])
        )
    out = spgemm(a, b)
    out.check()
    assert np.allclose(out.to_dense(), a.to_dense() @ b.to_dense(), atol=1e-9)


@given(csr_matrices(max_dim=10), st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_spmm_matches_dense(a, width):
    x = np.linspace(-1, 1, a.shape[1] * width).reshape(a.shape[1], width)
    assert np.allclose(spmm(a, x), a.to_dense() @ x, atol=1e-9)


@given(st.lists(csr_matrices(max_dim=6), min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_vstack_preserves_blocks(mats):
    n_cols = mats[0].shape[1]
    mats = [
        m if m.shape[1] == n_cols else CSRMatrix.zeros((m.shape[0], n_cols))
        for m in mats
    ]
    stacked = vstack(mats)
    stacked.check()
    offset = 0
    for m in mats:
        assert stacked.row_block(offset, offset + m.shape[0]).equal(m)
        offset += m.shape[0]


@given(csr_matrices())
@settings(max_examples=60, deadline=None)
def test_row_normalize_is_stochastic_or_empty(m):
    # Normalization needs non-negative weights, as in sampling use.
    m = CSRMatrix(m.indptr, m.indices, np.abs(m.data), m.shape)
    sums = row_normalize(m).row_sums()
    for i, s in enumerate(sums):
        if m.row(i)[1].sum() > 0:
            assert abs(s - 1.0) < 1e-9
        else:
            assert abs(s) < 1e-12


@given(csr_matrices(max_dim=10))
@settings(max_examples=60, deadline=None)
def test_extract_rows_agrees_with_dense_indexing(m):
    rows = np.arange(m.shape[0] - 1, -1, -1)  # reversed order
    sub = m.extract_rows(rows)
    assert np.allclose(sub.to_dense(), m.to_dense()[rows])


@given(csr_matrices(max_dim=10))
@settings(max_examples=60, deadline=None)
def test_add_commutes(m):
    other = CSRMatrix.from_coo(
        m.row_ids(), m.indices, -0.5 * m.data, m.shape
    )
    left = m.add(other).to_dense()
    right = other.add(m).to_dense()
    assert np.allclose(left, right)
    assert np.allclose(left, 0.5 * m.to_dense())
