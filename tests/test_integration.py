"""Cross-module integration: scaling shapes, figure mechanics, end-to-end runs.

Each test here exercises the mechanism behind one of the paper's headline
observations, at test-size workloads (the full reproductions live in
benchmarks/).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import QuiverBaseline, QuiverConfig
from repro.bench import SIM_WORKLOADS, load_bench_graph, run_pipeline_epoch
from repro.comm import Communicator, ProcessGrid
from repro.core import LadiesSampler, SageSampler
from repro.distributed import partitioned_bulk_sampling
from repro.partition import BlockRows
from repro.api import RunConfig
from repro.pipeline import TrainingPipeline


@pytest.fixture(scope="module")
def products_graph():
    wl = SIM_WORKLOADS["products"]
    return wl, load_bench_graph(wl)


class TestFigure4Mechanics:
    def test_pipeline_scales_with_p(self, products_graph):
        """Per-epoch time must drop as GPUs are added (parallel efficiency)."""
        wl, g = products_graph
        totals = {}
        for p in (4, 16):
            stats, c, k = run_pipeline_epoch(g, wl, p=p)
            totals[p] = stats.total
        assert totals[16] < totals[4]
        # At least 35% parallel efficiency over the 4x GPU increase.
        assert totals[4] / totals[16] > 1.4

    def test_speedup_over_quiver_grows_with_p(self, products_graph):
        """The paper's gap widens with GPU count (2.5x at 16 on Products)."""
        wl, g = products_graph
        from repro.bench.harness import work_scale_for

        scale = work_scale_for(wl, g)
        from repro.bench.harness import workload_hidden

        speedups = {}
        for p in (4, 16):
            q = QuiverBaseline(
                g,
                QuiverConfig(
                    p=p, fanout=wl.fanout, batch_size=wl.batch_size,
                    work_scale=scale, hidden=workload_hidden(),
                ),
            ).train_epoch()
            ours, _, _ = run_pipeline_epoch(g, wl, p=p)
            speedups[p] = q.total / ours.total
        assert speedups[16] > speedups[4]
        assert speedups[16] > 1.0


class TestFigure6Mechanics:
    def test_no_replication_slower(self, products_graph):
        wl, g = products_graph
        rep, _, _ = run_pipeline_epoch(g, wl, p=8, c=4)
        norep, _, _ = run_pipeline_epoch(g, wl, p=8, c=1)
        assert norep.feature_fetch > rep.feature_fetch


class TestFigure7Mechanics:
    def test_partitioned_sampling_scales(self):
        """Figure 7 top: partitioned SAGE sampling speeds up from p=16 to
        p=64 when c grows alongside (the paper grows c with p).

        Uses the papers-sim workload: the paper's partitioned experiments
        run on its large sparse graphs, where the sampled frontier is a
        small fraction of V and sparsity-awareness pays off.  Time is the
        sum of phase maxima (the paper's stacked bars).
        """
        wl = SIM_WORKLOADS["papers"]
        g = load_bench_graph(wl)
        from repro.bench.harness import work_scale_for

        scale = work_scale_for(wl, g)
        rng = np.random.default_rng(1)
        batches = [rng.choice(g.n, 32, replace=False) for _ in range(32)]
        times = {}
        for p, c in ((16, 2), (64, 4)):
            comm = Communicator(p, work_scale=scale)
            grid = ProcessGrid(p, c)
            blocks = BlockRows.partition(g.adj, grid.n_rows)
            partitioned_bulk_sampling(
                comm, grid, SageSampler(), blocks, batches, (4, 3), seed=0
            )
            times[p] = sum(comm.clock.breakdown().values())
        assert times[64] < times[16]

    def test_ladies_extraction_dominates(self, products_graph):
        """Section 8.2.2: LADIES time is dominated by column extraction."""
        wl, g = products_graph
        from repro.bench.harness import work_scale_for

        comm = Communicator(16, work_scale=work_scale_for(wl, g))
        grid = ProcessGrid(16, 4)
        blocks = BlockRows.partition(g.adj, grid.n_rows)
        batches = g.make_batches(wl.batch_size)
        partitioned_bulk_sampling(
            comm, grid, LadiesSampler(), blocks, batches,
            (wl.ladies_width,), seed=0,
        )
        bd = comm.clock.breakdown()
        assert bd["extraction"] > bd["sampling"]


class TestEndToEnd:
    def test_full_training_run_all_samplers(self, labeled_graph):
        """Every sampler trains end to end and beats random guessing."""
        chance = 1.0 / labeled_graph.n_classes
        for sampler, fanout in (
            ("sage", (5, 3)),
            ("ladies", (64,)),
            ("fastgcn", (64,)),
        ):
            cfg = RunConfig(
                p=2, c=1, sampler=sampler, fanout=fanout, batch_size=32,
                hidden=32, lr=0.01, seed=1,
            )
            pipe = TrainingPipeline(labeled_graph, cfg)
            for e in range(5):
                pipe.train_epoch(e)
            acc = pipe.evaluate("test")
            assert acc > 2 * chance, sampler

    def test_bench_harness_workloads_load(self):
        for name, wl in SIM_WORKLOADS.items():
            g = load_bench_graph(wl)
            assert g.num_batches(wl.batch_size) == wl.n_batches, name

    def test_harness_auto_c_k(self, products_graph):
        wl, g = products_graph
        stats, c, k = run_pipeline_epoch(g, wl, p=8)
        assert c >= 1 and 1 <= k <= wl.n_batches
        assert stats.total > 0
