"""Shared fixtures: RNGs, small graphs and datasets used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph, load_dataset, planted_partition, rmat


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_adj():
    """A ~512-vertex R-MAT adjacency shared (read-only) across tests."""
    return rmat(9, 8, np.random.default_rng(7))


@pytest.fixture(scope="session")
def paper_example_adj():
    """The 6-vertex example graph of the paper's Figure 1.

    Edges (directed, row = aggregating vertex): matches the adjacency matrix
    drawn in Figure 2a/2b.
    """
    from repro.sparse import CSRMatrix

    dense = np.array(
        [
            [0, 1, 0, 0, 0, 0],
            [1, 0, 1, 0, 1, 0],
            [0, 1, 0, 1, 1, 0],
            [0, 0, 1, 0, 1, 1],
            [0, 1, 1, 1, 0, 1],
            [0, 0, 0, 1, 1, 0],
        ],
        dtype=np.float64,
    )
    return CSRMatrix.from_dense(dense)


@pytest.fixture(scope="session")
def labeled_graph() -> Graph:
    """A planted-partition graph with learnable labels and features."""
    g = load_dataset(
        "products", scale=0.25, seed=3, with_labels=True, n_classes=6
    )
    g.train_idx = np.arange(0, g.n, 2)
    return g


@pytest.fixture(scope="session")
def perf_graph() -> Graph:
    """An unlabeled performance graph with a wide training split."""
    g = load_dataset("products", scale=0.5, seed=4)
    g.train_idx = np.arange(0, g.n, 2)
    return g


@pytest.fixture
def batches(small_adj, rng):
    """Eight 32-vertex minibatches over the small graph."""
    n = small_adj.shape[0]
    return [rng.choice(n, 32, replace=False) for _ in range(8)]
