"""The observability layer: tracer, metrics, exporters, and the two
properties everything hangs on — tracing off is a free no-op that never
perturbs results, and the sim-domain trace of a deterministic run is a
pure function of seed + config (byte-identical across worker counts)."""

from __future__ import annotations

import copy
import hashlib
import json

import numpy as np
import pytest

from repro.api import Engine, RunConfig
from repro.comm import SimClock
from repro.obs import (
    MetricsRegistry,
    Span,
    Tracer,
    chrome_trace,
    chrome_trace_json,
    format_trace_summary,
    get_registry,
    get_tracer,
    maybe_span,
    set_registry,
    set_tracer,
    summarize_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)
from repro.parallel import parallel_support_error
from repro.serve import ServingCluster, TraceWorkload

needs_parallel = pytest.mark.skipif(
    parallel_support_error() is not None,
    reason=f"no shared-memory support here: {parallel_support_error()}",
)


@pytest.fixture(autouse=True)
def _clean_globals():
    """Every test starts with tracing and metrics off (even under
    REPRO_TRACE=1) and leaves the process-wide state as it found it."""
    prior_tracer = set_tracer(None)
    prior_registry = set_registry(None)
    try:
        yield
    finally:
        set_tracer(prior_tracer)
        set_registry(prior_registry)


@pytest.fixture(scope="module")
def trained_engine() -> Engine:
    cfg = RunConfig(
        dataset="products", scale=0.05, train_split=0.5, p=1, c=1,
        algorithm="single", sampler="sage", fanout=(4, 3), batch_size=8,
        hidden=16, epochs=1, seed=0,
    )
    engine = Engine(cfg)
    engine.train(1)
    return engine


# ------------------------------------------------------------------ #
# Tracer
# ------------------------------------------------------------------ #
class TestTracer:
    def test_wall_span_times_with_perf_counter(self):
        tracer = Tracer()
        with tracer.span("work", cat="test"):
            pass
        (sp,) = tracer.spans
        assert sp.domain == "wall"
        assert sp.end >= sp.start
        assert sp.track == "main" and sp.seq == 0

    def test_sim_span_reads_clock_plus_offset(self):
        tracer = Tracer()
        clock = SimClock(1)
        with tracer.span("batch", clock=clock, offset=10.0, track="r0"):
            clock.advance(0, 2.5)
        (sp,) = tracer.spans
        assert sp.domain == "sim"
        assert sp.start == pytest.approx(10.0)
        assert sp.end == pytest.approx(12.5)

    def test_nested_span_inherits_track_clock_offset(self):
        tracer = Tracer()
        clock = SimClock(1)
        with tracer.span("outer", clock=clock, offset=5.0, track="r1"):
            clock.advance(0, 1.0)
            with tracer.span("inner"):
                clock.advance(0, 1.0)
        inner, outer = tracer.spans  # inner closes (and records) first
        assert inner.name == "inner"
        assert inner.track == "r1" and inner.domain == "sim"
        assert inner.start == pytest.approx(6.0)
        assert inner.end == pytest.approx(7.0)
        assert outer.seq == 0 and inner.seq == 1  # seq assigned at open

    def test_wall_domain_escapes_enclosing_sim_clock(self):
        tracer = Tracer()
        clock = SimClock(1)
        with tracer.span("outer", clock=clock, track="r0"):
            with tracer.span("step", domain="wall", track="steps"):
                pass
        step = tracer.spans[0]
        assert step.domain == "wall" and step.track == "steps"

    def test_seq_is_per_track(self):
        tracer = Tracer()
        tracer.instant("a", t=0.0, track="x")
        tracer.instant("b", t=0.0, track="y")
        tracer.instant("c", t=0.0, track="x")
        seqs = {(s.track, s.name): s.seq for s in tracer.spans}
        assert seqs == {("x", "a"): 0, ("y", "b"): 0, ("x", "c"): 1}

    def test_drain_keeps_counters_running(self):
        tracer = Tracer()
        tracer.instant("a", t=0.0, track="x")
        drained = tracer.drain()
        assert len(drained) == 1 and len(tracer) == 0
        tracer.instant("b", t=1.0, track="x")
        assert tracer.spans[0].seq == 1

    def test_absorb_preserves_foreign_seqs_and_bumps_local(self):
        worker = Tracer()
        worker.instant("w0", t=0.0, track="replica0")
        worker.instant("w1", t=1.0, track="replica0")
        owner = Tracer()
        owner.absorb(worker.drain())
        owner.instant("later", t=2.0, track="replica0")
        seqs = [s.seq for s in owner.spans]
        assert seqs == [0, 1, 2]

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(maxlen=2)
        for i in range(4):
            tracer.instant(f"i{i}", t=float(i))
        assert [s.name for s in tracer.spans] == ["i2", "i3"]

    def test_async_span_records_pair(self):
        tracer = Tracer()
        tracer.async_span("request", aid=7, start=1.0, end=3.0, track="r0")
        (sp,) = tracer.spans
        assert sp.kind == "async" and sp.aid == 7
        assert sp.duration == pytest.approx(2.0)

    def test_maybe_span_is_noop_without_tracer(self):
        assert get_tracer() is None
        with maybe_span("anything", cat="x") as sp:
            assert sp is None

    def test_maybe_span_records_with_tracer(self):
        tracer = Tracer()
        set_tracer(tracer)
        with maybe_span("thing", cat="x") as sp:
            sp.args["k"] = 1
        assert len(tracer) == 1
        assert tracer.spans[0].args == {"k": 1}

    def test_set_tracer_returns_previous(self):
        t1 = Tracer()
        assert set_tracer(t1) is None
        assert set_tracer(None) is t1


# ------------------------------------------------------------------ #
# Metrics
# ------------------------------------------------------------------ #
class TestMetrics:
    def test_counter_inc_and_set(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "requests")
        c.inc()
        c.inc(2)
        assert c.value == 3
        c.set(10)
        assert c.value == 10
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("replicas")
        g.inc(3)
        g.dec()
        assert g.value == 2

    def test_labels_key_distinct_children(self):
        reg = MetricsRegistry()
        a = reg.counter("served_total", replica=0)
        b = reg.counter("served_total", replica=1)
        assert a is not b
        assert reg.counter("served_total", replica=0) is a

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().counter("bad name")

    def test_histogram_buckets_and_quantile(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.counts == [1, 1, 1, 1]
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == float("inf")

    def test_render_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("served_total", "requests served", replica=1).set(5)
        reg.gauge("hit_rate").set(0.25)
        reg.histogram("lat_seconds", buckets=(0.1,)).observe(0.05)
        text = reg.render()
        assert "# HELP served_total requests served" in text
        assert "# TYPE served_total counter" in text
        assert 'served_total{replica="1"} 5' in text
        assert "hit_rate 0.25" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text
        # Deterministic: same registry renders byte-identically.
        assert text == reg.render()

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", path='we"ird\\').inc()
        assert 'c_total{path="we\\"ird\\\\"} 1' in reg.render()

    def test_set_registry_returns_previous(self):
        reg = MetricsRegistry()
        assert set_registry(reg) is None
        assert get_registry() is reg
        assert set_registry(None) is reg


# ------------------------------------------------------------------ #
# Chrome export + summary
# ------------------------------------------------------------------ #
def _sample_spans() -> list[Span]:
    return [
        Span("batch", "serve", "sim", "replica0", 0.0, 2.0, 0),
        Span("sampling", "serve", "sim", "replica0", 0.0, 1.5, 1),
        Span("route", "router", "sim", "router", 0.0, 0.0, 0,
             kind="instant", args={"req": 0}),
        Span("request", "request", "sim", "replica0", 0.0, 2.0, 2,
             kind="async", aid=0),
        Span("PROB", "plan", "wall", "steps", 100.0, 100.5, 0),
    ]


class TestChromeExport:
    def test_event_shapes(self):
        payload = chrome_trace(_sample_spans())
        assert validate_chrome_trace(payload) == []
        phs = [e["ph"] for e in payload["traceEvents"]]
        # 2 process_name + 3 thread_name metadata, 3 X, 1 i, b+e pair.
        assert phs.count("M") == 5
        assert phs.count("X") == 3
        assert phs.count("i") == 1
        assert phs.count("b") == 1 and phs.count("e") == 1
        x = next(e for e in payload["traceEvents"]
                 if e["ph"] == "X" and e["name"] == "batch")
        assert x["ts"] == 0.0 and x["dur"] == pytest.approx(2e6)

    def test_sim_and_wall_pids_split(self):
        payload = chrome_trace(_sample_spans())
        by_name = {
            e["args"]["name"]: e["pid"]
            for e in payload["traceEvents"]
            if e["name"] == "process_name"
        }
        assert by_name == {"simulated": 0, "wall-clock": 1}
        prob = next(e for e in payload["traceEvents"] if e["name"] == "PROB")
        assert prob["pid"] == 1
        assert prob["ts"] == 0.0  # wall times normalized to first wall span

    def test_domain_filter(self):
        payload = chrome_trace(_sample_spans(), domain="sim")
        names = {e["name"] for e in payload["traceEvents"]}
        assert "PROB" not in names and "batch" in names

    def test_export_independent_of_recording_order(self):
        spans = _sample_spans()
        shuffled = [spans[i] for i in (3, 0, 4, 2, 1)]
        assert chrome_trace_json(spans) == chrome_trace_json(shuffled)

    def test_write_and_validate_file(self, tmp_path):
        path = write_chrome_trace(tmp_path / "out.json", _sample_spans())
        assert validate_chrome_trace_file(path) == []
        assert json.loads(path.read_text())["displayTimeUnit"] == "ms"

    def test_validator_catches_shape_errors(self):
        errors = validate_chrome_trace({"traceEvents": [
            {"ph": "Z", "name": "x", "pid": 0, "tid": 0, "ts": 0},
            {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0},
            {"ph": "b", "name": "x", "pid": 0, "tid": 0, "ts": 0},
        ]})
        assert len(errors) == 3
        assert any("unknown or missing ph" in e for e in errors)
        assert any("missing dur" in e for e in errors)
        assert any("missing id" in e for e in errors)
        (json_err,) = validate_chrome_trace("not json{")
        assert json_err.startswith("not valid JSON")

    def test_summary_self_time_excludes_children(self):
        payload = chrome_trace(_sample_spans())
        s = summarize_trace(payload)
        top = {e["name"]: e for e in s["top_spans"]}
        assert top["batch"]["total_us"] == pytest.approx(2e6)
        assert top["batch"]["self_us"] == pytest.approx(0.5e6)
        assert top["sampling"]["self_us"] == pytest.approx(1.5e6)
        assert s["slowest_requests"][0]["id"] == 0
        text = format_trace_summary(payload)
        assert "top spans by self-time" in text
        assert "slowest requests" in text


# ------------------------------------------------------------------ #
# Serving integration: flight recorder + no-perturbation guarantees
# ------------------------------------------------------------------ #
def _serve(engine: Engine, *, workers: int = 0, replicas: int = 3,
           n_requests: int = 24):
    cfg = engine.config.replace(
        replicas=replicas, router="round_robin", workers=workers,
        serve_batch_size=4,
    )
    graph = copy.copy(engine.graph)
    cluster = ServingCluster(engine.model, graph, cfg)
    workload = TraceWorkload.synthetic(
        n_requests, engine.graph.test_idx, seed=0, interarrival=1e-4,
    )
    return cluster.process(workload)


def _bulk_digest(samples) -> str:
    h = hashlib.sha256()
    for mb in samples:
        h.update(np.ascontiguousarray(mb.batch, dtype=np.int64).tobytes())
        for layer in mb.layers:
            for arr in (layer.adj.indptr, layer.adj.indices, layer.adj.data):
                h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


class TestServingTraces:
    def test_trace_contains_router_replica_and_request_spans(
        self, trained_engine
    ):
        tracer = Tracer()
        set_tracer(tracer)
        report = _serve(trained_engine)
        spans = tracer.spans
        cats = {s.cat for s in spans}
        assert {"router", "serve", "request"} <= cats
        tracks = {s.track for s in spans}
        assert "router" in tracks
        assert {"replica0", "replica1", "replica2"} <= tracks
        # Flight recorder: every request's route instant and async window
        # carry the same request id.
        routed = {s.args["req"] for s in spans if s.name == "route"}
        flown = {s.aid for s in spans if s.kind == "async"}
        assert routed == flown == set(range(report.n_requests))

    def test_serve_batch_spans_nest_phases(self, trained_engine):
        tracer = Tracer()
        set_tracer(tracer)
        _serve(trained_engine)
        batches = [s for s in tracer.spans if s.name == "serve_batch"]
        phases = [s for s in tracer.spans if s.name == "sampling"]
        assert batches and phases
        assert all(s.domain == "sim" for s in batches + phases)
        # Phases inherit the replica track and sit inside a batch window.
        for ph in phases:
            assert ph.track.startswith("replica")
            assert any(
                b.track == ph.track
                and b.start - 1e-12 <= ph.start <= ph.end <= b.end + 1e-12
                for b in batches
            )

    def test_tracing_does_not_perturb_serving_digest(self, trained_engine):
        off = _serve(trained_engine)
        set_tracer(Tracer())
        on = _serve(trained_engine)
        assert on.digest() == off.digest()
        assert on.per_replica == off.per_replica

    def test_tracing_does_not_perturb_sampler_output(self, trained_engine):
        baseline = _bulk_digest(trained_engine.sample())
        set_tracer(Tracer())
        assert _bulk_digest(trained_engine.sample()) == baseline

    def test_metrics_published_from_serving(self, trained_engine):
        reg = MetricsRegistry()
        set_registry(reg)
        report = _serve(trained_engine)
        text = reg.render()
        assert "serve_requests_total" in text
        assert "serve_replicas" in text
        assert 'serve_replica_requests_total{replica="0"}' in text
        assert "serve_latency_seconds_bucket" in text
        total = reg.counter("serve_requests_total")
        assert total.value == report.n_requests

    def test_no_metrics_recorded_without_registry(self, trained_engine):
        assert get_registry() is None
        _serve(trained_engine)  # must not blow up, must record nothing
        assert get_registry() is None


@needs_parallel
class TestWorkerTraceParity:
    def test_sim_trace_byte_identical_workers_0_vs_4(self, trained_engine):
        exports = {}
        for workers in (0, 4):
            tracer = Tracer()
            set_tracer(tracer)
            report = _serve(trained_engine, workers=workers)
            exports[workers] = chrome_trace_json(tracer.spans, domain="sim")
            set_tracer(None)
            assert report.n_requests == 24
        assert exports[0] == exports[4]

    def test_worker_spans_ship_back_on_wall_tracks(self, trained_engine):
        tracer = Tracer()
        set_tracer(tracer)
        _serve(trained_engine, workers=2)
        # The pool's task round-trips are wall-domain and excluded from
        # the deterministic export, but they must be present in the full
        # trace (proof the workers shipped their spans home).
        wall_tracks = {
            s.track for s in tracer.spans if s.domain == "wall"
        }
        assert any(t.startswith("worker") for t in wall_tracks)


# ------------------------------------------------------------------ #
# CLI: --trace / --metrics / the trace subcommand
# ------------------------------------------------------------------ #
class TestCli:
    def _serve_argv(self, tmp_path, extra=()):
        trace = [
            {"arrival": i * 1e-4, "vertices": [2 * i, 2 * i + 1]}
            for i in range(6)
        ]
        req = tmp_path / "requests.json"
        req.write_text(json.dumps(trace))
        return [
            "serve", "products", "--scale", "0.1", "--batch-size", "16",
            "--hidden", "16", "--fanout", "4,3", "--requests", str(req),
            *extra,
        ]

    def test_serve_trace_flag_writes_valid_trace(
        self, tmp_path, capsys
    ):
        out = tmp_path / "out.json"
        argv = self._serve_argv(tmp_path, ["--trace", str(out)])
        from repro.cli import main

        assert main(argv) == 0
        stdout = capsys.readouterr().out
        assert f"wrote trace: {out}" in stdout
        assert validate_chrome_trace_file(out) == []
        # The CI-pinned digest: tracing must not move it.
        assert (
            "logits digest: 15c0898223e7eaa87504c6c1b7cc0864cd"
            "79595e8bd0ff9b01c0e3b66fe49014" in stdout
        )
        names = {
            e["name"]
            for e in json.loads(out.read_text())["traceEvents"]
        }
        # The default invocation serves through the single engine (no
        # router); replica, phase, and flight-recorder spans must appear.
        assert {"serve_batch", "sampling", "request"} <= names

    @needs_parallel
    def test_serve_trace_through_worker_fleet(self, tmp_path, capsys):
        """The acceptance invocation: a routed fleet through worker
        processes produces one trace holding router, replica, plan-step,
        and worker-side spans that share the request trace ids."""
        out = tmp_path / "fleet.json"
        argv = self._serve_argv(tmp_path, [
            "--workers", "2", "--replicas", "2", "--router", "round_robin",
            "--trace", str(out),
        ])
        from repro.cli import main

        assert main(argv) == 0
        assert validate_chrome_trace_file(out) == []
        events = json.loads(out.read_text())["traceEvents"]
        names = {e["name"] for e in events}
        assert {"route", "serve_batch", "sampling", "request"} <= names
        cats = {e.get("cat") for e in events}
        assert "plan" in cats  # worker-side plan-step spans shipped home
        tracks = {
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        }
        assert "router" in tracks
        assert {"replica0", "replica1"} <= tracks
        assert any(t.startswith("worker") for t in tracks)
        routed = {
            e["args"]["req"] for e in events
            if e["name"] == "route" and e["ph"] == "i"
        }
        flown = {e["id"] for e in events if e["ph"] == "b"}
        assert routed == flown == set(range(6))

    def test_trace_subcommand_summarizes(self, tmp_path, capsys):
        path = write_chrome_trace(tmp_path / "t.json", _sample_spans())
        from repro.cli import main

        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "top spans by self-time" in out
        assert main(["trace", str(path), "--validate"]) == 0
        assert "valid Chrome trace" in capsys.readouterr().out

    def test_trace_subcommand_rejects_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "Z"}]}')
        from repro.cli import main

        assert main(["trace", str(bad), "--validate"]) == 1
        assert "schema:" in capsys.readouterr().err
        assert main(["trace", str(tmp_path / "missing.json")]) == 2

    def test_serve_metrics_flag_renders_registry(self, tmp_path, capsys):
        argv = self._serve_argv(
            tmp_path, ["--metrics", "--embed-budget", "65536"]
        )
        from repro.cli import main

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "# TYPE serve_requests_total counter" in out
        assert "serve_cache_hit_rate" in out
