"""Simulated runtime: cost model, clocks, collectives, grids, ledger."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import (
    Communicator,
    CostModel,
    ProcessGrid,
    SimClock,
    payload_nbytes,
)
from repro.config import PERLMUTTER_LIKE, LinkModel
from repro.sparse import sprand


class TestPayloadSizes:
    def test_basic_types(self):
        assert payload_nbytes(None) == 0
        assert payload_nbytes(3) == 8
        assert payload_nbytes(2.5) == 8
        assert payload_nbytes(np.zeros(10)) == 80

    def test_csr_counts_all_arrays(self, rng):
        m = sprand(10, 10, 0.2, rng)
        expected = m.indptr.nbytes + m.indices.nbytes + m.data.nbytes
        assert payload_nbytes(m) == expected

    def test_nested_containers(self):
        assert payload_nbytes([np.zeros(2), (1, None)]) == 16 + 8
        assert payload_nbytes({"a": np.zeros(4)}) == 32

    def test_duck_typed_wire_size(self):
        class Sized:
            nbytes = 77

        assert payload_nbytes(Sized()) == 77

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            payload_nbytes(object())


class TestCostModel:
    def test_link_selection_by_node(self):
        m = PERLMUTTER_LIKE  # 4 devices per node
        cost = CostModel(m)
        intra = cost.p2p(0, 1, 1e6)
        inter = cost.p2p(0, 4, 1e6)
        assert inter > intra  # crossing a node is slower
        assert cost.p2p(2, 2, 1e6) == 0.0

    def test_link_time_formula(self):
        link = LinkModel(alpha=1e-6, beta=1e-9)
        assert link.time(1000) == pytest.approx(1e-6 + 1e-6)
        with pytest.raises(ValueError):
            link.time(-1)

    def test_collective_costs_scale_with_group(self):
        cost = CostModel(PERLMUTTER_LIKE)
        small = cost.allreduce(range(2), 1e6)
        large = cost.allreduce(range(16), 1e6)
        assert large > small
        assert cost.allreduce(range(1), 1e6) == 0.0
        assert cost.bcast(range(1), 1e6) == 0.0

    def test_compute_roofline(self):
        cost = CostModel(PERLMUTTER_LIKE)
        flop_bound = cost.compute(flops=1e12, nbytes=0, kernels=0)
        mem_bound = cost.compute(flops=0, nbytes=1e12, kernels=0)
        dev = PERLMUTTER_LIKE.device
        assert flop_bound == pytest.approx(1e12 / dev.flops_per_s)
        assert mem_bound == pytest.approx(1e12 / dev.mem_bw)

    def test_kernel_overhead_dominates_tiny_work(self):
        cost = CostModel(PERLMUTTER_LIKE)
        t = cost.compute(flops=10, kernels=100)
        assert t > 99 * PERLMUTTER_LIKE.device.kernel_overhead

    def test_host_paths(self):
        cost = CostModel(PERLMUTTER_LIKE)
        assert cost.host_transfer(25e9) == pytest.approx(1.0)
        assert cost.host_compute(flops=1e12) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            cost.host_transfer(-1)


class TestSimClock:
    def test_advance_and_elapsed(self):
        clk = SimClock(3)
        clk.advance(0, 1.0)
        clk.advance(1, 2.0, "comm")
        assert clk.time(0) == 1.0
        assert clk.elapsed() == 2.0

    def test_barrier_synchronizes(self):
        clk = SimClock(3)
        clk.advance(2, 5.0)
        t = clk.barrier([0, 2])
        assert t == 5.0
        assert clk.time(0) == 5.0
        assert clk.time(1) == 0.0  # not in the barrier group

    def test_phase_attribution(self):
        clk = SimClock(2)
        with clk.phase("sampling"):
            clk.advance(0, 1.0)
            clk.advance(1, 3.0, "comm")
        with clk.phase("fetch"):
            clk.advance(0, 2.0)
        assert clk.phase_seconds("sampling") == 3.0  # max over ranks
        assert clk.phase_seconds("sampling", "comm") == 3.0
        assert clk.phase_seconds("sampling", "compute") == 1.0
        assert clk.phase_seconds("fetch") == 2.0
        assert clk.breakdown() == {"sampling": 3.0, "fetch": 2.0}

    def test_nested_phases(self):
        clk = SimClock(1)
        with clk.phase("outer"):
            with clk.phase("inner"):
                clk.advance(0, 1.0)
            clk.advance(0, 1.0)
        assert clk.phase_seconds("inner") == 1.0
        assert clk.phase_seconds("outer") == 1.0

    def test_invalid_inputs(self):
        clk = SimClock(1)
        with pytest.raises(ValueError):
            clk.advance(0, -1.0)
        with pytest.raises(ValueError):
            clk.advance(0, 1.0, "weird")
        with pytest.raises(ValueError):
            SimClock(0)

    def test_reset(self):
        clk = SimClock(2)
        clk.advance(0, 1.0)
        clk.reset()
        assert clk.elapsed() == 0.0
        assert clk.breakdown() == {}


class TestProcessGrid:
    def test_shape_and_coords(self):
        g = ProcessGrid(8, 2)
        assert g.n_rows == 4
        assert g.coords(5) == (2, 1)
        assert g.rank(2, 1) == 5
        assert g.row_ranks(1) == [2, 3]
        assert g.col_ranks(0) == [0, 2, 4, 6]
        assert g.all_ranks() == list(range(8))

    def test_degenerate_1d(self):
        g = ProcessGrid(4, 1)
        assert g.n_rows == 4
        assert g.row_ranks(2) == [2]
        assert g.col_ranks(0) == [0, 1, 2, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessGrid(8, 3)  # c must divide p
        with pytest.raises(ValueError):
            ProcessGrid(0, 1)
        g = ProcessGrid(4, 2)
        with pytest.raises(ValueError):
            g.coords(4)
        with pytest.raises(ValueError):
            g.rank(2, 0)


class TestCollectives:
    def test_bcast_returns_value_and_charges(self):
        comm = Communicator(4)
        out = comm.bcast(np.arange(10), [0, 1, 2, 3])
        assert np.array_equal(out, np.arange(10))
        assert comm.clock.elapsed() > 0
        assert comm.ledger.received() == 3 * 80

    def test_allreduce_sums_arrays(self):
        comm = Communicator(4)
        out = comm.allreduce([np.full(3, float(r)) for r in range(4)], range(4))
        assert np.allclose(out, 6.0)

    def test_allreduce_sums_csr(self, rng):
        comm = Communicator(2)
        a = sprand(5, 5, 0.3, rng)
        b = sprand(5, 5, 0.3, rng)
        out = comm.allreduce([a, b], [0, 1])
        assert np.allclose(out.to_dense(), a.to_dense() + b.to_dense())

    def test_allreduce_single_rank_is_free(self):
        comm = Communicator(2)
        comm.allreduce([np.ones(5)], [1])
        assert comm.clock.elapsed() == 0.0

    def test_gather_collects_in_order(self):
        comm = Communicator(3)
        out = comm.gather([10, 20, 30], [0, 1, 2], root_pos=1)
        assert out == [10, 20, 30]
        # Root received the two non-root payloads.
        assert comm.ledger.received(rank=1) == 16

    def test_allgather(self):
        comm = Communicator(3)
        out = comm.allgather([np.full(2, r) for r in range(3)], range(3))
        assert len(out) == 3 and np.allclose(out[2], 2)

    def test_alltoallv_transposes_payloads(self):
        comm = Communicator(3)
        send = [[(i, j) for j in range(3)] for i in range(3)]
        send = [[np.array([i * 10 + j]) for j in range(3)] for i in range(3)]
        recv = comm.alltoallv(send, [0, 1, 2])
        for i in range(3):
            for j in range(3):
                assert recv[j][i][0] == i * 10 + j

    def test_alltoallv_shape_validation(self):
        comm = Communicator(2)
        with pytest.raises(ValueError):
            comm.alltoallv([[1]], [0, 1])

    def test_scatterv(self):
        comm = Communicator(4)
        payloads = [np.full(r + 1, r) for r in range(4)]
        out = comm.scatterv(payloads, [0, 1, 2, 3], root_pos=0)
        assert np.allclose(out[3], 3)
        # Root sent all non-root bytes.
        assert comm.ledger.sent(rank=0) == 8 * (2 + 3 + 4)

    def test_p2p(self):
        comm = Communicator(2)
        out = comm.p2p(0, 1, np.ones(4))
        assert np.allclose(out, 1.0)
        assert comm.ledger.sent(rank=0) == 32
        assert comm.ledger.received(rank=1) == 32
        assert comm.p2p(1, 1, 5) == 5  # self-send is free

    def test_group_validation(self):
        comm = Communicator(4)
        with pytest.raises(ValueError):
            comm.bcast(1, [0, 0])
        with pytest.raises(ValueError):
            comm.bcast(1, [0, 7])
        with pytest.raises(ValueError):
            comm.allreduce([1], [0, 1])

    def test_inter_node_collectives_cost_more(self):
        comm = Communicator(8)
        comm.allreduce([np.ones(1000)] * 4, [0, 1, 2, 3])  # one node
        t_intra = comm.clock.elapsed()
        comm2 = Communicator(8)
        comm2.allreduce([np.ones(1000)] * 4, [0, 2, 4, 6])  # spans nodes
        assert comm2.clock.elapsed() > t_intra


class TestVolumeLedger:
    def test_phase_filtering(self):
        comm = Communicator(2)
        with comm.phase("a"):
            comm.p2p(0, 1, np.ones(2))
        with comm.phase("b"):
            comm.p2p(1, 0, np.ones(4))
        assert comm.ledger.sent("a") == 16
        assert comm.ledger.sent("b") == 32
        assert comm.ledger.sent() == 48
        assert comm.ledger.phases() == ["a", "b"]
        assert comm.ledger.messages("a") == 1

    def test_reset(self):
        comm = Communicator(2)
        comm.p2p(0, 1, np.ones(2))
        comm.ledger.reset()
        assert comm.ledger.sent() == 0
