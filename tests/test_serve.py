"""The online serving subsystem: queueing policy, embedding cache, engine
exactness, workloads, and the api/CLI wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Engine, RunConfig
from repro.pipeline import layerwise_inference
from repro.serve import (
    ClosedLoopWorkload,
    EmbeddingCache,
    InferenceRequest,
    MicroBatcher,
    RequestQueue,
    ServingEngine,
    TraceWorkload,
    load_trace,
    save_trace,
)


@pytest.fixture(scope="module")
def trained_engine() -> Engine:
    cfg = RunConfig(
        dataset="products", scale=0.1, train_split=0.5, p=1, c=1,
        algorithm="single", sampler="sage", fanout=(4, 3), batch_size=16,
        hidden=16, epochs=1, seed=0,
    )
    engine = Engine(cfg)
    engine.train(1)
    return engine


@pytest.fixture(scope="module")
def reference_logits(trained_engine) -> np.ndarray:
    return layerwise_inference(trained_engine.model, trained_engine.graph)


def _requests(specs):
    return [
        InferenceRequest(rid=i, vertices=np.array(v), arrival=t)
        for i, (t, v) in enumerate(specs)
    ]


class TestRequestTypes:
    def test_request_validation(self):
        with pytest.raises(ValueError):
            InferenceRequest(rid=0, vertices=np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            InferenceRequest(rid=0, vertices=np.array([1]), arrival=-1.0)
        with pytest.raises(ValueError):
            InferenceRequest(rid=0, vertices=np.array([[1, 2]]))

    def test_vertices_coerced_to_int64(self):
        req = InferenceRequest(rid=0, vertices=np.array([3.0, 1.0]))
        assert req.vertices.dtype == np.int64


class TestMicroBatcher:
    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_wait=-1.0)

    def test_full_batch_dispatches_immediately(self):
        q = RequestQueue()
        for r in _requests([(0.0, [1]), (0.0, [2]), (0.0, [3])]):
            q.push(r)
        t, batch = MicroBatcher(3, max_wait=10.0).next_dispatch(q, free_at=0.0)
        assert t == 0.0
        assert [r.rid for r in batch] == [0, 1, 2]

    def test_partial_batch_waits_out_max_wait(self):
        q = RequestQueue()
        for r in _requests([(0.0, [1]), (0.001, [2])]):
            q.push(r)
        t, batch = MicroBatcher(8, max_wait=0.005).next_dispatch(q, 0.0)
        assert t == pytest.approx(0.005)  # oldest arrival + max_wait
        assert len(batch) == 2  # the second request joined before the flush

    def test_arrival_can_complete_a_batch_early(self):
        q = RequestQueue()
        for r in _requests([(0.0, [1]), (0.002, [2])]):
            q.push(r)
        t, batch = MicroBatcher(2, max_wait=0.01).next_dispatch(q, 0.0)
        assert t == pytest.approx(0.002)  # filled by the second arrival
        assert len(batch) == 2

    def test_arrival_after_deadline_left_behind(self):
        q = RequestQueue()
        for r in _requests([(0.0, [1]), (0.02, [2])]):
            q.push(r)
        batcher = MicroBatcher(8, max_wait=0.005)
        t, batch = batcher.next_dispatch(q, 0.0)
        assert t == pytest.approx(0.005) and [r.rid for r in batch] == [0]
        t2, batch2 = batcher.next_dispatch(q, free_at=t)
        assert t2 == pytest.approx(0.025) and [r.rid for r in batch2] == [1]

    def test_server_busy_collects_arrivals(self):
        """Requests arriving while the server is busy form the next batch."""
        q = RequestQueue()
        for r in _requests([(0.0, [1]), (0.001, [2]), (0.002, [3])]):
            q.push(r)
        batcher = MicroBatcher(2, max_wait=10.0)
        t, batch = batcher.next_dispatch(q, free_at=0.0)
        assert t == pytest.approx(0.001) and len(batch) == 2
        # Server busy until 0.05: the remaining request waits for it (its
        # max_wait deadline passed long before the server freed up).
        t2, batch2 = batcher.next_dispatch(q, free_at=0.05)
        assert t2 >= 0.05 and [r.rid for r in batch2] == [2]

    def test_idle_queue_returns_none(self):
        assert MicroBatcher(4).next_dispatch(RequestQueue(), 0.0) is None

    def test_empty_queue_none_regardless_of_free_time(self):
        assert MicroBatcher(4).next_dispatch(RequestQueue(), 123.0) is None

    def test_zero_max_wait_flushes_on_arrival(self):
        """max_wait=0 degenerates to dispatch-on-arrival: a lone request
        never waits for company."""
        q = RequestQueue()
        for r in _requests([(0.003, [1]), (0.01, [2])]):
            q.push(r)
        t, batch = MicroBatcher(8, max_wait=0.0).next_dispatch(q, free_at=0.0)
        assert t == pytest.approx(0.003)
        assert [r.rid for r in batch] == [0]

    def test_zero_max_wait_still_coalesces_while_busy(self):
        """Even at max_wait=0, requests that accumulate behind a busy
        server leave as one batch when it frees up."""
        q = RequestQueue()
        for r in _requests([(0.0, [1]), (0.001, [2]), (0.002, [3])]):
            q.push(r)
        t, batch = MicroBatcher(8, max_wait=0.0).next_dispatch(q, free_at=0.01)
        assert t == pytest.approx(0.01)
        assert [r.rid for r in batch] == [0, 1, 2]

    def test_size_forced_vs_deadline_forced(self):
        """The same arrivals dispatch at the last member's arrival when the
        batch fills (size-forced) but at oldest+max_wait when it cannot
        (deadline-forced)."""
        specs = [(0.0, [1]), (0.002, [2])]
        q = RequestQueue()
        for r in _requests(specs):
            q.push(r)
        t_size, batch = MicroBatcher(2, max_wait=0.01).next_dispatch(q, 0.0)
        assert t_size == pytest.approx(0.002) and len(batch) == 2
        q = RequestQueue()
        for r in _requests(specs):
            q.push(r)
        t_wait, batch = MicroBatcher(8, max_wait=0.01).next_dispatch(q, 0.0)
        assert t_wait == pytest.approx(0.01) and len(batch) == 2

    def test_batch_size_one_is_per_request(self):
        q = RequestQueue()
        for r in _requests([(0.0, [1]), (0.0, [2])]):
            q.push(r)
        batcher = MicroBatcher(1, max_wait=10.0)
        _, b1 = batcher.next_dispatch(q, 0.0)
        _, b2 = batcher.next_dispatch(q, 0.0)
        assert [r.rid for r in b1] == [0] and [r.rid for r in b2] == [1]


class TestEmbeddingCache:
    def test_validation(self):
        with pytest.raises(ValueError):
            EmbeddingCache(0, 4, budget_bytes=100)
        with pytest.raises(ValueError):
            EmbeddingCache(10, 4, budget_bytes=-1)

    def test_capacity_from_budget(self):
        cache = EmbeddingCache(100, 4, budget_bytes=3 * 8 * 4)
        assert cache.capacity_rows == 3

    def test_exact_rows_roundtrip(self):
        cache = EmbeddingCache(10, 3, budget_bytes=1e6)
        rows = np.arange(6, dtype=np.float64).reshape(2, 3) / 7.0
        cache.insert(np.array([4, 7]), rows)
        mask, got = cache.lookup(np.array([4, 5, 7]))
        assert mask.tolist() == [True, False, True]
        assert np.array_equal(got, rows)
        assert cache.stats.hits == 2 and cache.stats.misses == 1

    def test_lfu_eviction_keeps_hot_rows(self):
        cache = EmbeddingCache(10, 2, budget_bytes=2 * 8 * 2)  # 2 rows
        for _ in range(3):
            cache.lookup(np.array([1]))  # vertex 1 is hot
        cache.lookup(np.array([2, 3]))
        cache.insert(np.array([1, 2]), np.zeros((2, 2)))
        cache.insert(np.array([3]), np.ones((1, 2)))  # over budget
        assert 1 in cache.cached_ids  # hottest survives
        assert len(cache) == 2
        assert cache.stats.evictions == 1

    def test_zero_budget_caches_nothing(self):
        cache = EmbeddingCache(10, 2, budget_bytes=0)
        cache.insert(np.array([1]), np.zeros((1, 2)))
        assert len(cache) == 0

    def test_clear(self):
        cache = EmbeddingCache(10, 2, budget_bytes=1e6)
        cache.insert(np.array([1]), np.zeros((1, 2)))
        cache.clear()
        assert len(cache) == 0


class TestWorkloads:
    def test_trace_roundtrip(self, tmp_path):
        wl = TraceWorkload(
            _requests([(0.0, [1, 2]), (0.5, [3])])
        )
        path = save_trace(wl, tmp_path / "trace.json")
        loaded = load_trace(path)
        assert len(loaded.requests) == 2
        assert np.array_equal(loaded.requests[0].vertices, [1, 2])
        assert loaded.requests[1].arrival == 0.5

    def test_load_trace_rejects_empty(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_synthetic_trace_deterministic(self):
        pool = np.arange(50)
        a = TraceWorkload.synthetic(10, pool, seed=3)
        b = TraceWorkload.synthetic(10, pool, seed=3)
        assert all(
            np.array_equal(x.vertices, y.vertices)
            for x, y in zip(a.requests, b.requests)
        )

    def test_closed_loop_issues_after_completion(self):
        wl = ClosedLoopWorkload(5, np.arange(20), clients=2, seed=0)
        first = wl.initial()
        assert len(first) == 2 and all(r.arrival == 0.0 for r in first)
        from repro.serve import InferenceResult

        result = InferenceResult(
            request=first[0], logits=np.zeros((1, 2)), dispatched=0.0,
            completed=0.25, batch_index=0, batch_size=2,
        )
        nxt = wl.on_complete(result)
        assert len(nxt) == 1 and nxt[0].arrival == 0.25

    def test_closed_loop_caps_total_requests(self, trained_engine):
        wl = ClosedLoopWorkload(
            7, trained_engine.graph.test_idx, clients=3, seed=0
        )
        report = trained_engine.serving().process(wl)
        assert report.n_requests == 7


class TestServingExactness:
    def test_bit_identical_to_layerwise_cache_off(
        self, trained_engine, reference_logits
    ):
        wl = ClosedLoopWorkload(
            24, trained_engine.graph.test_idx, clients=6, seed=1
        )
        report = trained_engine.serving().process(wl)
        for r in report.results:
            assert np.array_equal(
                r.logits, reference_logits[r.request.vertices]
            )

    def test_bit_identical_with_cache_on(
        self, trained_engine, reference_logits
    ):
        server = ServingEngine(
            trained_engine.model,
            trained_engine.graph,
            trained_engine.config.replace(embed_budget=65536.0),
        )
        wl = ClosedLoopWorkload(
            24, trained_engine.graph.test_idx, clients=6, seed=1
        )
        report = server.process(wl)
        assert report.cache_stats is not None
        assert report.cache_stats.hits > 0  # the cache actually engaged
        for r in report.results:
            assert np.array_equal(
                r.logits, reference_logits[r.request.vertices]
            )

    def test_digest_invariant_to_batching_policy(self, trained_engine):
        reports = []
        for batch_cap, budget in ((1, 0.0), (8, 0.0), (4, 32768.0)):
            server = ServingEngine(
                trained_engine.model,
                trained_engine.graph,
                trained_engine.config.replace(
                    serve_batch_size=batch_cap, embed_budget=budget
                ),
            )
            wl = TraceWorkload.synthetic(
                20, trained_engine.graph.test_idx, seed=5, interarrival=1e-4
            )
            reports.append(server.process(wl))
        digests = {r.digest() for r in reports}
        assert len(digests) == 1

    def test_multi_vertex_and_duplicate_requests(
        self, trained_engine, reference_logits
    ):
        verts = trained_engine.graph.test_idx[:3]
        req = np.array([verts[0], verts[2], verts[0]])  # duplicates kept
        logits = trained_engine.serving().serve(req)
        assert logits.shape[0] == 3
        assert np.array_equal(logits, reference_logits[req])

    def test_one_layer_model_exact(self):
        cfg = RunConfig(
            dataset="products", scale=0.1, train_split=0.5, p=1, c=1,
            algorithm="single", sampler="ladies", fanout=(8,),
            batch_size=16, hidden=16, epochs=1, seed=0,
        )
        engine = Engine(cfg)
        engine.train(1)
        ref = layerwise_inference(engine.model, engine.graph)
        logits = engine.serving().serve(engine.graph.test_idx[:5])
        assert np.array_equal(logits, ref[engine.graph.test_idx[:5]])

    def test_non_relu_model_exact(self):
        cfg = RunConfig(
            dataset="products", scale=0.1, train_split=0.5, p=1, c=1,
            algorithm="single", sampler="sage", fanout=(4, 3),
            batch_size=16, hidden=16, epochs=1, seed=0, activation="tanh",
        )
        engine = Engine(cfg)
        engine.train(1)
        ref = layerwise_inference(engine.model, engine.graph)
        logits = engine.serving().serve(engine.graph.test_idx[:5])
        assert np.array_equal(logits, ref[engine.graph.test_idx[:5]])


class TestServingDynamics:
    def test_micro_batching_beats_per_request(self, trained_engine):
        """The acceptance criterion: batch >= 8 strictly out-throughputs
        one-request-at-a-time sampling at the same offered load."""
        rates = {}
        for cap in (1, 8):
            server = ServingEngine(
                trained_engine.model,
                trained_engine.graph,
                trained_engine.config.replace(serve_batch_size=cap),
            )
            wl = ClosedLoopWorkload(
                48, trained_engine.graph.test_idx, clients=8, seed=2
            )
            rates[cap] = server.process(wl).throughput
        assert rates[8] > rates[1]

    def test_latency_accounting(self, trained_engine):
        server = trained_engine.serving()
        wl = TraceWorkload(
            _requests([(0.0, [int(trained_engine.graph.test_idx[0])])])
        )
        report = server.process(wl)
        r = report.results[0]
        # A lone request waits out max_wait before its batch dispatches.
        assert r.dispatched == pytest.approx(
            trained_engine.config.serve_max_wait
        )
        assert r.completed > r.dispatched
        assert r.latency == pytest.approx(r.queue_wait + (r.completed - r.dispatched))
        assert report.phase_seconds["sampling"] > 0
        assert report.phase_seconds["propagation"] > 0

    def test_report_row_and_summary(self, trained_engine):
        wl = TraceWorkload.synthetic(
            8, trained_engine.graph.test_idx, seed=0
        )
        report = trained_engine.serving().process(wl)
        row = report.row()
        assert row["requests"] == 8
        summary = report.latency_summary()
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert report.throughput > 0

    def test_sampled_mode_runs_any_sampler(self, trained_engine):
        server = ServingEngine(
            trained_engine.model, trained_engine.graph,
            trained_engine.config, fanout=(3, 2),
        )
        assert not server.exact
        wl = TraceWorkload.synthetic(6, trained_engine.graph.test_idx, seed=0)
        report = server.process(wl)
        assert report.n_requests == 6

    def test_sampled_mode_fanout_length_checked(self, trained_engine):
        with pytest.raises(ValueError):
            ServingEngine(
                trained_engine.model, trained_engine.graph,
                trained_engine.config, fanout=(3,),
            )


class TestWiring:
    def test_runconfig_serving_fields_validate(self):
        with pytest.raises(ValueError):
            RunConfig(serve_batch_size=0)
        with pytest.raises(ValueError):
            RunConfig(serve_max_wait=-1.0)
        with pytest.raises(ValueError):
            RunConfig(embed_budget=-1.0)
        with pytest.raises(ValueError):
            RunConfig(activation="softplus")

    def test_runconfig_serving_fields_roundtrip(self):
        cfg = RunConfig(
            serve_batch_size=4, serve_max_wait=0.002, embed_budget=1e5,
            activation="tanh",
        )
        again = RunConfig.from_dict(cfg.to_dict())
        assert again.serve_batch_size == 4
        assert again.serve_max_wait == 0.002
        assert again.embed_budget == 1e5
        assert again.activation == "tanh"

    def test_engine_serving_constructor(self, trained_engine):
        server = trained_engine.serving()
        assert isinstance(server, ServingEngine)
        assert server.exact
        assert server.model is trained_engine.model

    def test_cli_serve_smoke(self, capsys):
        from repro.cli import main

        rc = main([
            "serve", "products", "--scale", "0.1", "--batch-size", "16",
            "--hidden", "16", "--fanout", "4,3", "--synthetic", "8",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "logits digest:" in out
        assert "latency: p50" in out

    def test_cli_serve_trace_file(self, tmp_path, capsys):
        from repro.cli import main

        trace = TraceWorkload(_requests([(0.0, [1]), (1e-4, [2, 3])]))
        path = save_trace(trace, tmp_path / "trace.json")
        rc = main([
            "serve", "products", "--scale", "0.1", "--batch-size", "16",
            "--hidden", "16", "--fanout", "4,3", "--requests", str(path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "served 2 requests" in out

    def test_cli_serve_missing_trace_errors(self, capsys):
        from repro.cli import main

        rc = main([
            "serve", "products", "--scale", "0.1",
            "--requests", "/nonexistent/trace.json",
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_serve_out_of_range_vertex_errors(self, tmp_path, capsys):
        """A malformed trace is a user error: one line, exit 2."""
        from repro.cli import main

        trace = TraceWorkload(_requests([(0.0, [10**9])]))
        path = save_trace(trace, tmp_path / "bad.json")
        rc = main([
            "serve", "products", "--scale", "0.1", "--batch-size", "16",
            "--hidden", "16", "--fanout", "4,3", "--requests", str(path),
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err

    def test_cli_activation_flag(self):
        from repro.cli import _resolve_train_config, build_parser

        args = build_parser().parse_args(
            ["train", "products", "--activation", "tanh"]
        )
        assert _resolve_train_config(args).activation == "tanh"

    def test_process_reports_per_run_counters(self, trained_engine):
        """A reused server reports each run's own breakdown and stats."""
        server = ServingEngine(
            trained_engine.model,
            trained_engine.graph,
            trained_engine.config.replace(embed_budget=65536.0),
        )
        wl = lambda: TraceWorkload.synthetic(  # noqa: E731
            10, trained_engine.graph.test_idx, seed=4
        )
        first = server.process(wl())
        second = server.process(wl())
        # Identical workload, so the second run's phase seconds must be in
        # the same ballpark (cache warm-up makes it cheaper, not ~2x).
        assert second.phase_seconds["sampling"] <= first.phase_seconds["sampling"]
        assert second.cache_stats.requests == first.cache_stats.requests
        # The first report's snapshot survived the second run's reset.
        assert first.cache_stats.requests > 0
