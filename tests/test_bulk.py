"""Bulk sampling: stacking bookkeeping and bulk-vs-single equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LadiesSampler,
    SageSampler,
    assign_round_robin,
    batch_rng,
    chunk_bulks,
    reassemble_round_robin,
    split_stacked,
    stack_batches,
)


class TestBookkeeping:
    def test_chunk_bulks(self):
        bs = list(range(10))
        bulks = chunk_bulks(bs, 4)
        assert [len(b) for b in bulks] == [4, 4, 2]
        assert bulks[2] == [8, 9]
        with pytest.raises(ValueError):
            chunk_bulks(bs, 0)

    def test_chunk_bulks_exact_division(self):
        assert [len(b) for b in chunk_bulks(list(range(8)), 4)] == [4, 4]

    def test_assign_round_robin(self):
        owners = assign_round_robin(10, 4)
        assert owners[0] == [0, 4, 8]
        assert owners[3] == [3, 7]
        assert sorted(sum(owners, [])) == list(range(10))
        # balance within one item
        sizes = [len(o) for o in owners]
        assert max(sizes) - min(sizes) <= 1
        with pytest.raises(ValueError):
            assign_round_robin(4, 0)

    def test_reassemble_inverts_assignment(self):
        """The shared helper both distributed drivers use: ownership
        round-trips for every (n_items, n_owners) shape."""
        for n_items in (0, 1, 5, 10, 16):
            for n_owners in (1, 2, 3, 4, 7):
                owners = assign_round_robin(n_items, n_owners)
                per_owner = [[f"item{i}" for i in idxs] for idxs in owners]
                out = reassemble_round_robin(per_owner, n_items)
                assert out == [f"item{i}" for i in range(n_items)]

    def test_reassemble_validates_counts(self):
        with pytest.raises(ValueError, match="3 items"):
            reassemble_round_robin([[1, 2], [3]], 4)
        with pytest.raises(ValueError):
            reassemble_round_robin([], 2)

    def test_reassemble_rejects_lopsided_owners(self):
        # Right total, wrong shape: owner 1 cannot hold 3 of 4 items.
        with pytest.raises(ValueError):
            reassemble_round_robin([[1], [2, 3, 4]], 4)

    def test_batch_rng_streams_are_independent_and_stable(self):
        a = batch_rng(3, 5).integers(0, 1 << 30, 8)
        b = batch_rng(3, 5).integers(0, 1 << 30, 8)
        c = batch_rng(3, 6).integers(0, 1 << 30, 8)
        d = batch_rng(4, 5).integers(0, 1 << 30, 8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert not np.array_equal(a, d)

    def test_stack_and_split(self):
        batches = [np.array([3, 1]), np.array([7]), np.array([2, 8, 4])]
        stacked, owner = stack_batches(batches)
        assert np.array_equal(stacked, [3, 1, 7, 2, 8, 4])
        assert np.array_equal(owner, [0, 0, 1, 2, 2, 2])
        parts = split_stacked(stacked, owner, 3)
        for got, want in zip(parts, batches):
            assert np.array_equal(got, want)
        with pytest.raises(ValueError):
            stack_batches([])
        with pytest.raises(ValueError):
            split_stacked(stacked, owner[:-1], 3)


class TestBulkEquivalence:
    """Bulk sampling must be distribution-identical to per-batch sampling.

    The outputs for a batch cannot be bitwise-equal across bulk sizes (the
    RNG stream differs), so we compare *statistics*: marginal frequencies of
    sampled vertices for a fixed batch under bulk vs solo sampling.
    """

    def _marginals(self, adj, batch, runs, sample_fn):
        counts = np.zeros(adj.shape[0])
        for seed in range(runs):
            mb = sample_fn(batch, seed)
            counts[mb.layers[0].src_ids] += 1
        return counts / runs

    def test_sage_bulk_marginals_match_solo(self, small_adj):
        sampler = SageSampler(include_dst=False)
        batch = np.arange(16)
        other = np.arange(16, 32)
        runs = 300

        solo = self._marginals(
            small_adj, batch, runs,
            lambda b, s: sampler.sample_bulk(
                small_adj, [b], (3,), np.random.default_rng(s)
            )[0],
        )
        bulk = self._marginals(
            small_adj, batch, runs,
            lambda b, s: sampler.sample_bulk(
                small_adj, [b, other], (3,), np.random.default_rng(10_000 + s)
            )[0],
        )
        # Compare only vertices with non-trivial probability.
        active = (solo > 0.02) | (bulk > 0.02)
        assert np.max(np.abs(solo[active] - bulk[active])) < 0.15

    def test_ladies_bulk_marginals_match_solo(self, small_adj):
        sampler = LadiesSampler()
        batch = np.arange(16)
        other = np.arange(16, 32)
        runs = 300

        solo = self._marginals(
            small_adj, batch, runs,
            lambda b, s: sampler.sample_bulk(
                small_adj, [b], (8,), np.random.default_rng(s)
            )[0],
        )
        bulk = self._marginals(
            small_adj, batch, runs,
            lambda b, s: sampler.sample_bulk(
                small_adj, [b, other], (8,), np.random.default_rng(10_000 + s)
            )[0],
        )
        active = (solo > 0.02) | (bulk > 0.02)
        assert np.max(np.abs(solo[active] - bulk[active])) < 0.15

    def test_bulk_output_order_matches_input(self, small_adj, rng):
        batches = [rng.choice(small_adj.shape[0], 8, replace=False) for _ in range(5)]
        out = SageSampler().sample_bulk(small_adj, batches, (3,), rng)
        for mb, batch in zip(out, batches):
            assert np.array_equal(mb.batch, batch)

    def test_bulk_handles_heterogeneous_batch_sizes(self, small_adj, rng):
        batches = [np.arange(4), np.arange(10, 40), np.arange(50, 51)]
        out = SageSampler().sample_bulk(small_adj, batches, (3, 2), rng)
        assert [len(mb.batch) for mb in out] == [4, 30, 1]
