"""Sampler semantics: the paper's worked example, GraphSAGE, LADIES, FastGCN."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FastGCNSampler,
    LadiesSampler,
    LayerSample,
    MinibatchSample,
    SageSampler,
)
from repro.sparse import CSRMatrix, indicator_rows, row_selector, spgemm


class TestPaperWorkedExample:
    """Checks against the concrete numbers in the paper's Figures 1 and 2."""

    def test_sage_probability_matrix(self, paper_example_adj):
        """Figure 2a: P for batch {1, 5} has 1/3 over N(1), 1/2 over N(5)."""
        sampler = SageSampler()
        q = sampler.make_q(np.array([1, 5]), 6)
        p = sampler.norm(spgemm(q, paper_example_adj))
        dense = p.to_dense()
        expected = np.array(
            [
                [1 / 3, 0, 1 / 3, 0, 1 / 3, 0],
                [0, 0, 0, 1 / 2, 1 / 2, 0],
            ]
        )
        assert np.allclose(dense, expected)

    def test_ladies_probability_matrix(self, paper_example_adj):
        """Section 2.2.2: batch {1,5} gives p = [1/7, 0, 1/7, 1/7, 4/7, 0]."""
        sampler = LadiesSampler()
        q = sampler.make_q([np.array([1, 5])], 6)
        p = sampler.norm(spgemm(q, paper_example_adj))
        expected = np.array([[1 / 7, 0, 1 / 7, 1 / 7, 4 / 7, 0]])
        assert np.allclose(p.to_dense(), expected)

    def test_ladies_extraction_for_papers_sample(self, paper_example_adj):
        """Figure 2b: sampling {0, 4} for batch {1, 5} keeps every edge
        between the two sets: (1,0), (1,4), (5,4)."""
        sampler = LadiesSampler()
        a_r = sampler.row_extract(paper_example_adj, [np.array([1, 5])])
        adjs = sampler.col_extract(a_r, [np.array([1, 5])], [np.array([0, 4])])
        expected = np.array([[1.0, 1.0], [0.0, 1.0]])
        assert np.allclose(adjs[0].to_dense(), expected)


class TestSageSampler:
    def test_fanout_respected(self, small_adj, batches, rng):
        sampler = SageSampler(include_dst=False)
        out = sampler.sample_bulk(small_adj, batches, (4, 2), rng)
        for mb in out:
            for layer in mb.layers:
                assert layer.adj.nnz_per_row().max() <= 4

    def test_sampled_edges_exist(self, small_adj, batches, rng):
        sampler = SageSampler()
        out = sampler.sample_bulk(small_adj, batches, (5, 3), rng)
        dense = small_adj.to_dense()
        for mb in out:
            for layer in mb.layers:
                rows, cols, _ = layer.adj.to_coo()
                src = layer.src_ids[cols]
                dst = layer.dst_ids[rows]
                assert np.all(dense[dst, src] != 0)

    def test_layer_chaining(self, small_adj, batches, rng):
        out = SageSampler().sample_bulk(small_adj, batches, (5, 3, 2), rng)
        for mb in out:
            assert len(mb.layers) == 3
            assert np.array_equal(mb.layers[-1].dst_ids, mb.batch)
            for lo, hi in zip(mb.layers, mb.layers[1:]):
                assert np.array_equal(lo.dst_ids, hi.src_ids)

    def test_include_dst_makes_dst_subset_of_src(self, small_adj, batches, rng):
        out = SageSampler(include_dst=True).sample_bulk(
            small_adj, batches, (4, 2), rng
        )
        for mb in out:
            for layer in mb.layers:
                assert np.all(np.isin(layer.dst_ids, layer.src_ids))

    def test_pure_mode_frontier_only_sampled(self, small_adj, batches, rng):
        out = SageSampler(include_dst=False).sample_bulk(
            small_adj, batches, (4,), rng
        )
        for mb in out:
            layer = mb.layers[0]
            # every src must appear in some sampled edge (no padding)
            assert np.array_equal(
                np.unique(layer.src_ids[layer.adj.indices]), layer.src_ids
            )

    def test_uniform_neighbor_selection(self):
        """Each neighbor of a degree-4 vertex is picked ~uniformly."""
        dense = np.zeros((5, 5))
        dense[0, 1:] = 1.0
        adj = CSRMatrix.from_dense(dense)
        rng = np.random.default_rng(0)
        sampler = SageSampler(include_dst=False)
        counts = np.zeros(5)
        trials = 2000
        for _ in range(trials):
            out = sampler.sample_bulk(adj, [np.array([0])], (1,), rng)
            counts[out[0].layers[0].src_ids[0]] += 1
        assert np.all(np.abs(counts[1:] / trials - 0.25) < 0.05)

    def test_determinism_with_seed(self, small_adj, batches):
        a = SageSampler().sample_bulk(
            small_adj, batches, (4, 2), np.random.default_rng(5)
        )
        b = SageSampler().sample_bulk(
            small_adj, batches, (4, 2), np.random.default_rng(5)
        )
        for x, y in zip(a, b):
            for lx, ly in zip(x.layers, y.layers):
                assert lx.adj.equal(ly.adj)
                assert np.array_equal(lx.src_ids, ly.src_ids)

    def test_validation(self, small_adj, rng):
        sampler = SageSampler()
        with pytest.raises(ValueError):
            sampler.sample_bulk(small_adj, [], (4,), rng)
        with pytest.raises(ValueError):
            sampler.sample_bulk(small_adj, [np.array([0])], (), rng)
        with pytest.raises(ValueError):
            sampler.sample_bulk(small_adj, [np.array([0])], (0,), rng)
        with pytest.raises(ValueError):
            sampler.sample_bulk(small_adj, [np.array([10**6])], (4,), rng)

    def test_gumbel_backend(self, small_adj, batches, rng):
        out = SageSampler(sample_backend="gumbel").sample_bulk(
            small_adj, batches, (4,), rng
        )
        assert len(out) == len(batches)
        with pytest.raises(ValueError):
            SageSampler(sample_backend="nope")


class TestLadiesSampler:
    def test_layer_width_bounded_by_s(self, small_adj, batches, rng):
        out = LadiesSampler().sample_bulk(small_adj, batches, (16,), rng)
        for mb in out:
            assert mb.layers[0].n_src <= 16

    def test_extraction_completeness(self, small_adj, batches, rng):
        """LADIES keeps EVERY edge between batch and sampled set."""
        out = LadiesSampler().sample_bulk(small_adj, batches, (16,), rng)
        dense = small_adj.to_dense()
        for mb in out:
            layer = mb.layers[0]
            sub = dense[np.ix_(layer.dst_ids, layer.src_ids)]
            assert np.allclose(layer.adj.to_dense(), sub)

    def test_sampled_in_aggregated_neighborhood(self, small_adj, batches, rng):
        out = LadiesSampler(include_dst=False).sample_bulk(
            small_adj, batches, (16,), rng
        )
        dense = small_adj.to_dense()
        for mb in out:
            layer = mb.layers[0]
            neigh = dense[mb.batch].sum(axis=0) > 0
            assert np.all(neigh[layer.src_ids])

    def test_probability_proportional_to_squared_counts(self):
        """p_v = e_v^2 / sum e_u^2 with e_v the in-batch neighbor count."""
        dense = np.zeros((4, 4))
        dense[0, 2] = dense[1, 2] = 1.0  # vertex 2 has e=2
        dense[0, 3] = 1.0  # vertex 3 has e=1
        adj = CSRMatrix.from_dense(dense)
        sampler = LadiesSampler()
        q = sampler.make_q([np.array([0, 1])], 4)
        p = sampler.norm(spgemm(q, adj)).to_dense()
        assert np.allclose(p[0], [0, 0, 4 / 5, 1 / 5])

    def test_split_and_blockdiag_col_extract_agree(self, small_adj, batches):
        a = LadiesSampler(split_col_extract=True).sample_bulk(
            small_adj, batches, (16,), np.random.default_rng(7)
        )
        b = LadiesSampler(split_col_extract=False).sample_bulk(
            small_adj, batches, (16,), np.random.default_rng(7)
        )
        for x, y in zip(a, b):
            assert x.layers[0].adj.equal(y.layers[0].adj)

    def test_multilayer_chaining(self, small_adj, batches, rng):
        out = LadiesSampler().sample_bulk(small_adj, batches, (16, 8), rng)
        for mb in out:
            assert len(mb.layers) == 2
            assert np.array_equal(mb.layers[1].src_ids, mb.layers[0].dst_ids)

    def test_include_dst(self, small_adj, batches, rng):
        out = LadiesSampler(include_dst=True).sample_bulk(
            small_adj, batches, (16,), rng
        )
        for mb in out:
            assert np.all(np.isin(mb.batch, mb.layers[0].src_ids))


class TestFastGCNSampler:
    def test_importance_proportional_to_squared_column_norms(self, small_adj):
        imp = FastGCNSampler.importance_row(small_adj).to_dense()[0]
        dense = small_adj.to_dense()
        expected = (dense**2).sum(axis=0)
        expected = expected / expected.sum()
        assert np.allclose(imp, expected)

    def test_extraction_completeness(self, small_adj, batches, rng):
        out = FastGCNSampler().sample_bulk(small_adj, batches, (16,), rng)
        dense = small_adj.to_dense()
        for mb in out:
            layer = mb.layers[0]
            sub = dense[np.ix_(layer.dst_ids, layer.src_ids)]
            assert np.allclose(layer.adj.to_dense(), sub)

    def test_samples_can_miss_neighborhood(self, rng):
        """Unlike LADIES, FastGCN may sample outside the batch neighborhood
        (the accuracy caveat in section 2.2.2): sampled rows may be empty."""
        dense = np.zeros((30, 30))
        dense[0, 1] = 1.0  # batch vertex 0 only neighbors vertex 1
        for i in range(2, 30):
            dense[i, (i + 1) % 30] = 1.0
        adj = CSRMatrix.from_dense(dense)
        out = FastGCNSampler().sample_bulk(adj, [np.array([0])], (5,), rng)
        layer = out[0].layers[0]
        # High-degree elsewhere means samples usually avoid vertex 1.
        assert layer.adj.nnz <= layer.n_src


class TestResultTypes:
    def test_layer_sample_validation(self, rng):
        from repro.sparse import sprand

        adj = sprand(3, 4, 0.5, rng)
        with pytest.raises(ValueError):
            LayerSample(adj, np.arange(5), np.arange(3))
        layer = LayerSample(adj, np.arange(4), np.arange(3))
        assert layer.n_src == 4 and layer.n_dst == 3

    def test_minibatch_sample_validation(self, rng):
        from repro.sparse import sprand

        adj = sprand(2, 3, 0.5, rng)
        layer = LayerSample(adj, np.arange(3), np.array([7, 8]))
        mb = MinibatchSample(np.array([7, 8]), [layer])
        assert mb.num_layers == 1
        assert np.array_equal(mb.input_frontier, np.arange(3))
        assert mb.total_edges() == adj.nnz
        with pytest.raises(ValueError):
            MinibatchSample(np.array([1, 2]), [layer])  # batch mismatch
        with pytest.raises(ValueError):
            MinibatchSample(np.array([7, 8]), [])
