"""SpGEMM and SpMM kernels vs the scipy oracle, plus flop accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    required_rows,
    spgemm,
    spgemm_flops,
    sprand,
    spmm,
    spmm_flops,
)


class TestSpGEMM:
    @pytest.mark.parametrize("density", [0.0, 0.02, 0.1, 0.5])
    def test_matches_scipy(self, density, rng):
        a = sprand(40, 30, density, rng)
        b = sprand(30, 50, density, rng)
        ref = (a.to_scipy() @ b.to_scipy()).toarray()
        out = spgemm(a, b)
        assert np.allclose(out.to_dense(), ref)
        out.check()

    def test_identity_is_neutral(self, rng):
        a = sprand(12, 12, 0.3, rng)
        eye = CSRMatrix.identity(12)
        assert spgemm(a, eye).equal(a)
        assert spgemm(eye, a).equal(a)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            spgemm(sprand(3, 4, 0.5, rng), sprand(5, 3, 0.5, rng))

    def test_empty_operands(self, rng):
        a = CSRMatrix.zeros((4, 5))
        b = sprand(5, 6, 0.5, rng)
        assert spgemm(a, b).nnz == 0
        assert spgemm(a, b).shape == (4, 6)

    def test_associativity(self, rng):
        a = sprand(8, 9, 0.3, rng)
        b = sprand(9, 7, 0.3, rng)
        c = sprand(7, 6, 0.3, rng)
        left = spgemm(spgemm(a, b), c)
        right = spgemm(a, spgemm(b, c))
        assert np.allclose(left.to_dense(), right.to_dense(), atol=1e-10)

    def test_binary_selector_gathers_rows(self, rng):
        a = sprand(10, 10, 0.4, rng)
        sel = CSRMatrix.from_coo([0, 1, 2], [7, 2, 7], None, (3, 10))
        out = spgemm(sel, a)
        assert np.allclose(out.to_dense(), a.to_dense()[[7, 2, 7]])

    def test_flops_equal_expansion_size(self, rng):
        a = sprand(10, 12, 0.3, rng)
        b = sprand(12, 9, 0.3, rng)
        expected = int(b.nnz_per_row()[a.indices].sum())
        assert spgemm_flops(a, b) == expected

    def test_flops_zero_for_empty(self, rng):
        assert spgemm_flops(CSRMatrix.zeros((3, 3)), sprand(3, 3, 0.5, rng)) == 0

    def test_flops_dimension_check(self, rng):
        with pytest.raises(ValueError):
            spgemm_flops(sprand(3, 4, 0.5, rng), sprand(3, 4, 0.5, rng))

    def test_required_rows(self):
        a = CSRMatrix.from_coo([0, 1, 1], [3, 3, 8], None, (2, 10))
        assert np.array_equal(required_rows(a, 10), [3, 8])
        with pytest.raises(ValueError):
            required_rows(a, 5)

    def test_cancellation_prunes_cleanly(self):
        # +1 and -1 hitting the same output cell must sum to zero.
        a = CSRMatrix.from_coo([0, 0], [0, 1], [1.0, -1.0], (1, 2))
        b = CSRMatrix.from_coo([0, 1], [0, 0], [1.0, 1.0], (2, 1))
        out = spgemm(a, b).prune_zeros()
        assert out.nnz == 0


class TestSpMM:
    def test_matches_dense(self, rng):
        a = sprand(20, 15, 0.2, rng)
        x = rng.random((15, 7))
        assert np.allclose(spmm(a, x), a.to_dense() @ x)

    def test_vector_operand(self, rng):
        a = sprand(10, 10, 0.3, rng)
        v = rng.random(10)
        out = spmm(a, v)
        assert out.shape == (10,)
        assert np.allclose(out, a.to_dense() @ v)

    def test_empty_rows_are_zero(self):
        a = CSRMatrix.from_coo([0], [2], [2.0], (3, 3))
        x = np.ones((3, 2))
        out = spmm(a, x)
        assert np.allclose(out[1], 0) and np.allclose(out[2], 0)
        assert np.allclose(out[0], 2)

    def test_empty_matrix(self):
        out = spmm(CSRMatrix.zeros((4, 3)), np.ones((3, 2)))
        assert out.shape == (4, 2) and np.allclose(out, 0)

    def test_trailing_empty_rows(self, rng):
        # Regression guard: reduceat indexing at nnz boundary.
        a = CSRMatrix.from_coo([0], [0], [1.0], (5, 3))
        out = spmm(a, rng.random((3, 2)))
        assert np.allclose(out[1:], 0)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            spmm(sprand(3, 4, 0.5, rng), np.ones((5, 2)))

    def test_rejects_3d_operand(self, rng):
        with pytest.raises(ValueError):
            spmm(sprand(3, 3, 0.5, rng), np.ones((3, 2, 2)))

    def test_flops(self, rng):
        a = sprand(6, 6, 0.5, rng)
        assert spmm_flops(a, 10) == 2 * a.nnz * 10
