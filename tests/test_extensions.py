"""Extension features beyond the paper's core: graph-wise sampling,
debiased LADIES, layer-wise inference, graph serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GraphSaintRWSampler, LadiesSampler
from repro.gnn import GNNModel, full_graph_sample
from repro.graphs import load_dataset, load_graph, save_graph
from repro.pipeline import layerwise_inference
from repro.sparse import CSRMatrix, spmm


class TestGraphSaintRW:
    """The third sampler taxonomy (graph-wise), built on Algorithm-1 pieces."""

    def test_subgraph_is_induced(self, small_adj, batches, rng):
        sampler = GraphSaintRWSampler(walk_length=3)
        out = sampler.sample_bulk(small_adj, batches[:3], (2, 2), rng)
        dense = small_adj.to_dense()
        for mb in out:
            layer = mb.layers[0]
            # The subgraph layer contains EVERY edge among visited vertices.
            sub = dense[np.ix_(layer.dst_ids, layer.src_ids)]
            assert np.allclose(layer.adj.to_dense(), sub)

    def test_batch_vertices_in_subgraph(self, small_adj, batches, rng):
        out = GraphSaintRWSampler(walk_length=2).sample_bulk(
            small_adj, batches[:3], (2,), rng
        )
        for mb in out:
            assert np.all(np.isin(mb.batch, mb.layers[0].src_ids))
            assert np.array_equal(mb.layers[-1].dst_ids, mb.batch)

    def test_walk_reaches_beyond_roots(self, small_adj, rng):
        batch = np.arange(8)
        out = GraphSaintRWSampler(walk_length=4).sample_bulk(
            small_adj, [batch], (2,), rng
        )
        # With degree-8+ vertices and 4 steps, walks must leave the roots.
        assert out[0].layers[0].n_src > len(batch)

    def test_longer_walks_visit_more(self, small_adj, rng):
        batch = np.arange(16)
        sizes = []
        for length in (1, 8):
            out = GraphSaintRWSampler(walk_length=length).sample_bulk(
                small_adj, [batch], (2,), np.random.default_rng(0)
            )
            sizes.append(out[0].layers[0].n_src)
        assert sizes[1] > sizes[0]

    def test_model_trains_on_subgraph(self, small_adj, rng):
        out = GraphSaintRWSampler(walk_length=3).sample_bulk(
            small_adj, [np.arange(16)], (2, 2), rng
        )
        mb = out[0]
        model = GNNModel(8, 16, 3, 2, rng, conv="gcn")
        logits = model.forward(mb, rng.random((mb.input_frontier.size, 8)))
        assert logits.shape == (16, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            GraphSaintRWSampler(walk_length=0)

    def test_isolated_roots_stay_in_place(self, rng):
        adj = CSRMatrix.zeros((10, 10))
        out = GraphSaintRWSampler(walk_length=2).sample_bulk(
            adj, [np.array([3, 7])], (2,), rng
        )
        assert np.array_equal(out[0].layers[0].src_ids, [3, 7])


class TestDebiasedLadies:
    def test_unbiased_aggregation(self, rng):
        """With 1/(s p_v) reweighting, E[A_S x_S] approximates A_agg x.

        This is the Zou et al. estimator property.  The 1/(s p_v) weights
        assume inclusion probabilities of about s p_v, which holds when
        s p_v << 1 — so the check uses a small s against a wide aggregated
        neighborhood, and compares the Monte-Carlo mean to the exact
        aggregation in relative L2 norm.
        """
        n = 256
        dense = (np.random.default_rng(0).random((n, n)) < 0.3).astype(float)
        np.fill_diagonal(dense, 0)
        adj = CSRMatrix.from_dense(dense)
        batch = np.arange(8)
        x = np.ones(n)  # row-sum target keeps Monte-Carlo variance low
        exact = dense[batch] @ x

        sampler = LadiesSampler(debias=True)
        runs = 600
        acc = np.zeros(len(batch))
        for seed in range(runs):
            mb = sampler.sample_bulk(
                adj, [batch], (8,), np.random.default_rng(seed)
            )[0]
            layer = mb.layers[0]
            acc += spmm(layer.adj, x[layer.src_ids])
        estimate = acc / runs
        rel_err = np.linalg.norm(estimate - exact) / np.linalg.norm(exact)
        assert rel_err < 0.1

        # And the plain (biased) sample is far off the same target — the
        # reweighting is what closes the gap.
        plain = LadiesSampler(debias=False)
        acc_plain = np.zeros(len(batch))
        for seed in range(runs):
            mb = plain.sample_bulk(
                adj, [batch], (8,), np.random.default_rng(seed)
            )[0]
            layer = mb.layers[0]
            acc_plain += spmm(layer.adj, x[layer.src_ids])
        rel_err_plain = (
            np.linalg.norm(acc_plain / runs - exact) / np.linalg.norm(exact)
        )
        assert rel_err < rel_err_plain

    def test_biased_version_underestimates(self, rng):
        """Without reweighting the plain sampled aggregation is biased low
        (only s of the neighborhood contributes)."""
        n = 64
        dense = (np.random.default_rng(0).random((n, n)) < 0.3).astype(float)
        np.fill_diagonal(dense, 0)
        adj = CSRMatrix.from_dense(dense)
        batch = np.arange(8)
        x = np.ones(n)
        exact = dense[batch] @ x

        plain = LadiesSampler(debias=False)
        acc = np.zeros(len(batch))
        runs = 100
        for seed in range(runs):
            mb = plain.sample_bulk(
                adj, [batch], (8,), np.random.default_rng(seed)
            )[0]
            layer = mb.layers[0]
            acc += spmm(layer.adj, x[layer.src_ids])
        assert np.all(acc / runs < exact)

    def test_debias_requires_pure_samples(self):
        with pytest.raises(ValueError):
            LadiesSampler(debias=True, include_dst=True)

    def test_debias_layer_rejects_zero_probability(self, rng):
        from repro.core.frontier import LayerSample
        from repro.sparse import sprand

        adj = sprand(2, 3, 0.9, rng)
        layer = LayerSample(adj, np.arange(3), np.arange(2))
        with pytest.raises(ValueError):
            LadiesSampler.debias_layer(layer, np.zeros(10), 3)


class TestLayerwiseInference:
    def test_matches_full_forward(self, labeled_graph, rng):
        model = GNNModel(
            labeled_graph.n_features, 16, labeled_graph.n_classes, 2, rng
        )
        full = model.forward(
            full_graph_sample(labeled_graph.adj, 2), labeled_graph.features
        )
        for bs in (37, 128, 10**6):
            fast = layerwise_inference(model, labeled_graph, batch_size=bs)
            assert np.allclose(full, fast)

    def test_three_layer_model(self, labeled_graph, rng):
        model = GNNModel(
            labeled_graph.n_features, 8, labeled_graph.n_classes, 3, rng,
            conv="gcn",
        )
        full = model.forward(
            full_graph_sample(labeled_graph.adj, 3), labeled_graph.features
        )
        fast = layerwise_inference(model, labeled_graph, batch_size=64)
        assert np.allclose(full, fast)

    def test_validation(self, labeled_graph, rng):
        model = GNNModel(labeled_graph.n_features, 8, 2, 1, rng)
        with pytest.raises(ValueError):
            layerwise_inference(model, labeled_graph, batch_size=0)

    def test_batch_size_larger_than_n(self, labeled_graph, rng):
        """One batch covering the whole graph: a single row block."""
        model = GNNModel(
            labeled_graph.n_features, 8, labeled_graph.n_classes, 2, rng
        )
        whole = layerwise_inference(
            model, labeled_graph, batch_size=labeled_graph.n + 1
        )
        full = model.forward(
            full_graph_sample(labeled_graph.adj, 2), labeled_graph.features
        )
        assert whole.shape == (labeled_graph.n, labeled_graph.n_classes)
        assert np.allclose(full, whole)

    def test_batch_size_one(self, rng):
        """Degenerate one-row batches still reproduce the default output
        bit-for-bit (the row-stable infer path is grouping-independent)."""
        small = load_dataset(
            "products", scale=0.05, seed=1, with_labels=True, n_classes=4
        )
        model = GNNModel(small.n_features, 8, small.n_classes, 2, rng)
        one = layerwise_inference(model, small, batch_size=1)
        default = layerwise_inference(model, small, batch_size=4096)
        assert np.array_equal(one, default)

    def test_gat_model_parity(self, labeled_graph, rng):
        """Attention models go through the same schedule exactly."""
        model = GNNModel(
            labeled_graph.n_features, 8, labeled_graph.n_classes, 2, rng,
            conv="gat",
        )
        full = model.forward(
            full_graph_sample(labeled_graph.adj, 2), labeled_graph.features
        )
        fast = layerwise_inference(model, labeled_graph, batch_size=97)
        assert np.allclose(full, fast)
        assert np.array_equal(
            fast, layerwise_inference(model, labeled_graph, batch_size=513)
        )

    @pytest.mark.parametrize("activation", ["tanh", "leaky_relu", "identity"])
    def test_non_relu_activation_is_exact(self, labeled_graph, rng, activation):
        """The configured activation is applied between layers — non-ReLU
        models match their own single-shot forward (the historical code
        hard-coded ReLU here)."""
        model = GNNModel(
            labeled_graph.n_features, 8, labeled_graph.n_classes, 3, rng,
            activation=activation,
        )
        full = model.forward(
            full_graph_sample(labeled_graph.adj, 3), labeled_graph.features
        )
        fast = layerwise_inference(model, labeled_graph, batch_size=64)
        assert np.allclose(full, fast)

    def test_bit_stable_across_batch_sizes(self, labeled_graph, rng):
        model = GNNModel(
            labeled_graph.n_features, 8, labeled_graph.n_classes, 2, rng
        )
        outs = [
            layerwise_inference(model, labeled_graph, batch_size=bs)
            for bs in (37, 512, 10**6)
        ]
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[1], outs[2])


class TestGraphIO:
    def test_roundtrip(self, tmp_path, labeled_graph):
        path = tmp_path / "g.npz"
        save_graph(labeled_graph, path)
        back = load_graph(path)
        assert back.name == labeled_graph.name
        assert back.adj.equal(labeled_graph.adj)
        assert np.allclose(back.features, labeled_graph.features)
        assert np.array_equal(back.labels, labeled_graph.labels)
        assert np.array_equal(back.train_idx, labeled_graph.train_idx)

    def test_roundtrip_without_features(self, tmp_path, small_adj):
        from repro.graphs import Graph

        g = Graph("bare", small_adj, train_idx=np.arange(5))
        path = tmp_path / "bare.npz"
        save_graph(g, path)
        back = load_graph(path)
        assert back.features is None and back.labels is None
        assert back.adj.equal(small_adj)

    def test_version_check(self, tmp_path, small_adj):
        import numpy as np

        path = tmp_path / "bad.npz"
        np.savez(
            path,
            version=np.array([99]),
            name=np.array(["x"]),
            indptr=small_adj.indptr,
            indices=small_adj.indices,
            data=small_adj.data,
            shape=np.array(small_adj.shape),
            train_idx=np.empty(0, dtype=np.int64),
            val_idx=np.empty(0, dtype=np.int64),
            test_idx=np.empty(0, dtype=np.int64),
        )
        with pytest.raises(ValueError):
            load_graph(path)
