"""Table 2: the capability matrix the paper positions itself in.

The paper's Table 2 claims its system is the only one combining (1) GPU
sampling, (2) multi-node training without full replication, and (3) support
for multiple sampler families.  These tests assert this codebase actually
delivers each column.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import Communicator, ProcessGrid
from repro.core import FastGCNSampler, LadiesSampler, SageSampler
from repro.distributed import partitioned_bulk_sampling
from repro.partition import BlockRows
from repro.api import RunConfig
from repro.pipeline import TrainingPipeline


class TestTable2Capabilities:
    def test_device_side_sampling(self, perf_graph):
        """Column 1: sampling runs on (simulated) GPUs, not a host CPU.

        All sampling time must be charged as device compute — host paths
        (DRAM/PCIe) are only used by the Quiver-UVA and CPU baselines.
        """
        cfg = RunConfig(
            p=4, c=2, fanout=(5, 3), batch_size=64, train_model=False
        )
        pipe = TrainingPipeline(perf_graph, cfg)
        pipe.train_epoch()
        # Sampling compute happened and the whole phase was device-side
        # (the replicated algorithm's sampling has no comm component).
        assert pipe.comm.clock.phase_seconds("sampling", "compute") > 0
        assert pipe.comm.clock.phase_seconds("sampling", "comm") == 0

    def test_multi_node_without_full_replication(self, perf_graph, batches):
        """Column 2: the graph can be partitioned across devices spanning
        nodes — no rank ever holds the whole adjacency matrix."""
        comm = Communicator(8)  # 2 simulated nodes of 4 GPUs
        grid = ProcessGrid(8, 2)
        blocks = BlockRows.partition(perf_graph.adj, grid.n_rows)
        assert all(b.nnz < perf_graph.adj.nnz for b in blocks.blocks)
        samples, _ = partitioned_bulk_sampling(
            comm, grid, SageSampler(), blocks,
            [b % perf_graph.n for b in batches], (4, 2), seed=0,
        )
        assert len(samples) == len(batches)

    @pytest.mark.parametrize(
        "sampler_cls,fanout",
        [(SageSampler, (4, 2)), (LadiesSampler, (16,)), (FastGCNSampler, (16,))],
    )
    def test_multiple_sampler_families(
        self, sampler_cls, fanout, perf_graph, batches
    ):
        """Column 3: node-wise AND layer-wise samplers run in the same
        framework, both locally and under the partitioned algorithm."""
        rng = np.random.default_rng(0)
        sampler = sampler_cls()
        batches = [b % perf_graph.n for b in batches]
        local = sampler.sample_bulk(perf_graph.adj, batches, fanout, rng)
        assert len(local) == len(batches)
        comm = Communicator(4)
        grid = ProcessGrid(4, 2)
        blocks = BlockRows.partition(perf_graph.adj, grid.n_rows)
        dist, _ = partitioned_bulk_sampling(
            comm, grid, sampler, blocks, batches, fanout, seed=0
        )
        assert len(dist) == len(batches)

    def test_single_framework_one_abstraction(self):
        """All samplers implement the same Algorithm-1 contract."""
        from repro.core import MatrixSampler

        for cls in (SageSampler, LadiesSampler, FastGCNSampler):
            assert issubclass(cls, MatrixSampler)
            assert callable(getattr(cls, "norm"))
            assert callable(getattr(cls, "sample_bulk"))
