"""Streaming graphs: the delta-CSR overlay, the dirty-vertex invalidation
protocol, and update-interleaved serving parity (with pinned digests)."""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.api import Engine, RunConfig
from repro.comm import Communicator, ProcessGrid
from repro.graphs import Graph
from repro.partition import CachedFeatureStore, FeatureStore
from repro.pipeline import layerwise_inference
from repro.serve import (
    EmbeddingCache,
    InferenceRequest,
    ServingEngine,
    TraceWorkload,
)
from repro.sparse import CSRMatrix
from repro.stream import (
    DeltaCSR,
    EdgeBatch,
    StreamingGraph,
    UpdateStream,
    dirty_closure,
)


def _small_base(n: int = 10, degree: int = 3, seed: int = 0) -> CSRMatrix:
    """A small canonical adjacency without self loops."""
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n), degree)
    cols = (rows + rng.integers(1, n, rows.size)) % n
    return CSRMatrix.from_coo(
        rows, cols, np.ones(rows.size), (n, n), sum_duplicates=True
    )


def _edge_set(adj: CSRMatrix) -> dict[tuple[int, int], float]:
    rows, cols, vals = adj.to_coo()
    return {
        (int(u), int(v)): float(w)
        for u, v, w in zip(rows, cols, vals)
    }


def _from_edge_dict(edges: dict, shape) -> CSRMatrix:
    if not edges:
        return CSRMatrix.from_coo(
            np.empty(0, np.int64), np.empty(0, np.int64),
            np.empty(0, np.float64), shape,
        )
    keys = sorted(edges)
    rows = np.array([u for u, _ in keys], dtype=np.int64)
    cols = np.array([v for _, v in keys], dtype=np.int64)
    vals = np.array([edges[k] for k in keys], dtype=np.float64)
    return CSRMatrix.from_coo(rows, cols, vals, shape, sum_duplicates=False)


class TestEdgeBatch:
    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeBatch(np.array([1]), np.array([2]), "upsert")
        with pytest.raises(ValueError):
            EdgeBatch(np.array([1, 2]), np.array([3]))
        with pytest.raises(ValueError):
            EdgeBatch(np.array([1]), np.array([2]), at=-1.0)
        with pytest.raises(ValueError):
            EdgeBatch(np.array([1]), np.array([2]), vals=np.array([1.0, 2.0]))

    def test_coercion_and_count(self):
        b = EdgeBatch(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        assert b.src.dtype == np.int64 and b.dst.dtype == np.int64
        assert b.n_edges == 2


class TestDeltaCSR:
    def test_insert_appears_in_view(self):
        base = _small_base()
        d = DeltaCSR(base)
        edges = _edge_set(base)
        absent = next(
            (u, v)
            for u in range(base.shape[0])
            for v in range(base.shape[0])
            if u != v and (u, v) not in edges
        )
        res = d.insert_edges([absent[0]], [absent[1]])
        assert res.applied == 1 and res.skipped == 0
        assert res.dirty_rows.tolist() == [absent[0]]
        view = d.view()
        view.check()
        assert _edge_set(view)[absent] == 1.0
        assert view.nnz == base.nnz + 1

    def test_delete_disappears_from_view(self):
        base = _small_base()
        d = DeltaCSR(base)
        (u, v) = next(iter(_edge_set(base)))
        res = d.delete_edges([u], [v])
        assert res.applied == 1
        assert (u, v) not in _edge_set(d.view())
        assert d.view().nnz == base.nnz - 1

    def test_duplicate_insert_is_noop(self):
        base = _small_base()
        d = DeltaCSR(base)
        (u, v) = next(iter(_edge_set(base)))
        res = d.insert_edges([u], [v])  # already present with value 1.0
        assert res.applied == 0 and res.skipped == 1
        assert d.pending == 0
        assert d.view() is base  # cache untouched: nothing changed

    def test_insert_with_new_value_overwrites(self):
        base = _small_base()
        d = DeltaCSR(base)
        (u, v) = next(iter(_edge_set(base)))
        res = d.insert_edges([u], [v], vals=np.array([2.5]))
        assert res.applied == 1
        assert _edge_set(d.view())[(u, v)] == 2.5

    def test_missing_delete_skipped_then_strict_raises(self):
        base = _small_base()
        d = DeltaCSR(base)
        edges = _edge_set(base)
        absent = next(
            (u, v)
            for u in range(base.shape[0])
            for v in range(base.shape[0])
            if u != v and (u, v) not in edges
        )
        res = d.delete_edges([absent[0]], [absent[1]])
        assert res.applied == 0 and res.skipped == 1
        with pytest.raises(ValueError, match=f"{absent[0]} -> {absent[1]}"):
            d.delete_edges([absent[0]], [absent[1]], strict=True)

    def test_vertex_set_is_fixed(self):
        d = DeltaCSR(_small_base(n=10))
        with pytest.raises(ValueError, match="vertex set is fixed"):
            d.insert_edges([3], [10])

    def test_delete_then_reinsert_drains_log(self):
        base = _small_base()
        d = DeltaCSR(base)
        (u, v) = next(iter(_edge_set(base)))
        d.delete_edges([u], [v])
        assert d.pending == 1
        d.insert_edges([u], [v])  # restores the base value exactly
        assert d.pending == 0
        assert d.view().equal(base)

    def test_exact_threshold_boundary_compacts(self):
        base = _small_base(n=10, degree=2)  # nnz may shrink via duplicates
        limit = 4
        d = DeltaCSR(base, compaction_threshold=limit / base.nnz)
        assert d.compaction_limit == limit
        edges = _edge_set(base)
        absent = [
            (u, v)
            for u in range(10)
            for v in range(10)
            if u != v and (u, v) not in edges
        ][:limit]
        for u, v in absent[: limit - 1]:
            d.insert_edges([u], [v])
            assert not d.maybe_compact()  # below the threshold: no compaction
        d.insert_edges([absent[-1][0]], [absent[-1][1]])
        assert d.pending == limit
        assert d.maybe_compact()  # reaching the limit exactly compacts
        assert d.pending == 0 and d.compactions == 1

    def test_compact_promotes_parity_checked_base(self):
        base = _small_base()
        d = DeltaCSR(base)
        edges = _edge_set(base)
        (u, v) = next(iter(edges))
        absent = next(
            (a, b)
            for a in range(base.shape[0])
            for b in range(base.shape[0])
            if a != b and (a, b) not in edges
        )
        d.delete_edges([u], [v])
        d.insert_edges([absent[0]], [absent[1]], vals=np.array([3.0]))
        new_base = d.compact()
        assert d.base is new_base and d.view() is new_base
        assert d.pending == 0
        new_base.check()
        assert (u, v) not in _edge_set(new_base)
        assert _edge_set(new_base)[absent] == 3.0

    def test_randomized_churn_matches_reference(self):
        """30 rounds of random ins/del vs a plain dict-of-edges model,
        with periodic compactions, stay array-identical throughout."""
        base = _small_base(n=16, degree=4, seed=3)
        d = DeltaCSR(base, compaction_threshold=10 / base.nnz)
        reference = _edge_set(base)
        rng = np.random.default_rng(42)
        for round_ in range(30):
            u = int(rng.integers(0, 16))
            v = int((u + rng.integers(1, 16)) % 16)
            if rng.random() < 0.5 and (u, v) in reference:
                d.delete_edges([u], [v])
                del reference[(u, v)]
            else:
                val = float(rng.integers(1, 5))
                d.insert_edges([u], [v], vals=np.array([val]))
                reference[(u, v)] = val
            d.maybe_compact()
            view = d.view()
            want = _from_edge_dict(reference, base.shape)
            assert np.array_equal(view.indptr, want.indptr)
            assert np.array_equal(view.indices, want.indices)
            assert np.array_equal(view.data, want.data)
        assert d.compactions >= 1  # the sweep actually exercised compaction

    def test_view_is_cached_between_mutations(self):
        d = DeltaCSR(_small_base())
        d.insert_edges([0], [5])
        assert d.view() is d.view()


class TestDirtyClosure:
    @pytest.fixture()
    def chain(self):
        # 0 -> 1 -> 2 (row u lists u's aggregation sources)
        return CSRMatrix.from_coo(
            np.array([0, 1]), np.array([1, 2]), np.ones(2), (3, 3)
        )

    def test_zero_hops_is_the_dirty_set(self, chain):
        assert dirty_closure(chain, np.array([2]), 0).tolist() == [2]

    def test_reverse_reachability(self, chain):
        assert dirty_closure(chain, np.array([2]), 1).tolist() == [1, 2]
        assert dirty_closure(chain, np.array([2]), 2).tolist() == [0, 1, 2]

    def test_empty_input(self, chain):
        assert dirty_closure(chain, np.empty(0, np.int64), 3).size == 0


class TestStreamingGraph:
    def _graph(self, n=12):
        adj = _small_base(n=n, degree=3, seed=5)
        rng = np.random.default_rng(0)
        return Graph(
            name="toy", adj=adj, features=rng.standard_normal((n, 4))
        )

    def test_apply_refreshes_graph_adj(self):
        g = self._graph()
        sg = StreamingGraph(g)
        before = g.adj
        edges = _edge_set(before)
        absent = next(
            (u, v)
            for u in range(g.n)
            for v in range(g.n)
            if u != v and (u, v) not in edges
        )
        result = sg.apply(EdgeBatch(np.array([absent[0]]), np.array([absent[1]])))
        assert g.adj is not before
        assert absent in _edge_set(g.adj)
        assert set(result.sim_cost) == {
            "batch_edges", "merged_nnz", "compacted_nnz",
        }

    def test_stats_accumulate(self):
        g = self._graph()
        sg = StreamingGraph(g)
        (u, v) = next(iter(_edge_set(g.adj)))
        sg.apply(EdgeBatch(np.array([u]), np.array([v]), "delete"))
        sg.apply(EdgeBatch(np.array([u]), np.array([v]), "delete"))  # skip
        assert sg.stats.batches == 2
        assert sg.stats.applied == 1 and sg.stats.skipped == 1
        assert sg.stats.dirty_vertices == 1
        assert sg.stats.row()["edits"] == 1

    def test_auto_compact_off_leaves_log(self):
        g = self._graph()
        sg = StreamingGraph(g, compaction_threshold=1 / g.adj.nnz,
                            auto_compact=False)
        (u, v) = next(iter(_edge_set(g.adj)))
        sg.apply(EdgeBatch(np.array([u]), np.array([v]), "delete"))
        assert sg.delta.pending == 1 and sg.stats.compactions == 0
        sg.compact()
        assert sg.delta.pending == 0 and sg.stats.compactions == 1

    def test_rebuild_from_scratch_matches_current(self):
        g = self._graph()
        sg = StreamingGraph(g)
        (u, v) = next(iter(_edge_set(g.adj)))
        sg.apply(EdgeBatch(np.array([u]), np.array([v]), "delete"))
        rebuilt = sg.rebuild_from_scratch()
        assert rebuilt.name == "toy-rebuilt"
        assert rebuilt.adj is not g.adj
        assert rebuilt.adj.equal(g.adj)
        assert rebuilt.features is g.features  # vertex data is shared


class TestUpdateStream:
    def test_synthetic_is_deterministic_and_sorted(self, small_adj):
        pool = np.arange(64, dtype=np.int64)
        a = UpdateStream.synthetic(small_adj, pool, n_requests=16,
                                   update_ratio=0.5, seed=9)
        b = UpdateStream.synthetic(small_adj, pool, n_requests=16,
                                   update_ratio=0.5, seed=9)
        assert len(a.edge_batches) == len(b.edge_batches) == 8
        ats = [x.at for x in a.edge_batches]
        assert ats == sorted(ats)
        for x, y in zip(a.edge_batches, b.edge_batches):
            assert x.op == y.op and x.at == y.at
            assert np.array_equal(x.src, y.src)
            assert np.array_equal(x.dst, y.dst)
        assert a.n_update_edges == 8 * 8

    def test_deletes_exist_and_inserts_are_absent(self, small_adj):
        pool = np.arange(64, dtype=np.int64)
        wl = UpdateStream.synthetic(small_adj, pool, n_requests=16,
                                    update_ratio=0.5, edges_per_update=4,
                                    delete_fraction=0.5, seed=1)
        edges = _edge_set(small_adj)
        for batch in wl.edge_batches:
            for u, v in zip(batch.src, batch.dst):
                if batch.op == "delete":
                    assert (int(u), int(v)) in edges
                else:
                    assert (int(u), int(v)) not in edges

    def test_validation(self, small_adj):
        pool = np.arange(8, dtype=np.int64)
        with pytest.raises(ValueError):
            UpdateStream.synthetic(small_adj, pool, n_requests=4,
                                   update_ratio=-0.1)
        with pytest.raises(ValueError):
            UpdateStream.synthetic(small_adj, pool, n_requests=4,
                                   delete_fraction=1.5)
        with pytest.raises(ValueError):
            UpdateStream.synthetic(small_adj, pool, n_requests=4,
                                   edges_per_update=0)
        with pytest.raises(ValueError, match="distinct edges"):
            UpdateStream.synthetic(
                small_adj, pool, n_requests=4, update_ratio=1.0,
                edges_per_update=small_adj.nnz, delete_fraction=1.0,
            )

    def test_zero_ratio_has_no_updates(self, small_adj):
        wl = UpdateStream.synthetic(small_adj, np.arange(8, dtype=np.int64),
                                    n_requests=4, update_ratio=0.0)
        assert wl.updates() == []


class TestEmbeddingCacheInvalidate:
    """Satellite: the invalidate() hook, independent of any streaming."""

    def test_invalidate_drops_resident_rows_only(self):
        cache = EmbeddingCache(10, 3, budget_bytes=1e6)
        rows = np.arange(6, dtype=np.float64).reshape(2, 3)
        cache.insert(np.array([2, 5]), rows)
        dropped = cache.invalidate(np.array([5, 7]))
        assert dropped == 1
        mask, _ = cache.lookup(np.array([2, 5]))
        assert mask.tolist() == [True, False]

    def test_invalidations_counted_separately_from_evictions(self):
        cache = EmbeddingCache(10, 2, budget_bytes=2 * 8 * 2)  # 2 rows
        cache.insert(np.array([1, 2]), np.zeros((2, 2)))
        cache.insert(np.array([3]), np.ones((1, 2)))  # capacity eviction
        assert cache.stats.evictions == 1
        cache.invalidate(np.array(list(cache.cached_ids)))
        assert cache.stats.invalidations == 2
        assert cache.stats.evictions == 1  # unchanged by invalidation
        cache.stats.reset()
        assert cache.stats.invalidations == 0

    def test_out_of_range_raises(self):
        cache = EmbeddingCache(10, 2, budget_bytes=1e6)
        with pytest.raises(IndexError):
            cache.invalidate(np.array([10]))
        with pytest.raises(IndexError):
            cache.invalidate(np.array([-1]))

    def test_empty_and_duplicate_ids(self):
        cache = EmbeddingCache(10, 2, budget_bytes=1e6)
        cache.insert(np.array([4]), np.zeros((1, 2)))
        assert cache.invalidate(np.empty(0, np.int64)) == 0
        assert cache.invalidate(np.array([4, 4, 4])) == 1
        assert cache.stats.invalidations == 1

    def test_reinsert_after_invalidate(self):
        cache = EmbeddingCache(10, 2, budget_bytes=1e6)
        cache.insert(np.array([4]), np.zeros((1, 2)))
        cache.invalidate(np.array([4]))
        fresh = np.full((1, 2), 7.0)
        cache.insert(np.array([4]), fresh)
        mask, got = cache.lookup(np.array([4]))
        assert mask.all() and np.array_equal(got, fresh)


class TestCachedFeatureStoreInvalidate:
    """Satellite: the feature-replica invalidate() hook."""

    def _cache(self, p=4, c=2, n=64, f=8, rows=16):
        rng = np.random.default_rng(0)
        feats = rng.standard_normal((n, f))
        store = FeatureStore(feats, ProcessGrid(p, c))
        scores = rng.zipf(2.0, size=n).astype(np.float64)
        cache = CachedFeatureStore(
            store, budget_bytes=store.wire_bytes(rows), scores=scores
        )
        return feats, cache, Communicator(p)

    def test_invalidate_shrinks_residency(self):
        _, cache, _ = self._cache()
        resident = cache.cached_ids
        assert resident.size > 0
        drop = resident[: resident.size // 2]
        assert cache.invalidate(drop) == drop.size
        assert cache.stats.invalidations == drop.size
        left = cache.cached_ids
        assert np.intersect1d(left, drop).size == 0

    def test_fetch_stays_exact_after_invalidate(self, rng):
        feats, cache, comm = self._cache()
        cache.invalidate(cache.cached_ids[:5])
        needed = [rng.choice(64, 12, replace=True) for _ in range(4)]
        got = cache.fetch(comm, needed)
        for r in range(4):
            assert np.array_equal(got[r], feats[needed[r]])

    def test_nonresident_ids_are_free(self):
        _, cache, _ = self._cache()
        missing = np.setdiff1d(np.arange(64), cache.cached_ids)[:3]
        assert cache.invalidate(missing) == 0
        assert cache.stats.invalidations == 0

    def test_out_of_range_raises(self):
        _, cache, _ = self._cache()
        with pytest.raises(IndexError):
            cache.invalidate(np.array([64]))


# ---------------------------------------------------------------------- #
# Update-interleaved serving
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def trained_engine() -> Engine:
    cfg = RunConfig(
        dataset="products", scale=0.1, train_split=0.5, p=1, c=1,
        algorithm="single", sampler="sage", fanout=(4, 3), batch_size=16,
        hidden=16, epochs=1, seed=0,
    )
    engine = Engine(cfg)
    engine.train(1)
    return engine


def _streaming_server(
    engine: Engine,
    *,
    embed_budget: float = 0.0,
    compaction_threshold: float = 0.25,
    serve_batch_size: int = 8,
):
    """A fresh streaming server over a point-local graph copy (array
    payloads shared; churn must not leak into the module fixture)."""
    graph = copy.copy(engine.graph)
    cfg = engine.config.replace(
        serve_batch_size=serve_batch_size,
        embed_budget=embed_budget,
        compaction_threshold=compaction_threshold,
        stream_updates=True,
    )
    stream = StreamingGraph(graph, compaction_threshold=compaction_threshold)
    return ServingEngine(engine.model, graph, cfg, stream=stream)


def _churn_workload(engine: Engine, *, n_requests=32, update_ratio=0.5,
                    seed=0) -> UpdateStream:
    return UpdateStream.synthetic(
        engine.graph.adj, engine.graph.test_idx, n_requests=n_requests,
        update_ratio=update_ratio, seed=seed,
    )


# Digest of the 32-request / 0.5-ratio / seed-0 streaming run below.  The
# serving stack is bit-exact and row-stable, so this is platform-stable;
# an unexplained change means updates, sampling or inference drifted.
GOLDEN_STREAM_DIGEST = (
    "20fbc1adbf9e74aa3e7e652068e6768e25fa995c7b77a3df89fb149de7cd7961"
)


class TestStreamingServing:
    def test_post_churn_parity_cache_off_on_and_golden_digest(
        self, trained_engine
    ):
        digests = {}
        for budget in (0.0, 65536.0):
            server = _streaming_server(trained_engine, embed_budget=budget)
            report = server.process(_churn_workload(trained_engine))
            digests[budget] = report.digest()
            # Warm-cache serving on the churned graph vs layer-wise
            # inference on an independent from-scratch rebuild.
            verts = trained_engine.graph.test_idx[:48]
            rebuilt = server.stream.rebuild_from_scratch()
            reference = layerwise_inference(trained_engine.model, rebuilt)
            assert np.array_equal(server.serve(verts), reference[verts])
        assert digests[0.0] == digests[65536.0]
        assert digests[0.0] == GOLDEN_STREAM_DIGEST

    def test_compaction_during_serving_keeps_parity(self, trained_engine):
        limit = 40 / trained_engine.graph.adj.nnz
        server = _streaming_server(
            trained_engine, embed_budget=65536.0, compaction_threshold=limit
        )
        report = server.process(_churn_workload(trained_engine))
        assert server.stream.stats.compactions >= 1
        assert report.update_stats.compactions >= 1
        verts = trained_engine.graph.test_idx[:48]
        rebuilt = server.stream.rebuild_from_scratch()
        reference = layerwise_inference(trained_engine.model, rebuilt)
        assert np.array_equal(server.serve(verts), reference[verts])

    def test_updates_invalidate_cached_embeddings(self, trained_engine):
        server = _streaming_server(trained_engine, embed_budget=65536.0)
        report = server.process(_churn_workload(trained_engine))
        assert server.cache is not None
        assert report.cache_stats.invalidations > 0
        assert report.update_stats.batches == 16
        assert "update_batches" in report.row()

    def test_mid_stream_update_changes_the_served_vertex(self, trained_engine):
        """A vertex requested before and after an edge update must be
        served from the pre- and post-update graph respectively."""
        engine = trained_engine
        graph = copy.copy(engine.graph)
        v = int(graph.test_idx[0])
        # An insertion into v's own row always changes its aggregation.
        cols, _ = graph.adj.row(v)
        u = next(
            w for w in range(graph.n) if w != v and w not in set(cols.tolist())
        )
        ref_before = layerwise_inference(engine.model, graph)
        requests = [
            InferenceRequest(rid=0, vertices=np.array([v]), arrival=0.0),
            InferenceRequest(rid=1, vertices=np.array([v]), arrival=0.5),
        ]
        update = EdgeBatch(np.array([v]), np.array([u]), "insert", at=0.25)
        cfg = engine.config.replace(stream_updates=True)
        server = ServingEngine(
            engine.model, graph, cfg, stream=StreamingGraph(graph)
        )
        report = server.process(UpdateStream(TraceWorkload(requests), [update]))
        ref_after = layerwise_inference(engine.model, graph)
        first, second = report.results
        assert np.array_equal(first.logits, ref_before[[v]])
        assert np.array_equal(second.logits, ref_after[[v]])
        assert not np.array_equal(first.logits, second.logits)

    def test_update_workload_on_frozen_engine_raises(self, trained_engine):
        server = trained_engine.serving()  # stream_updates defaults off
        with pytest.raises(ValueError, match="frozen graph"):
            server.process(_churn_workload(trained_engine))
        with pytest.raises(ValueError, match="frozen graph"):
            server.apply_update(
                EdgeBatch(np.array([0]), np.array([1]), "insert")
            )

    def test_engine_serving_builds_stream_from_config(self, trained_engine):
        cfg = trained_engine.config.replace(stream_updates=True)
        engine = Engine(cfg, graph=copy.copy(trained_engine.graph))
        engine._pipeline = trained_engine.pipeline  # reuse trained weights
        server = engine.serving()
        assert server.stream is not None
        assert server.stream.compaction_threshold == cfg.compaction_threshold
        report = server.process(
            _churn_workload(trained_engine, n_requests=8, update_ratio=0.5)
        )
        assert report.n_requests == 8

    def test_runconfig_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="compaction_threshold"):
            RunConfig(compaction_threshold=0.0)
        cfg = RunConfig(stream_updates=True, compaction_threshold=0.1)
        assert RunConfig.from_dict(cfg.to_dict()) == cfg


class TestStreamCLI:
    def test_stream_command_verifies(self, capsys):
        from repro.cli import main

        rc = main([
            "stream", "products", "--scale", "0.05", "--requests", "8",
            "--hidden", "8", "--fanout", "3,2", "--verify",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "logits digest:" in out
        assert "verified: post-churn logits bit-identical" in out

    def test_stream_command_without_updates(self, capsys):
        from repro.cli import main

        rc = main([
            "stream", "products", "--scale", "0.05", "--requests", "4",
            "--hidden", "8", "--fanout", "3,2", "--update-ratio", "0",
        ])
        assert rc == 0
        assert "no edge updates" in capsys.readouterr().out
