"""Golden regression tests: fixed-seed sampler runs have pinned outputs.

Kernel backends are allowed to differ in floating-point summation order,
but on the integer-valued probability matrices the built-in samplers
produce (neighbor counts, squared counts, exact divisions) every backend
must yield *bit-identical* sampled minibatches.  These tests pin the full
bulk output of each built-in sampler — frontier ids, per-layer adjacency
structure and values — as a digest, and assert it

1. is identical under every registered kernel backend (a kernel swap can
   never silently change sampling semantics), and
2. matches a recorded golden constant (any change to sampler logic or the
   RNG consumption pattern is loud, not silent).

If a deliberate sampler change invalidates a golden, regenerate with::

    PYTHONPATH=src python tests/test_golden_samplers.py --regen
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core import (
    FastGCNSampler,
    GraphSaintRWSampler,
    LadiesSampler,
    SageSampler,
)
from repro.graphs import rmat
from repro.sparse import KERNELS

SEED = 42
N_BATCHES = 6
BATCH_SIZE = 24

#: (name, factory, fanout) for every built-in sampler, training-shaped.
SAMPLER_CASES = [
    ("sage", lambda kernel: SageSampler(include_dst=True, kernel=kernel), (5, 3)),
    (
        "ladies",
        lambda kernel: LadiesSampler(include_dst=True, kernel=kernel),
        (32,),
    ),
    (
        "fastgcn",
        lambda kernel: FastGCNSampler(include_dst=True, kernel=kernel),
        (32,),
    ),
    (
        "saint",
        lambda kernel: GraphSaintRWSampler(walk_length=3, kernel=kernel),
        (3, 3),
    ),
]

#: Pinned digests of each sampler's full bulk output (see _bulk_digest).
GOLDEN_DIGESTS = {
    "sage": "2cef8be724c9b6ccfba7cd86bd7639e72bb8e07afef9788be3f139f2930e9535",
    "ladies": "5b1d2b40f518693813af57afd4be00f631dd2b6fdec4a0a76bbf686a09a16057",
    "fastgcn": "55577a0c1d7fbf92e2b21031fb5525b3dd5276987336c4940a0ae7ef808fbf0f",
    "saint": "3144055fffd1d93086a7c05dc7a18910a3bee5fbfdf061d9bbd7ba329a002662",
}


def _graph_and_batches():
    rng = np.random.default_rng(SEED)
    adj = rmat(9, 8, rng)
    batches = [
        rng.choice(adj.shape[0], BATCH_SIZE, replace=False)
        for _ in range(N_BATCHES)
    ]
    return adj, batches


def _bulk_digest(samples) -> str:
    """A canonical sha256 over every array of a bulk's minibatches."""
    h = hashlib.sha256()
    for mb in samples:
        h.update(np.ascontiguousarray(mb.batch, dtype=np.int64).tobytes())
        for layer in mb.layers:
            for arr in (
                layer.adj.indptr,
                layer.adj.indices,
                layer.adj.data,
                np.asarray(layer.src_ids, dtype=np.int64),
                np.asarray(layer.dst_ids, dtype=np.int64),
            ):
                h.update(np.ascontiguousarray(arr).tobytes())
            h.update(repr(layer.adj.shape).encode())
    return h.hexdigest()


def _run(name: str, kernel: str) -> str:
    adj, batches = _graph_and_batches()
    factory = dict((n, f) for n, f, _ in SAMPLER_CASES)[name]
    fanout = dict((n, fo) for n, _, fo in SAMPLER_CASES)[name]
    sampler = factory(kernel)
    samples = sampler.sample_bulk(
        adj, batches, fanout, np.random.default_rng(SEED)
    )
    assert len(samples) == N_BATCHES
    return _bulk_digest(samples)


@pytest.mark.parametrize("name", [c[0] for c in SAMPLER_CASES])
def test_kernels_sample_identically(name):
    """Swapping the kernel backend never changes what gets sampled."""
    digests = {kernel: _run(name, kernel) for kernel in KERNELS.names()}
    assert len(set(digests.values())) == 1, digests


@pytest.mark.parametrize("name", [c[0] for c in SAMPLER_CASES])
def test_golden_digest(name):
    """Fixed-seed output matches the recorded golden, on every backend."""
    golden = GOLDEN_DIGESTS[name]
    for kernel in KERNELS.names():
        assert _run(name, kernel) == golden, (name, kernel)


@pytest.mark.parametrize("name", [c[0] for c in SAMPLER_CASES])
def test_golden_digest_compiled(name):
    """The plan compiler (kernel="compiled": optimizer passes + fused
    row-wise kernels) reproduces every golden digest bit for bit.

    The ``KERNELS.names()`` loops above already cover "compiled" via the
    registry; this explicit pin survives even if the sweep logic changes,
    because bit-identity is the compiler's acceptance contract.
    """
    assert "compiled" in KERNELS.names()
    assert _run(name, "compiled") == GOLDEN_DIGESTS[name]


def test_run_twice_is_deterministic():
    """Same seed, same process: byte-identical output (no hidden state)."""
    for name in GOLDEN_DIGESTS:
        assert _run(name, "esc") == _run(name, "esc")


if __name__ == "__main__":  # golden regeneration helper
    import sys

    if "--regen" in sys.argv:
        for name in GOLDEN_DIGESTS:
            print(f'    "{name}": "{_run(name, "esc")}",')
    else:
        print(__doc__)
