"""Cross-backend equivalence: every registered kernel computes the same thing.

The KERNELS registry promises that backends are semantically
interchangeable; these tests enforce it.  Random CSR matrices — varied
shape and density, empty rows, explicit zeros, duplicate-producing
products, cancellations — must give identical results (up to float
summation order) under every registered backend, both via hypothesis
strategies and a seeded deterministic sweep that pins the awkward shapes
(zero rows, zero columns, hypersparse selectors).

The suite iterates ``KERNELS.names()`` at run time, so it automatically
covers the scipy backend when scipy is importable and newly registered
plugin backends.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse import (
    CSRMatrix,
    KERNELS,
    KernelBackend,
    default_kernel,
    get_kernel,
    set_default_kernel,
    spgemm,
    spgemm_hash,
    spmm,
    sprand,
    use_kernel,
)

KERNEL_NAMES = KERNELS.names()


@st.composite
def csr_pairs(draw, max_dim: int = 14, max_nnz: int = 60):
    """A multiplication-compatible (a, b) pair with adversarial features:
    duplicate COO entries, explicit zeros, negative values (cancellation
    fodder), empty rows/columns."""
    m = draw(st.integers(1, max_dim))
    k = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))

    def one(rows, cols):
        nnz = draw(st.integers(0, max_nnz))
        r = draw(st.lists(st.integers(0, rows - 1), min_size=nnz, max_size=nnz))
        c = draw(st.lists(st.integers(0, cols - 1), min_size=nnz, max_size=nnz))
        v = draw(
            st.lists(
                st.one_of(
                    st.floats(-8, 8, allow_nan=False, allow_infinity=False),
                    st.just(0.0),  # explicit zeros survive from_coo
                    st.integers(-4, 4).map(float),  # exact cancellations
                ),
                min_size=nnz,
                max_size=nnz,
            )
        )
        return CSRMatrix.from_coo(
            np.array(r, dtype=np.int64),
            np.array(c, dtype=np.int64),
            np.array(v),
            (rows, cols),
        )

    return one(m, k), one(k, n)


@given(csr_pairs())
@settings(max_examples=120, deadline=None, derandomize=True)
def test_spgemm_backends_agree(pair):
    a, b = pair
    ref = spgemm(a, b)
    for name in KERNEL_NAMES:
        out = KERNELS.get(name).spgemm(a, b)
        out.check()
        assert out.shape == ref.shape
        assert out.equal(ref, 1e-9), f"kernel {name} diverged"


@given(csr_pairs())
@settings(max_examples=60, deadline=None, derandomize=True)
def test_spmm_backends_agree(pair):
    a, _ = pair
    rng = np.random.default_rng(a.nnz)
    x = rng.standard_normal((a.shape[1], 3))
    ref = spmm(a, x)
    for name in KERNEL_NAMES:
        out = KERNELS.get(name).spmm(a, x)
        assert out.shape == ref.shape
        assert np.allclose(out, ref, atol=1e-9), f"kernel {name} diverged"
    # 1-D right operand round-trips through every backend too.
    v = rng.standard_normal(a.shape[1])
    for name in KERNEL_NAMES:
        assert np.allclose(KERNELS.get(name).spmm(a, v), spmm(a, v))


@given(csr_pairs())
@settings(max_examples=60, deadline=None, derandomize=True)
def test_sddmm_backends_agree(pair):
    pattern, _ = pair
    rng = np.random.default_rng(pattern.nnz + 1)
    x = rng.standard_normal((pattern.shape[0], 4))
    y = rng.standard_normal((pattern.shape[1], 4))
    ref = KERNELS.get("esc").sddmm(pattern, x, y)
    ref.check()
    assert ref.nnz == pattern.nnz  # structure preserved exactly
    for name in KERNEL_NAMES:
        out = KERNELS.get(name).sddmm(pattern, x, y)
        assert out.equal(ref, 1e-9), f"kernel {name} diverged"


class TestSeededSweep:
    """Deterministic density/shape sweep (no hypothesis) across backends."""

    def test_density_sweep(self):
        rng = np.random.default_rng(12345)
        for density in (0.0, 0.01, 0.1, 0.5, 1.0):
            for m, k, n in ((1, 1, 1), (5, 9, 3), (40, 17, 28)):
                a = sprand(m, k, density, rng)
                b = sprand(k, n, density, rng)
                ref = spgemm(a, b)
                for name in KERNEL_NAMES:
                    out = KERNELS.get(name).spgemm(a, b)
                    out.check()
                    assert out.equal(ref, 1e-9), (name, density, (m, k, n))

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_zero_row_and_zero_col_products(self, kernel):
        """Degenerate shapes: (0, k) @ (k, n), (m, k) @ (k, 0), (0, 0)."""
        k = KERNELS.get(kernel)
        ones = CSRMatrix.from_dense(np.ones((4, 3)))
        for a, b in (
            (CSRMatrix.zeros((0, 4)), CSRMatrix.from_dense(np.ones((4, 3)))),
            (ones, CSRMatrix.zeros((3, 0))),
            (CSRMatrix.zeros((0, 0)), CSRMatrix.zeros((0, 0))),
            (CSRMatrix.zeros((2, 5)), CSRMatrix.zeros((5, 2))),
        ):
            out = k.spgemm(a, b)
            out.check()
            assert out.shape == (a.shape[0], b.shape[1])
            assert out.nnz == 0

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_inner_dim_mismatch_raises(self, kernel):
        a = CSRMatrix.identity(3)
        b = CSRMatrix.identity(4)
        with pytest.raises(ValueError):
            KERNELS.get(kernel).spgemm(a, b)

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_cancellation_and_prune(self, kernel):
        """a @ b where products cancel exactly: backends may keep an
        explicit zero or a ~1e-17 residue; equal() must see through both,
        and prune_zeros must restore canonical form."""
        a = CSRMatrix.from_dense(np.array([[1.0, 1.0], [2.0, -1.0]]))
        b = CSRMatrix.from_dense(np.array([[3.0, 1.0], [-3.0, 1.0]]))
        out = KERNELS.get(kernel).spgemm(a, b)
        out.check()
        dense = a.to_dense() @ b.to_dense()
        assert np.allclose(out.to_dense(), dense)
        pruned = out.prune_zeros(1e-12)
        assert pruned.equal(CSRMatrix.from_dense(dense), 1e-9)

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_hypersparse_selector_product(self, kernel):
        """The LADIES shape: a tall hypersparse column selector."""
        rng = np.random.default_rng(7)
        a_r = sprand(6, 400, 0.05, rng)
        sampled = np.sort(rng.choice(400, 11, replace=False))
        from repro.sparse import col_selector

        q_c = col_selector(sampled, 400)
        ref = spgemm(a_r, q_c)
        out = KERNELS.get(kernel).spgemm(a_r, q_c)
        out.check()
        assert out.equal(ref, 1e-9)

    def test_duplicate_heavy_product(self):
        """Indicator-row Q A: many batch vertices share neighbors, so the
        expanded intermediate is far larger than the output."""
        from repro.graphs import rmat
        from repro.sparse import indicator_rows

        rng = np.random.default_rng(3)
        adj = rmat(9, 8, rng)
        batches = [rng.choice(adj.shape[0], 64, replace=False) for _ in range(4)]
        q = indicator_rows(batches, adj.shape[0])
        ref = spgemm(q, adj)
        for name in KERNEL_NAMES:
            assert KERNELS.get(name).spgemm(q, adj).equal(ref, 1e-9), name


class TestHashKernelInternals:
    def test_hash_matches_esc_exactly_on_integers(self):
        """Integer-valued data: all summation orders are exact, so the
        hash kernel must match ESC bit-for-bit, not just within tol."""
        rng = np.random.default_rng(11)
        for _ in range(30):
            m, k, n = rng.integers(1, 25, 3)
            a = sprand(m, k, 0.3, rng, values="ones")
            b = sprand(k, n, 0.3, rng, values="ones")
            ref = spgemm(a, b)
            out = spgemm_hash(a, b)
            assert np.array_equal(out.indptr, ref.indptr)
            assert np.array_equal(out.indices, ref.indices)
            assert np.array_equal(out.data, ref.data)

    def test_high_collision_table(self):
        """Dense-ish product: table load approaches its 50% bound."""
        rng = np.random.default_rng(13)
        a = sprand(30, 30, 0.9, rng)
        b = sprand(30, 30, 0.9, rng)
        assert spgemm_hash(a, b).equal(spgemm(a, b), 1e-9)


class TestRegistryAndDispatch:
    def test_builtin_backends_registered(self):
        assert "esc" in KERNELS and "hash" in KERNELS
        for name in KERNEL_NAMES:
            assert isinstance(KERNELS.get(name), KernelBackend)

    def test_get_kernel_resolution(self):
        assert get_kernel("hash").name == "hash"
        backend = KERNELS.get("esc")
        assert get_kernel(backend) is backend
        assert get_kernel(None) is default_kernel()
        with pytest.raises(KeyError):
            get_kernel("no-such-kernel")

    def test_use_kernel_scopes_matmul(self):
        rng = np.random.default_rng(5)
        a, b = sprand(10, 10, 0.4, rng), sprand(10, 10, 0.4, rng)
        ref = spgemm(a, b)
        assert default_kernel().name == "esc"
        with use_kernel("hash") as k:
            assert k.name == "hash"
            assert default_kernel().name == "hash"
            assert (a @ b).equal(ref, 1e-9)
        assert default_kernel().name == "esc"

    def test_use_kernel_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_kernel("hash"):
                raise RuntimeError("boom")
        assert default_kernel().name == "esc"

    def test_set_default_kernel_validates(self):
        with pytest.raises(KeyError):
            set_default_kernel("typo")
        assert default_kernel().name == "esc"

    def test_custom_backend_registration(self):
        class Doubling(KernelBackend):
            name = "doubling"

            def spgemm(self, a, b):
                return spgemm(a, b)

        KERNELS.register("doubling-test", Doubling(), description="test-only")
        try:
            rng = np.random.default_rng(2)
            a, b = sprand(6, 6, 0.5, rng), sprand(6, 6, 0.5, rng)
            with use_kernel("doubling-test"):
                assert (a @ b).equal(spgemm(a, b), 1e-9)
        finally:
            KERNELS.unregister("doubling-test")
        assert "doubling-test" not in KERNELS

    def test_sampler_none_kernel_tracks_default(self):
        """A sampler built with kernel=None follows the process default at
        call time (no snapshot at construction); an explicit kernel pins."""
        from repro.core import SageSampler

        floating = SageSampler()  # kernel=None
        pinned = SageSampler(kernel="esc")
        with use_kernel("hash"):
            assert floating._resolve_spgemm(None) == get_kernel("hash").spgemm
            assert pinned._resolve_spgemm(None) == get_kernel("esc").spgemm
        assert floating._resolve_spgemm(None) == get_kernel("esc").spgemm

    def test_sampler_rejects_unknown_kernel(self):
        from repro.core import SageSampler

        with pytest.raises(KeyError):
            SageSampler(kernel="no-such-kernel")

    def test_graceful_without_scipy(self):
        """Blocking scipy at import time must leave esc/hash registered
        and the default path fully functional (the no-scipy CI leg)."""
        code = (
            "import sys; sys.modules['scipy'] = None;"
            "from repro.sparse import KERNELS, CSRMatrix;"
            "assert 'scipy' not in KERNELS.names(), KERNELS.names();"
            "assert {'esc', 'hash'} <= set(KERNELS.names());"
            "a = CSRMatrix.identity(3);"
            "assert KERNELS.get('hash').spgemm(a, a).equal(a);"
            "print('ok')"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src"},
            cwd=str(__import__("pathlib").Path(__file__).resolve().parents[1]),
        )
        assert proc.returncode == 0, proc.stderr
        assert "ok" in proc.stdout
