"""Feature cache + double-buffered scheduling: correctness and accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Engine, RunConfig
from repro.comm import Communicator, ProcessGrid
from repro.partition import (
    CACHE_POLICIES,
    CachedFeatureStore,
    CacheStats,
    FeatureStore,
)
from repro.pipeline import overlap_saving, overlapped_makespan


def _setup(p, c, n=64, f=8, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    comm = Communicator(p)
    grid = ProcessGrid(p, c)
    feats = rng.standard_normal((n, f)).astype(dtype)
    return comm, grid, feats, FeatureStore(feats, grid)


def _degrees(n, seed=0):
    """A deterministic skewed score vector standing in for in-degrees."""
    rng = np.random.default_rng(seed)
    return rng.zipf(2.0, size=n).astype(np.float64)


class TestCachedFetchCorrectness:
    @pytest.mark.parametrize("p,c", [(4, 1), (4, 2), (8, 2), (8, 4)])
    @pytest.mark.parametrize("policy", CACHE_POLICIES)
    def test_matches_uncached_rows_exactly(self, p, c, policy, rng):
        comm, grid, feats, store = _setup(p, c)
        cache = CachedFeatureStore(
            store, budget_bytes=store.wire_bytes(16), policy=policy,
            scores=_degrees(64),
        )
        needed = [rng.choice(64, 20, replace=True) for _ in range(p)]
        got = cache.fetch(comm, needed)
        for r in range(p):
            assert got[r].dtype == feats.dtype
            assert np.array_equal(got[r], feats[needed[r]])

    def test_zero_budget_behaves_like_plain_store(self, rng):
        comm, grid, feats, store = _setup(4, 2)
        cache = CachedFeatureStore(
            store, budget_bytes=0.0, scores=_degrees(64)
        )
        assert cache.capacity_rows == 0 and cache.cached_ids.size == 0
        needed = [rng.choice(64, 8, replace=False) for _ in range(4)]
        got = cache.fetch(comm, needed)
        for r in range(4):
            assert np.array_equal(got[r], feats[needed[r]])
        assert cache.stats.hits == 0
        assert cache.stats.misses == cache.stats.requests == 32

    def test_fp32_store_returns_fp32_through_cache(self, rng):
        comm, grid, feats, store = _setup(4, 2, dtype=np.float32)
        cache = CachedFeatureStore(
            store, budget_bytes=store.wire_bytes(8), scores=_degrees(64)
        )
        got = cache.fetch(comm, [rng.choice(64, 6, replace=False)] * 4)
        assert all(g.dtype == np.float32 for g in got)

    def test_budget_caps_cached_rows(self):
        _, grid, feats, store = _setup(4, 2, n=64, f=8)
        row_bytes = store.wire_bytes(1)
        cache = CachedFeatureStore(
            store, budget_bytes=10.5 * row_bytes, scores=_degrees(64)
        )
        assert cache.capacity_rows == 10
        assert cache.cached_ids.size == 10
        # The cached block is an exact copy of the stored rows.
        assert np.array_equal(cache._block, feats[cache.cached_ids])

    def test_degree_policy_pins_top_scores(self):
        _, grid, feats, store = _setup(4, 2)
        scores = np.zeros(64)
        scores[[3, 17, 40]] = [5.0, 9.0, 7.0]
        cache = CachedFeatureStore(
            store, budget_bytes=store.wire_bytes(3), scores=scores
        )
        assert cache.cached_ids.tolist() == [3, 17, 40]

    def test_validation(self):
        _, grid, feats, store = _setup(4, 2)
        with pytest.raises(ValueError):
            CachedFeatureStore(store, budget_bytes=-1.0, scores=_degrees(64))
        with pytest.raises(ValueError):
            CachedFeatureStore(
                store, budget_bytes=1.0, policy="magic", scores=_degrees(64)
            )
        with pytest.raises(ValueError):
            CachedFeatureStore(store, budget_bytes=1.0, policy="degree")
        with pytest.raises(ValueError):
            CachedFeatureStore(
                store, budget_bytes=1.0, scores=np.ones(3)
            )
        cache = CachedFeatureStore(
            store, budget_bytes=store.wire_bytes(4), scores=_degrees(64)
        )
        with pytest.raises(ValueError):
            cache.fetch(Communicator(4), [np.arange(2)])  # wrong count


class TestCacheAccounting:
    def test_hit_miss_counts_match_membership(self, rng):
        comm, grid, feats, store = _setup(4, 2)
        cache = CachedFeatureStore(
            store, budget_bytes=store.wire_bytes(16), scores=_degrees(64)
        )
        cached = set(cache.cached_ids.tolist())
        needed = [rng.choice(64, 12, replace=True) for _ in range(4)]
        cache.fetch(comm, needed)
        want_hits = sum(int(v) in cached for ids in needed for v in ids)
        # Byte counters only cover rows that would have crossed the wire:
        # rows owned by the requester's own process row are free anyway.
        # Here (p=4, c=2): rank r sits in process row r // 2, block rows
        # span 32 vertices each.
        remote_hits = sum(
            int(v) in cached and (v // 32) != (r // 2)
            for r, ids in enumerate(needed) for v in ids
        )
        remote_misses = sum(
            int(v) not in cached and (v // 32) != (r // 2)
            for r, ids in enumerate(needed) for v in ids
        )
        assert cache.stats.requests == 48
        assert cache.stats.hits == want_hits
        assert cache.stats.misses == 48 - want_hits
        assert cache.stats.hits + cache.stats.misses == cache.stats.requests
        assert cache.stats.hit_bytes == store.wire_bytes(remote_hits)
        assert cache.stats.miss_bytes == store.wire_bytes(remote_misses)
        assert 0.0 <= cache.stats.hit_rate <= 1.0

    def test_hit_bytes_match_measured_ledger_savings(self, rng):
        """fetch_bytes_saved must equal the actual response-round volume
        reduction vs the uncached path (no overstated savings for rows the
        requester's own process row already held)."""
        needed = [rng.choice(64, 20, replace=True) for _ in range(4)]
        volumes = {}
        saved = 0.0
        for budget_rows in (0, 16):
            comm, grid, feats, store = _setup(4, 2)
            cache = CachedFeatureStore(
                store, budget_bytes=store.wire_bytes(budget_rows),
                scores=_degrees(64),
            )
            cache.fetch(comm, needed)
            volumes[budget_rows] = comm.ledger.sent()
            if budget_rows:
                saved = cache.stats.hit_bytes
        # Ledger delta = avoided response rows + their 8-byte request ids.
        avoided_ids = saved / store.wire_bytes(1) * 8.0
        assert volumes[0] - volumes[16] == pytest.approx(saved + avoided_ids)

    def test_hits_shrink_ledger_volume(self, rng):
        """The cache's whole point: misses-only all-to-allv moves fewer
        bytes than the uncached fetch for the same requests."""
        needed = [
            np.random.default_rng(7).choice(256, 64, replace=False)
            for _ in range(8)
        ]
        volumes = {}
        for budget_rows in (0, 64):
            comm, grid, feats, store = _setup(8, 2, n=256, f=16)
            cache = CachedFeatureStore(
                store, budget_bytes=store.wire_bytes(budget_rows),
                scores=_degrees(256),
            )
            with comm.phase("feature_fetch"):
                cache.fetch(comm, needed)
            volumes[budget_rows] = comm.ledger.sent("feature_fetch")
        assert volumes[64] < volumes[0]

    def test_all_hits_skip_the_alltoallv(self):
        comm, grid, feats, store = _setup(4, 2)
        cache = CachedFeatureStore(
            store, budget_bytes=store.wire_bytes(64), scores=_degrees(64)
        )
        needed = [np.arange(10) for _ in range(4)]
        got = cache.fetch(comm, needed)
        assert comm.ledger.sent() == 0  # no wire traffic at all
        assert cache.stats.misses == 0
        for r in range(4):
            assert np.array_equal(got[r], feats[:10])

    def test_stats_reset(self):
        stats = CacheStats(requests=10, hits=4, misses=6, hit_bytes=1.0)
        stats.reset()
        assert stats.requests == stats.hits == stats.misses == 0
        assert stats.hit_rate == 0.0


class TestLFUPolicy:
    def test_refresh_tracks_observed_demand(self):
        comm, grid, feats, store = _setup(4, 2)
        # Seed scores favor vertices 0..3; demand will favor 60..63.
        scores = np.zeros(64)
        scores[:4] = 10.0
        cache = CachedFeatureStore(
            store, budget_bytes=store.wire_bytes(4), policy="lfu",
            scores=scores,
        )
        assert cache.cached_ids.tolist() == [0, 1, 2, 3]
        hot = np.array([60, 61, 62, 63])
        for _ in range(3):
            cache.fetch(comm, [hot] * 4)
        cache.refresh()
        assert cache.cached_ids.tolist() == [60, 61, 62, 63]
        # And the refreshed replica serves exact rows.
        got = cache.fetch(comm, [hot] * 4)
        assert np.array_equal(got[0], feats[hot])

    def test_degree_refresh_is_static(self):
        comm, grid, feats, store = _setup(4, 2)
        scores = np.zeros(64)
        scores[:4] = 10.0
        cache = CachedFeatureStore(
            store, budget_bytes=store.wire_bytes(4), policy="degree",
            scores=scores,
        )
        for _ in range(3):
            cache.fetch(comm, [np.array([60, 61, 62, 63])] * 4)
        cache.refresh()
        assert cache.cached_ids.tolist() == [0, 1, 2, 3]

    def test_refresh_charges_replication_traffic(self):
        """Rows newly entering the replica are real traffic; an unchanged
        re-rank charges nothing."""
        comm, grid, feats, store = _setup(4, 2)
        scores = np.zeros(64)
        scores[:4] = 10.0
        cache = CachedFeatureStore(
            store, budget_bytes=store.wire_bytes(4), policy="lfu",
            scores=scores,
        )
        hot = np.array([60, 61, 62, 63])
        for _ in range(3):
            cache.fetch(comm, [hot] * 4)
        before = comm.ledger.sent()
        cache.refresh(comm)  # swaps in 4 new rows -> broadcast charged
        after_swap = comm.ledger.sent()
        assert after_swap > before
        cache.refresh(comm)  # demand unchanged -> same set, no traffic
        assert comm.ledger.sent() == after_swap

    def test_lfu_ties_break_by_seed_scores(self):
        _, grid, feats, store = _setup(4, 2)
        scores = np.zeros(64)
        scores[[7, 9]] = [1.0, 2.0]
        cache = CachedFeatureStore(
            store, budget_bytes=store.wire_bytes(1), policy="lfu",
            scores=scores,
        )
        cache.refresh()  # no observed counts: seed scores decide
        assert cache.cached_ids.tolist() == [9]


class TestOverlapSchedule:
    def test_single_bulk_is_serial(self):
        assert overlapped_makespan([3.0], [2.0]) == pytest.approx(5.0)
        assert overlap_saving([3.0], [2.0]) == pytest.approx(0.0)

    def test_hand_example(self):
        # prep 1,1,1 / train 2,2,2: steady state hides prep behind train.
        assert overlapped_makespan([1, 1, 1], [2, 2, 2]) == pytest.approx(7.0)
        assert overlap_saving([1, 1, 1], [2, 2, 2]) == pytest.approx(2.0)

    def test_bounds(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            k = int(rng.integers(1, 8))
            prep = rng.random(k).tolist()
            train = rng.random(k).tolist()
            t = overlapped_makespan(prep, train)
            assert t <= sum(prep) + sum(train) + 1e-12
            assert t >= max(sum(prep), sum(train)) - 1e-12

    def test_buffer_depth_one_limits_prefetch(self):
        # Tiny preps cannot all run ahead: bulk k+2's prep waits for
        # training on bulk k to start, so the makespan is bounded below by
        # prep[0] + all training.
        t = overlapped_makespan([1, 1, 1, 1], [10, 10, 10, 10])
        assert t == pytest.approx(41.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            overlapped_makespan([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            overlapped_makespan([-1.0], [1.0])
        assert overlapped_makespan([], []) == 0.0


class TestPipelineIntegration:
    BASE = dict(
        dataset="products", scale=0.1, p=4, c=2, algorithm="partitioned",
        fanout=(4, 2), batch_size=16, hidden=16, train_split=0.5,
        epochs=1, k=2, seed=0,
    )

    @pytest.mark.parametrize("sampler,fanout", [("sage", (4, 2)), ("ladies", (16,))])
    @pytest.mark.parametrize("policy", CACHE_POLICIES)
    def test_losses_bit_identical_cache_on_off(self, sampler, fanout, policy):
        losses, volumes = {}, {}
        for budget in (0.0, 64_000.0):
            cfg = RunConfig(
                **{**self.BASE, "sampler": sampler, "fanout": fanout},
                cache_budget=budget, cache_policy=policy,
            )
            engine = Engine(cfg)
            stats = engine.train_epoch(0)
            losses[budget] = stats.loss
            volumes[budget] = engine.pipeline.comm.ledger.sent("feature_fetch")
        assert losses[0.0] == losses[64_000.0]  # bit-identical, not approx
        assert volumes[64_000.0] < volumes[0.0]

    def test_epoch_stats_carry_cache_counters(self):
        engine = Engine(RunConfig(**self.BASE, sampler="sage",
                                  cache_budget=64_000.0))
        stats = engine.train_epoch(0)
        assert stats.fetch_hits > 0
        assert stats.fetch_hit_rate == pytest.approx(
            stats.fetch_hits / (stats.fetch_hits + stats.fetch_misses)
        )
        assert stats.fetch_bytes_saved > 0
        assert engine.cache_stats is not None
        assert engine.cache_stats.hits == stats.fetch_hits

    def test_uncached_stats_have_no_hit_rate(self):
        engine = Engine(RunConfig(**self.BASE, sampler="sage"))
        stats = engine.train_epoch(0)
        assert stats.fetch_hit_rate is None and stats.fetch_hits == 0
        assert engine.cache_stats is None

    def test_cache_reduces_fetch_time_at_scale(self):
        times = {}
        for budget in (0.0, 128_000.0):
            cfg = RunConfig(**self.BASE, sampler="sage", train_model=False,
                            work_scale=1e4, cache_budget=budget)
            times[budget] = Engine(cfg).train_epoch(0).feature_fetch
        assert times[128_000.0] < times[0.0]

    def test_overlap_reduces_epoch_seconds(self):
        stats = {}
        for overlap in (False, True):
            cfg = RunConfig(**self.BASE, sampler="sage", overlap=overlap)
            stats[overlap] = Engine(cfg).train_epoch(0)
        assert stats[False].pipelined_total is None
        assert stats[False].epoch_seconds == pytest.approx(stats[False].total)
        on = stats[True]
        assert on.pipelined_total is not None
        assert on.epoch_seconds < on.total
        assert on.overlap_saved == pytest.approx(on.total - on.pipelined_total)
        # Overlap is pure scheduling: training output is untouched.
        assert on.loss == stats[False].loss
        assert "pipelined_s" in on.row()

    def test_bulk_stats_carry_stage_times(self):
        engine = Engine(RunConfig(**self.BASE, sampler="sage", overlap=True))
        bulks = list(engine.stream_bulks())
        assert len(bulks) >= 2
        for b in bulks:
            assert b.prep_s > 0 and b.train_s > 0
        total = engine.epoch_stats
        assert sum(b.prep_s for b in bulks) == pytest.approx(
            total.sampling + total.feature_fetch
        )
        assert sum(b.train_s for b in bulks) == pytest.approx(total.propagation)


class TestRunConfigFields:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunConfig(cache_budget=-1.0)
        with pytest.raises(ValueError):
            RunConfig(cache_policy="magic")

    def test_json_roundtrip(self):
        cfg = RunConfig(cache_budget=4096.0, cache_policy="lfu", overlap=True)
        again = RunConfig.from_json(cfg.to_json())
        assert again.cache_budget == 4096.0
        assert again.cache_policy == "lfu"
        assert again.overlap is True
