"""Partitioning: 1D block rows, row ownership, the 1.5D feature store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import Communicator, ProcessGrid
from repro.partition import BlockRows, FeatureStore, split_rows
from repro.sparse import sprand


class TestSplitRows:
    def test_even(self):
        assert np.array_equal(split_rows(12, 4), [0, 3, 6, 9, 12])

    def test_remainder_to_leading_blocks(self):
        assert np.array_equal(split_rows(10, 4), [0, 3, 6, 8, 10])

    def test_more_blocks_than_rows(self):
        bounds = split_rows(2, 4)
        assert bounds[-1] == 2 and len(bounds) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            split_rows(5, 0)
        with pytest.raises(ValueError):
            split_rows(-1, 2)


class TestBlockRows:
    def test_partition_roundtrip(self, rng):
        m = sprand(37, 20, 0.2, rng)
        br = BlockRows.partition(m, 5)
        assert br.n_blocks == 5
        assert br.to_matrix().equal(m)

    def test_owner_lookup(self, rng):
        m = sprand(10, 10, 0.3, rng)
        br = BlockRows.partition(m, 3)  # sizes 4,3,3
        assert br.owner_of_row(0) == 0
        assert br.owner_of_row(3) == 0
        assert br.owner_of_row(4) == 1
        assert br.owner_of_row(9) == 2
        with pytest.raises(IndexError):
            br.owner_of_row(10)

    def test_owners_vectorized(self, rng):
        m = sprand(20, 20, 0.2, rng)
        br = BlockRows.partition(m, 4)
        rows = np.arange(20)
        owners = br.owners_of_rows(rows)
        assert np.array_equal(
            owners, [br.owner_of_row(int(r)) for r in rows]
        )

    def test_blocks_have_local_rows_global_cols(self, rng):
        m = sprand(12, 9, 0.3, rng)
        br = BlockRows.partition(m, 3)
        for i, blk in enumerate(br.blocks):
            lo, hi = br.starts[i], br.starts[i + 1]
            assert np.allclose(blk.to_dense(), m.to_dense()[lo:hi])


class TestFeatureStore:
    def _setup(self, p, c, n=64, f=8, seed=0):
        rng = np.random.default_rng(seed)
        comm = Communicator(p)
        grid = ProcessGrid(p, c)
        feats = rng.standard_normal((n, f))
        return comm, grid, feats, FeatureStore(feats, grid)

    @pytest.mark.parametrize("p,c", [(4, 1), (4, 2), (8, 2), (8, 4)])
    def test_fetch_returns_exact_rows(self, p, c, rng):
        comm, grid, feats, store = self._setup(p, c)
        needed = [rng.choice(64, 12, replace=False) for _ in range(p)]
        got = store.fetch(comm, needed)
        for r in range(p):
            assert np.allclose(got[r], feats[needed[r]])

    def test_fetch_handles_duplicates_and_empty(self, rng):
        comm, grid, feats, store = self._setup(4, 2)
        needed = [
            np.array([5, 5, 3]),
            np.empty(0, dtype=np.int64),
            np.array([63]),
            np.arange(10),
        ]
        got = store.fetch(comm, needed)
        assert np.allclose(got[0], feats[[5, 5, 3]])
        assert got[1].shape == (0, 8)
        assert np.allclose(got[2], feats[[63]])
        assert np.allclose(got[3], feats[:10])

    def test_fetch_all_remote_rows(self, rng):
        """A rank whose whole request is owned by *other* process rows."""
        comm, grid, feats, store = self._setup(4, 2)  # 2 block rows of 32
        needed = [
            np.arange(40, 50),        # rank 0 (process row 0): all remote
            np.arange(0, 8),          # rank 1 (process row 0): all local
            np.arange(10, 14),        # rank 2 (process row 1): all remote
            np.arange(50, 54),        # rank 3 (process row 1): all local
        ]
        got = store.fetch(comm, needed)
        for r in range(4):
            assert np.allclose(got[r], feats[needed[r]])

    def test_fetch_preserves_store_dtype(self, rng):
        """Regression: the output block must follow the stored dtype, not
        silently upcast fp32 features to float64."""
        comm = Communicator(4)
        grid = ProcessGrid(4, 2)
        feats = rng.standard_normal((64, 8)).astype(np.float32)
        store = FeatureStore(feats, grid)
        needed = [
            rng.choice(64, 6, replace=False),
            np.empty(0, dtype=np.int64),  # hits the empty-chunk fallback
            np.arange(40, 50),
            np.arange(4),
        ]
        got = store.fetch(comm, needed)
        for r in range(4):
            assert got[r].dtype == np.float32
            assert np.array_equal(got[r], feats[needed[r]])

    def test_fetch_volume_decreases_with_c(self, rng):
        """The paper's Figure 6 mechanism: feature-fetch time scales with c."""
        times = {}
        for c in (1, 2, 4):
            comm, grid, feats, store = self._setup(8, c, n=512, f=64)
            needed = [rng.choice(512, 128, replace=False) for _ in range(8)]
            with comm.phase("feature_fetch"):
                store.fetch(comm, needed)
            times[c] = comm.clock.phase_seconds("feature_fetch")
        assert times[4] < times[2] < times[1]

    def test_owner_row(self):
        comm, grid, feats, store = self._setup(4, 2)  # 2 block rows of 32
        assert store.owner_row(np.array([0, 31, 32, 63])).tolist() == [0, 0, 1, 1]
        assert np.array_equal(store.local_rows(1), np.arange(32, 64))

    def test_wire_bytes_uses_fp32(self):
        comm, grid, feats, store = self._setup(4, 2)
        assert store.wire_bytes(10) == 10 * 8 * 4

    def test_validation(self, rng):
        comm = Communicator(4)
        grid = ProcessGrid(4, 2)
        with pytest.raises(ValueError):
            FeatureStore(np.ones(5), grid)
        store = FeatureStore(np.ones((10, 2)), grid)
        with pytest.raises(ValueError):
            store.fetch(comm, [np.arange(2)])  # wrong number of requests
