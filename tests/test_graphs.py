"""Graph container, generators and the paper-dataset stand-ins."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    PAPER_DATASETS,
    chung_lu,
    dataset_names,
    erdos_renyi,
    load_dataset,
    planted_partition,
    rmat,
    summarize,
    table3_rows,
)
from repro.graphs.stats import degree_histogram
from repro.sparse import CSRMatrix


class TestGenerators:
    def test_rmat_shape_and_validity(self, rng):
        adj = rmat(8, 4, rng)
        assert adj.shape == (256, 256)
        adj.check()
        assert np.all(adj.data == 1.0)  # binary
        # no self loops
        rows, cols, _ = adj.to_coo()
        assert np.all(rows != cols)

    def test_rmat_skewed_degrees(self, rng):
        adj = rmat(10, 8, rng)
        degs = adj.nnz_per_row()
        # R-MAT with Graph500 parameters is heavy-tailed: the max degree
        # should far exceed the mean.
        assert degs.max() > 5 * degs.mean()

    def test_rmat_undirected_is_symmetric(self, rng):
        adj = rmat(7, 4, rng, make_undirected=True)
        assert adj.equal(adj.transpose())

    def test_rmat_validation(self, rng):
        with pytest.raises(ValueError):
            rmat(0, 4, rng)
        with pytest.raises(ValueError):
            rmat(5, 4, rng, a=0.9, b=0.2, c=0.2)

    def test_erdos_renyi_flat_degrees(self, rng):
        adj = erdos_renyi(2000, 10, rng)
        degs = adj.nnz_per_row()
        # Poisson-ish: max degree within a small multiple of the mean.
        assert degs.max() < 5 * max(1.0, degs.mean())

    def test_erdos_renyi_validation(self, rng):
        with pytest.raises(ValueError):
            erdos_renyi(0, 5, rng)

    def test_chung_lu_power_law(self, rng):
        adj = chung_lu(2000, 8, rng, exponent=2.2)
        degs = np.sort(adj.nnz_per_row() + adj.transpose().nnz_per_row())[::-1]
        assert degs[0] > 10 * max(1, degs[len(degs) // 2])  # heavy head

    def test_chung_lu_validation(self, rng):
        with pytest.raises(ValueError):
            chung_lu(100, 5, rng, exponent=1.0)

    def test_planted_partition_homophily(self, rng):
        adj, labels = planted_partition(1000, 4, 20, rng, intra_fraction=0.9)
        rows, cols, _ = adj.to_coo()
        same = (labels[rows] == labels[cols]).mean()
        # Expect clearly more intra-class edges than the 1/4 random rate.
        assert same > 0.6

    def test_planted_partition_validation(self, rng):
        with pytest.raises(ValueError):
            planted_partition(10, 4, 5, rng, intra_fraction=1.5)
        with pytest.raises(ValueError):
            planted_partition(2, 4, 5, rng)


class TestGraphContainer:
    def _toy(self) -> Graph:
        adj = CSRMatrix.from_dense(np.eye(6)[::-1])
        return Graph(
            name="toy",
            adj=adj,
            features=np.ones((6, 3)),
            labels=np.arange(6) % 2,
            train_idx=np.arange(4),
        )

    def test_basic_properties(self):
        g = self._toy()
        assert g.n == 6 and g.m == 6
        assert g.n_features == 3 and g.n_classes == 2
        assert g.avg_degree() == 1.0

    def test_validation(self):
        adj = CSRMatrix.from_dense(np.eye(4))
        with pytest.raises(ValueError):
            Graph("bad", CSRMatrix.zeros((3, 4)))
        with pytest.raises(ValueError):
            Graph("bad", adj, features=np.ones((3, 2)))
        with pytest.raises(ValueError):
            Graph("bad", adj, train_idx=np.array([9]))

    def test_rejects_unsorted_columns(self):
        unsorted = CSRMatrix(
            np.array([0, 2, 2]), np.array([1, 0]), np.ones(2), (2, 2)
        )
        with pytest.raises(ValueError, match="from_coo"):
            Graph("bad", unsorted)

    def test_rejects_duplicate_columns(self):
        dup = CSRMatrix(
            np.array([0, 2, 2]), np.array([0, 0]), np.ones(2), (2, 2)
        )
        with pytest.raises(ValueError, match="canonical CSR"):
            Graph("bad", dup)

    def test_canonical_from_coo_accepted(self):
        adj = CSRMatrix.from_coo(
            np.array([1, 0, 1]), np.array([0, 1, 0]), np.ones(3), (2, 2)
        )
        assert Graph("ok", adj).m == 2  # duplicates merged by from_coo

    def test_make_batches(self):
        g = self._toy()
        bs = g.make_batches(2)
        assert len(bs) == 2 and all(len(b) == 2 for b in bs)
        assert g.num_batches(2) == 2
        with pytest.raises(ValueError):
            g.make_batches(10)
        with pytest.raises(ValueError):
            g.num_batches(0)

    def test_make_batches_shuffles_with_rng(self):
        g = self._toy()
        a = g.make_batches(2, np.random.default_rng(0))
        b = g.make_batches(2, np.random.default_rng(1))
        joined_a = np.sort(np.concatenate(a))
        joined_b = np.sort(np.concatenate(b))
        assert np.array_equal(joined_a, joined_b)  # same vertices overall


class TestDatasets:
    def test_names_and_specs(self):
        assert dataset_names() == ["papers", "products", "protein"]
        spec = PAPER_DATASETS["products"]
        assert spec.vertices == 2_449_029
        assert 50 < spec.avg_degree < 55

    def test_density_ordering_matches_paper(self):
        d = {k: v.avg_degree for k, v in PAPER_DATASETS.items()}
        assert d["protein"] > d["products"] > d["papers"]

    def test_load_dataset_properties(self):
        g = load_dataset("products", scale=0.25, seed=0)
        assert g.n_features == 100
        assert g.labels is not None
        assert g.train_idx.size > 0
        # splits are disjoint
        assert not set(g.train_idx) & set(g.val_idx)
        assert not set(g.train_idx) & set(g.test_idx)

    def test_load_dataset_with_labels_learnable_structure(self):
        g = load_dataset("products", scale=0.1, seed=1, with_labels=True, n_classes=4)
        rows, cols, _ = g.adj.to_coo()
        same = (g.labels[rows] == g.labels[cols]).mean()
        assert same > 0.5  # homophilous

    def test_load_dataset_determinism(self):
        a = load_dataset("papers", scale=0.05, seed=9)
        b = load_dataset("papers", scale=0.05, seed=9)
        assert a.adj.equal(b.adj)
        assert np.allclose(a.features, b.features)

    def test_load_dataset_validation(self):
        with pytest.raises(KeyError):
            load_dataset("citeseer")
        with pytest.raises(ValueError):
            load_dataset("products", scale=-1)


class TestStats:
    def test_summarize(self):
        g = load_dataset("products", scale=0.1, seed=0)
        s = summarize(g)
        assert s.vertices == g.n and s.edges == g.m
        row = s.row()
        assert row["features"] == 100

    def test_table3_rows(self):
        rows = table3_rows()
        assert len(rows) == 3
        papers = next(r for r in rows if r["name"] == "papers")
        assert papers["vertices"] == 111_059_956

    def test_degree_histogram(self):
        g = load_dataset("products", scale=0.1, seed=0)
        counts, edges = degree_histogram(g)
        assert counts.sum() == (g.out_degrees() > 0).sum()
