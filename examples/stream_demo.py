"""Streaming-graph demo: serve inference while the graph mutates.

Walks the `repro.stream` lifecycle end to end:

1. **Delta-CSR basics** — insert and delete edges through a
   :class:`repro.stream.DeltaCSR` overlay, watch the delta log grow and
   drain, and force a compaction (which asserts parity with a
   from-scratch rebuild internally).
2. **Update-interleaved serving** — train a small SAGE model, build a
   streaming server with ``engine.serving()`` under
   ``RunConfig(stream_updates=True)``, and drive it with an
   :class:`repro.stream.UpdateStream` that interleaves edge churn with
   inference requests. Updates invalidate exactly the cached embedding
   rows they can reach (the dirty-vertex closure), so served logits stay
   bit-identical to layer-wise inference on the *current* graph — which
   the demo verifies against an independent from-scratch rebuild.

Run:  python examples/stream_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Engine, RunConfig
from repro.bench.reporting import format_latency_summary
from repro.pipeline import layerwise_inference
from repro.stream import DeltaCSR, UpdateStream


def delta_csr_tour(adj) -> None:
    print("== 1. the delta-CSR overlay ==")
    delta = DeltaCSR(adj, compaction_threshold=0.001)
    print(f"base: {adj.shape[0]} vertices, {adj.nnz} edges; "
          f"compaction at {delta.compaction_limit} pending edits")

    # Insert a fresh edge: the log grows, the view re-merges one row.
    rows, cols, _ = adj.to_coo()
    existing = set(zip(rows.tolist(), cols.tolist()))
    u, v = next(
        (a, b) for a in range(adj.shape[0]) for b in range(adj.shape[0])
        if a != b and (a, b) not in existing
    )
    delta.insert_edges([u], [v])
    print(f"insert {u}->{v}: pending={delta.pending}, "
          f"view nnz={delta.view().nnz}")

    # Deleting it again restores the base exactly — the log drains.
    delta.delete_edges([u], [v])
    print(f"delete {u}->{v}: pending={delta.pending} (log drained, "
          f"view is the base again: {delta.view().equal(adj)})")

    # Enough churn triggers a compaction; parity with a from-scratch
    # from_coo rebuild is asserted inside compact() on every call.
    e0, e1 = rows[:delta.compaction_limit], cols[:delta.compaction_limit]
    delta.delete_edges(e0, e1)
    delta.maybe_compact()
    print(f"deleted {e0.size} edges: compactions={delta.compactions}, "
          f"new base nnz={delta.base.nnz}\n")


def streaming_serving() -> None:
    print("== 2. update-interleaved serving ==")
    cfg = RunConfig(
        dataset="products",
        scale=0.25,
        train_split=0.5,
        p=1, c=1,
        algorithm="single",
        sampler="sage",
        fanout=(5, 3),
        batch_size=32,
        hidden=32,
        epochs=2,
        seed=7,
        serve_batch_size=8,
        serve_max_wait=5e-4,
        embed_budget=128e3,       # cached h^{L-1} rows churn invalidates
        stream_updates=True,      # wrap the graph in a StreamingGraph
        compaction_threshold=0.002,
    )
    engine = Engine(cfg)
    engine.train(cfg.epochs)
    print(f"trained: test accuracy {engine.evaluate('test'):.3f}")

    server = engine.serving()
    workload = UpdateStream.synthetic(
        engine.graph.adj, engine.graph.test_idx,
        n_requests=96, update_ratio=0.5, edges_per_update=8,
        delete_fraction=0.5, seed=cfg.seed,
    )
    print(f"workload: {len(workload.initial())} initial requests, "
          f"{len(workload.updates())} update batches "
          f"({workload.n_update_edges} edges)")

    report = server.process(workload)
    us = report.update_stats
    print(f"served {report.n_requests} requests in {report.batches} "
          f"micro-batches under {us.batches} update batches "
          f"({us.applied} edits, {us.compactions} compactions, "
          f"{report.cache_stats.invalidations} embedding rows invalidated)")
    print(format_latency_summary(report.latencies, label="latency"))
    print(f"throughput: {report.throughput:.0f} req/s (simulated); "
          f"phases: " + "  ".join(
              f"{ph} {s * 1e3:.3f}ms"
              for ph, s in sorted(report.phase_seconds.items())))

    # The guarantee: warm-cache serving on the churned graph equals
    # layer-wise inference on an independent from-scratch rebuild.
    verts = engine.graph.test_idx[:64]
    rebuilt = server.stream.rebuild_from_scratch()
    reference = layerwise_inference(engine.model, rebuilt)
    assert np.array_equal(server.serve(verts), reference[verts])
    print("verified: post-churn logits bit-identical to a from-scratch "
          "rebuild of the final graph")


def main() -> None:
    probe = Engine(RunConfig(dataset="products", scale=0.25, seed=7))
    delta_csr_tour(probe.graph.adj)
    streaming_serving()


if __name__ == "__main__":
    main()
