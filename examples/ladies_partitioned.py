"""Fully distributed LADIES on a partitioned graph.

The paper introduces "the first fully distributed implementation of the
LADIES algorithm": the graph never exists whole on any device.  This
example partitions a large sparse graph 1.5D across a simulated 32-GPU
cluster, bulk-samples layer-wise LADIES minibatches with the
sparsity-aware distributed SpGEMM, and compares against the serial CPU
reference implementation (the paper's section 8.2.2 comparison).

Run:  python examples/ladies_partitioned.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import reference_cpu_ladies
from repro.comm import Communicator, ProcessGrid
from repro.core import LadiesSampler
from repro.distributed import partitioned_bulk_sampling
from repro.graphs import load_dataset
from repro.graphs.datasets import PAPER_DATASETS
from repro.partition import BlockRows


def main() -> None:
    # The large sparse stand-in (papers-sim), where partitioning matters.
    graph = load_dataset("papers", scale=1.0, seed=0)
    work_scale = PAPER_DATASETS["papers"].edges / graph.m
    rng = np.random.default_rng(1)
    batches = [rng.choice(graph.n, 64, replace=False) for _ in range(32)]
    width = 128  # LADIES layer width s

    p, c = 32, 2
    comm = Communicator(p, work_scale=work_scale)
    grid = ProcessGrid(p, c)
    blocks = BlockRows.partition(graph.adj, grid.n_rows)
    largest = max(b.nnz for b in blocks.blocks)
    print(
        f"graph: {graph.n} vertices / {graph.m} edges, partitioned into "
        f"{grid.n_rows} block rows (largest holds {largest} edges, "
        f"{100 * largest / graph.m:.1f}% of the graph)"
    )

    samples, owners = partitioned_bulk_sampling(
        comm, grid, LadiesSampler(), blocks, batches, (width,), seed=0
    )
    breakdown = comm.clock.breakdown()
    total = sum(breakdown.values())
    print(f"\ndistributed LADIES on {p} GPUs (c={c}), one bulk of "
          f"{len(batches)} minibatches:")
    for phase, seconds in breakdown.items():
        print(f"  {phase:12s} {seconds:9.4f}s")
    print(f"  {'total':12s} {total:9.4f}s (simulated)")

    # Verify a sample: LADIES keeps every edge between batch and layer.
    mb = samples[0]
    layer = mb.layers[0]
    print(
        f"\nsample 0: batch {len(mb.batch)} vertices -> layer of "
        f"{layer.n_src} sampled vertices, {layer.adj.nnz} edges kept"
    )

    cpu = reference_cpu_ladies(graph, batches, width, work_scale=work_scale)
    print(f"\nserial CPU reference: {cpu.seconds:.4f}s (simulated)")
    print(f"distributed speedup over CPU reference: {cpu.seconds / total:.2f}x")


if __name__ == "__main__":
    main()
