"""Distributed scaling study: the end-to-end pipeline across GPU counts.

Reproduces a slice of the paper's Figure 4 interactively: runs the Graph
Replicated pipeline on the simulated cluster for p = 4..64 GPUs (with the
paper's memory model choosing the replication factor c and bulk size k per
count) and prints the per-phase breakdown next to the Quiver baseline.

All times are SIMULATED seconds from the alpha-beta/roofline cost model —
the quantity the reproduction tracks against the paper's figures.

Run:  python examples/distributed_scaling.py [dataset]   (default: products)
"""

from __future__ import annotations

import sys

from repro.baselines import QuiverBaseline, QuiverConfig
from repro.bench import (
    SIM_WORKLOADS,
    format_stacked_bars,
    load_bench_graph,
)
from repro.bench.harness import run_pipeline_epoch, work_scale_for, workload_hidden


def main(dataset: str = "products") -> None:
    workload = SIM_WORKLOADS[dataset]
    graph = load_bench_graph(workload)
    scale = work_scale_for(workload, graph)
    print(f"{dataset}: sim graph {graph.n} vertices / {graph.m} edges, "
          f"work scaled x{scale:.0f} to paper magnitude\n")

    rows = []
    for p in (4, 8, 16, 32, 64):
        ours, c, k = run_pipeline_epoch(graph, workload, p=p)
        quiver = QuiverBaseline(
            graph,
            QuiverConfig(
                p=p, fanout=workload.fanout, batch_size=workload.batch_size,
                work_scale=scale, hidden=workload_hidden(),
            ),
        ).train_epoch()
        rows.append(
            {
                "p": f"p={p} (c={c})",
                "sampling": ours.sampling,
                "fetch": ours.feature_fetch,
                "propagation": ours.propagation,
            }
        )
        print(
            f"p={p:3d}: ours {ours.total:8.4f}s  quiver {quiver.total:8.4f}s"
            f"  speedup {quiver.total / ours.total:5.2f}x   (c={c}, k={k})"
        )

    print()
    print(
        format_stacked_bars(
            rows, "p", ["sampling", "fetch", "propagation"],
            title=f"Per-epoch phase breakdown, {dataset} (simulated seconds)",
        )
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "products")
