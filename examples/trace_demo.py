"""Observability demo: trace a serving fleet, export for Perfetto.

Installs a :class:`repro.obs.Tracer` and a
:class:`repro.obs.MetricsRegistry`, trains a small model, serves an
open-loop trace through a two-replica fleet, and then:

1. writes ``trace_demo.json`` — Chrome ``trace_event`` JSON that
   https://ui.perfetto.dev (or ``chrome://tracing``) loads directly:
   replica micro-batches and their sampling/propagation/cache phases on
   simulated-time tracks, router decisions as instants, and one async
   lane per request (arrival to reply);
2. prints the same summary ``repro trace trace_demo.json`` renders —
   top spans by self-time, per-category totals, slowest requests;
3. dumps the metrics registry in the Prometheus text format.

The equivalent through the CLI::

    repro serve products --scale 0.25 --replicas 2 --router round_robin \
        --trace trace_demo.json --metrics --synthetic 32
    repro trace trace_demo.json

Run:  python examples/trace_demo.py
"""

from __future__ import annotations

from repro.api import Engine, RunConfig
from repro.obs import (
    MetricsRegistry,
    Tracer,
    format_trace_summary,
    load_trace_file,
    set_registry,
    set_tracer,
    validate_chrome_trace_file,
    write_chrome_trace,
)
from repro.serve import TraceWorkload


def main() -> None:
    cfg = RunConfig(
        dataset="products",
        scale=0.25,
        train_split=0.5,
        p=1, c=1,
        algorithm="single",
        sampler="sage",
        fanout=(5, 3),
        batch_size=32,
        hidden=32,
        epochs=1,
        seed=7,
        replicas=2,             # a small fleet, round-robin routed
        router="round_robin",
        serve_batch_size=8,
        serve_max_wait=5e-4,
        embed_budget=128e3,
    )
    tracer = Tracer()
    set_tracer(tracer)          # spans record from here on
    set_registry(MetricsRegistry())

    engine = Engine(cfg)
    engine.train(cfg.epochs)    # the training pipeline traces its bulks

    fleet = engine.serving()
    workload = TraceWorkload.synthetic(
        32, engine.graph.test_idx, seed=cfg.seed, interarrival=1e-4,
    )
    report = fleet.process(workload)
    print(f"served {report.n_requests} requests in {report.batches} "
          f"micro-batches across {len(report.per_replica)} replicas\n")

    # -- 1. the Perfetto-loadable export -------------------------------- #
    path = write_chrome_trace("trace_demo.json", tracer.spans)
    problems = validate_chrome_trace_file(path)
    assert not problems, problems
    print(f"wrote {path} ({len(tracer)} spans) — load it at "
          f"https://ui.perfetto.dev\n")

    # -- 2. what `repro trace trace_demo.json` prints -------------------- #
    print(format_trace_summary(load_trace_file(path), top=8))

    # -- 3. the metrics side --------------------------------------------- #
    from repro.obs import get_registry

    print("\nPrometheus text exposition (excerpt):")
    for line in get_registry().render().splitlines():
        if line.startswith(("serve_requests", "serve_throughput",
                            "serve_replicas", "train_epoch")):
            print(f"  {line}")

    set_tracer(None)
    set_registry(None)


if __name__ == "__main__":
    main()
