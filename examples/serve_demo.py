"""Online serving demo: train once, then serve ego-network requests.

Trains a small SAGE model through the :class:`repro.api.Engine`, builds a
:class:`repro.serve.ServingEngine` with ``engine.serving()``, and drives it
two ways:

1. an **open-loop trace** (fixed arrival times — what ``repro serve
   --requests trace.json`` replays), showing the max-batch-size / max-wait
   micro-batching policy coalescing concurrent requests;
2. a **closed-loop load generator** (8 concurrent clients), comparing
   micro-batched against one-request-at-a-time serving and showing the
   embedding cache's effect on tail latency.

Everything is simulated time, so the printed latencies are exactly
reproducible — and the served logits are bit-identical to layer-wise
full-graph inference, which the demo checks at the end.

Run:  python examples/serve_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Engine, RunConfig
from repro.bench.reporting import format_latency_summary
from repro.pipeline import layerwise_inference
from repro.serve import ClosedLoopWorkload, ServingEngine, TraceWorkload


def main() -> None:
    cfg = RunConfig(
        dataset="products",
        scale=0.25,
        train_split=0.5,
        p=1, c=1,
        algorithm="single",
        sampler="sage",
        fanout=(5, 3),
        batch_size=32,
        hidden=32,
        epochs=2,
        seed=7,
        serve_batch_size=8,     # micro-batch up to 8 requests...
        serve_max_wait=5e-4,    # ...or whatever arrived after 0.5 ms
        embed_budget=128e3,     # cache hot penultimate-layer rows
    )
    engine = Engine(cfg)
    engine.train(cfg.epochs)
    print(f"trained: test accuracy {engine.evaluate('test'):.3f}\n")

    # -- open-loop trace ------------------------------------------------ #
    server = engine.serving()
    trace = TraceWorkload.synthetic(
        32, engine.graph.test_idx, seed=cfg.seed, interarrival=1e-4,
        max_vertices=4,  # callers may ask for several vertices at once
    )
    report = server.process(trace)
    print(f"open-loop trace: {report.n_requests} requests -> "
          f"{report.batches} micro-batches "
          f"(mean {report.mean_batch_size:.1f} req/batch)")
    print(format_latency_summary(report.latencies, label="  latency"))
    print(f"  embed-cache hit-rate: {report.cache_stats.hit_rate:.1%}\n")

    # -- closed-loop: micro-batched vs per-request ---------------------- #
    for batch_cap in (1, 8):
        server = ServingEngine(
            engine.model, engine.graph,
            cfg.replace(serve_batch_size=batch_cap),
        )
        workload = ClosedLoopWorkload(
            64, engine.graph.test_idx, clients=8, seed=cfg.seed
        )
        rep = server.process(workload)
        label = "micro-batched" if batch_cap > 1 else "per-request "
        print(f"closed-loop ({label}, 8 clients): "
              f"{rep.throughput:8.0f} req/s   "
              f"p99 {rep.latency_summary()['p99'] * 1e3:.3f} ms")

    # -- the exactness contract ----------------------------------------- #
    reference = layerwise_inference(engine.model, engine.graph)
    assert all(
        np.array_equal(r.logits, reference[r.request.vertices])
        for r in report.results
    )
    print("\nserved logits are bit-identical to layerwise_inference")


if __name__ == "__main__":
    main()
