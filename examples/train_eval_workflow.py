"""Full workflow: distributed training, checkpointing, batched inference.

Puts the supporting pieces together the way a downstream user would:

1. train a GAT model with the distributed pipeline (simulated 4-GPU run)
   through the :class:`repro.api.Engine` facade,
2. checkpoint the parameters to disk,
3. reload into a fresh model and evaluate with layer-wise minibatched
   inference (exact, memory-bounded — no full activation pyramid).

Run:  python examples/train_eval_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.api import Engine, RunConfig
from repro.gnn import GNNModel, accuracy, load_model_into, save_model
from repro.pipeline import layerwise_inference


def main() -> None:
    cfg = RunConfig(
        dataset="products", scale=0.5, train_split=0.5,
        p=4, c=2, algorithm="replicated", sampler="sage", conv="sage",
        fanout=(8, 4), batch_size=64, hidden=32, lr=0.01, epochs=6,
        seed=21, dataset_kwargs={"with_labels": True, "n_classes": 8},
    )
    engine = Engine(cfg)
    graph = engine.graph

    print(f"training on {cfg.p} simulated GPUs (c={cfg.c}) ...")
    for epoch in range(cfg.epochs):
        stats = engine.train_epoch(epoch)
        print(f"  epoch {epoch}: loss {stats.loss:.4f}  "
              f"(sim {stats.total * 1e3:.2f} ms/epoch)")

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "sage.npz"
        save_model(engine.model, ckpt)
        print(f"checkpointed {ckpt.stat().st_size} bytes")

        fresh = GNNModel(
            graph.n_features, cfg.hidden, graph.n_classes,
            len(cfg.fanout), np.random.default_rng(999), conv="sage",
        )
        load_model_into(fresh, ckpt)

    # Exact full-graph inference, one layer at a time in row batches.
    logits = layerwise_inference(fresh, graph, batch_size=256)
    test_acc = accuracy(logits[graph.test_idx], graph.labels[graph.test_idx])
    val_acc = accuracy(logits[graph.val_idx], graph.labels[graph.val_idx])
    print(f"reloaded model — val acc {val_acc:.3f}, test acc {test_acc:.3f}")


if __name__ == "__main__":
    main()
