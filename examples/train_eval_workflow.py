"""Full workflow: distributed training, checkpointing, batched inference.

Puts the supporting pieces together the way a downstream user would:

1. train a GAT model with the distributed pipeline (simulated 4-GPU run),
2. checkpoint the parameters to disk,
3. reload into a fresh model and evaluate with layer-wise minibatched
   inference (exact, memory-bounded — no full activation pyramid).

Run:  python examples/train_eval_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.gnn import GNNModel, accuracy, load_model_into, save_model
from repro.graphs import load_dataset
from repro.pipeline import PipelineConfig, TrainingPipeline, layerwise_inference


def main() -> None:
    graph = load_dataset(
        "products", scale=0.5, seed=21, with_labels=True, n_classes=8
    )
    graph.train_idx = np.arange(0, graph.n, 2)

    cfg = PipelineConfig(
        p=4, c=2, algorithm="replicated", sampler="sage", conv="sage",
        fanout=(8, 4), batch_size=64, hidden=32, lr=0.01, seed=0,
    )
    pipe = TrainingPipeline(graph, cfg)
    print(f"training on {cfg.p} simulated GPUs (c={cfg.c}) ...")
    for epoch in range(6):
        stats = pipe.train_epoch(epoch)
        print(f"  epoch {epoch}: loss {stats.loss:.4f}  "
              f"(sim {stats.total * 1e3:.2f} ms/epoch)")

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "sage.npz"
        save_model(pipe.model, ckpt)
        print(f"checkpointed {ckpt.stat().st_size} bytes")

        fresh = GNNModel(
            graph.n_features, cfg.hidden, graph.n_classes,
            len(cfg.fanout), np.random.default_rng(999), conv="sage",
        )
        load_model_into(fresh, ckpt)

    # Exact full-graph inference, one layer at a time in row batches.
    logits = layerwise_inference(fresh, graph, batch_size=256)
    test_acc = accuracy(logits[graph.test_idx], graph.labels[graph.test_idx])
    val_acc = accuracy(logits[graph.val_idx], graph.labels[graph.val_idx])
    print(f"reloaded model — val acc {val_acc:.3f}, test acc {test_acc:.3f}")


if __name__ == "__main__":
    main()
