"""Extending the framework with a new sampling algorithm.

The paper's conclusion names expressing additional sampling algorithms in
the matrix framework as future work.  This example adds one from scratch:
**degree-biased node-wise sampling** — like GraphSAGE, but each frontier
vertex samples neighbors proportionally to the neighbors' own degrees
(high-degree neighbors carry more signal in power-law graphs).

Only the NORM step changes relative to GraphSAGE; Q construction, SAMPLE
(inverse transform sampling) and EXTRACT are inherited untouched — which is
exactly the point of the Algorithm-1 abstraction.

Run:  python examples/custom_sampler.py
"""

from __future__ import annotations

import numpy as np

from repro.core import SageSampler
from repro.graphs import load_dataset
from repro.sparse import CSRMatrix, row_normalize


class DegreeBiasedSampler(SageSampler):
    """Node-wise sampling with neighbor probability ∝ neighbor degree."""

    name = "degree-biased"

    def __init__(self, degrees: np.ndarray, **kwargs) -> None:
        super().__init__(**kwargs)
        self.degrees = np.asarray(degrees, dtype=np.float64)

    def norm(self, p: CSRMatrix) -> CSRMatrix:
        # Reweight each nonzero (a candidate neighbor) by its degree, then
        # normalize rows into distributions.  Everything else — bulk
        # stacking, ITS, extraction — is inherited from the framework.
        weighted = CSRMatrix(
            p.indptr.copy(),
            p.indices.copy(),
            p.data * np.maximum(self.degrees[p.indices], 1.0),
            p.shape,
        )
        return row_normalize(weighted)


def main() -> None:
    rng = np.random.default_rng(0)
    graph = load_dataset("products", scale=0.5, seed=3)
    degrees = graph.out_degrees()

    batches = [rng.choice(graph.n, 64, replace=False) for _ in range(8)]
    fanout = (10, 5)

    uniform = SageSampler()
    biased = DegreeBiasedSampler(degrees)

    u_samples = uniform.sample_bulk(graph.adj, batches, fanout, rng)
    b_samples = biased.sample_bulk(graph.adj, batches, fanout, rng)

    def mean_frontier_degree(samples) -> float:
        degs = [
            degrees[mb.layers[0].src_ids].mean() for mb in samples
        ]
        return float(np.mean(degs))

    u_deg = mean_frontier_degree(u_samples)
    b_deg = mean_frontier_degree(b_samples)
    print(f"mean degree of sampled frontier, uniform GraphSAGE: {u_deg:8.1f}")
    print(f"mean degree of sampled frontier, degree-biased:     {b_deg:8.1f}")
    print(f"bias ratio: {b_deg / u_deg:.2f}x (biased sampler prefers hubs)")

    # The new sampler drops into the distributed machinery unchanged.
    from repro.comm import Communicator
    from repro.distributed import replicated_bulk_sampling

    comm = Communicator(4)
    per_rank = replicated_bulk_sampling(
        comm, biased, graph.adj, batches, fanout, seed=0
    )
    print(
        f"\ndistributed run on 4 simulated GPUs: "
        f"{sum(len(r) for r in per_rank)} minibatches sampled, "
        f"zero communication bytes: {comm.ledger.sent() == 0}"
    )


if __name__ == "__main__":
    main()
