"""Extending the framework with a new sampling algorithm — as a plugin.

The paper's conclusion names expressing additional sampling algorithms in
the matrix framework as future work.  This example adds one from scratch:
**degree-biased node-wise sampling** — like GraphSAGE, but each frontier
vertex samples neighbors proportionally to the neighbors' own degrees
(high-degree neighbors carry more signal in power-law graphs).

Only the NORM step changes relative to GraphSAGE; Q construction, SAMPLE
(inverse transform sampling) and EXTRACT are inherited untouched — which is
exactly the point of the Algorithm-1 abstraction.

The sampler registers itself in :data:`repro.api.SAMPLERS`, which makes it
usable everywhere at once — the Engine, the training pipeline, and the CLI:

    python -m repro --plugin examples.custom_sampler \
        sample products --sampler degree-biased
    python -m repro --plugin examples.custom_sampler \
        train products --sampler degree-biased --fanout 10,5

Run:  python examples/custom_sampler.py
"""

from __future__ import annotations

import numpy as np

from repro.api import SAMPLERS, Engine, RunConfig
from repro.core import SageSampler
from repro.graphs import Graph
from repro.sparse import CSRMatrix, row_normalize


class DegreeBiasedSampler(SageSampler):
    """Node-wise sampling with neighbor probability ∝ neighbor degree."""

    name = "degree-biased"

    def __init__(self, degrees: np.ndarray, **kwargs) -> None:
        super().__init__(**kwargs)
        self.degrees = np.asarray(degrees, dtype=np.float64)

    def norm(self, p: CSRMatrix) -> CSRMatrix:
        # Reweight each nonzero (a candidate neighbor) by its degree, then
        # normalize rows into distributions.  Everything else — bulk
        # stacking, ITS, extraction — is inherited from the framework.
        weighted = CSRMatrix(
            p.indptr.copy(),
            p.indices.copy(),
            p.data * np.maximum(self.degrees[p.indices], 1.0),
            p.shape,
        )
        return row_normalize(weighted)


# The sampler's state depends on graph statistics, so it registers a
# graph-aware factory; the registry hands it the graph at build time.
# Guarded so re-imports (e.g. via the CLI --plugin flag) stay idempotent.
# ``algorithms`` includes "partitioned": the sampler inherits GraphSAGE's
# sampling plan, so the 1.5D executor runs it unchanged (a registered
# *class* would get this derived automatically; a factory hides its
# product and declares it).
if "degree-biased" not in SAMPLERS:
    @SAMPLERS.register(
        "degree-biased",
        default_conv="sage",
        pipeline_kwargs={"include_dst": True},
        algorithms=("single", "replicated", "partitioned"),
        capabilities=("sample", "train"),
        default_fanout=(10, 5),
        family="node-wise",
        graph_aware=True,
    )
    def make_degree_biased(graph: Graph, **kwargs) -> DegreeBiasedSampler:
        return DegreeBiasedSampler(graph.out_degrees(), **kwargs)


def main() -> None:
    rng = np.random.default_rng(0)
    # The registered name drops straight into a RunConfig — the same path
    # the CLI and pipeline use.
    cfg = RunConfig(
        dataset="products", scale=0.5, train_split=0.5,
        p=4, algorithm="replicated", sampler="degree-biased",
        fanout=(10, 5), batch_size=64, hidden=32, epochs=1, seed=3,
        # R-MAT topology: the power-law degree distribution is what makes
        # degree-biased sampling visibly prefer hubs.
        dataset_kwargs={"with_labels": False},
    )
    engine = Engine(cfg)
    graph = engine.graph
    degrees = graph.out_degrees()

    batches = [rng.choice(graph.n, 64, replace=False) for _ in range(8)]
    fanout = (10, 5)

    uniform = SageSampler()
    biased = engine.sampler  # the registry-built DegreeBiasedSampler

    u_samples = uniform.sample_bulk(graph.adj, batches, fanout, rng)
    b_samples = biased.sample_bulk(graph.adj, batches, fanout, rng)

    def mean_frontier_degree(samples) -> float:
        degs = [
            degrees[mb.layers[0].src_ids].mean() for mb in samples
        ]
        return float(np.mean(degs))

    u_deg = mean_frontier_degree(u_samples)
    b_deg = mean_frontier_degree(b_samples)
    print(f"mean degree of sampled frontier, uniform GraphSAGE: {u_deg:8.1f}")
    print(f"mean degree of sampled frontier, degree-biased:     {b_deg:8.1f}")
    print(f"bias ratio: {b_deg / u_deg:.2f}x (biased sampler prefers hubs)")

    # The plugin trains through the distributed pipeline unchanged.
    stats = engine.train_epoch(0)
    print(
        f"\ndistributed run on {cfg.p} simulated GPUs: "
        f"loss {stats.loss:.4f} over {stats.n_batches} minibatches "
        f"(sim {stats.total * 1e3:.2f} ms/epoch)"
    )


if __name__ == "__main__":
    main()
