"""Multi-core execution demo: real processes, bit-identical samples.

Walks the `repro.parallel` layer bottom-up:

1. **publish** a CSR adjacency to shared memory and attach a zero-copy
   worker view;
2. spin up a warm :class:`~repro.parallel.WorkerPool` and show bulk
   sampling is **bit-identical** to the serial reference at every
   worker count — the per-global-batch-index RNG discipline makes the
   batch partition invisible;
3. train through ``RunConfig(algorithm="parallel", workers=N)`` and
   compare against the simulated ``replicated`` backend at p=1: same
   loss, same weights, real cores;
4. run a serving **fleet** with each replica in its own process and
   check the report digest against the in-process loop.

Everything is spawn-based, so this file must be run as a script (spawn
re-imports ``__main__``):  python examples/parallel_demo.py

On a 1-core machine the pool still works — it just measures pure
overhead; the point of this demo is the bit-identity, not the speedup
(``benchmarks/bench_parallel.py`` measures that).
"""

from __future__ import annotations

import hashlib
import time

import numpy as np

from repro.api import Engine, RunConfig
from repro.core.bulk import batch_rng
from repro.graphs import rmat
from repro.parallel import SamplerSpec, SharedGraph, WorkerPool
from repro.serve import TraceWorkload

WORKERS = 2


def digest(samples) -> str:
    h = hashlib.sha256()
    for mb in samples:
        h.update(np.ascontiguousarray(mb.batch, dtype=np.int64).tobytes())
        for layer in mb.layers:
            h.update(np.ascontiguousarray(layer.adj.indices).tobytes())
            h.update(np.ascontiguousarray(layer.adj.data).tobytes())
    return h.hexdigest()[:16]


def main() -> None:
    # -- 1: publish once, attach zero-copy ------------------------------ #
    rng = np.random.default_rng(0)
    adj = rmat(12, 16, rng)
    shared = SharedGraph.publish(adj)
    view, handles = shared.handle.attach()
    assert view.indptr.base is not None  # a view of the segment, no copy
    print(f"published {adj.shape[0]} vertices / {adj.nnz} edges to "
          f"shared memory; attached view is zero-copy and read-only")
    for h in handles:
        h.close()

    # -- 2: warm pool, bit-identical bulk sampling ---------------------- #
    batches = [rng.choice(adj.shape[0], 256, replace=False) for _ in range(8)]
    spec = SamplerSpec(sampler="ladies", fanout=(64,), for_training=False)
    serial = spec.build(adj).sample_bulk(
        adj, batches, spec.fanout,
        [batch_rng(0, i) for i in range(len(batches))],
    )
    with WorkerPool(WORKERS, shared) as pool:
        shared.release()  # the pool holds its own reference now
        t0 = time.perf_counter()
        samples, totals = pool.sample_bulk(
            spec, batches, list(range(len(batches))), seed=0
        )
        elapsed = time.perf_counter() - t0
    assert digest(samples) == digest(serial)
    print(f"pool({WORKERS}) bulk of {len(batches)} batches in "
          f"{elapsed * 1e3:.1f} ms — digest {digest(samples)} matches "
          f"serial bit for bit ({totals['kernels']:.0f} kernel calls)\n")

    # -- 3: training through the parallel backend ----------------------- #
    base = dict(
        dataset="products", scale=0.1, train_split=0.5, sampler="sage",
        fanout=(4, 3), batch_size=16, hidden=16, epochs=1, seed=0,
    )
    ref = Engine(RunConfig(**base, algorithm="replicated", p=1))
    ref_stats = ref.train_epoch(0)
    with Engine(RunConfig(**base, algorithm="parallel", p=1,
                          workers=WORKERS)) as engine:
        par_stats = engine.train_epoch(0)
        assert par_stats.loss == ref_stats.loss
        print(f"train: workers={WORKERS} loss {par_stats.loss:.6f} == "
              f"simulated replicated p=1 (bit-identical)")

    # -- 4: the serving fleet on real cores ----------------------------- #
    reports = {}
    for workers in (0, WORKERS):
        with Engine(RunConfig(**base, replicas=2, router="round_robin",
                              workers=workers)) as engine:
            engine.train(1)
            trace = TraceWorkload.synthetic(
                24, engine.graph.test_idx, seed=0, interarrival=1e-4
            )
            reports[workers] = engine.serving().process(trace)
    serial_report, parallel_report = reports[0], reports[WORKERS]
    assert parallel_report.digest() == serial_report.digest()
    assert parallel_report.batches == serial_report.batches
    print(f"serve: fleet of 2 replicas in {WORKERS} worker processes — "
          f"digest {parallel_report.digest()[:16]} and "
          f"{parallel_report.batches} batches identical to the "
          f"in-process loop")


if __name__ == "__main__":
    main()
