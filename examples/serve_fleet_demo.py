"""Serving-fleet demo: one model, N replicas, routed and autoscaled.

Trains a small SAGE model through the :class:`repro.api.Engine`, then
drives the same trained weights through four fleet shapes:

1. a **single server** baseline (the pre-fleet ``ServingEngine`` path);
2. a **round-robin fleet** at the same offered load, showing the
   near-linear throughput win once one server saturates;
3. a **consistent-hash fleet** with the embedding cache on, showing why
   locality-aware routing keeps hit rates high while round-robin
   dilutes them across every replica;
4. an **autoscaled fleet** that starts at one replica under an
   SLO-violating load step and converges upward, one decision per
   simulated window.

Everything runs on simulated time and exact full-neighborhood serving,
so every number is reproducible and the logits digest is identical
across all four shapes — routing and scaling move latency, never bits.

Run:  python examples/serve_fleet_demo.py
"""

from __future__ import annotations

from repro.api import Engine, RunConfig
from repro.serve import ClosedLoopWorkload, ServingCluster, TraceWorkload


def closed_loop(engine: Engine, n=256, clients=48):
    return ClosedLoopWorkload(
        n, engine.graph.test_idx, clients=clients, seed=2
    )


def main() -> None:
    cfg = RunConfig(
        dataset="products",
        scale=0.25,
        train_split=0.5,
        p=1, c=1,
        algorithm="single",
        sampler="sage",
        fanout=(5, 3),
        batch_size=32,
        hidden=32,
        epochs=2,
        seed=7,
        serve_batch_size=8,
        serve_max_wait=5e-4,
    )
    engine = Engine(cfg)
    engine.train(cfg.epochs)
    print(f"trained: test accuracy {engine.evaluate('test'):.3f}\n")

    # -- 1+2: single server vs a routed fleet at the same load ---------- #
    digests = {}
    for replicas in (1, 4):
        cluster = ServingCluster(
            engine.model, engine.graph,
            cfg.replace(replicas=replicas, router="round_robin"),
        )
        report = cluster.process(closed_loop(engine))
        digests[replicas] = report.digest()
        spread = "  ".join(
            f"r{rid}:{n}" for rid, n in sorted(report.per_replica.items())
        )
        print(f"{replicas} replica(s): {report.throughput:8.0f} req/s   "
              f"p99 {report.latency_summary()['p99'] * 1e3:.3f} ms   "
              f"[{spread}]")
    assert digests[1] == digests[4], "routing must never change the bits"
    print("logits digest identical at N=1 and N=4\n")

    # -- 3: locality-aware routing keeps the cache hot ------------------ #
    hot_pool = engine.graph.test_idx[:16]  # a skewed, cacheable workload
    for router in ("round_robin", "consistent_hash"):
        cluster = ServingCluster(
            engine.model, engine.graph,
            cfg.replace(replicas=4, router=router, embed_budget=128e3),
        )
        report = cluster.process(
            TraceWorkload.synthetic(96, hot_pool, seed=3, interarrival=5e-5)
        )
        print(f"{router:16s} embed-cache hit-rate "
              f"{report.cache_stats.hit_rate:.1%}")
    print()

    # -- 4: the autoscaler reacts to a violated SLO --------------------- #
    cluster = ServingCluster(
        engine.model, engine.graph,
        cfg.replace(replicas=1, router="round_robin", slo_p99=2e-4,
                    autoscale_max=4, autoscale_interval=5e-4),
    )
    report = cluster.process(closed_loop(engine, n=384, clients=32))
    steps = " -> ".join(str(n) for _, n in report.replica_trace)
    print(f"autoscaler: {steps} replicas "
          f"(p99 {report.latency_summary()['p99'] * 1e3:.3f} ms vs "
          f"SLO {2e-4 * 1e3:.3f} ms)")
    assert report.replica_trace[-1][1] > 1, "the SLO should force scale-up"
    print("fleet scaled up under the SLO-violating load step")


if __name__ == "__main__":
    main()
