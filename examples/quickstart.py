"""Quickstart: matrix-based bulk sampling and minibatch GNN training.

Generates a small synthetic node-classification graph (a stand-in for
ogbn-products), samples every minibatch of an epoch in ONE bulk call with
the matrix-based GraphSAGE sampler, trains a 2-layer SAGE model, and
reports test accuracy.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import SageSampler
from repro.gnn import Adam, GNNModel, accuracy, full_graph_sample, softmax_cross_entropy
from repro.graphs import load_dataset


def main() -> None:
    rng = np.random.default_rng(0)

    # A planted-community graph so the labels are actually learnable.
    graph = load_dataset(
        "products", scale=0.5, seed=7, with_labels=True, n_classes=8
    )
    graph.train_idx = np.arange(0, graph.n, 2)
    print(f"graph: {graph.n} vertices, {graph.m} edges, "
          f"{graph.n_features} features, {graph.n_classes} classes")

    sampler = SageSampler()  # node-wise sampling, Algorithm 1 instantiation
    model = GNNModel(graph.n_features, 32, graph.n_classes, n_layers=2, rng=rng)
    optimizer = Adam(lr=0.01)

    batch_size, fanout = 64, (10, 5)
    for epoch in range(8):
        batches = graph.make_batches(batch_size, rng)
        # THE paper's trick: all minibatches of the epoch sampled in one
        # bulk call — the per-batch matrices are stacked (Equation 1) and
        # every kernel runs once over the stack.
        samples = sampler.sample_bulk(graph.adj, batches, fanout, rng)

        epoch_loss = 0.0
        for mb in samples:
            x = graph.features[mb.input_frontier]
            logits = model.forward(mb, x)
            loss, dlogits = softmax_cross_entropy(logits, graph.labels[mb.batch])
            model.zero_grad()
            model.backward(dlogits)
            optimizer.step(model.parameters(), model.gradients())
            epoch_loss += loss
        print(f"epoch {epoch}: loss {epoch_loss / len(samples):.4f}")

    # Full-neighbor inference for the final test score.
    full = full_graph_sample(graph.adj, 2)
    logits = model.forward(full, graph.features)
    acc = accuracy(logits[graph.test_idx], graph.labels[graph.test_idx])
    print(f"test accuracy: {acc:.3f}")


if __name__ == "__main__":
    main()
