"""Quickstart: the repro.api facade in a dozen lines.

Builds a :class:`repro.api.RunConfig` naming everything by registry key
(dataset, sampler, execution algorithm), hands it to an
:class:`repro.api.Engine`, trains, and evaluates.  The same config
round-trips through JSON — the printed file reproduces this exact run via
``python -m repro train --config quickstart.json``.

The paper's trick is still underneath: every epoch's minibatches are
sampled in ONE bulk call (per-batch matrices stacked per Equation 1, every
kernel run once over the stack); the Engine just owns the plumbing.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import Engine, RunConfig


def main() -> None:
    cfg = RunConfig(
        dataset="products",       # registry key -> planted-label stand-in
        scale=0.5,
        train_split=0.5,
        p=1, c=1,
        algorithm="single",       # one device; try "replicated" with p=4
        sampler="sage",           # any repro.api.SAMPLERS key
        fanout=(10, 5),
        batch_size=64,
        hidden=32,
        lr=0.01,
        epochs=8,
        seed=7,
        dataset_kwargs={"with_labels": True, "n_classes": 8},
    )

    engine = Engine(cfg)
    g = engine.graph
    print(f"graph: {g.n} vertices, {g.m} edges, "
          f"{g.n_features} features, {g.n_classes} classes")

    for epoch in range(cfg.epochs):
        stats = engine.train_epoch(epoch)
        print(f"epoch {epoch}: loss {stats.loss:.4f}")

    print(f"test accuracy: {engine.evaluate('test'):.3f}")

    # The whole run is one JSON document.
    print("\nthis run as JSON (repro train --config <file> replays it):")
    print(cfg.to_json(), end="")


if __name__ == "__main__":
    main()
