"""Distributed sampling algorithms: Graph Replicated (section 5.1) and
Graph Partitioned with the 1.5D sparsity-aware SpGEMM (section 5.2)."""

from .analysis import ProbCostInputs, predict_prob_costs
from .instrument import (
    KERNELS_PER_LAYER,
    CacheStats,
    RecordingSpGEMM,
    charge_sampling,
)
from .partitioned import PartitionedExecutor, partitioned_bulk_sampling
from .replicated import assign_batches, batch_rng, replicated_bulk_sampling
from .spgemm_15d import spgemm_15d, stage_blocks

__all__ = [
    "spgemm_15d",
    "stage_blocks",
    "replicated_bulk_sampling",
    "partitioned_bulk_sampling",
    "PartitionedExecutor",
    "assign_batches",
    "batch_rng",
    "RecordingSpGEMM",
    "charge_sampling",
    "CacheStats",
    "KERNELS_PER_LAYER",
    "ProbCostInputs",
    "predict_prob_costs",
]
