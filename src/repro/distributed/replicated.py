"""The Graph Replicated distributed sampling algorithm (paper section 5.1).

The adjacency matrix ``A`` is replicated on every rank; the stacked bulk
``Q`` is 1D block-row partitioned, so each rank owns ``k/p`` of the ``k``
minibatches being sampled.  Because the probability SpGEMM, NORM, SAMPLE
and EXTRACT are all row-wise, every rank samples its own minibatches with
**zero communication** — the property that makes the sampling bars of
Figure 4 scale linearly with ``p``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..comm import Communicator
from ..core import MatrixSampler, MinibatchSample, assign_round_robin

# Shared ownership + RNG discipline (one stream per global batch index)
# lives in repro.core.bulk; re-exported here for backward compatibility.
from ..core.bulk import batch_rng
from ..sparse import CSRMatrix
from .instrument import RecordingSpGEMM, charge_sampling

__all__ = ["replicated_bulk_sampling", "assign_batches", "batch_rng"]


def assign_batches(
    n_batches: int, world_size: int
) -> list[list[int]]:
    """Round-robin ownership of batch indices over ranks."""
    return assign_round_robin(n_batches, world_size)


def replicated_bulk_sampling(
    comm: Communicator,
    sampler: MatrixSampler,
    adj: CSRMatrix,
    batches: Sequence[np.ndarray],
    fanout: Sequence[int],
    seed: int = 0,
    *,
    kernel=None,
) -> list[list[MinibatchSample]]:
    """Sample one bulk of minibatches under the Graph Replicated algorithm.

    Every rank receives its round-robin share of ``batches`` and runs the
    sampler's bulk loop locally against the replicated ``adj``.  Returns the
    per-rank lists of samples; ``out[r][x]`` is rank ``r``'s ``x``-th batch
    (batch index ``r + x * p`` in the input order).

    ``kernel`` selects the sparse-kernel backend for the local SpGEMMs
    (``None`` = the sampler's own backend).  Simulated device time is
    charged per rank from the recorded kernel costs; no communication is
    charged because none occurs (section 5.1).

    Each batch's randomness is an independent stream keyed by its global
    batch index (:func:`batch_rng`), so the sampled output is invariant to
    the world size — the same batches yield bit-identical samples at any
    ``p``.
    """
    if kernel is None:
        kernel = getattr(sampler, "kernel", None)
    owners = assign_batches(len(batches), comm.world_size)
    results: list[list[MinibatchSample]] = []
    with comm.phase("sampling"):
        for rank in range(comm.world_size):
            mine = [batches[i] for i in owners[rank]]
            if not mine:
                results.append([])
                continue
            recorder = RecordingSpGEMM(kernel=kernel)
            rngs = [batch_rng(seed, int(i)) for i in owners[rank]]
            samples = sampler.sample_bulk(
                adj, mine, fanout, rngs, spgemm_fn=recorder
            )
            charge_sampling(comm, rank, recorder, tuple(fanout))
            results.append(samples)
        comm.clock.barrier()
    return results
