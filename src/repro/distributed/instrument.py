"""Cost instrumentation for locally-executed sampler kernels.

The Graph Replicated algorithm runs the whole bulk-sampling loop locally on
each rank (no communication, section 5.1).  To charge simulated device time
for that work, the sampler's SpGEMM hook is wrapped in a recorder that
accumulates flops/bytes/kernel-launch counts, and the SAMPLE/NORM/EXTRACT
steps are charged from the recorded intermediate sizes.

Kernel-launch accounting is where bulk amortization shows up: one bulk call
issues a fixed number of kernels per layer regardless of how many
minibatches are stacked, while per-batch sampling re-issues them for every
batch (sections 4, 8.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..comm import Communicator
from ..core.its import its_flops
from ..partition.cache import CacheStats
from ..sparse import CSRMatrix, spgemm_flops
from ..sparse.kernels import KernelSpec, get_kernel

__all__ = [
    "RecordingSpGEMM",
    "charge_sampling",
    "CacheStats",
    "KERNELS_PER_LAYER",
    "CALL_OVERHEAD_S",
]

#: Fixed kernel launches per sampled layer beyond the SpGEMMs: Q construction,
#: row sums, normalization, prefix sum, random draws, binary search, and the
#: compaction steps of EXTRACT.
KERNELS_PER_LAYER = 8

#: Fixed driver-side overhead per sampling *call*: Python/framework
#: dispatch, stream setup, output assembly.  This is the dominant cost a
#: per-batch sampler (Quiver, DGL) pays once per minibatch and bulk
#: sampling pays once per k minibatches — the amortization the paper
#: measures in section 8.1.1.  5 ms sits in the per-batch sampling range
#: reported for GPU samplers on OGB-scale graphs.
CALL_OVERHEAD_S = 5e-3


@dataclass
class RecordingSpGEMM:
    """A drop-in ``spgemm_fn`` that records the cost of every call.

    ``kernel`` selects the backend that actually executes the products (a
    :data:`repro.sparse.KERNELS` name or instance; ``None`` = process
    default).  The recorded cost model is kernel-independent: it counts
    the expansion work every SpGEMM formulation performs.
    """

    flops: float = 0.0
    nbytes: float = 0.0
    kernels: int = 0
    outputs: list[CSRMatrix] = field(default_factory=list)
    kernel: KernelSpec = None

    def __call__(self, a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        expansion = spgemm_flops(a, b)
        self.flops += 2.0 * expansion
        # Bytes actually touched: a's entries, the b-rows a's columns select
        # (the expansion, with repeats — a row-gather SpGEMM reads them
        # all), and the CSR row-pointer arrays of both operands.  The
        # indptr term matters for hypersparse operands — LADIES' n-row
        # column selectors are almost all row pointers (section 8.2.2's
        # memory complaint), and it is what makes the serial CPU reference
        # pay ~n bytes per batch.
        self.nbytes += 24.0 * (a.nnz + expansion) + 8.0 * (
            a.shape[0] + b.shape[0]
        )
        self.kernels += 2
        out = get_kernel(self.kernel).spgemm(a, b)
        self.outputs.append(out)
        return out


def sample_norm_flops(p: CSRMatrix, s: int) -> float:
    """Flop estimate for NORM + SAMPLE on one probability matrix."""
    return 2.0 * p.nnz + its_flops(p, s)


def charge_sampling(
    comm: Communicator,
    rank: int,
    recorder: RecordingSpGEMM,
    fanout: tuple[int, ...] | list[int],
) -> None:
    """Charge ``rank`` for one bulk sampling call it executed locally."""
    s_mean = int(np.mean(list(fanout))) if fanout else 1
    extra_flops = sum(sample_norm_flops(p, s_mean) for p in recorder.outputs)
    extra_bytes = sum(24.0 * p.nnz for p in recorder.outputs)
    comm.compute(
        rank,
        flops=recorder.flops + extra_flops,
        nbytes=recorder.nbytes + extra_bytes,
        kernels=recorder.kernels + KERNELS_PER_LAYER * len(fanout),
    )
    comm.clock.advance(rank, CALL_OVERHEAD_S, "compute")
