"""Closed-form communication analysis of the 1.5D algorithm (section 5.2.1).

The paper derives, for generating probability distributions over a bulk of
``k`` batches of size ``b`` on a graph with average degree ``d``::

    T_rowdata   = alpha * (p / c^2) + beta * (k b d / c)
    T_allreduce = alpha * log2(c)   + beta * (c k b d / p)
    T_prob      = T_rowdata + T_allreduce

so the algorithm scales with the harmonic mean of ``p/c`` and ``c``.  These
predictions are compared against the simulator's measured per-rank volumes
and times by ``benchmarks/bench_comm_model.py``.

Note one deliberate deviation: the paper writes the row-data latency term as
``alpha * log(p/c^2)``; our simulator issues one overlapped scatter per
stage (``p/c^2`` stages), giving ``alpha * p/c^2``.  Both are latency-minor
against the beta terms at the paper's scales.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import MachineConfig, PERLMUTTER_LIKE

__all__ = ["ProbCostInputs", "predict_prob_costs"]

_BYTES_PER_NNZ = 16  # column index + value on the wire


@dataclass(frozen=True)
class ProbCostInputs:
    """Workload parameters of one probability-generation SpGEMM."""

    p: int  # total processes
    c: int  # replication factor
    k: int  # minibatches in the bulk
    b: int  # batch size
    d: float  # average degree of the graph

    def __post_init__(self) -> None:
        if self.p <= 0 or self.c <= 0 or self.p % self.c:
            raise ValueError(
                f"invalid process grid p={self.p}, c={self.c}: p and c "
                f"must be positive with c dividing p (a p/c x c grid)"
            )
        if self.k <= 0 or self.b <= 0 or self.d < 0:
            raise ValueError("k, b must be positive; d non-negative")


@dataclass(frozen=True)
class ProbCostPrediction:
    """Predicted seconds and per-rank bytes for the probability SpGEMM."""

    t_rowdata: float
    t_allreduce: float
    rowdata_bytes_per_rank: float
    allreduce_bytes_per_rank: float

    @property
    def t_prob(self) -> float:
        return self.t_rowdata + self.t_allreduce


def predict_prob_costs(
    inputs: ProbCostInputs, machine: MachineConfig = PERLMUTTER_LIKE
) -> ProbCostPrediction:
    """Evaluate the section-5.2.1 cost model on a machine's alpha/beta.

    Uses the inter-node link parameters (the binding constraint at the
    paper's scales, where a process column spans nodes).
    """
    link = machine.inter_node
    p, c, k, b, d = inputs.p, inputs.c, inputs.k, inputs.b, inputs.d
    stages = max(1, p // (c * c))
    rowdata_bytes = _BYTES_PER_NNZ * k * b * d / c
    t_rowdata = link.alpha * stages + link.beta * rowdata_bytes
    allreduce_bytes = _BYTES_PER_NNZ * c * k * b * d / p
    t_allreduce = (
        link.alpha * max(0.0, math.log2(c)) + link.beta * allreduce_bytes
    )
    return ProbCostPrediction(
        t_rowdata=t_rowdata,
        t_allreduce=t_allreduce,
        rowdata_bytes_per_rank=rowdata_bytes,
        allreduce_bytes_per_rank=2 * allreduce_bytes,
    )
