"""Block 1.5D distributed SpGEMM (paper Algorithm 2).

Computes ``P = Q A`` with both operands partitioned into ``p/c`` block rows
on a ``p/c x c`` process grid.  Process ``(i, j)`` accumulates a partial
product over its ``q = p/c^2`` stages, each stage multiplying ``Q_ik`` (the
columns of ``Q_i`` that fall in A's block row ``k``) with ``A_k``; the
partials are summed with an all-reduce over the process row.

Two communication schemes for moving ``A_k`` down its process column:

* **sparsity-aware** (the paper's choice, after Ballard et al. 2013):
  Algorithm 2's gather/ISend — every rank tells the stage owner which rows
  its local ``Q_ik`` actually reads (its nonzero columns) and receives only
  those rows.
* **sparsity-oblivious**: the owner broadcasts the whole ``A_k`` block row
  (the simpler Koanantakool et al. scheme; ablation A).

The simulated communicator charges alpha-beta time and logs volumes; the
matrix arithmetic is exact, so the result equals the serial SpGEMM.
"""

from __future__ import annotations

import numpy as np

from ..comm import Communicator, ProcessGrid
from ..partition.block1d import BlockRows
from ..sparse import CSRMatrix, spgemm_flops
from ..sparse.kernels import KernelSpec, get_kernel

__all__ = ["spgemm_15d", "stage_blocks"]


def stage_blocks(grid: ProcessGrid, j: int) -> list[int]:
    """A-block indices handled by process-column position ``j``.

    The ``p/c`` block rows of ``A`` are split evenly over the ``c`` members
    of each process row; member ``j`` covers a contiguous run of roughly
    ``q = p/c^2`` stages (Algorithm 2 line 3 with ``k = j s + q``).
    """
    n_rows = grid.n_rows
    base, rem = divmod(n_rows, grid.c)
    start = j * base + min(j, rem)
    size = base + (1 if j < rem else 0)
    return list(range(start, start + size))


def spgemm_15d(
    comm: Communicator,
    grid: ProcessGrid,
    q_blocks: BlockRows,
    a_blocks: BlockRows,
    *,
    sparsity_aware: bool = True,
    kernel: KernelSpec = None,
) -> list[CSRMatrix]:
    """Distributed ``P = Q A``; returns P's block rows (one per process row).

    ``q_blocks`` must have one block per process row; ``a_blocks`` likewise,
    with its row boundaries defining the column split of ``Q``.  ``kernel``
    selects the local SpGEMM backend each rank runs (a
    :data:`repro.sparse.KERNELS` name; ``None`` = process default) — the
    communication schedule is kernel-independent.
    """
    local_spgemm = get_kernel(kernel).spgemm
    if q_blocks.n_blocks != grid.n_rows or a_blocks.n_blocks != grid.n_rows:
        raise ValueError(
            f"need {grid.n_rows} blocks of Q and A, got "
            f"{q_blocks.n_blocks} and {a_blocks.n_blocks}"
        )
    if q_blocks.n_cols != a_blocks.n_rows:
        raise ValueError("Q's columns must match A's rows")

    n_rows = grid.n_rows
    n_out_cols = a_blocks.n_cols
    partial: list[list[CSRMatrix]] = [
        [
            CSRMatrix.zeros((q_blocks.blocks[i].shape[0], n_out_cols))
            for _ in range(grid.c)
        ]
        for i in range(n_rows)
    ]

    for j in range(grid.c):
        col = grid.col_ranks(j)
        for k in stage_blocks(grid, j):
            lo, hi = int(a_blocks.starts[k]), int(a_blocks.starts[k + 1])
            a_k = a_blocks.blocks[k]
            # Each rank in the column slices Q_ik out of its Q_i.
            q_iks: list[CSRMatrix] = []
            for i in range(n_rows):
                mask = np.zeros(q_blocks.n_cols, dtype=bool)
                mask[lo:hi] = True
                q_ik = q_blocks.blocks[i].select_columns(mask)
                comm.compute(grid.rank(i, j), nbytes=16 * q_ik.nnz, kernels=1)
                q_iks.append(q_ik)

            if sparsity_aware:
                # Algorithm 2 lines 4-11: gather needed column ids onto the
                # stage owner, which extracts and ISends only those rows.
                needed = [q.nonzero_columns() for q in q_iks]
                comm.gather(needed, col, root_pos=k)
                owner = grid.rank(k, j)
                row_data = [a_k.extract_rows(ids) for ids in needed]
                comm.compute(
                    owner,
                    nbytes=24 * sum(m.nnz for m in row_data),
                    kernels=len(row_data),
                )
                comm.scatterv(row_data, col, root_pos=k)
                locals_ = []
                for i in range(n_rows):
                    col_mask = np.zeros(hi - lo, dtype=bool)
                    col_mask[needed[i]] = True
                    locals_.append((q_iks[i].select_columns(col_mask), row_data[i]))
            else:
                comm.bcast(a_k, col, root_pos=k)
                locals_ = [(q_ik, a_k) for q_ik in q_iks]

            for i in range(n_rows):
                q_local, a_hat = locals_[i]
                if q_local.nnz == 0 or a_hat.nnz == 0:
                    continue
                comm.compute(
                    grid.rank(i, j),
                    flops=2 * spgemm_flops(q_local, a_hat),
                    nbytes=24 * (q_local.nnz + a_hat.nnz),
                    kernels=2,
                )
                partial[i][j] = partial[i][j].add(local_spgemm(q_local, a_hat))

    p_blocks: list[CSRMatrix] = []
    for i in range(n_rows):
        p_i = comm.allreduce(partial[i], grid.row_ranks(i))
        p_blocks.append(p_i)
    return p_blocks
