"""The Graph Partitioned distributed sampling algorithm (paper section 5.2).

Both the adjacency matrix ``A`` and the stacked bulk ``Q`` are partitioned
into ``p/c`` block rows on a ``p/c x c`` process grid, with each block row
replicated ``c`` times.  The probability product ``P = Q A`` (and, for
LADIES, the row-extraction product ``Q_R A``) runs as the sparsity-aware
1.5D SpGEMM of Algorithm 2; NORM, SAMPLE and the remaining EXTRACT work are
row-local, exactly as the paper's per-step analysis states (sections
5.2.1-5.2.3).

Per-phase simulated time is attributed to the phases Figure 7 plots:
``probability``, ``sampling``, ``extraction``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..comm import Communicator, ProcessGrid
from ..core import (
    LadiesSampler,
    MinibatchSample,
    SageSampler,
    assign_round_robin,
)
from ..core.frontier import LayerSample
from ..partition.block1d import BlockRows
from ..sparse import CSRMatrix, row_selector
from ..sparse.kernels import get_kernel
from .instrument import sample_norm_flops
from .spgemm_15d import spgemm_15d

__all__ = ["partitioned_bulk_sampling"]


def _charge_row(
    comm: Communicator,
    grid: ProcessGrid,
    row: int,
    *,
    flops: float = 0.0,
    nbytes: float = 0.0,
    kernels: int = 1,
) -> None:
    """Charge identical (replicated) local work to every rank of a process row."""
    for rank in grid.row_ranks(row):
        comm.compute(rank, flops=flops, nbytes=nbytes, kernels=kernels)


def _make_q_blocks(
    per_row_matrices: list[CSRMatrix], n_cols: int
) -> BlockRows:
    """Wrap per-process-row Q matrices as a :class:`BlockRows`."""
    sizes = [m.shape[0] for m in per_row_matrices]
    starts = np.concatenate([[0], np.cumsum(sizes)])
    return BlockRows(per_row_matrices, starts, n_cols)


def partitioned_bulk_sampling(
    comm: Communicator,
    grid: ProcessGrid,
    sampler: SageSampler | LadiesSampler,
    a_blocks: BlockRows,
    batches: Sequence[np.ndarray],
    fanout: Sequence[int],
    seed: int = 0,
    *,
    sparsity_aware: bool = True,
    kernel=None,
) -> tuple[list[MinibatchSample], list[list[int]]]:
    """Sample one bulk of minibatches with the 1.5D partitioned algorithm.

    ``a_blocks`` must be partitioned into ``grid.n_rows`` block rows.
    Batches are assigned round-robin to process rows.  ``kernel`` selects
    the local SpGEMM backend of the distributed products (``None`` = the
    sampler's own backend).  Returns the samples in the input batch order
    plus the per-process-row ownership lists.
    """
    if kernel is None:
        kernel = getattr(sampler, "kernel", None)
    if a_blocks.n_blocks != grid.n_rows:
        raise ValueError(
            f"A must be partitioned into {grid.n_rows} block rows, "
            f"got {a_blocks.n_blocks}"
        )
    n = a_blocks.n_cols
    owners = assign_round_robin(len(batches), grid.n_rows)
    rngs = [
        np.random.default_rng(np.random.SeedSequence([seed, row]))
        for row in range(grid.n_rows)
    ]
    from ..core import FastGCNSampler  # local import to avoid cycle noise

    if isinstance(sampler, FastGCNSampler):
        samples_by_row = _fastgcn_partitioned(
            comm, grid, sampler, a_blocks, batches, owners, fanout, rngs,
            sparsity_aware, kernel,
        )
    elif isinstance(sampler, LadiesSampler):
        samples_by_row = _ladies_partitioned(
            comm, grid, sampler, a_blocks, batches, owners, fanout, rngs,
            sparsity_aware, kernel,
        )
    elif isinstance(sampler, SageSampler):
        samples_by_row = _sage_partitioned(
            comm, grid, sampler, a_blocks, batches, owners, fanout, rngs,
            sparsity_aware, kernel,
        )
    else:
        raise TypeError(
            f"partitioned sampling supports SAGE and LADIES-family samplers, "
            f"got {type(sampler).__name__}"
        )
    # Reassemble into input batch order.
    out: list[MinibatchSample | None] = [None] * len(batches)
    for row, idxs in enumerate(owners):
        for local, global_idx in enumerate(idxs):
            out[global_idx] = samples_by_row[row][local]
    return out, owners  # type: ignore[return-value]


# ---------------------------------------------------------------------- #
# GraphSAGE
# ---------------------------------------------------------------------- #
def _sage_partitioned(
    comm: Communicator,
    grid: ProcessGrid,
    sampler: SageSampler,
    a_blocks: BlockRows,
    batches: Sequence[np.ndarray],
    owners: list[list[int]],
    fanout: Sequence[int],
    rngs: list[np.random.Generator],
    sparsity_aware: bool,
    kernel=None,
) -> list[list[MinibatchSample]]:
    n = a_blocks.n_cols
    n_rows = grid.n_rows
    dst_by_row: list[list[np.ndarray]] = [
        [np.asarray(batches[i], dtype=np.int64) for i in owners[row]]
        for row in range(n_rows)
    ]
    layers_rev: list[list[list[LayerSample]]] = [
        [[] for _ in owners[row]] for row in range(n_rows)
    ]

    for s in fanout:
        # --- probability: distributed P = Q A -------------------------- #
        with comm.phase("probability"):
            q_rows = []
            for row in range(n_rows):
                frontier = (
                    np.concatenate(dst_by_row[row])
                    if dst_by_row[row]
                    else np.empty(0, dtype=np.int64)
                )
                q_rows.append(sampler.make_q(frontier, n))
                _charge_row(comm, grid, row, nbytes=16.0 * frontier.size)
            p_blocks = spgemm_15d(
                comm, grid, _make_q_blocks(q_rows, n), a_blocks,
                sparsity_aware=sparsity_aware, kernel=kernel,
            )
        # --- sampling: row-local NORM + SAMPLE ------------------------- #
        q_next_by_row = []
        with comm.phase("sampling"):
            for row in range(n_rows):
                p = sampler.norm(p_blocks[row])
                q_next_by_row.append(sampler.sample(p, s, rngs[row]))
                _charge_row(
                    comm, grid, row,
                    flops=sample_norm_flops(p, s),
                    nbytes=24.0 * p.nnz,
                    kernels=4,
                )
        # --- extraction: row-local column compaction ------------------- #
        with comm.phase("extraction"):
            for row in range(n_rows):
                q_next = q_next_by_row[row]
                bounds = np.cumsum([0] + [len(d) for d in dst_by_row[row]])
                new_dsts = []
                for b, dst in enumerate(dst_by_row[row]):
                    rows = q_next.row_block(int(bounds[b]), int(bounds[b + 1]))
                    layer = sampler.extract_batch_layer(rows, dst)
                    layers_rev[row][b].append(layer)
                    new_dsts.append(layer.src_ids)
                dst_by_row[row] = new_dsts
                _charge_row(
                    comm, grid, row, nbytes=24.0 * q_next.nnz, kernels=2
                )

    return [
        [
            MinibatchSample(
                np.asarray(batches[owners[row][b]], dtype=np.int64),
                list(reversed(layers_rev[row][b])),
            )
            for b in range(len(owners[row]))
        ]
        for row in range(n_rows)
    ]


# ---------------------------------------------------------------------- #
# Shared LADIES/FastGCN extraction step (section 5.2.3)
# ---------------------------------------------------------------------- #
def _ladies_extraction_step(
    comm: Communicator,
    grid: ProcessGrid,
    sampler: LadiesSampler,
    a_blocks: BlockRows,
    dst_by_row: list[list[np.ndarray]],
    sampled_by_row: list[list[np.ndarray]],
    layers_rev: list[list[list[LayerSample]]],
    sparsity_aware: bool,
    kernel=None,
) -> None:
    """Distributed row extraction (1.5D SpGEMM) followed by per-batch column
    extraction split across each process row's replicas (section 5.2.3)."""
    n = a_blocks.n_cols
    n_rows = grid.n_rows
    with comm.phase("extraction"):
        qr_rows = []
        for row in range(n_rows):
            stacked = (
                np.concatenate(dst_by_row[row])
                if dst_by_row[row]
                else np.empty(0, dtype=np.int64)
            )
            qr_rows.append(row_selector(stacked, n))
        ar_blocks = spgemm_15d(
            comm, grid, _make_q_blocks(qr_rows, n), a_blocks,
            sparsity_aware=sparsity_aware, kernel=kernel,
        )
        for row in range(n_rows):
            a_r = ar_blocks[row]
            dsts = dst_by_row[row]
            if not dsts:
                continue
            # Thread the selected kernel explicitly: col_extract would
            # otherwise fall back to the sampler's own backend, losing a
            # kernel= override on the product that dominates LADIES.
            adjs = sampler.col_extract(
                a_r, dsts, sampled_by_row[row],
                spgemm_fn=get_kernel(kernel).spgemm,
            )
            # The per-batch column-extraction SpGEMMs are split across the
            # process row's c replicas, then results are all-gathered
            # (section 5.2.3) so every replica holds every batch.
            bounds = np.cumsum([0] + [len(d) for d in dsts])
            batch_ar_nnz = [
                int(a_r.indptr[bounds[b + 1]] - a_r.indptr[bounds[b]])
                for b in range(len(dsts))
            ]
            shares = assign_round_robin(len(adjs), grid.c)
            for j, share in enumerate(shares):
                # Each per-batch SpGEMM scans its A_R rows once, plus the
                # n-row indptr of its hypersparse column selector (the
                # section-8.2.2 memory traffic that dominates LADIES).
                flops = sum(2.0 * batch_ar_nnz[b] for b in share)
                comm.compute(
                    grid.rank(row, j),
                    flops=flops,
                    nbytes=sum(
                        24.0 * (batch_ar_nnz[b] + adjs[b].nnz) + 8.0 * n
                        for b in share
                    ),
                    kernels=max(1, len(share)),
                )
            comm.allgather(
                [[adjs[b] for b in shares[j]] for j in range(grid.c)],
                grid.row_ranks(row),
            )
            for b, (adj, sampled, dst) in enumerate(
                zip(adjs, sampled_by_row[row], dsts)
            ):
                layers_rev[row][b].append(LayerSample(adj, sampled, dst))


# ---------------------------------------------------------------------- #
# FastGCN: global importance distribution + LADIES-style extraction
# ---------------------------------------------------------------------- #
def _fastgcn_partitioned(
    comm: Communicator,
    grid: ProcessGrid,
    sampler,  # FastGCNSampler; typed loosely to avoid an import cycle
    a_blocks: BlockRows,
    batches: Sequence[np.ndarray],
    owners: list[list[int]],
    fanout: Sequence[int],
    rngs: list[np.random.Generator],
    sparsity_aware: bool,
    kernel=None,
) -> list[list[MinibatchSample]]:
    from ..sparse import vstack

    n = a_blocks.n_cols
    n_rows = grid.n_rows
    # --- probability: the global importance vector q(v) ∝ ||A(:,v)||^2.
    # Each block row contributes its local column squared sums; one
    # all-reduce per process column combines them (every column holds all
    # blocks, so p/c ranks participate).
    with comm.phase("probability"):
        local_sq = []
        for row in range(n_rows):
            blk = a_blocks.blocks[row]
            sq = np.zeros(n, dtype=np.float64)
            if blk.nnz:
                np.add.at(sq, blk.indices, blk.data**2)
            local_sq.append(sq)
            _charge_row(comm, grid, row, flops=2.0 * blk.nnz, nbytes=16.0 * blk.nnz)
        col_sq = None
        for j in range(grid.c):
            col_sq = comm.allreduce(local_sq, grid.col_ranks(j))
        cols = np.flatnonzero(col_sq)
        importance = CSRMatrix.from_coo(
            np.zeros(cols.size, dtype=np.int64), cols, col_sq[cols], (1, n)
        )
        from ..sparse import row_normalize

        importance = row_normalize(importance)

    dst_by_row: list[list[np.ndarray]] = [
        [np.asarray(batches[i], dtype=np.int64) for i in owners[row]]
        for row in range(n_rows)
    ]
    layers_rev: list[list[list[LayerSample]]] = [
        [[] for _ in owners[row]] for row in range(n_rows)
    ]
    for s in fanout:
        sampled_by_row: list[list[np.ndarray]] = []
        with comm.phase("sampling"):
            for row in range(n_rows):
                kb = len(dst_by_row[row])
                if kb == 0:
                    sampled_by_row.append([])
                    continue
                p = vstack([importance] * kb)
                q_next = sampler.sample(p, s, rngs[row])
                sampled = [q_next.row(i)[0] for i in range(kb)]
                if sampler.include_dst:
                    sampled = [
                        np.union1d(sv, dv)
                        for sv, dv in zip(sampled, dst_by_row[row])
                    ]
                sampled_by_row.append(sampled)
                _charge_row(
                    comm, grid, row,
                    flops=sample_norm_flops(p, s),
                    nbytes=24.0 * p.nnz,
                    kernels=4,
                )
        _ladies_extraction_step(
            comm, grid, sampler, a_blocks, dst_by_row, sampled_by_row,
            layers_rev, sparsity_aware, kernel,
        )
        for row in range(n_rows):
            if dst_by_row[row]:
                dst_by_row[row] = sampled_by_row[row]

    return [
        [
            MinibatchSample(
                np.asarray(batches[owners[row][b]], dtype=np.int64),
                list(reversed(layers_rev[row][b])),
            )
            for b in range(len(owners[row]))
        ]
        for row in range(n_rows)
    ]


# ---------------------------------------------------------------------- #
# LADIES (and FastGCN-style layer-wise samplers)
# ---------------------------------------------------------------------- #
def _ladies_partitioned(
    comm: Communicator,
    grid: ProcessGrid,
    sampler: LadiesSampler,
    a_blocks: BlockRows,
    batches: Sequence[np.ndarray],
    owners: list[list[int]],
    fanout: Sequence[int],
    rngs: list[np.random.Generator],
    sparsity_aware: bool,
    kernel=None,
) -> list[list[MinibatchSample]]:
    n = a_blocks.n_cols
    n_rows = grid.n_rows
    dst_by_row: list[list[np.ndarray]] = [
        [np.asarray(batches[i], dtype=np.int64) for i in owners[row]]
        for row in range(n_rows)
    ]
    layers_rev: list[list[list[LayerSample]]] = [
        [[] for _ in owners[row]] for row in range(n_rows)
    ]

    for s in fanout:
        # --- probability: distributed P = Q A -------------------------- #
        with comm.phase("probability"):
            q_rows = []
            for row in range(n_rows):
                if dst_by_row[row]:
                    q_rows.append(sampler.make_q(dst_by_row[row], n))
                else:
                    q_rows.append(CSRMatrix.zeros((0, n)))
                _charge_row(
                    comm, grid, row,
                    nbytes=16.0 * sum(len(d) for d in dst_by_row[row]),
                )
            p_blocks = spgemm_15d(
                comm, grid, _make_q_blocks(q_rows, n), a_blocks,
                sparsity_aware=sparsity_aware,
            )
        # --- sampling: row-local NORM + SAMPLE ------------------------- #
        sampled_by_row: list[list[np.ndarray]] = []
        with comm.phase("sampling"):
            for row in range(n_rows):
                p = sampler.norm(p_blocks[row])
                q_next = sampler.sample(p, s, rngs[row])
                sampled = [q_next.row(i)[0] for i in range(p.shape[0])]
                if sampler.include_dst:
                    sampled = [
                        np.union1d(sv, dv)
                        for sv, dv in zip(sampled, dst_by_row[row])
                    ]
                sampled_by_row.append(sampled)
                _charge_row(
                    comm, grid, row,
                    flops=sample_norm_flops(p, s),
                    nbytes=24.0 * p.nnz,
                    kernels=4,
                )
        # --- extraction: distributed row extract + split col extract --- #
        _ladies_extraction_step(
            comm, grid, sampler, a_blocks, dst_by_row, sampled_by_row,
            layers_rev, sparsity_aware, kernel,
        )
        for row in range(n_rows):
            if dst_by_row[row]:
                dst_by_row[row] = sampled_by_row[row]

    return [
        [
            MinibatchSample(
                np.asarray(batches[owners[row][b]], dtype=np.int64),
                list(reversed(layers_rev[row][b])),
            )
            for b in range(len(owners[row]))
        ]
        for row in range(n_rows)
    ]
