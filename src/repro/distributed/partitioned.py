"""The Graph Partitioned distributed sampling algorithm (paper section 5.2).

Both the adjacency matrix ``A`` and the stacked bulk ``Q`` are partitioned
into ``p/c`` block rows on a ``p/c x c`` process grid, with each block row
replicated ``c`` times.  Execution is *plan-driven*: the sampler emits the
same declarative :class:`~repro.core.plan.SamplingPlan` the single-device
executor runs, and :class:`PartitionedExecutor` interprets each step over
the grid —

* ``PROB`` steps run as the sparsity-aware 1.5D SpGEMM of Algorithm 2
  (:func:`~repro.distributed.spgemm_15d.spgemm_15d`), or as the
  all-reduced global importance vector for FastGCN-style samplers;
* ``NORM`` and ``SAMPLE`` are row-local, exactly as the paper's per-step
  analysis states (sections 5.2.1-5.2.2);
* ``EXTRACT`` is row-local column compaction (node-wise), a distributed
  row-extraction SpGEMM plus per-batch column extraction split across each
  process row's ``c`` replicas (layer-wise, section 5.2.3), a row-local
  walk advance, or a distributed subgraph induction (graph-wise).

There is no per-algorithm code here: any sampler with a plan — including
registry plugins and GraphSAINT — runs partitioned.  Per-phase simulated
time is attributed to the phases Figure 7 plots (``probability`` /
``sampling`` / ``extraction``), derived from the step types via
:func:`~repro.core.plan.step_phase`.

Randomness is one independent stream per minibatch, keyed by the *global*
batch index (:func:`~repro.core.bulk.batch_rng`) — the same discipline the
replicated driver uses — so sampling output is bit-identical across grid
shapes (any ``p``, any ``c``) and across execution algorithms.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..comm import Communicator, ProcessGrid
from ..core import (
    MatrixSampler,
    MinibatchSample,
    assign_round_robin,
    batch_rng,
    reassemble_round_robin,
    step_phase,
)
from ..core.compile import (
    FusedProbNormStep,
    FusedSampleExtractStep,
    compact_layer_from_mask,
    mask_row_counts,
    optimize,
    sampled_rows_from_mask,
    selected_row_cols,
)
from ..core.compile import _lowers_compact
from ..core.frontier import LayerSample
from ..core.plan import (
    ExtractStep,
    NormStep,
    ProbStep,
    SampleStep,
    SamplingPlan,
    Step,
)
from ..partition.block1d import BlockRows
from ..sparse import CSRMatrix, row_selector, vstack
from ..sparse.kernels import get_kernel
from .instrument import sample_norm_flops
from .spgemm_15d import spgemm_15d

__all__ = [
    "partitioned_bulk_sampling",
    "PartitionedExecutor",
    "CompiledPartitionedExecutor",
]


def _charge_row(
    comm: Communicator,
    grid: ProcessGrid,
    row: int,
    *,
    flops: float = 0.0,
    nbytes: float = 0.0,
    kernels: int = 1,
) -> None:
    """Charge identical (replicated) local work to every rank of a process row."""
    for rank in grid.row_ranks(row):
        comm.compute(rank, flops=flops, nbytes=nbytes, kernels=kernels)


def _make_q_blocks(
    per_row_matrices: list[CSRMatrix], n_cols: int
) -> BlockRows:
    """Wrap per-process-row Q matrices as a :class:`BlockRows`."""
    sizes = [m.shape[0] for m in per_row_matrices]
    starts = np.concatenate([[0], np.cumsum(sizes)])
    return BlockRows(per_row_matrices, starts, n_cols)


class PartitionedExecutor:
    """Interpret a :class:`~repro.core.plan.SamplingPlan` on the 1.5D grid.

    Holds the per-process-row state Algorithm 2 threads between steps:
    each row's owned batches with their destination lists and per-batch RNG
    streams, the current probability block rows with their row-to-batch
    bounds, the sampled ``Q``, collected layers, and (for graph-wise plans)
    the walk history.  All matrix arithmetic is exact, so output equals the
    local executor's for the same per-batch streams.
    """

    def __init__(
        self,
        comm: Communicator,
        grid: ProcessGrid,
        sampler: MatrixSampler,
        a_blocks: BlockRows,
        batches: Sequence[np.ndarray],
        seed: int,
        *,
        sparsity_aware: bool = True,
        kernel=None,
    ) -> None:
        if a_blocks.n_blocks != grid.n_rows:
            raise ValueError(
                f"A must be partitioned into {grid.n_rows} block rows, "
                f"got {a_blocks.n_blocks}"
            )
        self.comm = comm
        self.grid = grid
        self.sampler = sampler
        self.a_blocks = a_blocks
        self.n = a_blocks.n_cols
        self.n_rows = grid.n_rows
        self.sparsity_aware = sparsity_aware
        self.kernel = kernel if kernel is not None else getattr(
            sampler, "kernel", None
        )
        self.batches = [np.asarray(b, dtype=np.int64) for b in batches]
        self.owners = assign_round_robin(len(batches), grid.n_rows)
        rows = range(self.n_rows)
        # Per-row frontier state and per-batch RNG streams (global index).
        self.dst: list[list[np.ndarray]] = [
            [self.batches[i] for i in self.owners[row]] for row in rows
        ]
        self.rngs = [
            [batch_rng(seed, int(i)) for i in self.owners[row]] for row in rows
        ]
        self.layers_rev: list[list[list[LayerSample]]] = [
            [[] for _ in self.owners[row]] for row in rows
        ]
        self.results: dict[int, MinibatchSample] = {}
        # Step-to-step dataflow, one entry per process row.
        self.p_blocks: list[CSRMatrix] | None = None
        self.q_next: list[CSRMatrix | None] | None = None
        self.bounds: list[np.ndarray] | None = None
        self.frontier: list[np.ndarray] | None = None
        self.visited: list[list[np.ndarray] | None] = [None] * self.n_rows
        self.importance: CSRMatrix | None = None
        self.s: int | None = None

    # ------------------------------------------------------------------ #
    # Driver
    # ------------------------------------------------------------------ #
    def run(self, plan: SamplingPlan) -> list[MinibatchSample]:
        for step in plan.steps:
            with self.comm.phase(step_phase(step)):
                self._dispatch(step)
        samples_by_row = [
            [
                self.results[i]
                if i in self.results
                else MinibatchSample(
                    self.batches[i],
                    list(reversed(self.layers_rev[row][local])),
                )
                for local, i in enumerate(self.owners[row])
            ]
            for row in range(self.n_rows)
        ]
        return reassemble_round_robin(samples_by_row, len(self.batches))

    def _dispatch(self, step: Step) -> None:
        """Interpret one step; the compiled subclass overrides this to add
        fused handlers, the plain interpreter refuses fused steps."""
        if getattr(step, "fused", False):
            raise TypeError(
                f"{type(step).__name__} needs CompiledPartitionedExecutor; "
                f"the plain interpreter cannot run fused steps"
            )
        if isinstance(step, ProbStep):
            self._prob(step)
        elif isinstance(step, NormStep):
            self._norm()
        elif isinstance(step, SampleStep):
            self._sample(step)
        else:
            self._extract(step)

    # ------------------------------------------------------------------ #
    # PROB: distributed probability generation (section 5.2.1)
    # ------------------------------------------------------------------ #
    def _prob(self, step: ProbStep) -> None:
        if step.source == "global":
            self._prob_global()
            return
        q_rows: list[CSRMatrix] = []
        self.bounds = []
        self.frontier = []
        for row in range(self.n_rows):
            dsts = self.dst[row]
            if step.source == "frontier":
                frontier = (
                    np.concatenate(dsts)
                    if dsts
                    else np.empty(0, dtype=np.int64)
                )
                self.frontier.append(frontier)
                self.bounds.append(
                    np.cumsum([0] + [len(d) for d in dsts])
                )
                q_rows.append(self.sampler.make_q(frontier, self.n))
                _charge_row(
                    self.comm, self.grid, row, nbytes=16.0 * frontier.size
                )
            else:  # indicator: one row per owned batch
                self.frontier.append(np.empty(0, dtype=np.int64))
                self.bounds.append(np.arange(len(dsts) + 1))
                if dsts:
                    q_rows.append(self.sampler.make_q(dsts, self.n))
                else:
                    q_rows.append(CSRMatrix.zeros((0, self.n)))
                _charge_row(
                    self.comm, self.grid, row,
                    nbytes=16.0 * sum(len(d) for d in dsts),
                )
        self.p_blocks = spgemm_15d(
            self.comm, self.grid, _make_q_blocks(q_rows, self.n),
            self.a_blocks, sparsity_aware=self.sparsity_aware,
            kernel=self.kernel,
        )

    def _prob_global(self) -> None:
        """FastGCN-style global importance: each block row contributes its
        local column squared sums; one all-reduce per process column
        combines them (every column holds all blocks).  Computed once and
        reused by every later global PROB step."""
        if self.importance is None:
            local_sq = []
            for row in range(self.n_rows):
                blk = self.a_blocks.blocks[row]
                sq = np.zeros(self.n, dtype=np.float64)
                if blk.nnz:
                    np.add.at(sq, blk.indices, blk.data**2)
                local_sq.append(sq)
                _charge_row(
                    self.comm, self.grid, row,
                    flops=2.0 * blk.nnz, nbytes=16.0 * blk.nnz,
                )
            col_sq = None
            for j in range(self.grid.c):
                col_sq = self.comm.allreduce(
                    local_sq, self.grid.col_ranks(j)
                )
            cols = np.flatnonzero(col_sq)
            from ..sparse import row_normalize

            self.importance = row_normalize(
                CSRMatrix.from_coo(
                    np.zeros(cols.size, dtype=np.int64), cols, col_sq[cols],
                    (1, self.n),
                )
            )
        self.p_blocks = []
        self.bounds = []
        self.frontier = []
        for row in range(self.n_rows):
            kb = len(self.dst[row])
            self.p_blocks.append(
                vstack([self.importance] * kb)
                if kb
                else CSRMatrix.zeros((0, self.n))
            )
            self.bounds.append(np.arange(kb + 1))
            self.frontier.append(np.empty(0, dtype=np.int64))

    # ------------------------------------------------------------------ #
    # NORM + SAMPLE: row-local (section 5.2.2)
    # ------------------------------------------------------------------ #
    def _norm(self) -> None:
        self.p_blocks = [
            self.sampler.norm(p) for p in self.p_blocks
        ]

    def _sample(self, step: SampleStep) -> None:
        self.s = step.count
        self.q_next = []
        for row in range(self.n_rows):
            if not self.owners[row]:
                self.q_next.append(None)
                continue
            p = self.p_blocks[row]
            self.q_next.append(
                self.sampler.sample_stacked(
                    p, step.count, self.rngs[row], self.bounds[row]
                )
            )
            _charge_row(
                self.comm, self.grid, row,
                flops=sample_norm_flops(p, step.count),
                nbytes=24.0 * p.nnz,
                kernels=4,
            )

    # ------------------------------------------------------------------ #
    # EXTRACT (section 5.2.3)
    # ------------------------------------------------------------------ #
    def _extract(self, step: ExtractStep) -> None:
        if step.kind == "compact":
            self._extract_compact()
        elif step.kind == "bipartite":
            self._extract_bipartite(step)
        elif step.kind == "walk":
            self._extract_walk()
        else:
            self._extract_subgraph(step)

    def _extract_compact(self) -> None:
        """Row-local column compaction: each batch's sampled rows drop
        their empty columns and the kept columns become its new frontier."""
        for row in range(self.n_rows):
            q_next = self.q_next[row]
            if q_next is None:
                continue
            bounds = self.bounds[row]
            new_dsts = []
            for b, dst in enumerate(self.dst[row]):
                rows = q_next.row_block(int(bounds[b]), int(bounds[b + 1]))
                layer = self.sampler.extract_batch_layer(rows, dst)
                self.layers_rev[row][b].append(layer)
                new_dsts.append(layer.src_ids)
            self.dst[row] = new_dsts
            _charge_row(
                self.comm, self.grid, row,
                nbytes=24.0 * q_next.nnz, kernels=2,
            )

    def _sampled_lists(self, step: ExtractStep) -> list[list[np.ndarray]]:
        """Per-row per-batch sampled vertex sets read off ``q_next`` rows
        (layer-wise plans: one P row per batch)."""
        out: list[list[np.ndarray]] = []
        for row in range(self.n_rows):
            q_next = self.q_next[row]
            if q_next is None:
                out.append([])
                continue
            sampled = [
                q_next.row(b)[0] for b in range(len(self.dst[row]))
            ]
            if step.union_dst:
                sampled = [
                    np.union1d(sv, dv)
                    for sv, dv in zip(sampled, self.dst[row])
                ]
            out.append(sampled)
        return out

    def _extract_bipartite(self, step: ExtractStep) -> None:
        self._extract_bipartite_from(self._sampled_lists(step), step)

    def _extract_bipartite_from(
        self,
        sampled_by_row: list[list[np.ndarray]],
        step: ExtractStep,
    ) -> None:
        """Distributed row extraction (1.5D SpGEMM) followed by per-batch
        column extraction split across each process row's replicas
        (section 5.2.3).  ``sampled_by_row`` holds the per-row per-batch
        sampled vertex lists, already unioned with destinations if the
        step asks for it."""
        ar_blocks = self._row_extract_15d(self.dst)
        for row in range(self.n_rows):
            a_r = ar_blocks[row]
            dsts = self.dst[row]
            if not dsts:
                continue
            # Thread the selected kernel explicitly: col_extract would
            # otherwise fall back to the sampler's own backend, losing a
            # kernel= override on the product that dominates LADIES.
            adjs = self.sampler.col_extract(
                a_r, dsts, sampled_by_row[row],
                spgemm_fn=get_kernel(self.kernel).spgemm,
            )
            bounds = np.cumsum([0] + [len(d) for d in dsts])
            self._charge_split_extraction(row, a_r, bounds, adjs)
            for b, (adj, sampled, dst) in enumerate(
                zip(adjs, sampled_by_row[row], dsts)
            ):
                layer = LayerSample(adj, sampled, dst)
                if step.debias:
                    probs = np.zeros(self.n)
                    cols, vals = self.p_blocks[row].row(b)
                    probs[cols] = vals
                    layer = self.sampler.debias_layer(layer, probs, self.s)
                self.layers_rev[row][b].append(layer)
            self.dst[row] = sampled_by_row[row]

    def _row_extract_15d(
        self, vert_lists_by_row: list[list[np.ndarray]]
    ) -> list[CSRMatrix]:
        """``A_R = Q_R A`` over the grid: one selector row per stacked
        vertex of each process row's per-batch lists."""
        qr_rows = []
        for row in range(self.n_rows):
            stacked = (
                np.concatenate(vert_lists_by_row[row])
                if vert_lists_by_row[row]
                else np.empty(0, dtype=np.int64)
            )
            qr_rows.append(row_selector(stacked, self.n))
        return spgemm_15d(
            self.comm, self.grid, _make_q_blocks(qr_rows, self.n),
            self.a_blocks, sparsity_aware=self.sparsity_aware,
            kernel=self.kernel,
        )

    def _charge_split_extraction(
        self,
        row: int,
        a_r: CSRMatrix,
        bounds: np.ndarray,
        adjs: list[CSRMatrix],
    ) -> None:
        """Charge the per-batch column-extraction SpGEMMs, split across the
        process row's ``c`` replicas, then all-gather the results so every
        replica holds every batch (section 5.2.3)."""
        batch_ar_nnz = [
            int(a_r.indptr[int(bounds[b + 1])] - a_r.indptr[int(bounds[b])])
            for b in range(len(adjs))
        ]
        shares = assign_round_robin(len(adjs), self.grid.c)
        for j, share in enumerate(shares):
            # Each per-batch SpGEMM scans its A_R rows once, plus the
            # n-row indptr of its hypersparse column selector (the
            # section-8.2.2 memory traffic that dominates LADIES).
            flops = sum(2.0 * batch_ar_nnz[b] for b in share)
            self.comm.compute(
                self.grid.rank(row, j),
                flops=flops,
                nbytes=sum(
                    24.0 * (batch_ar_nnz[b] + adjs[b].nnz) + 8.0 * self.n
                    for b in share
                ),
                kernels=max(1, len(share)),
            )
        self.comm.allgather(
            [[adjs[b] for b in shares[j]] for j in range(self.grid.c)],
            self.grid.row_ranks(row),
        )

    def _extract_walk(self) -> None:
        """Row-local walk advance: walkers with a sampled neighbor move,
        walkers on isolated vertices stay in place."""
        for row in range(self.n_rows):
            q_next = self.q_next[row]
            if q_next is None:
                continue
            frontier = self.frontier[row]
            if self.visited[row] is None:
                self.visited[row] = [frontier]
            nxt = frontier.copy()
            picked = np.flatnonzero(q_next.nnz_per_row() > 0)
            nxt[picked] = q_next.indices
            self.visited[row].append(nxt)
            bounds = self.bounds[row]
            self.dst[row] = [
                nxt[int(bounds[b]) : int(bounds[b + 1])]
                for b in range(len(self.dst[row]))
            ]
            _charge_row(
                self.comm, self.grid, row,
                nbytes=16.0 * nxt.size, kernels=2,
            )

    def _extract_subgraph(self, step: ExtractStep) -> None:
        """Distributed subgraph induction: the stacked per-batch vertex
        sets row-extract ``A`` through the 1.5D SpGEMM, then each batch's
        column compaction runs once per process row, split across its
        ``c`` replicas like the layer-wise extraction."""
        verts_by_row: list[list[np.ndarray]] = []
        for row in range(self.n_rows):
            verts = []
            for b, i in enumerate(self.owners[row]):
                batch = self.batches[i]
                hist = self.visited[row]
                if hist is None:
                    hist = [
                        np.concatenate(self.dst[row])
                        if self.dst[row]
                        else np.empty(0, dtype=np.int64)
                    ]
                bounds = self.bounds[row]
                lo, hi = int(bounds[b]), int(bounds[b + 1])
                mine = np.unique(
                    np.concatenate([stepv[lo:hi] for stepv in hist])
                )
                verts.append(np.union1d(mine, batch))
            verts_by_row.append(verts)
        ar_blocks = self._row_extract_15d(verts_by_row)
        for row in range(self.n_rows):
            verts = verts_by_row[row]
            if not verts:
                continue
            a_r = ar_blocks[row]
            bounds = np.cumsum([0] + [len(v) for v in verts])
            subs = []
            for b, v in enumerate(verts):
                rows = a_r.row_block(int(bounds[b]), int(bounds[b + 1]))
                mask = np.zeros(self.n, dtype=bool)
                mask[v] = True
                subs.append(rows.select_columns(mask))
            self._charge_split_extraction(row, a_r, bounds, subs)
            for b, i in enumerate(self.owners[row]):
                batch = self.batches[i]
                sub, v = subs[b], verts[b]
                layers = [
                    LayerSample(sub, v, v) for _ in range(step.n_layers - 1)
                ]
                pos = np.searchsorted(v, batch)
                layers.append(LayerSample(sub.extract_rows(pos), v, batch))
                self.results[i] = MinibatchSample(batch, layers)


class CompiledPartitionedExecutor(PartitionedExecutor):
    """A :class:`PartitionedExecutor` that additionally runs fused steps.

    Same fused row-wise kernels as the local compiled executor
    (:mod:`repro.core.compile`), applied per process row: fused PROB+NORM
    normalizes each row's 1.5D product block in place, fused
    SAMPLE+EXTRACT keeps the selection as a mask over each block and
    extracts straight from it.  Simulated cost charges stay identical to
    the interpreter's (the model charges data volumes, which fusion does
    not change); per-phase attribution folds each fused step into its
    :func:`~repro.core.plan.step_phase` phase.
    """

    def _dispatch(self, step: Step) -> None:
        if isinstance(step, FusedProbNormStep):
            self._fused_prob_norm(step)
        elif isinstance(step, FusedSampleExtractStep):
            self._fused_sample_extract(step)
        else:
            super()._dispatch(step)

    def _fused_prob_norm(self, step: FusedProbNormStep) -> None:
        self._prob(step)
        # The blocks are freshly computed 1.5D products (or fresh stacks
        # of the cached importance row) — this executor owns them.
        self.p_blocks = [
            self.sampler.norm_inplace(p) for p in self.p_blocks
        ]

    def _fused_sample_extract(self, step: FusedSampleExtractStep) -> None:
        self.s = step.count
        sels: list[np.ndarray | None] = []
        for row in range(self.n_rows):
            if not self.owners[row]:
                sels.append(None)
                continue
            p = self.p_blocks[row]
            sels.append(
                self.sampler.sample_stacked_mask(
                    p, step.count, self.rngs[row], self.bounds[row]
                )
            )
            _charge_row(
                self.comm, self.grid, row,
                flops=sample_norm_flops(p, step.count),
                nbytes=24.0 * p.nnz,
                kernels=4,
            )
        extract = step.extract
        if extract.kind == "compact":
            self._fused_extract_compact(sels)
        elif extract.kind == "bipartite":
            self._extract_bipartite_from(
                self._sampled_lists_from_masks(sels, extract), extract
            )
        else:  # walk
            self._fused_extract_walk(sels)
        self.q_next = None

    def _sampled_lists_from_masks(
        self, sels: list[np.ndarray | None], step: ExtractStep
    ) -> list[list[np.ndarray]]:
        out: list[list[np.ndarray]] = []
        for row in range(self.n_rows):
            sel = sels[row]
            if sel is None:
                out.append([])
                continue
            p = self.p_blocks[row]
            sampled = [
                selected_row_cols(p, sel, b)
                for b in range(len(self.dst[row]))
            ]
            if step.union_dst:
                sampled = [
                    np.union1d(sv, dv)
                    for sv, dv in zip(sampled, self.dst[row])
                ]
            out.append(sampled)
        return out

    def _fused_extract_compact(
        self, sels: list[np.ndarray | None]
    ) -> None:
        lower = _lowers_compact(self.sampler)
        for row in range(self.n_rows):
            sel = sels[row]
            if sel is None:
                continue
            p = self.p_blocks[row]
            bounds = self.bounds[row]
            new_dsts = []
            for b, dst in enumerate(self.dst[row]):
                lo, hi = int(bounds[b]), int(bounds[b + 1])
                if lower:
                    layer = compact_layer_from_mask(
                        p, sel, lo, hi, dst,
                        include_dst=self.sampler.include_dst,
                    )
                else:
                    layer = self.sampler.extract_batch_layer(
                        sampled_rows_from_mask(p, sel, lo, hi), dst
                    )
                self.layers_rev[row][b].append(layer)
                new_dsts.append(layer.src_ids)
            self.dst[row] = new_dsts
            _charge_row(
                self.comm, self.grid, row,
                nbytes=24.0 * int(sel.sum()), kernels=2,
            )

    def _fused_extract_walk(self, sels: list[np.ndarray | None]) -> None:
        for row in range(self.n_rows):
            sel = sels[row]
            if sel is None:
                continue
            p = self.p_blocks[row]
            frontier = self.frontier[row]
            if self.visited[row] is None:
                self.visited[row] = [frontier]
            nxt = frontier.copy()
            picked = np.flatnonzero(mask_row_counts(p, sel) > 0)
            nxt[picked] = p.indices[sel]
            self.visited[row].append(nxt)
            bounds = self.bounds[row]
            self.dst[row] = [
                nxt[int(bounds[b]) : int(bounds[b + 1])]
                for b in range(len(self.dst[row]))
            ]
            _charge_row(
                self.comm, self.grid, row,
                nbytes=16.0 * nxt.size, kernels=2,
            )


def partitioned_bulk_sampling(
    comm: Communicator,
    grid: ProcessGrid,
    sampler: MatrixSampler,
    a_blocks: BlockRows,
    batches: Sequence[np.ndarray],
    fanout: Sequence[int],
    seed: int = 0,
    *,
    sparsity_aware: bool = True,
    kernel=None,
) -> tuple[list[MinibatchSample], list[list[int]]]:
    """Sample one bulk of minibatches with the 1.5D partitioned algorithm.

    ``a_blocks`` must be partitioned into ``grid.n_rows`` block rows.
    Batches are assigned round-robin to process rows; each batch draws from
    its own RNG stream keyed by its global index, so output is invariant to
    the grid shape.  ``kernel`` selects the local SpGEMM backend of the
    distributed products (``None`` = the sampler's own backend).  Returns
    the samples in the input batch order plus the per-process-row ownership
    lists.

    Works for *any* sampler that emits a sampling plan (built-ins and
    registry plugins alike); a sampler without a plan raises ``TypeError``
    because there is nothing to distribute.
    """
    plan_fn = getattr(sampler, "plan", None)
    plan = plan_fn(tuple(int(s) for s in fanout)) if callable(plan_fn) else None
    if plan is None:
        raise TypeError(
            f"partitioned sampling needs a sampler that emits a sampling "
            f"plan; {type(sampler).__name__} does not (implement "
            f"MatrixSampler.plan())"
        )
    backend = get_kernel(
        kernel if kernel is not None else getattr(sampler, "kernel", None)
    )
    if getattr(backend, "compiles_plans", False):
        plan = optimize(plan)
        executor: PartitionedExecutor = CompiledPartitionedExecutor(
            comm, grid, sampler, a_blocks, batches, seed,
            sparsity_aware=sparsity_aware, kernel=kernel,
        )
    else:
        executor = PartitionedExecutor(
            comm, grid, sampler, a_blocks, batches, seed,
            sparsity_aware=sparsity_aware, kernel=kernel,
        )
    return executor.run(plan), executor.owners
