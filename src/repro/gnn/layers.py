"""GNN layers with explicit forward/backward (numpy).

These stand in for the PyG layers the paper trains with (section 8.1.3 uses
PyG's 3-layer SAGE).  Each layer computes embeddings for a sampled layer's
*destination* vertices from its *source* embeddings — the bipartite
formulation produced by :class:`repro.core.frontier.LayerSample`.
"""

from __future__ import annotations

import numpy as np

from ..core.frontier import LayerSample
from ..sparse import CSRMatrix, row_normalize, spmm

__all__ = ["Linear", "SAGEConv", "GCNConv", "glorot", "stable_matmul"]


def glorot(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / sum(shape))
    return rng.uniform(-limit, limit, size=shape)


def stable_matmul(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """``x @ w`` with row-count-independent bit patterns.

    BLAS GEMM picks its blocking (and therefore its rounding) from the row
    count ``m``, so ``(x @ w)[rows]`` and ``x[rows] @ w`` can differ in the
    last bits.  Inference paths that must produce identical logits no
    matter how vertices are grouped into batches (layer-wise inference,
    online serving with micro-batching and embedding caches) route their
    dense transforms through this einsum, whose per-row accumulation order
    depends only on the inner dimension.  Training keeps plain ``@``.
    """
    return np.einsum("ij,jk->ik", x, w, optimize=False)


class Linear:
    """Dense affine layer ``y = x W + b``."""

    def __init__(
        self, in_dim: int, out_dim: int, rng: np.random.Generator, *, bias: bool = True
    ) -> None:
        self.params = {"W": glorot((in_dim, out_dim), rng)}
        if bias:
            self.params["b"] = np.zeros(out_dim)
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        out = x @ self.params["W"]
        if "b" in self.params:
            out = out + self.params["b"]
        return out

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.grads["W"] += self._x.T @ dy
        if "b" in self.params:
            self.grads["b"] += dy.sum(axis=0)
        return dy @ self.params["W"].T

    def zero_grad(self) -> None:
        for g in self.grads.values():
            g.fill(0.0)


class _ConvBase:
    """Shared bookkeeping for graph convolutions."""

    params: dict[str, np.ndarray]
    grads: dict[str, np.ndarray]

    def zero_grad(self) -> None:
        for g in self.grads.values():
            g.fill(0.0)

    @staticmethod
    def _mean_adj(layer: LayerSample) -> CSRMatrix:
        """Row-normalized adjacency: mean aggregation over sampled neighbors."""
        return row_normalize(layer.adj)

    @staticmethod
    def _dst_positions(layer: LayerSample) -> np.ndarray | None:
        """Positions of destination vertices inside the source frontier.

        Present only when the sampler included destinations in the frontier
        (``include_dst=True``); otherwise the layer has no self term.
        """
        src = layer.src_ids
        pos = np.searchsorted(src, layer.dst_ids)
        pos = np.clip(pos, 0, max(0, len(src) - 1))
        if len(src) and np.array_equal(src[pos], layer.dst_ids):
            return pos
        return None


class SAGEConv(_ConvBase):
    """GraphSAGE convolution with mean aggregation.

    ``h_dst' = h_dst W_self + mean_{u in sampled N(dst)} h_u W_neigh + b``.
    The self term is dropped when destinations are absent from the source
    frontier (pure paper-form samples).
    """

    def __init__(
        self, in_dim: int, out_dim: int, rng: np.random.Generator
    ) -> None:
        self.params = {
            "W_self": glorot((in_dim, out_dim), rng),
            "W_neigh": glorot((in_dim, out_dim), rng),
            "b": np.zeros(out_dim),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._cache: tuple | None = None

    def forward(self, layer: LayerSample, h_src: np.ndarray) -> np.ndarray:
        if h_src.shape[0] != layer.n_src:
            raise ValueError(
                f"h_src has {h_src.shape[0]} rows for {layer.n_src} sources"
            )
        adj = self._mean_adj(layer)
        neigh = spmm(adj, h_src)
        dst_pos = self._dst_positions(layer)
        h_dst = h_src[dst_pos] if dst_pos is not None else None
        self._cache = (adj, h_src, neigh, h_dst, dst_pos)
        out = neigh @ self.params["W_neigh"] + self.params["b"]
        if h_dst is not None:
            out = out + h_dst @ self.params["W_self"]
        return out

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        adj, h_src, neigh, h_dst, dst_pos = self._cache
        self.grads["W_neigh"] += neigh.T @ dy
        self.grads["b"] += dy.sum(axis=0)
        dh_src = spmm(adj.transpose(), dy @ self.params["W_neigh"].T)
        if h_dst is not None:
            self.grads["W_self"] += h_dst.T @ dy
            np.add.at(dh_src, dst_pos, dy @ self.params["W_self"].T)
        return dh_src

    def infer(self, layer: LayerSample, h_src: np.ndarray) -> np.ndarray:
        """Stateless, row-stable forward (see :func:`stable_matmul`)."""
        if h_src.shape[0] != layer.n_src:
            raise ValueError(
                f"h_src has {h_src.shape[0]} rows for {layer.n_src} sources"
            )
        neigh = spmm(self._mean_adj(layer), h_src)
        out = stable_matmul(neigh, self.params["W_neigh"]) + self.params["b"]
        dst_pos = self._dst_positions(layer)
        if dst_pos is not None:
            out = out + stable_matmul(h_src[dst_pos], self.params["W_self"])
        return out


class GCNConv(_ConvBase):
    """GCN-style convolution: ``h_dst' = norm(A) h_src W + b``.

    Used for layer-wise samplers (LADIES/FastGCN) whose samples have no
    guaranteed self edges; normalization is the mean over sampled sources.
    """

    def __init__(
        self, in_dim: int, out_dim: int, rng: np.random.Generator
    ) -> None:
        self.params = {
            "W": glorot((in_dim, out_dim), rng),
            "b": np.zeros(out_dim),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._cache: tuple | None = None

    def forward(self, layer: LayerSample, h_src: np.ndarray) -> np.ndarray:
        if h_src.shape[0] != layer.n_src:
            raise ValueError(
                f"h_src has {h_src.shape[0]} rows for {layer.n_src} sources"
            )
        adj = self._mean_adj(layer)
        agg = spmm(adj, h_src)
        self._cache = (adj, agg)
        return agg @ self.params["W"] + self.params["b"]

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        adj, agg = self._cache
        self.grads["W"] += agg.T @ dy
        self.grads["b"] += dy.sum(axis=0)
        return spmm(adj.transpose(), dy @ self.params["W"].T)

    def infer(self, layer: LayerSample, h_src: np.ndarray) -> np.ndarray:
        """Stateless, row-stable forward (see :func:`stable_matmul`)."""
        if h_src.shape[0] != layer.n_src:
            raise ValueError(
                f"h_src has {h_src.shape[0]} rows for {layer.n_src} sources"
            )
        agg = spmm(self._mean_adj(layer), h_src)
        return stable_matmul(agg, self.params["W"]) + self.params["b"]
