"""Optimizers operating on named parameter/gradient dictionaries."""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "Adam"]


class SGD:
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self, lr: float, *, momentum: float = 0.0, weight_decay: float = 0.0
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[str, np.ndarray] = {}

    def step(
        self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]
    ) -> None:
        """Update ``params`` in place from ``grads`` (matching keys)."""
        for name, p in params.items():
            g = grads[name]
            if self.weight_decay:
                g = g + self.weight_decay * p
            if self.momentum:
                v = self._velocity.setdefault(name, np.zeros_like(p))
                v *= self.momentum
                v += g
                g = v
            p -= self.lr * g


class Adam:
    """Adam (Kingma & Ba, 2015)."""

    def __init__(
        self,
        lr: float = 1e-3,
        *,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.b1, self.b2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def step(
        self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]
    ) -> None:
        """Update ``params`` in place from ``grads`` (matching keys)."""
        self._t += 1
        for name, p in params.items():
            g = grads[name]
            if self.weight_decay:
                g = g + self.weight_decay * p
            m = self._m.setdefault(name, np.zeros_like(p))
            v = self._v.setdefault(name, np.zeros_like(p))
            m *= self.b1
            m += (1 - self.b1) * g
            v *= self.b2
            v += (1 - self.b2) * g * g
            m_hat = m / (1 - self.b1**self._t)
            v_hat = v / (1 - self.b2**self._t)
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
