"""Softmax cross-entropy loss with gradient."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "softmax_cross_entropy"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy over rows and its gradient w.r.t. the logits."""
    if logits.ndim != 2:
        raise ValueError("logits must be 2-D (rows x classes)")
    if labels.shape[0] != logits.shape[0]:
        raise ValueError("one label per logit row required")
    if labels.size and (labels.min() < 0 or labels.max() >= logits.shape[1]):
        raise ValueError("label out of range")
    n = logits.shape[0]
    probs = softmax(logits)
    picked = probs[np.arange(n), labels]
    loss = float(-np.log(np.maximum(picked, 1e-12)).mean())
    grad = probs
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n
