"""Graph attention (GAT) convolution with explicit forward/backward.

A single-head GAT layer (Velickovic et al., 2018) over the sampled
bipartite layers the matrix samplers produce.  Included as part of the
"any model" claim of the paper's section 8.1.3 — the pipeline's sampled
adjacencies are model-agnostic, and attention is the standard layer beyond
SAGE/GCN a downstream user would reach for.

For a sampled layer with destination ``i`` and source ``j``::

    e_ij    = leaky_relu(a_dst . (h_i W) + a_src . (h_j W))
    alpha_i = softmax over j in N_S(i) of e_ij
    h_i'    = sum_j alpha_ij (h_j W) + b

The softmax runs over each destination's *sampled* neighborhood (a CSR
row), so all edge work is vectorized over the layer's nonzeros.
"""

from __future__ import annotations

import numpy as np

from ..core.frontier import LayerSample
from .layers import _ConvBase, glorot, stable_matmul

__all__ = ["GATConv"]

_LEAK = 0.2


def _segment_softmax(
    scores: np.ndarray, indptr: np.ndarray
) -> np.ndarray:
    """Row-segmented softmax over CSR-ordered edge scores."""
    n_rows = indptr.shape[0] - 1
    rows = _row_ids(indptr)
    # Stabilize per row: subtract the row max.
    row_max = np.full(n_rows, -np.inf)
    np.maximum.at(row_max, rows, scores)
    shifted = np.exp(scores - row_max[rows])
    row_sum = np.zeros(n_rows)
    np.add.at(row_sum, rows, shifted)
    return shifted / row_sum[rows]


def _row_ids(indptr: np.ndarray) -> np.ndarray:
    return np.repeat(
        np.arange(indptr.shape[0] - 1, dtype=np.int64), np.diff(indptr)
    )


class GATConv(_ConvBase):
    """Single-head graph attention over a sampled bipartite layer."""

    def __init__(
        self, in_dim: int, out_dim: int, rng: np.random.Generator
    ) -> None:
        self.params = {
            "W": glorot((in_dim, out_dim), rng),
            "a_src": glorot((out_dim, 1), rng)[:, 0],
            "a_dst": glorot((out_dim, 1), rng)[:, 0],
            "b": np.zeros(out_dim),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._cache: tuple | None = None

    def forward(self, layer: LayerSample, h_src: np.ndarray) -> np.ndarray:
        if h_src.shape[0] != layer.n_src:
            raise ValueError(
                f"h_src has {h_src.shape[0]} rows for {layer.n_src} sources"
            )
        adj = layer.adj
        dst_pos = self._dst_positions(layer)
        if dst_pos is None:
            raise ValueError(
                "GATConv needs destinations inside the source frontier "
                "(sample with include_dst=True)"
            )
        z = h_src @ self.params["W"]  # (n_src, out)
        s_src = z @ self.params["a_src"]  # (n_src,)
        s_dst = z @ self.params["a_dst"]
        rows = _row_ids(adj.indptr)
        cols = adj.indices
        raw = s_dst[dst_pos][rows] + s_src[cols]
        leaky = np.where(raw > 0, raw, _LEAK * raw)
        alpha = _segment_softmax(leaky, adj.indptr)
        # Aggregate alpha-weighted source transforms per destination row.
        out = np.zeros((layer.n_dst, z.shape[1]))
        np.add.at(out, rows, alpha[:, None] * z[cols])
        self._cache = (layer, h_src, z, rows, cols, raw, alpha, dst_pos)
        return out + self.params["b"]

    def infer(self, layer: LayerSample, h_src: np.ndarray) -> np.ndarray:
        """Stateless, row-stable forward (see :func:`~repro.gnn.layers.stable_matmul`).

        The segmented softmax and the edge scatter already accumulate in
        CSR edge order per destination row, so only the dense transforms
        need the einsum route for grouping-independent bits.
        """
        if h_src.shape[0] != layer.n_src:
            raise ValueError(
                f"h_src has {h_src.shape[0]} rows for {layer.n_src} sources"
            )
        adj = layer.adj
        dst_pos = self._dst_positions(layer)
        if dst_pos is None:
            raise ValueError(
                "GATConv needs destinations inside the source frontier "
                "(sample with include_dst=True)"
            )
        z = stable_matmul(h_src, self.params["W"])
        s_src = np.einsum("ij,j->i", z, self.params["a_src"], optimize=False)
        s_dst = np.einsum("ij,j->i", z, self.params["a_dst"], optimize=False)
        rows = _row_ids(adj.indptr)
        cols = adj.indices
        raw = s_dst[dst_pos][rows] + s_src[cols]
        leaky = np.where(raw > 0, raw, _LEAK * raw)
        alpha = _segment_softmax(leaky, adj.indptr)
        out = np.zeros((layer.n_dst, z.shape[1]))
        np.add.at(out, rows, alpha[:, None] * z[cols])
        return out + self.params["b"]

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        layer, h_src, z, rows, cols, raw, alpha, dst_pos = self._cache
        n_src, out_dim = z.shape

        self.grads["b"] += dy.sum(axis=0)
        # d/d(alpha_e): dy_row . z_col
        dalpha = np.einsum("ef,ef->e", dy[rows], z[cols])
        # Softmax backward within each row segment.
        weighted = alpha * dalpha
        row_sums = np.zeros(layer.n_dst)
        np.add.at(row_sums, rows, weighted)
        dscore = alpha * (dalpha - row_sums[rows])
        # Leaky ReLU backward.
        draw = np.where(raw > 0, dscore, _LEAK * dscore)
        # raw = s_dst[dst_pos][row] + s_src[col]
        ds_src = np.zeros(n_src)
        np.add.at(ds_src, cols, draw)
        ds_dst = np.zeros(n_src)
        np.add.at(ds_dst, dst_pos[rows], draw)
        # z gradients: from aggregation term and from both score terms.
        dz = np.zeros_like(z)
        np.add.at(dz, cols, alpha[:, None] * dy[rows])
        dz += np.outer(ds_src, self.params["a_src"])
        dz += np.outer(ds_dst, self.params["a_dst"])
        self.grads["a_src"] += z.T @ ds_src
        self.grads["a_dst"] += z.T @ ds_dst
        self.grads["W"] += h_src.T @ dz
        return dz @ self.params["W"].T
