"""Neural-network substrate: layers, losses, optimizers and GNN models with
explicit numpy forward/backward passes (stand-in for PyTorch/PyG)."""

from .activations import (
    ACTIVATIONS,
    Dropout,
    Identity,
    LeakyReLU,
    ReLU,
    Tanh,
    make_activation,
)
from .attention import GATConv
from .checkpoint import load_model_into, save_model
from .layers import GCNConv, Linear, SAGEConv, glorot
from .loss import softmax, softmax_cross_entropy
from .metrics import accuracy, macro_f1
from .model import GNNModel, full_graph_sample, propagation_flops
from .optim import SGD, Adam

__all__ = [
    "ACTIVATIONS",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Identity",
    "make_activation",
    "Dropout",
    "Linear",
    "SAGEConv",
    "GCNConv",
    "GATConv",
    "save_model",
    "load_model_into",
    "glorot",
    "softmax",
    "softmax_cross_entropy",
    "accuracy",
    "macro_f1",
    "GNNModel",
    "full_graph_sample",
    "propagation_flops",
    "SGD",
    "Adam",
]
