"""Neural-network substrate: layers, losses, optimizers and GNN models with
explicit numpy forward/backward passes (stand-in for PyTorch/PyG)."""

from .activations import Dropout, ReLU
from .attention import GATConv
from .checkpoint import load_model_into, save_model
from .layers import GCNConv, Linear, SAGEConv, glorot
from .loss import softmax, softmax_cross_entropy
from .metrics import accuracy, macro_f1
from .model import GNNModel, full_graph_sample, propagation_flops
from .optim import SGD, Adam

__all__ = [
    "ReLU",
    "Dropout",
    "Linear",
    "SAGEConv",
    "GCNConv",
    "GATConv",
    "save_model",
    "load_model_into",
    "glorot",
    "softmax",
    "softmax_cross_entropy",
    "accuracy",
    "macro_f1",
    "GNNModel",
    "full_graph_sample",
    "propagation_flops",
    "SGD",
    "Adam",
]
