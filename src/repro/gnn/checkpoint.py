"""Model checkpointing: save/load GNNModel parameters as .npz."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .model import GNNModel

__all__ = ["save_model", "load_model_into"]


def save_model(model: GNNModel, path: str | Path) -> Path:
    """Write every named parameter of ``model`` to ``path`` (.npz)."""
    path = Path(path)
    params = model.parameters()
    np.savez_compressed(path, **{k.replace(".", "__"): v for k, v in params.items()})
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_model_into(model: GNNModel, path: str | Path) -> GNNModel:
    """Load a checkpoint into an architecture-matching ``model`` in place."""
    own = model.parameters()
    with np.load(path, allow_pickle=False) as data:
        stored = {k.replace("__", "."): data[k] for k in data.files}
    if set(stored) != set(own):
        missing = set(own) ^ set(stored)
        raise ValueError(f"checkpoint/model parameter mismatch: {sorted(missing)}")
    for name, value in stored.items():
        if own[name].shape != value.shape:
            raise ValueError(
                f"shape mismatch for {name}: model {own[name].shape} "
                f"vs checkpoint {value.shape}"
            )
        own[name][...] = value
    return model
