"""Activation functions with explicit backward passes.

Every activation exposes two entry points:

* ``forward``/``backward`` — the stateful training pair (the mask or
  output needed by the backward pass is cached on the instance).
* ``apply`` — a pure, stateless forward used by inference paths
  (:func:`repro.pipeline.layerwise_inference`, :mod:`repro.serve`), so
  running inference mid-training never clobbers a cached backward state.

:data:`ACTIVATIONS` is the name -> class table the model constructor and
``RunConfig.activation`` resolve through.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ACTIVATIONS",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Identity",
    "Dropout",
    "make_activation",
]


class ReLU:
    """Rectified linear unit; caches the mask between forward and backward."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    @staticmethod
    def apply(x: np.ndarray) -> np.ndarray:
        return np.where(x > 0, x, 0.0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, dy, 0.0)


class LeakyReLU:
    """Leaky ReLU with a fixed negative slope."""

    slope = 0.01

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    @classmethod
    def apply(cls, x: np.ndarray) -> np.ndarray:
        return np.where(x > 0, x, cls.slope * x)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.slope * x)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, dy, self.slope * dy)


class Tanh:
    """Hyperbolic tangent; caches the output for the backward pass."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    @staticmethod
    def apply(x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return dy * (1.0 - self._out * self._out)


class Identity:
    """No-op activation (a purely linear stack between convolutions)."""

    @staticmethod
    def apply(x: np.ndarray) -> np.ndarray:
        return x

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy


#: Inter-layer activations resolvable by name (``GNNModel(activation=...)``,
#: ``RunConfig.activation``).
ACTIVATIONS: dict[str, type] = {
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "tanh": Tanh,
    "identity": Identity,
}


def make_activation(name: str):
    """Instantiate a registered activation; errors name the known keys."""
    cls = ACTIVATIONS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown activation {name!r}; known activations: "
            f"{', '.join(ACTIVATIONS)}"
        )
    return cls()


class Dropout:
    """Inverted dropout: scales kept units by ``1/(1-p)`` during training."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        if not training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dy
        return dy * self._mask
