"""Activation functions with explicit backward passes."""

from __future__ import annotations

import numpy as np

__all__ = ["ReLU", "Dropout"]


class ReLU:
    """Rectified linear unit; caches the mask between forward and backward."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, dy, 0.0)


class Dropout:
    """Inverted dropout: scales kept units by ``1/(1-p)`` during training."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        if not training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dy
        return dy * self._mask
