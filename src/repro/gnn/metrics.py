"""Classification metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "macro_f1"]


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the label."""
    if logits.shape[0] != labels.shape[0]:
        raise ValueError("one label per logit row required")
    if logits.shape[0] == 0:
        return 0.0
    return float((logits.argmax(axis=1) == labels).mean())


def macro_f1(logits: np.ndarray, labels: np.ndarray) -> float:
    """Unweighted mean F1 over the classes present in ``labels``."""
    if logits.shape[0] != labels.shape[0]:
        raise ValueError("one label per logit row required")
    preds = logits.argmax(axis=1)
    scores = []
    for cls in np.unique(labels):
        tp = np.sum((preds == cls) & (labels == cls))
        fp = np.sum((preds == cls) & (labels != cls))
        fn = np.sum((preds != cls) & (labels == cls))
        denom = 2 * tp + fp + fn
        scores.append(2 * tp / denom if denom else 0.0)
    return float(np.mean(scores)) if scores else 0.0
