"""Multi-layer GNN models over sampled minibatches.

A model's layer ``l`` consumes :class:`MinibatchSample.layers[l]`: it maps
the source frontier's embeddings to the destination frontier's.  The final
destination frontier is the batch itself, so the network's output is one
logit row per batch vertex — matching the paper's pipeline (Figure 3).
"""

from __future__ import annotations

import numpy as np

from ..core.frontier import LayerSample, MinibatchSample
from ..sparse import CSRMatrix
from .activations import make_activation
from .attention import GATConv
from .layers import GCNConv, SAGEConv

__all__ = ["GNNModel", "full_graph_sample", "propagation_flops"]


class GNNModel:
    """An L-layer GraphSAGE or GCN classifier.

    ``conv="sage"`` builds SAGEConv layers (self + neighbor terms, for
    node-wise samples that include destinations in the frontier);
    ``conv="gcn"`` builds GCNConv layers (aggregation only, suitable for
    layer-wise LADIES/FastGCN samples); ``conv="gat"`` builds single-head
    graph-attention layers (needs destinations in the frontier).
    ``activation`` names the inter-layer nonlinearity
    (:data:`repro.gnn.ACTIVATIONS`); inference paths read the configured
    instances from :attr:`acts` instead of assuming ReLU.
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        out_dim: int,
        n_layers: int,
        rng: np.random.Generator,
        *,
        conv: str = "sage",
        activation: str = "relu",
    ) -> None:
        if n_layers <= 0:
            raise ValueError("need at least one layer")
        conv_cls = {"sage": SAGEConv, "gcn": GCNConv, "gat": GATConv}.get(conv)
        if conv_cls is None:
            raise ValueError(f"unknown conv type {conv!r}")
        dims = [in_dim] + [hidden_dim] * (n_layers - 1) + [out_dim]
        self.convs = [
            conv_cls(dims[i], dims[i + 1], rng) for i in range(n_layers)
        ]
        self.acts = [make_activation(activation) for _ in range(n_layers - 1)]
        self.n_layers = n_layers

    # -------------------------------------------------------------- #
    # Parameter access
    # -------------------------------------------------------------- #
    def parameters(self) -> dict[str, np.ndarray]:
        """Flat name -> array view of every parameter."""
        return {
            f"conv{i}.{k}": v
            for i, conv in enumerate(self.convs)
            for k, v in conv.params.items()
        }

    def gradients(self) -> dict[str, np.ndarray]:
        """Flat name -> array view of every gradient accumulator."""
        return {
            f"conv{i}.{k}": v
            for i, conv in enumerate(self.convs)
            for k, v in conv.grads.items()
        }

    def zero_grad(self) -> None:
        for conv in self.convs:
            conv.zero_grad()

    def set_parameters(self, values: dict[str, np.ndarray]) -> None:
        """Copy values into the model's parameters (data-parallel sync)."""
        own = self.parameters()
        for name, v in values.items():
            own[name][...] = v

    # -------------------------------------------------------------- #
    # Forward / backward
    # -------------------------------------------------------------- #
    def forward(self, sample: MinibatchSample, x_input: np.ndarray) -> np.ndarray:
        """Logits for the batch vertices.

        ``x_input`` holds feature rows for ``sample.input_frontier`` (the
        output of the feature-fetching step), in frontier order.
        """
        if len(sample.layers) != self.n_layers:
            raise ValueError(
                f"sample has {len(sample.layers)} layers for a "
                f"{self.n_layers}-layer model"
            )
        h = x_input
        for i, (conv, layer) in enumerate(zip(self.convs, sample.layers)):
            h = conv.forward(layer, h)
            if i < self.n_layers - 1:
                h = self.acts[i].forward(h)
        return h

    def backward(self, dlogits: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients; returns d(input features)."""
        g = dlogits
        for i in reversed(range(self.n_layers)):
            if i < self.n_layers - 1:
                g = self.acts[i].backward(g)
            g = self.convs[i].backward(g)
        return g


def full_graph_sample(adj: CSRMatrix, n_layers: int) -> MinibatchSample:
    """A 'sample' covering the whole graph (full-neighbor inference).

    Every layer uses the complete adjacency with ``src = dst = V``; used to
    evaluate test accuracy without sampling noise (the paper's accuracy
    checks run full-fanout test inference).
    """
    n = adj.shape[0]
    ids = np.arange(n, dtype=np.int64)
    layers = [LayerSample(adj, ids, ids) for _ in range(n_layers)]
    return MinibatchSample(ids, layers)


def propagation_flops(sample: MinibatchSample, dims: list[int]) -> float:
    """Estimated forward+backward flops of one minibatch.

    Per layer: the aggregation SpMM (``2 nnz f_in``) plus the dense
    transforms (``2 n_dst f_in f_out``, twice for SAGE's self+neighbor
    weights), tripled to cover the backward pass.
    """
    if len(dims) != len(sample.layers) + 1:
        raise ValueError("dims must list one width per frontier")
    total = 0.0
    for layer, f_in, f_out in zip(sample.layers, dims[:-1], dims[1:]):
        total += 2.0 * layer.adj.nnz * f_in
        total += 2.0 * 2.0 * layer.n_dst * f_in * f_out
    return 3.0 * total
