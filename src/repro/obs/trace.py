"""Span-based tracing over simulated or wall clocks.

One :class:`Tracer` collects :class:`Span` records from every layer of the
repo — serving replicas, the fleet router, plan executors, the training
pipeline, worker pools — onto named *tracks* (one per replica / worker /
control plane).  Two time domains coexist:

* **sim** — the span's start/end are simulated seconds read off a
  :class:`~repro.comm.clock.SimClock` (plus an *offset* that maps the
  clock's run-local time onto the workload timeline).  Sim spans are a
  pure function of the run's seed and config, so their export is
  byte-identical across worker counts (pinned in ``tests/test_obs.py``).
* **wall** — real ``perf_counter`` timestamps, for work the simulated
  clock cannot see (individual plan steps, pool task round-trips).

Nested ``span()`` calls inherit the enclosing span's track, clock and
offset, so instrumentation deep in the executors needs no plumbing: a
replica opens a sim span for the micro-batch and everything recorded
inside lands on that replica's track and timeline.

The tracer is process-safe by *shipping*, not sharing: a
:class:`~repro.parallel.pool.WorkerPool` worker installs its own tracer,
drains it after every task, and the owner absorbs the spans —
:class:`Span` is plain data, and per-track sequence numbers are assigned
worker-side so the merged trace is independent of reply arrival order.

Tracing off is a no-op: every instrumentation site starts with a
``get_tracer() is None`` check and touches no RNG either way, so golden
digests are identical with tracing on or off (also pinned in tests).
``REPRO_TRACE=1`` in the environment installs a bounded tracer at import
(a ring of the most recent spans, so a whole test suite can run under it).
"""

from __future__ import annotations

import os
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "maybe_span",
    "plan_step_name",
]

#: Span buffer bound when tracing is enabled via the environment
#: (explicitly constructed tracers are unbounded by default).
ENV_RING_SPANS = 200_000


@dataclass
class Span:
    """One recorded event: a timed span, an instant, or an async pair.

    Plain data end to end (picklable, JSON-friendly ``args``) so spans
    cross process boundaries unchanged.  ``seq`` is the span's per-track
    sequence number, assigned when the span *opens* — sorting a track's
    spans by ``seq`` reproduces program order regardless of the order
    spans were recorded or absorbed in.
    """

    name: str
    cat: str
    domain: str  # "sim" | "wall"
    track: str
    start: float
    end: float
    seq: int
    kind: str = "span"  # "span" | "instant" | "async"
    args: dict = field(default_factory=dict)
    #: Async correlation id ("async" spans only): the request's rid, so
    #: every event of one request shares one Perfetto async track.
    aid: int | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects spans onto per-track sequences; nestable, shippable.

    ``maxlen`` bounds the buffer (oldest spans drop first) — used by the
    ``REPRO_TRACE`` environment mode so an arbitrarily long run cannot
    exhaust memory; programmatic tracers default to unbounded.
    """

    def __init__(self, maxlen: int | None = None) -> None:
        self._spans: deque[Span] = deque(maxlen=maxlen)
        self._seq: dict[str, int] = {}
        # Open-span inheritance stack: (track, clock, offset) per frame.
        self._stack: list[tuple[str, object, float]] = []

    # -------------------------------------------------------------- #
    # Recording
    # -------------------------------------------------------------- #
    def _next_seq(self, track: str) -> int:
        seq = self._seq.get(track, 0)
        self._seq[track] = seq + 1
        return seq

    @contextmanager
    def span(
        self,
        name: str,
        *,
        cat: str = "",
        track: str | None = None,
        clock=None,
        offset: float | None = None,
        domain: str | None = None,
        args: dict | None = None,
    ) -> Iterator[Span]:
        """Record a timed span around the ``with`` body.

        Omitted ``track``/``clock``/``offset`` inherit from the innermost
        open span; with no clock anywhere (or ``domain="wall"``) the span
        times itself with ``perf_counter``.  Yields the :class:`Span` so
        the body can attach result args (cache hits, sizes) before close.
        """
        ctx = self._stack[-1] if self._stack else None
        if domain == "wall":
            clock = None
        elif clock is None and ctx is not None:
            clock = ctx[1]
            if offset is None:
                offset = ctx[2]
        if track is None:
            track = ctx[0] if ctx is not None else "main"
        if offset is None:
            offset = 0.0
        if clock is not None:
            start = offset + clock.elapsed()
            span_domain = "sim"
        else:
            start = time.perf_counter()
            span_domain = "wall"
        sp = Span(
            name=name, cat=cat, domain=span_domain, track=track,
            start=start, end=start, seq=self._next_seq(track),
            args=dict(args) if args else {},
        )
        self._stack.append((track, clock, offset))
        try:
            yield sp
        finally:
            self._stack.pop()
            sp.end = (
                offset + clock.elapsed()
                if clock is not None
                else time.perf_counter()
            )
            self._spans.append(sp)

    def instant(
        self,
        name: str,
        *,
        t: float,
        cat: str = "",
        track: str = "main",
        domain: str = "sim",
        args: dict | None = None,
    ) -> None:
        """Record a zero-duration event at simulated (or wall) time ``t``."""
        self._spans.append(
            Span(
                name=name, cat=cat, domain=domain, track=track,
                start=float(t), end=float(t), seq=self._next_seq(track),
                kind="instant", args=dict(args) if args else {},
            )
        )

    def async_span(
        self,
        name: str,
        *,
        aid: int,
        start: float,
        end: float,
        cat: str = "request",
        track: str = "main",
        args: dict | None = None,
    ) -> None:
        """Record an async begin/end pair (one request's arrival-to-reply
        window, which may overlap other requests on the same track)."""
        self._spans.append(
            Span(
                name=name, cat=cat, domain="sim", track=track,
                start=float(start), end=float(end),
                seq=self._next_seq(track), kind="async",
                args=dict(args) if args else {}, aid=int(aid),
            )
        )

    # -------------------------------------------------------------- #
    # Readout / shipping
    # -------------------------------------------------------------- #
    @property
    def spans(self) -> list[Span]:
        """The recorded spans, in recording order."""
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def drain(self) -> list[Span]:
        """Remove and return every recorded span (sequence counters keep
        running, so a drained tracer's later spans still sort after)."""
        out = list(self._spans)
        self._spans.clear()
        return out

    def absorb(self, spans: Iterable[Span]) -> None:
        """Merge spans shipped from another process's tracer.

        Worker-assigned ``seq`` values are preserved — workers own whole
        tracks (one replica's timeline, one worker's task lane), so their
        numbering *is* the track's program order.  Local counters advance
        past absorbed values so a later local span on the same track
        cannot collide.
        """
        for sp in spans:
            self._spans.append(sp)
            nxt = sp.seq + 1
            if nxt > self._seq.get(sp.track, 0):
                self._seq[sp.track] = nxt


@contextmanager
def maybe_span(name: str, **kwargs) -> Iterator[Span | None]:
    """``tracer.span(...)`` against the installed tracer, or a no-op.

    Yields the open :class:`Span` (so callers can attach result args) or
    ``None`` when tracing is off.  Hot loops that cannot afford even the
    generator frame should branch on :func:`get_tracer` explicitly.
    """
    tracer = get_tracer()
    if tracer is None:
        yield None
    else:
        with tracer.span(name, **kwargs) as sp:
            yield sp


def plan_step_name(step) -> str:
    """Display name of a plan step: ``PROB``, ``SAMPLE+EXTRACT``, ..."""
    return getattr(
        step, "display_name",
        type(step).__name__.removesuffix("Step").upper(),
    )


# ------------------------------------------------------------------ #
# The process-global tracer
# ------------------------------------------------------------------ #
_TRACER: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` (the common fast path)."""
    return _TRACER


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


if os.environ.get("REPRO_TRACE", "") not in ("", "0"):
    # Force-enabled runs (CI) get a bounded buffer so arbitrarily long
    # processes — a whole test suite — survive with tracing on.
    _TRACER = Tracer(maxlen=ENV_RING_SPANS)
