"""Human summaries of exported traces (the ``repro trace`` subcommand).

Works off the exported Chrome trace JSON — not live tracer state — so any
trace file (including one merged from workers, or produced by an earlier
run) can be explained after the fact.  Three views:

* **top spans by self-time** — per span name, the time spent in that span
  *excluding* nested spans on the same thread, which is what actually
  ranks optimization targets (a parent that merely contains an expensive
  child should not outrank it);
* **per-category breakdown** — total span time by ``cat`` (``serve``,
  ``plan``, ``update``, ``pool``, ...), split by time domain;
* **slowest requests** — the flight recorder's async windows ranked by
  duration, naming the exemplar request ids to go look at.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path

__all__ = ["load_trace_file", "summarize_trace", "format_trace_summary"]


def load_trace_file(path: str | Path) -> dict:
    """Load a Chrome trace JSON file."""
    return json.loads(Path(path).read_text())


def _self_times(events: list[dict]) -> dict[str, dict[str, float]]:
    """name -> {total, self, count} over complete ("X") events.

    Self-time subtracts the duration of children, where a child is a
    complete event on the same (pid, tid) fully inside the parent's
    window — the nesting the tracer's span stack produced.
    """
    per_thread: dict[tuple, list[dict]] = defaultdict(list)
    for ev in events:
        if ev.get("ph") == "X":
            per_thread[(ev.get("pid"), ev.get("tid"))].append(ev)
    stats: dict[str, dict[str, float]] = defaultdict(
        lambda: {"total": 0.0, "self": 0.0, "count": 0}
    )
    for thread in per_thread.values():
        thread.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0)))
        stack: list[tuple[float, dict]] = []  # (end_ts, child_dur_accumulator)
        child_time: dict[int, float] = {}
        for ev in thread:
            start, dur = float(ev["ts"]), float(ev.get("dur", 0.0))
            while stack and start >= stack[-1][0] - 1e-9:
                stack.pop()
            if stack:
                parent = stack[-1][1]
                child_time[id(parent)] = child_time.get(id(parent), 0.0) + dur
            stack.append((start + dur, ev))
        for ev in thread:
            dur = float(ev.get("dur", 0.0))
            entry = stats[ev["name"]]
            entry["total"] += dur
            entry["self"] += max(0.0, dur - child_time.get(id(ev), 0.0))
            entry["count"] += 1
    return dict(stats)


def summarize_trace(payload: dict, *, top: int = 10) -> dict:
    """Structured summary of one Chrome trace payload."""
    events = [e for e in payload.get("traceEvents", []) if isinstance(e, dict)]
    spans = _self_times(events)
    by_self = sorted(
        spans.items(), key=lambda kv: (-kv[1]["self"], kv[0])
    )[:top]

    by_cat: dict[str, float] = defaultdict(float)
    for ev in events:
        if ev.get("ph") == "X":
            by_cat[ev.get("cat", "repro")] += float(ev.get("dur", 0.0))

    begins: dict[object, dict] = {}
    requests: list[dict] = []
    for ev in events:
        if ev.get("ph") == "b":
            begins[(ev.get("cat"), ev.get("id"))] = ev
        elif ev.get("ph") == "e":
            b = begins.pop((ev.get("cat"), ev.get("id")), None)
            if b is not None:
                requests.append({
                    "id": ev.get("id"),
                    "name": b.get("name"),
                    "start_us": float(b["ts"]),
                    "duration_us": float(ev["ts"]) - float(b["ts"]),
                    "args": b.get("args", {}),
                })
    requests.sort(key=lambda r: (-r["duration_us"], r["id"]))

    return {
        "n_events": len(events),
        "top_spans": [
            {
                "name": name,
                "self_us": entry["self"],
                "total_us": entry["total"],
                "count": int(entry["count"]),
            }
            for name, entry in by_self
        ],
        "by_category": dict(sorted(by_cat.items())),
        "slowest_requests": requests[:top],
    }


def _us(v: float) -> str:
    return f"{v / 1e3:.3f} ms" if v >= 1e3 else f"{v:.1f} us"


def format_trace_summary(payload: dict, *, top: int = 10) -> str:
    """Render :func:`summarize_trace` as the CLI's text report."""
    s = summarize_trace(payload, top=top)
    lines = [f"trace: {s['n_events']} events"]
    if s["top_spans"]:
        lines.append("")
        lines.append(f"top spans by self-time (top {top}):")
        width = max(len(e["name"]) for e in s["top_spans"])
        for e in s["top_spans"]:
            lines.append(
                f"  {e['name']:<{width}}  self {_us(e['self_us']):>12}  "
                f"total {_us(e['total_us']):>12}  x{e['count']}"
            )
    if s["by_category"]:
        lines.append("")
        lines.append("per-category span time:")
        width = max(len(c) for c in s["by_category"])
        for cat, us in s["by_category"].items():
            lines.append(f"  {cat:<{width}}  {_us(us)}")
    if s["slowest_requests"]:
        lines.append("")
        lines.append(f"slowest requests (top {top}):")
        for r in s["slowest_requests"]:
            lines.append(
                f"  {r['name']} id={r['id']}  {_us(r['duration_us'])}  "
                f"(from {r['start_us'] / 1e3:.3f} ms)"
            )
    return "\n".join(lines)
