"""Unified observability: tracing, metrics, and trace exporters.

``repro.obs`` is the one substrate every layer reports into:

* :mod:`repro.obs.trace` — the span tracer (sim- and wall-clock domains,
  per-track sequences, cross-process shipping);
* :mod:`repro.obs.metrics` — the labeled Counter/Gauge/Histogram
  registry with a Prometheus-style text exporter;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto) and
  the schema validator CI gates on;
* :mod:`repro.obs.summary` — the ``repro trace`` human summary.

Both the tracer and the registry are off (``None``) by default, and every
instrumentation site starts with that ``None`` check — tracing disabled
is a no-op and never perturbs RNG streams or golden digests.
"""

from .export import (
    chrome_trace,
    chrome_trace_json,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .summary import format_trace_summary, load_trace_file, summarize_trace
from .trace import Span, Tracer, get_tracer, maybe_span, set_tracer

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "maybe_span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "format_trace_summary",
    "load_trace_file",
    "summarize_trace",
]
