"""A labeled metrics registry with a Prometheus-style text exporter.

Three instrument kinds — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` — are created through (and owned by) a
:class:`MetricsRegistry`, keyed by ``(name, sorted label items)`` so
repeated lookups return the same instrument.  The existing stats
dataclasses (:class:`~repro.serve.cache.ServeStats`,
:class:`~repro.partition.cache.CacheStats`,
:class:`~repro.pipeline.stats.EpochStats`,
:class:`~repro.stream.graph.StreamStats`) gain ``publish(registry,
**labels)`` methods that copy their counters in — their public fields are
unchanged, and publishing is pull-based: nothing is recorded unless a
registry is installed (``repro ... --metrics`` or ``set_registry``).

:meth:`MetricsRegistry.render` emits the Prometheus text exposition
format (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value``
samples, ``_bucket``/``_sum``/``_count`` rows for histograms), sorted
deterministically so renders diff cleanly.
"""

from __future__ import annotations

import math
import re
from typing import Iterator, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram buckets: latency-shaped, in seconds.
DEFAULT_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
)


def _format_value(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _escape_label(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically meaningful total (``inc``) that stats snapshots may
    also overwrite (``set``) when they already hold the run's total."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def set(self, value: float) -> None:
        self.value = float(value)

    def samples(self, name: str, labels) -> Iterator[tuple[str, str, float]]:
        yield name, _format_labels(labels), self.value


class Gauge(Counter):
    """A value that can go either way (fleet size, hit rate, seconds)."""

    kind = "gauge"

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)  # +Inf overflow bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Bucket-upper-bound estimate of the ``q`` quantile (debugging
        aid; the text format ships raw buckets, not quantiles)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for edge, n in zip(self.buckets, self.counts):
            running += n
            if running >= target:
                return edge
        return math.inf

    def samples(self, name: str, labels) -> Iterator[tuple[str, str, float]]:
        running = 0
        for edge, n in zip(self.buckets + (math.inf,), self.counts):
            running += n
            le = labels + (("le", _format_value(edge)),)
            yield f"{name}_bucket", _format_labels(le), float(running)
        yield f"{name}_sum", _format_labels(labels), self.sum
        yield f"{name}_count", _format_labels(labels), float(self.count)


class MetricsRegistry:
    """Owns every instrument; hands out label-keyed children."""

    def __init__(self) -> None:
        # name -> (kind, help); (name, label items) -> instrument.
        self._families: dict[str, tuple[str, str]] = {}
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}

    def _get(self, cls, name: str, help: str, labels: dict, **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            self._families[name] = (cls.kind, help)
        elif family[0] != cls.kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family[0]}, "
                f"cannot re-register as a {cls.kind}"
            )
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(**kwargs)
        return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def render(self) -> str:
        """The Prometheus text exposition format, deterministically sorted."""
        lines: list[str] = []
        for name in sorted(self._families):
            kind, help = self._families[name]
            if help:
                lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {kind}")
            children = sorted(
                (key[1], metric)
                for key, metric in self._metrics.items()
                if key[0] == name
            )
            for labels, metric in children:
                for sample_name, label_text, value in metric.samples(
                    name, labels
                ):
                    lines.append(
                        f"{sample_name}{label_text} {_format_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


# ------------------------------------------------------------------ #
# The process-global registry (None = metrics off, the fast path)
# ------------------------------------------------------------------ #
_REGISTRY: MetricsRegistry | None = None


def get_registry() -> MetricsRegistry | None:
    """The installed registry, or ``None`` when metrics are off."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install ``registry`` process-wide; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
