"""Trace exporters: Chrome ``trace_event`` JSON (Perfetto-loadable).

:func:`chrome_trace` turns a tracer's spans into the Chrome trace-event
format ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_
load directly:

* sim-domain spans render under pid 0 (process name ``simulated``) with
  timestamps in microseconds of *simulated* time;
* wall-domain spans render under pid 1 (``wall-clock``), normalized so
  the earliest wall span starts at 0;
* every track becomes a named thread, timed spans are complete ``"X"``
  events, instants are ``"i"`` events, and per-request flight-recorder
  windows are async ``"b"``/``"e"`` pairs keyed by the request id — one
  Perfetto async lane per request, overlapping freely.

Determinism: events are ordered by ``(track, seq)`` and serialized with
sorted keys and fixed separators, so a sim-domain-only export
(``domain="sim"``) of a deterministic run is **byte-identical** across
worker counts — the property ``tests/test_obs.py`` pins at workers 0
vs 4.

:func:`validate_chrome_trace` is the schema check CI runs on exported
files: shape errors come back as strings instead of exceptions so a
report can show all of them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from .trace import Span

__all__ = [
    "chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
]

_PIDS = {"sim": 0, "wall": 1}
_PROCESS_NAMES = {0: "simulated", 1: "wall-clock"}


def _ordered(spans: Iterable[Span], domain: str | None) -> list[Span]:
    kept = [s for s in spans if domain is None or s.domain == domain]
    return sorted(kept, key=lambda s: (s.domain, s.track, s.seq))


def chrome_trace(
    spans: Iterable[Span], *, domain: str | None = None
) -> dict:
    """Build the Chrome trace-event payload (a plain dict).

    ``domain`` filters to one time domain; ``"sim"`` yields the
    deterministic export, ``None`` includes everything.
    """
    ordered = _ordered(spans, domain)
    wall_zero = min(
        (s.start for s in ordered if s.domain == "wall"), default=0.0
    )
    tracks = sorted({(s.domain, s.track) for s in ordered})
    tids = {key: i for i, key in enumerate(tracks)}
    events: list[dict] = []
    for pid in sorted({_PIDS[d] for d, _ in tracks}):
        events.append({
            "args": {"name": _PROCESS_NAMES[pid]},
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        })
    for (dom, track), tid in tids.items():
        events.append({
            "args": {"name": track},
            "name": "thread_name", "ph": "M", "pid": _PIDS[dom], "tid": tid,
        })
    for sp in ordered:
        zero = wall_zero if sp.domain == "wall" else 0.0
        base = {
            "cat": sp.cat or "repro",
            "name": sp.name,
            "pid": _PIDS[sp.domain],
            "tid": tids[(sp.domain, sp.track)],
            "ts": (sp.start - zero) * 1e6,
        }
        if sp.args:
            base["args"] = sp.args
        if sp.kind == "span":
            events.append({**base, "ph": "X", "dur": sp.duration * 1e6})
        elif sp.kind == "instant":
            events.append({**base, "ph": "i", "s": "t"})
        elif sp.kind == "async":
            events.append({**base, "ph": "b", "id": sp.aid})
            end = dict(base)
            end.pop("args", None)
            end["ts"] = (sp.end - zero) * 1e6
            events.append({**end, "ph": "e", "id": sp.aid})
        else:  # pragma: no cover - Tracer only emits the three kinds
            raise ValueError(f"unknown span kind {sp.kind!r}")
    return {"displayTimeUnit": "ms", "traceEvents": events}


def chrome_trace_json(
    spans: Iterable[Span], *, domain: str | None = None
) -> str:
    """Serialize deterministically: sorted keys, fixed separators."""
    return json.dumps(
        chrome_trace(spans, domain=domain),
        sort_keys=True,
        separators=(",", ":"),
    )


def write_chrome_trace(
    path: str | Path, spans: Iterable[Span], *, domain: str | None = None
) -> Path:
    """Write the trace JSON to ``path``; returns the path."""
    path = Path(path)
    path.write_text(chrome_trace_json(spans, domain=domain) + "\n")
    return path


# ------------------------------------------------------------------ #
# Schema check (CI gate on exported files)
# ------------------------------------------------------------------ #
_PH_KNOWN = {"X", "B", "E", "i", "I", "M", "b", "e", "n", "C"}


def validate_chrome_trace(payload: object) -> list[str]:
    """Shape-check a Chrome trace payload; returns a list of problems
    (empty = valid).  Accepts the dict form or a raw JSON string."""
    if isinstance(payload, (str, bytes)):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as exc:
            return [f"not valid JSON: {exc}"]
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _PH_KNOWN:
            errors.append(f"{where}: unknown or missing ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            errors.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                errors.append(f"{where}: missing integer {key}")
        if ph != "M" and not isinstance(ev.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric ts")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            errors.append(f"{where}: complete event missing dur")
        if ph in ("b", "e", "n") and "id" not in ev:
            errors.append(f"{where}: async event missing id")
        if ph in ("i", "I") and ev.get("s") not in (None, "t", "p", "g"):
            errors.append(f"{where}: bad instant scope {ev.get('s')!r}")
    return errors


def validate_chrome_trace_file(path: str | Path) -> list[str]:
    """Schema-check a trace file on disk."""
    return validate_chrome_trace(Path(path).read_text())
