"""Double-buffered bulk scheduling under the simulated clock.

The bulk-synchronous pipeline (paper section 6, Figure 3) runs each bulk's
three stages strictly in sequence: sample, fetch, propagate, then start the
next bulk.  On real hardware the sampling + feature fetching of bulk
``k+1`` can run concurrently with training on bulk ``k`` — sampling is
matrix kernels on the device/NIC front while propagation occupies the
compute stream — so a double-buffered schedule hides the smaller of the
two stage times behind the larger (max-overlap charging, not sum).

:func:`overlapped_makespan` computes the simulated epoch time of that
schedule from per-bulk stage durations: a two-stage pipeline with a buffer
depth of one (bulk ``k+2``'s sampling may not start before training on
bulk ``k`` has begun, because only one prefetched bulk can be resident).

The recurrence over prep (sampling+fetch) and train (propagation) times::

    prep_done[k]  = max(prep_done[k-1], train_done[k-2]) + prep[k]
    train_done[k] = max(prep_done[k], train_done[k-1]) + train[k]

``train_done[-1]`` is the epoch makespan.  It is never worse than the
serial sum and never better than ``max(sum(prep), sum(train))`` — the
busiest stage bounds the pipeline.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["overlapped_makespan", "overlap_saving"]


def overlapped_makespan(
    prep: Sequence[float], train: Sequence[float]
) -> float:
    """Epoch makespan with sampling+fetch of bulk k+1 overlapping training
    on bulk k (double buffering, one bulk in flight).

    ``prep[k]`` / ``train[k]`` are the simulated durations of bulk ``k``'s
    sampling+fetch and propagation stages.
    """
    if len(prep) != len(train):
        raise ValueError(
            f"need one prep and train time per bulk, got "
            f"{len(prep)} and {len(train)}"
        )
    prep_done = 0.0
    train_done_prev = 0.0  # train_done[k-1]
    train_done_prev2 = 0.0  # train_done[k-2]
    for p_k, t_k in zip(prep, train):
        if p_k < 0 or t_k < 0:
            raise ValueError("stage durations must be non-negative")
        prep_done = max(prep_done, train_done_prev2) + p_k
        train_done = max(prep_done, train_done_prev) + t_k
        train_done_prev2, train_done_prev = train_done_prev, train_done
    return train_done_prev


def overlap_saving(
    prep: Sequence[float], train: Sequence[float]
) -> float:
    """Simulated seconds the double-buffered schedule saves over the
    serial (sum-charged) bulk-synchronous loop."""
    return sum(prep) + sum(train) - overlapped_makespan(prep, train)
