"""Per-epoch timing/volume statistics for the training pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BulkStats", "EpochStats"]


@dataclass(frozen=True)
class BulkStats:
    """One bulk sampling + training step, as yielded by ``stream_bulks``.

    ``loss`` is the mean minibatch loss of the bulk (``None`` in perf-only
    mode); ``rounds`` is how many training rounds the bulk's per-rank
    minibatch lists required.  ``prep_s`` / ``train_s`` are the bulk's
    simulated sampling+fetch and propagation stage times — the inputs the
    double-buffered scheduler overlaps.
    """

    index: int
    n_batches: int
    rounds: int
    loss: float | None = None
    prep_s: float = 0.0
    train_s: float = 0.0


@dataclass
class EpochStats:
    """One epoch's phase breakdown (simulated seconds) and training metrics.

    ``sampling`` / ``feature_fetch`` / ``propagation`` are the three bars
    the paper stacks in Figures 4 and 6; for the partitioned algorithm the
    sampling sub-phases (``probability``, ``sampling``, ``extraction``) and
    the comm/comp split of Figure 7 are also populated.

    With ``RunConfig.overlap`` the double-buffered schedule's makespan is
    recorded in ``pipelined_total``; :attr:`epoch_seconds` is the number to
    report either way (overlapped when available, serial ``total``
    otherwise).  When a feature cache is active the fetch counters carry
    its per-epoch hit/miss accounting.
    """

    sampling: float = 0.0
    feature_fetch: float = 0.0
    propagation: float = 0.0
    sub_phases: dict[str, float] = field(default_factory=dict)
    comm_seconds: float = 0.0
    comp_seconds: float = 0.0
    bytes_sent: float = 0.0
    loss: float | None = None
    n_batches: int = 0
    # -- double-buffered scheduling (RunConfig.overlap) ------------------ #
    overlap: bool = False
    pipelined_total: float | None = None
    # -- feature-cache accounting (RunConfig.cache_budget > 0) ----------- #
    fetch_hits: int = 0
    fetch_misses: int = 0
    fetch_hit_rate: float | None = None
    fetch_bytes_saved: float = 0.0

    @property
    def total(self) -> float:
        """Serial (sum-charged) epoch seconds."""
        return self.sampling + self.feature_fetch + self.propagation

    @property
    def epoch_seconds(self) -> float:
        """Simulated epoch time under the configured schedule."""
        if self.overlap and self.pipelined_total is not None:
            return self.pipelined_total
        return self.total

    @property
    def overlap_saved(self) -> float:
        """Seconds the double-buffered schedule saved (0.0 when serial)."""
        if self.pipelined_total is None:
            return 0.0
        return self.total - self.pipelined_total

    def publish(self, registry, **labels) -> None:
        """Copy the epoch's accounting into a metrics registry
        (:mod:`repro.obs.metrics`) under ``train_*`` names."""
        for phase, seconds in (
            ("sampling", self.sampling),
            ("feature_fetch", self.feature_fetch),
            ("propagation", self.propagation),
        ):
            registry.counter(
                "train_phase_seconds_total",
                "simulated seconds by training phase", phase=phase, **labels,
            ).inc(seconds)
        for phase, seconds in self.sub_phases.items():
            registry.counter(
                "train_subphase_seconds_total",
                "simulated seconds by sampling sub-phase", phase=phase,
                **labels,
            ).inc(seconds)
        registry.counter(
            "train_epoch_seconds_total",
            "simulated epoch seconds under the configured schedule", **labels,
        ).inc(self.epoch_seconds)
        registry.counter(
            "train_bytes_sent_total", "simulated bytes communicated", **labels
        ).inc(self.bytes_sent)
        registry.counter(
            "train_batches_total", "minibatches trained", **labels
        ).inc(self.n_batches)
        if self.loss is not None:
            registry.gauge(
                "train_loss", "mean minibatch loss of the last epoch",
                **labels,
            ).set(self.loss)
        if self.fetch_hit_rate is not None:
            registry.counter(
                "train_fetch_hits_total", "feature-cache row hits", **labels
            ).inc(self.fetch_hits)
            registry.counter(
                "train_fetch_misses_total", "feature-cache row misses",
                **labels,
            ).inc(self.fetch_misses)
            registry.gauge(
                "train_fetch_hit_rate",
                "feature-cache hit rate of the last epoch", **labels,
            ).set(self.fetch_hit_rate)

    def row(self) -> dict[str, object]:
        """Flat dict for tabular reporting."""
        out: dict[str, object] = {
            "sampling_s": round(self.sampling, 6),
            "fetch_s": round(self.feature_fetch, 6),
            "propagation_s": round(self.propagation, 6),
            "total_s": round(self.total, 6),
            "batches": self.n_batches,
        }
        if self.pipelined_total is not None:
            out["pipelined_s"] = round(self.pipelined_total, 6)
        if self.fetch_hit_rate is not None:
            out["fetch_hit_rate"] = round(self.fetch_hit_rate, 4)
        if self.loss is not None:
            out["loss"] = round(self.loss, 4)
        return out
