"""Per-epoch timing/volume statistics for the training pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BulkStats", "EpochStats"]


@dataclass(frozen=True)
class BulkStats:
    """One bulk sampling + training step, as yielded by ``stream_bulks``.

    ``loss`` is the mean minibatch loss of the bulk (``None`` in perf-only
    mode); ``rounds`` is how many training rounds the bulk's per-rank
    minibatch lists required.
    """

    index: int
    n_batches: int
    rounds: int
    loss: float | None = None


@dataclass
class EpochStats:
    """One epoch's phase breakdown (simulated seconds) and training metrics.

    ``sampling`` / ``feature_fetch`` / ``propagation`` are the three bars
    the paper stacks in Figures 4 and 6; for the partitioned algorithm the
    sampling sub-phases (``probability``, ``sampling``, ``extraction``) and
    the comm/comp split of Figure 7 are also populated.
    """

    sampling: float = 0.0
    feature_fetch: float = 0.0
    propagation: float = 0.0
    sub_phases: dict[str, float] = field(default_factory=dict)
    comm_seconds: float = 0.0
    comp_seconds: float = 0.0
    bytes_sent: float = 0.0
    loss: float | None = None
    n_batches: int = 0

    @property
    def total(self) -> float:
        return self.sampling + self.feature_fetch + self.propagation

    def row(self) -> dict[str, object]:
        """Flat dict for tabular reporting."""
        out: dict[str, object] = {
            "sampling_s": round(self.sampling, 6),
            "fetch_s": round(self.feature_fetch, 6),
            "propagation_s": round(self.propagation, 6),
            "total_s": round(self.total, 6),
            "batches": self.n_batches,
        }
        if self.loss is not None:
            out["loss"] = round(self.loss, 4)
        return out
