"""Layer-wise minibatched full-graph inference.

Test-time GNN evaluation is usually done without sampling (the paper's
accuracy checks use full fanout at test time).  Materializing all L layers
for the whole graph at once costs L x n x f memory; the standard trick
(Hamilton et al., 2017) computes ONE layer at a time for all vertices in
row batches, so peak memory is one layer's activations plus one batch's
working set.

This module implements that schedule on top of the same
:class:`~repro.gnn.model.GNNModel` used for training.  Two exactness
properties are load-bearing (and tested):

* it applies the model's *configured* inter-layer activation
  (``model.acts``) rather than assuming ReLU, so tanh/leaky-relu/identity
  models get exact full-graph inference too;
* it runs through the convolutions' row-stable ``infer`` path
  (:func:`~repro.gnn.layers.stable_matmul`), so the output is bit-identical
  for every ``batch_size`` — which is what lets the online serving engine
  (:mod:`repro.serve`) promise logits bit-identical to this function no
  matter how requests are micro-batched.
"""

from __future__ import annotations

import numpy as np

from ..core.frontier import LayerSample
from ..gnn.model import GNNModel
from ..graphs import Graph

__all__ = ["layerwise_inference"]


def layerwise_inference(
    model: GNNModel,
    graph: Graph,
    *,
    batch_size: int = 4096,
) -> np.ndarray:
    """Full-graph logits, computed one layer at a time in row batches.

    Equivalent to ``model.forward(full_graph_sample(...), features)`` but
    with bounded peak memory; use for graphs whose L-layer activation
    pyramid would not fit at once.
    """
    if graph.features is None:
        raise ValueError("inference needs node features")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    n = graph.n
    ids = np.arange(n, dtype=np.int64)
    h = graph.features
    for layer_idx, conv in enumerate(model.convs):
        outputs = []
        for start in range(0, n, batch_size):
            stop = min(n, start + batch_size)
            block = graph.adj.row_block(start, stop)
            layer = LayerSample(block, ids, ids[start:stop])
            outputs.append(conv.infer(layer, h))
        h = np.vstack(outputs)
        if layer_idx < model.n_layers - 1:
            # The model's configured activation, via the stateless apply()
            # so a training step's cached backward masks stay untouched.
            h = model.acts[layer_idx].apply(h)
    return h
