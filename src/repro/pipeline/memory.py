"""Device-memory feasibility model.

The paper reports each configuration with "the highest possible replication
factor (c) and bulk minibatch count (k) without going out of memory"
(section 7.3), and Quiver's preprocessing OOMs on Papers at 128 GPUs.  This
module estimates per-device memory at *paper scale* from dataset statistics
so benchmarks can annotate runs the same way and mark OOM points.

Estimates are deliberately simple (CSR bytes + fp32 features + sampling
working set); they only need to rank configurations, not predict megabytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ArchitectureConfig, MachineConfig, PERLMUTTER_LIKE
from ..graphs.datasets import DatasetSpec

__all__ = ["MemoryModel", "choose_c_k", "quiver_fits"]

_IDX = 8  # bytes per index
_VAL = 4  # bytes per stored value (fp32)


@dataclass(frozen=True)
class MemoryModel:
    """Byte estimates for the pieces resident on one device."""

    spec: DatasetSpec
    arch: ArchitectureConfig

    def graph_bytes(self) -> float:
        """Full CSR adjacency (replicated algorithms)."""
        return self.spec.edges * (_IDX + _VAL) + self.spec.vertices * _IDX

    def graph_partition_bytes(self, p: int, c: int) -> float:
        """One 1.5D block row of the adjacency."""
        return self.graph_bytes() * c / p

    def feature_bytes(self, p: int, c: int) -> float:
        """One 1.5D block row of the feature matrix."""
        return self.spec.vertices * self.spec.features * _VAL * c / p

    #: Multiplier covering SpGEMM expand-phase intermediates, CSR-to-CSR
    #: copies and framework slack on top of the raw stacked matrices.
    #: Calibrated so the paper's Figure 4 (c, k) annotations come out
    #: qualitatively: k < "all" on dense datasets at small p, k = "all"
    #: once aggregate memory grows.
    workspace_factor: float = 8.0

    def bulk_sampling_bytes(self, k: int) -> float:
        """Working set of bulk-sampling k batches (stacked P/Q/A^l).

        The dominant matrix is the deepest stacked probability matrix:
        about ``k * b * prod(fanout[:-1])`` rows with the average degree's
        nonzeros each before sampling cuts them down.
        """
        rows = k * self.arch.batch_size
        frontier = 1.0
        total = 0.0
        for s in self.arch.fanout:
            total += rows * frontier * self.spec.avg_degree * (_IDX + _VAL)
            frontier *= s
        return self.workspace_factor * total

    def pipeline_fits(
        self, p: int, c: int, k: int, *, replicated_graph: bool,
        machine: MachineConfig = PERLMUTTER_LIKE,
    ) -> bool:
        """Whether one device holds the pipeline's working set."""
        graph = (
            self.graph_bytes()
            if replicated_graph
            else self.graph_partition_bytes(p, c)
        )
        need = graph + self.feature_bytes(p, c) + self.bulk_sampling_bytes(
            max(1, k // p)
        )
        return need < 0.9 * machine.device.memory_bytes


def choose_c_k(
    spec: DatasetSpec,
    arch: ArchitectureConfig,
    p: int,
    *,
    replicated_graph: bool = True,
    machine: MachineConfig = PERLMUTTER_LIKE,
) -> tuple[int, int]:
    """Pick (c, k) for ``p`` devices, paper-style (section 7.3).

    The paper grows the replication factor with the aggregate memory —
    empirically ``c ≈ p/4`` capped at 8 across Figure 4's annotations — and
    then bulks as many minibatches as fit (k capped at the dataset's batch
    count, printed as "k=all").  We mirror that: the largest power-of-two
    ``c`` dividing ``p`` with ``c <= min(8, p/4)`` that also fits memory,
    then the largest fitting ``k``.
    """
    model = MemoryModel(spec, arch)
    cap = min(8, max(1, p // 4))
    best_c = 1
    c = 1
    while c * 2 <= cap and p % (c * 2) == 0:
        c *= 2
    for cand in (c, c // 2, c // 4, 1):
        if cand >= 1 and p % cand == 0 and model.pipeline_fits(
            p, cand, 1, replicated_graph=replicated_graph, machine=machine
        ):
            best_c = cand
            break
    k = spec.batches
    while k > 1 and not model.pipeline_fits(
        p, best_c, k, replicated_graph=replicated_graph, machine=machine
    ):
        k //= 2
    return best_c, max(1, k)


def quiver_fits(
    spec: DatasetSpec,
    *,
    machine: MachineConfig = PERLMUTTER_LIKE,
    preprocessing_factor: float = 3.0,
) -> bool:
    """Whether Quiver's fully-replicated preprocessing fits one device.

    Quiver replicates the topology per device (with a transient multiple of
    its size during preprocessing) alongside the full feature matrix; the
    paper observed the resulting OOM on Papers at 128 GPUs.
    """
    model = MemoryModel(spec, ArchitectureConfig("probe", 1024, (1,), 1, 1))
    features = spec.vertices * spec.features * _VAL
    need = preprocessing_factor * model.graph_bytes() + features
    return need < machine.device.memory_bytes
