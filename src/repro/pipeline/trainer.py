"""The end-to-end distributed training pipeline (paper section 6, Figure 3).

Bulk-synchronous loop per epoch:

1. **Sampling step** — ``k`` minibatches sampled at once by the execution
   backend the config's ``algorithm`` key resolves to (single-device,
   Graph Replicated or Graph Partitioned); each rank ends up owning its
   share of the sampled minibatches.
2. **Feature fetching** — per training round, every rank all-to-allv's with
   its process column to collect the feature rows of its minibatch's input
   frontier from the 1.5D-partitioned feature matrix.
3. **Propagation** — forward/backward on the minibatch, then a gradient
   all-reduce across all ranks (data parallelism) and an optimizer step.

Samplers and execution algorithms are resolved through
:mod:`repro.api.registries` — this module holds no name tables of its own.
Simulated time is attributed to the three phases Figure 4 stacks; real
numpy training (loss, accuracy) can be switched off for performance-only
sweeps (``train_model=False``) while all costs are still charged.
"""

from __future__ import annotations

import warnings
from typing import Iterator

import numpy as np

from ..api.config import RunConfig
from ..api.registries import ALGORITHMS, make_sampler
from ..comm import Communicator, ProcessGrid, Unscaled
from ..core import MinibatchSample, chunk_bulks
from ..gnn import (
    GNNModel,
    accuracy,
    Adam,
    full_graph_sample,
    propagation_flops,
    softmax_cross_entropy,
)
from ..graphs import Graph
from ..obs.metrics import get_registry
from ..obs.trace import maybe_span
from ..partition import CachedFeatureStore, FeatureStore
from .schedule import overlapped_makespan
from .stats import BulkStats, EpochStats

__all__ = ["PipelineConfig", "TrainingPipeline"]

_SAMPLING_PHASES = ("sampling", "probability", "extraction")


class PipelineConfig(RunConfig):
    """Deprecated alias of :class:`repro.api.RunConfig`.

    Kept for backward compatibility; construct :class:`RunConfig` instead
    (same fields, plus serialization and Engine-level options).
    """

    def __post_init__(self) -> None:
        warnings.warn(
            "PipelineConfig is deprecated; use repro.api.RunConfig",
            DeprecationWarning,
            stacklevel=3,
        )
        super().__post_init__()


class TrainingPipeline:
    """A simulated multi-GPU training run over one graph."""

    def __init__(self, graph: Graph, config: RunConfig) -> None:
        if graph.features is None:
            raise ValueError("pipeline needs node features")
        config.require_trainable()
        self.graph = graph
        self.config = config
        self.comm = Communicator(
            config.p, config.machine, work_scale=config.work_scale
        )
        self.grid = ProcessGrid(config.p, config.c)
        self.store: FeatureStore | CachedFeatureStore = FeatureStore(
            graph.features, self.grid
        )
        if config.cache_budget > 0:
            # Hot vertices are the frequent aggregation *sources*, i.e. the
            # vertices frontiers keep landing on: rank by in-degree (how
            # many adjacency rows reference each column).
            in_degree = np.bincount(
                graph.adj.indices, minlength=graph.n
            ).astype(np.float64)
            self.store = CachedFeatureStore(
                self.store,
                budget_bytes=config.cache_budget,
                policy=config.cache_policy,
                scores=in_degree,
            )
        self.sampler = make_sampler(
            config.sampler, graph=graph, for_training=True,
            kernel=config.kernel,
        )
        self.backend = ALGORITHMS.get(config.algorithm)()
        self.backend.setup(self)
        self.last_epoch_stats: EpochStats | None = None
        self._rng = np.random.default_rng(config.seed)
        n_classes = max(2, graph.n_classes)
        self.model = GNNModel(
            graph.n_features,
            config.hidden,
            n_classes,
            len(config.fanout),
            np.random.default_rng(config.seed + 1),
            conv=config.resolved_conv(),
            activation=config.activation,
        )
        self.optimizer = Adam(lr=config.lr)
        self._dims = (
            [graph.n_features]
            + [config.hidden] * (len(config.fanout) - 1)
            + [n_classes]
        )
        self._param_bytes = 4.0 * sum(
            v.size for v in self.model.parameters().values()
        )

    # ------------------------------------------------------------------ #
    # Compatibility accessor (the block partition now lives on the backend)
    # ------------------------------------------------------------------ #
    @property
    def a_blocks(self):
        return getattr(self.backend, "a_blocks", None)

    def close(self) -> None:
        """Release backend resources (the parallel backend's worker pool
        and shared-memory segments).  Idempotent; simulated backends hold
        nothing and make this a no-op."""
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()

    # ------------------------------------------------------------------ #
    # Sampling step
    # ------------------------------------------------------------------ #
    def _sample_bulk(
        self, bulk: list[np.ndarray], seed: int
    ) -> list[list[MinibatchSample]]:
        """Run one bulk sampling step; returns per-rank minibatch lists."""
        return self.backend.sample_bulk(self, bulk, seed)

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def stream_bulks(self, epoch: int = 0) -> Iterator[BulkStats]:
        """Generator over one epoch's bulks: sample, fetch, propagate one
        bulk at a time, yielding a :class:`BulkStats` after each.

        Sampling is lazy — bulk ``i+1`` is not sampled until the caller
        advances past bulk ``i`` — so an epoch never needs all its samples
        resident at once.  After exhaustion, :attr:`last_epoch_stats`
        carries the epoch totals ``train_epoch`` would have returned.
        """
        cfg = self.config
        self.comm.clock.reset()
        self.comm.ledger.reset()
        if isinstance(self.store, CachedFeatureStore):
            self.store.stats.reset()  # per-epoch counters (LFU counts persist)
        rng = np.random.default_rng(
            np.random.SeedSequence([cfg.seed, 17, epoch])
        )
        batches = self.graph.make_batches(cfg.batch_size, rng)
        k = cfg.k or len(batches)
        losses: list[float] = []
        preps: list[float] = []
        trains: list[float] = []
        prev_prep, prev_train = self._stage_seconds()
        for bulk_idx, bulk in enumerate(chunk_bulks(batches, k)):
            # The bulk span closes before the yield: a suspended generator
            # must not hold a span open across whatever the caller does.
            with maybe_span(
                "bulk", cat="train", track="train", clock=self.comm.clock,
                args={"bulk": bulk_idx, "n_batches": len(bulk)},
            ):
                with maybe_span("sample_bulk", cat="train"):
                    per_rank = self._sample_bulk(
                        bulk, seed=cfg.seed + 31 * bulk_idx + epoch
                    )
                bulk_losses: list[float] = []
                rounds = max(len(s) for s in per_rank)
                with maybe_span(
                    "fetch+train", cat="train", args={"rounds": rounds}
                ):
                    for t in range(rounds):
                        current = [
                            s[t] if t < len(s) else None for s in per_rank
                        ]
                        fetched = self._fetch_features(current)
                        loss = self._propagate(current, fetched)
                        if loss is not None:
                            bulk_losses.append(loss)
                losses.extend(bulk_losses)
                if isinstance(self.store, CachedFeatureStore):
                    # LFU re-ranks at bulk boundaries; rows newly entering
                    # the replica are charged as replication-fill traffic,
                    # kept in its own phase so the on-demand fetch volume
                    # stays separately measurable (the Figure-6 quantity).
                    # Runs before the stage snapshot so the fill lands in
                    # this bulk's prep window and the overlap makespan sees
                    # every charged second.
                    with maybe_span("cache_fill", cat="train"), self.comm.phase(
                        "cache_fill"
                    ):
                        self.store.refresh(self.comm)
            cur_prep, cur_train = self._stage_seconds()
            preps.append(cur_prep - prev_prep)
            trains.append(cur_train - prev_train)
            prev_prep, prev_train = cur_prep, cur_train
            yield BulkStats(
                index=bulk_idx,
                n_batches=len(bulk),
                rounds=rounds,
                loss=float(np.mean(bulk_losses)) if bulk_losses else None,
                prep_s=preps[-1],
                train_s=trains[-1],
            )
        self.last_epoch_stats = self._epoch_stats(
            len(batches), losses, preps, trains
        )

    def _stage_seconds(self) -> tuple[float, float]:
        """Cumulative (sampling+fetch+fill, propagation) seconds so far —
        the two stages the double-buffered scheduler may overlap."""
        sub = self.comm.clock.breakdown()
        prep = sum(sub.get(ph, 0.0) for ph in _SAMPLING_PHASES)
        prep += sub.get("feature_fetch", 0.0) + sub.get("cache_fill", 0.0)
        return prep, sub.get("propagation", 0.0)

    def train_epoch(self, epoch: int = 0) -> EpochStats:
        """One epoch: sample all batches in bulks of k, fetch, propagate."""
        for _ in self.stream_bulks(epoch):
            pass
        assert self.last_epoch_stats is not None
        return self.last_epoch_stats

    def _fetch_features(
        self, current: list[MinibatchSample | None]
    ) -> list[np.ndarray | None]:
        needed = [
            mb.input_frontier if mb is not None else np.empty(0, dtype=np.int64)
            for mb in current
        ]
        with self.comm.phase("feature_fetch"):
            fetched = self.store.fetch(self.comm, needed)
        return [
            fetched[r] if current[r] is not None else None
            for r in range(self.config.p)
        ]

    def _propagate(
        self,
        current: list[MinibatchSample | None],
        fetched: list[np.ndarray | None],
    ) -> float | None:
        cfg = self.config
        active = [r for r, mb in enumerate(current) if mb is not None]
        if not active:
            return None
        loss_sum = 0.0
        with self.comm.phase("propagation"):
            for r in active:
                mb = current[r]
                self.comm.compute(
                    r,
                    flops=propagation_flops(mb, self._dims),
                    nbytes=32.0 * mb.total_edges(),
                    kernels=6 * len(mb.layers),
                )
            if cfg.train_model:
                self.model.zero_grad()
                for r in active:
                    mb, x = current[r], fetched[r]
                    logits = self.model.forward(mb, x)
                    loss, dlogits = softmax_cross_entropy(
                        logits, self.graph.labels[mb.batch]
                    )
                    # Scale so the summed gradients average over ranks.
                    self.model.backward(dlogits / len(active))
                    loss_sum += loss
            # Data-parallel gradient all-reduce across all ranks.
            # Gradients are model-sized (not graph-sized): unscaled wire.
            grad_payload = Unscaled(np.empty(int(self._param_bytes // 8)))
            self.comm.allreduce(
                [grad_payload] * cfg.p, list(range(cfg.p)),
                op=lambda vals: vals[0],
            )
            if cfg.train_model:
                self.optimizer.step(
                    self.model.parameters(), self.model.gradients()
                )
        return loss_sum / len(active) if cfg.train_model else None

    def _epoch_stats(
        self,
        n_batches: int,
        losses: list[float],
        preps: list[float],
        trains: list[float],
    ) -> EpochStats:
        clock = self.comm.clock
        sub = clock.breakdown()
        by_kind = clock.breakdown_by_kind()
        sampling = sum(sub.get(ph, 0.0) for ph in _SAMPLING_PHASES)
        cache = (
            self.store.stats
            if isinstance(self.store, CachedFeatureStore)
            else None
        )
        stats = EpochStats(
            sampling=sampling,
            # Replication fill (LFU refresh traffic) is feature time too;
            # its volume stays separately attributed under "cache_fill".
            feature_fetch=sub.get("feature_fetch", 0.0)
            + sub.get("cache_fill", 0.0),
            propagation=sub.get("propagation", 0.0),
            sub_phases={
                ph: sub.get(ph, 0.0)
                for ph in _SAMPLING_PHASES
                if ph in sub
            },
            comm_seconds=sum(
                v for (ph, kind), v in by_kind.items() if kind == "comm"
            ),
            comp_seconds=sum(
                v for (ph, kind), v in by_kind.items() if kind == "compute"
            ),
            bytes_sent=self.comm.ledger.sent(),
            loss=float(np.mean(losses)) if losses else None,
            n_batches=n_batches,
            overlap=self.config.overlap,
            pipelined_total=(
                overlapped_makespan(preps, trains)
                if self.config.overlap
                else None
            ),
            fetch_hits=cache.hits if cache else 0,
            fetch_misses=cache.misses if cache else 0,
            fetch_hit_rate=cache.hit_rate if cache else None,
            fetch_bytes_saved=cache.hit_bytes if cache else 0.0,
        )
        registry = get_registry()
        if registry is not None:
            stats.publish(registry)
            if cache is not None:
                cache.publish(registry)
        return stats

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, split: str = "test") -> float:
        """Full-neighbor accuracy on a split (no sampling noise)."""
        idx = getattr(self.graph, f"{split}_idx")
        full = full_graph_sample(self.graph.adj, len(self.config.fanout))
        logits = self.model.forward(full, self.graph.features)
        return accuracy(logits[idx], self.graph.labels[idx])
