"""The end-to-end distributed training pipeline (paper section 6, Figure 3).

Bulk-synchronous loop per epoch:

1. **Sampling step** — ``k`` minibatches sampled at once with either the
   Graph Replicated or Graph Partitioned algorithm; each rank ends up
   owning ``k/p`` sampled minibatches.
2. **Feature fetching** — per training round, every rank all-to-allv's with
   its process column to collect the feature rows of its minibatch's input
   frontier from the 1.5D-partitioned feature matrix.
3. **Propagation** — forward/backward on the minibatch, then a gradient
   all-reduce across all ranks (data parallelism) and an optimizer step.

Simulated time is attributed to the three phases Figure 4 stacks; real
numpy training (loss, accuracy) can be switched off for performance-only
sweeps (``train_model=False``) while all costs are still charged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..comm import Communicator, ProcessGrid, Unscaled
from ..config import MachineConfig, PERLMUTTER_LIKE
from ..core import (
    FastGCNSampler,
    LadiesSampler,
    MinibatchSample,
    SageSampler,
    chunk_bulks,
)
from ..distributed import (
    partitioned_bulk_sampling,
    replicated_bulk_sampling,
)
from ..gnn import (
    GNNModel,
    accuracy,
    Adam,
    full_graph_sample,
    propagation_flops,
    softmax_cross_entropy,
)
from ..graphs import Graph
from ..partition import BlockRows, FeatureStore
from .stats import EpochStats

__all__ = ["PipelineConfig", "TrainingPipeline"]

_SAMPLERS = {
    "sage": lambda: SageSampler(include_dst=True),
    "ladies": lambda: LadiesSampler(include_dst=True),
    "fastgcn": lambda: FastGCNSampler(include_dst=True),
}
_DEFAULT_CONV = {"sage": "sage", "ladies": "gcn", "fastgcn": "gcn"}
_SAMPLING_PHASES = ("sampling", "probability", "extraction")


@dataclass
class PipelineConfig:
    """Configuration of one pipeline instance."""

    p: int
    c: int = 1
    algorithm: str = "replicated"  # "replicated" | "partitioned"
    sampler: str = "sage"  # "sage" | "ladies" | "fastgcn"
    fanout: tuple[int, ...] = (15, 10, 5)
    batch_size: int = 1024
    k: int | None = None  # bulk size in minibatches; None = whole epoch
    hidden: int = 256
    lr: float = 3e-3
    seed: int = 0
    train_model: bool = True
    sparsity_aware: bool = True
    conv: str | None = None  # model conv type; defaults per sampler
    work_scale: float = 1.0  # sim-to-paper workload scale (see Communicator)
    machine: MachineConfig = field(default_factory=lambda: PERLMUTTER_LIKE)

    def __post_init__(self) -> None:
        if self.algorithm not in ("replicated", "partitioned"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.sampler not in _SAMPLERS:
            raise ValueError(f"unknown sampler {self.sampler!r}")
        if self.p <= 0 or self.c <= 0 or self.p % self.c:
            raise ValueError("need c | p with both positive")
        if self.k is not None and self.k <= 0:
            raise ValueError("bulk size k must be positive")


class TrainingPipeline:
    """A simulated multi-GPU training run over one graph."""

    def __init__(self, graph: Graph, config: PipelineConfig) -> None:
        if graph.features is None:
            raise ValueError("pipeline needs node features")
        self.graph = graph
        self.config = config
        self.comm = Communicator(
            config.p, config.machine, work_scale=config.work_scale
        )
        self.grid = ProcessGrid(config.p, config.c)
        self.store = FeatureStore(graph.features, self.grid)
        self.sampler = _SAMPLERS[config.sampler]()
        if config.algorithm == "partitioned":
            self.a_blocks = BlockRows.partition(graph.adj, self.grid.n_rows)
        else:
            self.a_blocks = None
        self._rng = np.random.default_rng(config.seed)
        conv = config.conv or _DEFAULT_CONV[config.sampler]
        n_classes = max(2, graph.n_classes)
        self.model = GNNModel(
            graph.n_features,
            config.hidden,
            n_classes,
            len(config.fanout),
            np.random.default_rng(config.seed + 1),
            conv=conv,
        )
        self.optimizer = Adam(lr=config.lr)
        self._dims = (
            [graph.n_features]
            + [config.hidden] * (len(config.fanout) - 1)
            + [n_classes]
        )
        self._param_bytes = 4.0 * sum(
            v.size for v in self.model.parameters().values()
        )

    # ------------------------------------------------------------------ #
    # Sampling step
    # ------------------------------------------------------------------ #
    def _sample_bulk(
        self, bulk: list[np.ndarray], seed: int
    ) -> list[list[MinibatchSample]]:
        """Run one bulk sampling step; returns per-rank minibatch lists."""
        cfg = self.config
        if cfg.algorithm == "replicated":
            return replicated_bulk_sampling(
                self.comm, self.sampler, self.graph.adj, bulk, cfg.fanout,
                seed=seed,
            )
        samples, owners = partitioned_bulk_sampling(
            self.comm, self.grid, self.sampler, self.a_blocks, bulk,
            cfg.fanout, seed=seed, sparsity_aware=cfg.sparsity_aware,
        )
        # Each process row's batches are trained by its c replica ranks,
        # round-robin, so all p ranks participate in propagation.
        per_rank: list[list[MinibatchSample]] = [
            [] for _ in range(cfg.p)
        ]
        for row, idxs in enumerate(owners):
            for pos, batch_idx in enumerate(idxs):
                rank = self.grid.rank(row, pos % self.grid.c)
                per_rank[rank].append(samples[batch_idx])
        return per_rank

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def train_epoch(self, epoch: int = 0) -> EpochStats:
        """One epoch: sample all batches in bulks of k, fetch, propagate."""
        cfg = self.config
        self.comm.clock.reset()
        self.comm.ledger.reset()
        rng = np.random.default_rng(
            np.random.SeedSequence([cfg.seed, 17, epoch])
        )
        batches = self.graph.make_batches(cfg.batch_size, rng)
        k = cfg.k or len(batches)
        losses: list[float] = []
        for bulk_idx, bulk in enumerate(chunk_bulks(batches, k)):
            per_rank = self._sample_bulk(bulk, seed=cfg.seed + 31 * bulk_idx + epoch)
            rounds = max(len(s) for s in per_rank)
            for t in range(rounds):
                current = [
                    s[t] if t < len(s) else None for s in per_rank
                ]
                fetched = self._fetch_features(current)
                loss = self._propagate(current, fetched)
                if loss is not None:
                    losses.append(loss)
        return self._epoch_stats(len(batches), losses)

    def _fetch_features(
        self, current: list[MinibatchSample | None]
    ) -> list[np.ndarray | None]:
        needed = [
            mb.input_frontier if mb is not None else np.empty(0, dtype=np.int64)
            for mb in current
        ]
        with self.comm.phase("feature_fetch"):
            fetched = self.store.fetch(self.comm, needed)
        return [
            fetched[r] if current[r] is not None else None
            for r in range(self.config.p)
        ]

    def _propagate(
        self,
        current: list[MinibatchSample | None],
        fetched: list[np.ndarray | None],
    ) -> float | None:
        cfg = self.config
        active = [r for r, mb in enumerate(current) if mb is not None]
        if not active:
            return None
        loss_sum = 0.0
        with self.comm.phase("propagation"):
            for r in active:
                mb = current[r]
                self.comm.compute(
                    r,
                    flops=propagation_flops(mb, self._dims),
                    nbytes=32.0 * mb.total_edges(),
                    kernels=6 * len(mb.layers),
                )
            if cfg.train_model:
                self.model.zero_grad()
                for r in active:
                    mb, x = current[r], fetched[r]
                    logits = self.model.forward(mb, x)
                    loss, dlogits = softmax_cross_entropy(
                        logits, self.graph.labels[mb.batch]
                    )
                    # Scale so the summed gradients average over ranks.
                    self.model.backward(dlogits / len(active))
                    loss_sum += loss
            # Data-parallel gradient all-reduce across all ranks.
            # Gradients are model-sized (not graph-sized): unscaled wire.
            grad_payload = Unscaled(np.empty(int(self._param_bytes // 8)))
            self.comm.allreduce(
                [grad_payload] * cfg.p, list(range(cfg.p)),
                op=lambda vals: vals[0],
            )
            if cfg.train_model:
                self.optimizer.step(
                    self.model.parameters(), self.model.gradients()
                )
        return loss_sum / len(active) if cfg.train_model else None

    def _epoch_stats(self, n_batches: int, losses: list[float]) -> EpochStats:
        clock = self.comm.clock
        sub = clock.breakdown()
        by_kind = clock.breakdown_by_kind()
        sampling = sum(sub.get(ph, 0.0) for ph in _SAMPLING_PHASES)
        return EpochStats(
            sampling=sampling,
            feature_fetch=sub.get("feature_fetch", 0.0),
            propagation=sub.get("propagation", 0.0),
            sub_phases={
                ph: sub.get(ph, 0.0)
                for ph in _SAMPLING_PHASES
                if ph in sub
            },
            comm_seconds=sum(
                v for (ph, kind), v in by_kind.items() if kind == "comm"
            ),
            comp_seconds=sum(
                v for (ph, kind), v in by_kind.items() if kind == "compute"
            ),
            bytes_sent=self.comm.ledger.sent(),
            loss=float(np.mean(losses)) if losses else None,
            n_batches=n_batches,
        )

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, split: str = "test") -> float:
        """Full-neighbor accuracy on a split (no sampling noise)."""
        idx = getattr(self.graph, f"{split}_idx")
        full = full_graph_sample(self.graph.adj, len(self.config.fanout))
        logits = self.model.forward(full, self.graph.features)
        return accuracy(logits[idx], self.graph.labels[idx])
