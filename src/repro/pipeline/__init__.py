"""End-to-end distributed training pipeline (paper section 6, Figure 3)."""

from .inference import layerwise_inference
from .memory import MemoryModel, choose_c_k, quiver_fits
from .schedule import overlap_saving, overlapped_makespan
from .stats import BulkStats, EpochStats
from .trainer import PipelineConfig, TrainingPipeline

__all__ = [
    "PipelineConfig",
    "TrainingPipeline",
    "BulkStats",
    "EpochStats",
    "MemoryModel",
    "layerwise_inference",
    "choose_c_k",
    "quiver_fits",
    "overlapped_makespan",
    "overlap_saving",
]
