"""Replication-budget-aware feature caching over the 1.5D feature store.

The partitioned pipeline pays two all-to-allv rounds of feature traffic for
every minibatch frontier (:meth:`FeatureStore.fetch`), with zero reuse
across the κ minibatches of a bulk — even though adjacent frontiers overlap
heavily on hot (high in-degree) vertices.  :class:`CachedFeatureStore`
exploits that skew: every rank replicates the same top-ranked feature rows
up to a per-rank byte budget, so the all-to-allv rounds only carry the
cache *misses* and the comm model is charged accordingly (hits cost one
local HBM gather).

Two replication policies are provided:

``degree``
    Static: rank vertices once by a score vector (the pipeline passes
    in-degrees — how often a vertex can appear as an aggregation source)
    and pin the top rows for the whole run.
``lfu``
    Frequency-ranked across bulks: access counts accumulate over every
    fetch and :meth:`CachedFeatureStore.refresh` (called by the trainer at
    bulk boundaries) re-ranks the cached set by observed demand, LFU-style.

Both policies return bit-identical feature rows to the uncached path —
the cache holds exact copies and features are static during training — so
loss/accuracy trajectories never depend on the budget.  Hit/miss/volume
counters live in :class:`CacheStats` (re-exported through
:mod:`repro.distributed.instrument` next to the other cost recorders).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm import Communicator
from .feature_store import FeatureStore

__all__ = ["CACHE_POLICIES", "CacheStats", "CachedFeatureStore"]

#: Replication policies accepted by :class:`CachedFeatureStore` (and by
#: ``RunConfig.cache_policy`` / the CLI ``--cache-policy`` flag).
CACHE_POLICIES = ("degree", "lfu")


class _WirePayload:
    """A payload with a declared wire size (feature rows being replicated)."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: float) -> None:
        self.nbytes = nbytes


@dataclass
class CacheStats:
    """Hit/miss/volume counters of one :class:`CachedFeatureStore`.

    ``requests`` counts requested feature rows (duplicates included, as
    they appear in the all-to-allv request arrays); ``hit_bytes`` /
    ``miss_bytes`` are simulated wire bytes of the response round that the
    cache avoided / still paid.  Rows owned by the requesting rank's own
    process row never cross the wire (the all-to-allv excludes self-sends),
    so they count toward ``hits``/``misses`` but toward neither byte total.
    ``invalidations`` counts replicated rows dropped through
    :meth:`CachedFeatureStore.invalidate` — update churn, kept separate
    from the capacity-driven turnover :meth:`refresh` performs.
    """

    requests: int = 0
    hits: int = 0
    misses: int = 0
    hit_bytes: float = 0.0
    miss_bytes: float = 0.0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of requested rows served from the local replica."""
        return self.hits / self.requests if self.requests else 0.0

    def reset(self) -> None:
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.hit_bytes = 0.0
        self.miss_bytes = 0.0
        self.invalidations = 0

    def publish(self, registry, **labels) -> None:
        """Copy the counters into a metrics registry
        (:mod:`repro.obs.metrics`) under ``feature_cache_*`` names."""
        for name, help_text, value in (
            ("feature_cache_requests_total", "feature rows requested", self.requests),
            ("feature_cache_hits_total", "rows served from the replica", self.hits),
            ("feature_cache_misses_total", "rows fetched over the wire", self.misses),
            ("feature_cache_hit_bytes_total", "wire bytes avoided", self.hit_bytes),
            ("feature_cache_miss_bytes_total", "wire bytes paid", self.miss_bytes),
            (
                "feature_cache_invalidations_total",
                "replicated rows dropped by updates",
                self.invalidations,
            ),
        ):
            registry.counter(name, help_text, **labels).set(value)
        registry.gauge(
            "feature_cache_hit_rate", "fraction of rows served locally", **labels
        ).set(self.hit_rate)


class CachedFeatureStore:
    """A replication-budgeted feature cache layered over a FeatureStore.

    ``budget_bytes`` is the per-rank device memory granted to replicated
    feature rows, measured at the store's wire width (the paper's fp32);
    the cache holds ``budget_bytes // row_bytes`` rows.  ``scores`` ranks
    vertices for the ``degree`` policy and seeds the ``lfu`` policy before
    any accesses are observed (optional there: an unseeded LFU cache starts
    empty and fills on the first :meth:`refresh`).
    """

    def __init__(
        self,
        store: FeatureStore,
        *,
        budget_bytes: float,
        policy: str = "degree",
        scores: np.ndarray | None = None,
    ) -> None:
        if policy not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {policy!r}; known policies: "
                f"{', '.join(CACHE_POLICIES)}"
            )
        if budget_bytes < 0:
            raise ValueError("cache budget must be non-negative")
        if policy == "degree" and scores is None:
            raise ValueError("the degree policy needs a score vector")
        if scores is not None and len(scores) != store.n:
            raise ValueError("need one score per vertex")
        self.store = store
        self.policy = policy
        self.budget_bytes = float(budget_bytes)
        row_bytes = store.wire_bytes(1)
        self.capacity_rows = (
            min(store.n, int(budget_bytes // row_bytes)) if row_bytes else 0
        )
        self.stats = CacheStats()
        self._scores = (
            None if scores is None else np.asarray(scores, dtype=np.float64)
        )
        self._counts = np.zeros(store.n, dtype=np.int64)
        self._cached = np.zeros(store.n, dtype=bool)
        self._slot = np.full(store.n, -1, dtype=np.int64)
        self._block = np.empty((0, store.n_features), store.features.dtype)
        if self._scores is not None:
            self._install(self._top_rows(self._scores))

    # ------------------------------------------------------------------ #
    # Delegation
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        return self.store.n

    @property
    def n_features(self) -> int:
        return self.store.n_features

    @property
    def features(self) -> np.ndarray:
        return self.store.features

    @property
    def grid(self):
        return self.store.grid

    def wire_bytes(self, n_rows: int) -> float:
        return self.store.wire_bytes(n_rows)

    # ------------------------------------------------------------------ #
    # Cache membership
    # ------------------------------------------------------------------ #
    @property
    def cached_ids(self) -> np.ndarray:
        """Sorted global vertex ids currently replicated on every rank."""
        return np.flatnonzero(self._cached)

    def _top_rows(self, ranking: np.ndarray) -> np.ndarray:
        """Top ``capacity_rows`` vertices by ``ranking``, ties to lower id."""
        if self.capacity_rows == 0:
            return np.empty(0, dtype=np.int64)
        order = np.lexsort((np.arange(self.store.n), -ranking))
        return np.sort(order[: self.capacity_rows])

    def _install(
        self, ids: np.ndarray, comm: Communicator | None = None
    ) -> None:
        new = ids[~self._cached[ids]] if ids.size else ids
        self._cached[:] = False
        self._cached[ids] = True
        self._slot[:] = -1
        self._slot[ids] = np.arange(ids.size)
        # Exact copies: cached fetches are bit-identical to uncached ones.
        self._block = self.store.features[ids].copy()
        if comm is not None and new.size:
            # Replicating rows that were not already resident is real
            # traffic: every rank receives the newly-cached rows from
            # their owners (modeled as one broadcast over all p ranks).
            comm.bcast(
                _WirePayload(self.wire_bytes(new.size)),
                self.grid.all_ranks(),
            )

    def refresh(self, comm: Communicator | None = None) -> None:
        """Re-rank the cached set (LFU only; no-op for the static policy).

        The trainer calls this at bulk boundaries, so the replica tracks
        demand across bulks without churning inside one.  Pass ``comm`` to
        charge the replication traffic of rows newly entering the cache
        (the initial fill at construction is preprocessing, uncharged like
        the block-row partitioning itself).
        """
        if self.policy != "lfu":
            return
        ranking = self._counts.astype(np.float64)
        if self._scores is not None:
            # Seed scores break ties among equally-counted (e.g. unseen)
            # vertices; scaled below 1 count so observed demand dominates.
            span = self._scores.max()
            if span > 0:
                ranking = ranking + self._scores / (2.0 * span)
        self._install(self._top_rows(ranking), comm)

    def invalidate(self, ids: np.ndarray) -> int:
        """Drop replicated rows for ``ids``; returns how many were resident.

        The hook graph/feature updates call: a vertex whose stored feature
        row changed (or that left the graph) must not be served from the
        replica until re-admitted by a later :meth:`refresh`.  A local
        drop: no replication traffic is charged, and the freed slots stay
        empty until the next refresh re-ranks the cache.  Counted in
        ``stats.invalidations``; LFU access counts are kept.
        """
        ids = np.unique(np.asarray(ids, dtype=np.int64))
        if ids.size and (ids[0] < 0 or ids[-1] >= self.store.n):
            raise IndexError(f"vertex id out of range [0, {self.store.n})")
        resident = ids[self._cached[ids]]
        if resident.size:
            keep = self.cached_ids
            keep = keep[~self._cached_member(keep, resident)]
            self._install(keep)
        self.stats.invalidations += int(resident.size)
        return int(resident.size)

    @staticmethod
    def _cached_member(ids: np.ndarray, drop: np.ndarray) -> np.ndarray:
        return np.isin(ids, drop, assume_unique=True)

    # ------------------------------------------------------------------ #
    # The cache-aware fetch
    # ------------------------------------------------------------------ #
    def fetch(
        self,
        comm: Communicator,
        needed_by_rank: list[np.ndarray],
    ) -> list[np.ndarray]:
        """Collect feature rows per rank, all-to-allv'ing only the misses.

        Same contract as :meth:`FeatureStore.fetch`: one request array per
        rank, dense blocks aligned with request order.  Rows present in the
        replicated cache are gathered locally (charged as one HBM-bound
        kernel per rank); the remainder goes through the inner store's
        all-to-allv rounds, so ledger volume and comm time shrink with the
        hit rate.
        """
        if len(needed_by_rank) != self.grid.p:
            raise ValueError("one request array per rank required")
        ids_by_rank = [
            np.asarray(ids, dtype=np.int64) for ids in needed_by_rank
        ]
        hit_masks = [self._cached[ids] for ids in ids_by_rank]
        misses = [ids[~m] for ids, m in zip(ids_by_rank, hit_masks)]
        if self.policy == "lfu":
            # Only LFU reads the counts; skip the scatter-add on the hot
            # path under the static policy.
            for ids in ids_by_rank:
                if ids.size:
                    np.add.at(self._counts, ids, 1)
        if any(m.size for m in misses):
            fetched = self.store.fetch(comm, misses)
        else:
            # Every request hit the replica: skip the all-to-allv rounds
            # entirely (no latency charged for an empty exchange).
            fetched = [
                np.empty((0, self.n_features), self.features.dtype)
                for _ in misses
            ]
        results: list[np.ndarray] = []
        for r, (ids, mask) in enumerate(zip(ids_by_rank, hit_masks)):
            out = np.empty(
                (ids.size, self.n_features), dtype=self.features.dtype
            )
            n_hits = int(mask.sum())
            if n_hits:
                out[mask] = self._block[self._slot[ids[mask]]]
                # Local gather from the replica: read + write, HBM-bound.
                comm.compute(
                    r, nbytes=2.0 * self.wire_bytes(n_hits), kernels=1
                )
            out[~mask] = fetched[r]
            results.append(out)
            # Byte counters track only rows that would cross the wire:
            # rows owned by the requester's own process row are served
            # locally by the uncached path too (no self-sends).
            remote = self.store.owner_row(ids) != self.grid.coords(r)[0]
            self.stats.requests += ids.size
            self.stats.hits += n_hits
            self.stats.misses += ids.size - n_hits
            self.stats.hit_bytes += self.wire_bytes(int((mask & remote).sum()))
            self.stats.miss_bytes += self.wire_bytes(
                int((~mask & remote).sum())
            )
        return results
