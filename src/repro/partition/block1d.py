"""1D block-row partitioning of sparse matrices.

The Graph Replicated algorithm partitions the stacked ``Q`` into ``p`` block
rows (section 5.1); the Graph Partitioned algorithm partitions both ``Q``
and ``A`` into ``p/c`` block rows (section 5.2).  This module produces and
indexes those block rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse import CSRMatrix

__all__ = ["BlockRows", "split_rows"]


def split_rows(n_rows: int, n_blocks: int) -> np.ndarray:
    """Boundaries of an even block-row split: ``n_blocks + 1`` offsets.

    Remainder rows go to the leading blocks, keeping sizes within one row
    of each other.
    """
    if n_blocks <= 0:
        raise ValueError("need at least one block")
    if n_rows < 0:
        raise ValueError("row count must be non-negative")
    base, rem = divmod(n_rows, n_blocks)
    sizes = np.full(n_blocks, base, dtype=np.int64)
    sizes[:rem] += 1
    return np.concatenate([[0], np.cumsum(sizes)])


@dataclass
class BlockRows:
    """A matrix split into contiguous block rows.

    ``blocks[i]`` holds global rows ``[starts[i], starts[i+1])``; its row
    indices are local (0-based within the block) while columns stay global.
    """

    blocks: list[CSRMatrix]
    starts: np.ndarray  # len(blocks) + 1 global row offsets
    n_cols: int

    @classmethod
    def partition(cls, mat: CSRMatrix, n_blocks: int) -> "BlockRows":
        """Split ``mat`` into ``n_blocks`` even block rows."""
        starts = split_rows(mat.shape[0], n_blocks)
        blocks = [
            mat.row_block(int(starts[i]), int(starts[i + 1]))
            for i in range(n_blocks)
        ]
        return cls(blocks, starts, mat.shape[1])

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def n_rows(self) -> int:
        return int(self.starts[-1])

    def owner_of_row(self, row: int) -> int:
        """Block index holding global ``row``."""
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range")
        return int(np.searchsorted(self.starts, row, side="right") - 1)

    def owners_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner_of_row`."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.n_rows):
            raise IndexError("row out of range")
        return np.searchsorted(self.starts, rows, side="right") - 1

    def to_matrix(self) -> CSRMatrix:
        """Reassemble the original matrix (tests)."""
        from ..sparse import vstack

        return vstack(self.blocks)
