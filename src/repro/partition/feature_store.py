"""The 1.5D-partitioned feature matrix and its all-to-allv fetch.

Section 6.2: the input feature matrix ``H`` is split into ``p/c`` block
rows, each replicated on the ``c`` ranks of its process row, so every
*process column* ``P(:, j)`` collectively holds all of ``H``.  Before
propagating a minibatch, each rank all-to-allv's with its process column to
collect the feature rows of the minibatch's input frontier.  Fetch time
therefore scales with the replication factor ``c`` — the effect Figure 6
measures by setting ``c = 1``.
"""

from __future__ import annotations

import numpy as np

from ..comm import Communicator, ProcessGrid
from .block1d import split_rows

__all__ = ["FeatureStore"]


class FeatureStore:
    """Features partitioned 1.5D over a process grid."""

    def __init__(
        self, features: np.ndarray, grid: ProcessGrid, *, bytes_per_value: int = 4
    ) -> None:
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        self.features = features
        self.grid = grid
        self.starts = split_rows(features.shape[0], grid.n_rows)
        # The paper stores fp32 features; our arrays are float64, so sizes
        # on the simulated wire are scaled to the configured width.
        self.bytes_per_value = bytes_per_value

    @property
    def n(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    def owner_row(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Process row owning each vertex's feature row."""
        return np.searchsorted(self.starts, vertex_ids, side="right") - 1

    def local_rows(self, process_row: int) -> np.ndarray:
        """Global vertex range stored by one process row."""
        return np.arange(self.starts[process_row], self.starts[process_row + 1])

    def wire_bytes(self, n_rows: int) -> float:
        """Bytes on the wire for ``n_rows`` feature rows."""
        return float(n_rows * self.n_features * self.bytes_per_value)

    # ------------------------------------------------------------------ #
    # The all-to-allv fetch
    # ------------------------------------------------------------------ #
    def fetch(
        self,
        comm: Communicator,
        needed_by_rank: list[np.ndarray],
    ) -> list[np.ndarray]:
        """Collect feature rows for every rank's request, per process column.

        ``needed_by_rank[r]`` lists global vertex ids rank ``r`` needs (its
        minibatch's input frontier).  Each process column runs two
        all-to-allv rounds: request ids out, feature rows back.  Returns the
        dense feature block per rank, aligned with its request order.
        """
        if len(needed_by_rank) != self.grid.p:
            raise ValueError("one request array per rank required")
        results: list[np.ndarray | None] = [None] * self.grid.p
        for j in range(self.grid.c):
            ranks = self.grid.col_ranks(j)
            g = len(ranks)
            # Requests: position i in the column asks position o for the ids
            # owned by process row o.
            req: list[list[np.ndarray]] = [[None] * g for _ in range(g)]
            orders: list[np.ndarray] = []
            for pos, r in enumerate(ranks):
                ids = np.asarray(needed_by_rank[r], dtype=np.int64)
                owners = self.owner_row(ids)
                order = np.argsort(owners, kind="stable")
                orders.append(order)
                sorted_ids = ids[order]
                bounds = np.searchsorted(owners[order], np.arange(g + 1))
                for o in range(g):
                    req[pos][o] = sorted_ids[bounds[o] : bounds[o + 1]]
            got_req = comm.alltoallv(req, ranks)
            # Responses: owner o answers with the requested feature rows.
            # Payload size on the wire follows the configured value width.
            resp: list[list[object]] = [[None] * g for _ in range(g)]
            for o in range(g):
                for pos in range(g):
                    ids = got_req[o][pos]
                    rows = self.features[ids]
                    # Scale the advertised size: simulated fp32 on the wire.
                    resp[o][pos] = _SizedArray(rows, self.wire_bytes(len(ids)))
            got_resp = comm.alltoallv(resp, ranks)
            for pos, r in enumerate(ranks):
                ids = np.asarray(needed_by_rank[r], dtype=np.int64)
                # The returned block follows the stored dtype: an fp32 store
                # must not come back silently upcast to float64.
                out = np.empty(
                    (len(ids), self.n_features), dtype=self.features.dtype
                )
                chunks = [got_resp[pos][o].array for o in range(g)]
                stacked = (
                    np.concatenate(chunks, axis=0)
                    if chunks
                    else np.empty((0, self.n_features), dtype=self.features.dtype)
                )
                # Undo the owner sort so rows align with the request order.
                out[orders[pos]] = stacked
                results[r] = out
        return results  # type: ignore[return-value]


class _SizedArray:
    """An ndarray payload whose wire size is overridden (fp32 simulation)."""

    def __init__(self, array: np.ndarray, nbytes: float) -> None:
        self.array = array
        self.nbytes = nbytes
