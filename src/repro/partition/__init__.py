"""Matrix and feature distribution: 1D / 1.5D block-row partitioning."""

from .block1d import BlockRows, split_rows
from .feature_store import FeatureStore

__all__ = ["BlockRows", "split_rows", "FeatureStore"]
