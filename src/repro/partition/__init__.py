"""Matrix and feature distribution: 1D / 1.5D block-row partitioning and
the replication-budgeted feature cache."""

from .block1d import BlockRows, split_rows
from .cache import CACHE_POLICIES, CachedFeatureStore, CacheStats
from .feature_store import FeatureStore

__all__ = [
    "BlockRows",
    "split_rows",
    "FeatureStore",
    "CachedFeatureStore",
    "CacheStats",
    "CACHE_POLICIES",
]
