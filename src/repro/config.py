"""Machine and architecture configuration for the simulated runtime.

The paper evaluates on NERSC Perlmutter: 4x NVIDIA A100 per node, NVLink 3.0
within a GPU pair (100 GB/s unidirectional), 4x HPE Slingshot 11 NICs per
node (25 GB/s injection each).  We model this as a two-level hierarchy:
fast intra-node links and slower inter-node links, each described by an
``alpha``/``beta`` pair (latency seconds / seconds-per-byte), plus a roofline
compute model per device.

These numbers set the *scale* of simulated time; all figure reproductions
depend only on the relative magnitudes (intra >> inter bandwidth, GPU >>
PCIe/DRAM bandwidth), which are faithful to the published hardware specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "LinkModel",
    "DeviceModel",
    "MachineConfig",
    "PERLMUTTER_LIKE",
    "ArchitectureConfig",
    "SAGE_ARCH",
    "LADIES_ARCH",
]


@dataclass(frozen=True)
class LinkModel:
    """An alpha-beta communication link: ``time = alpha + beta * bytes``."""

    alpha: float  # latency per message (seconds)
    beta: float  # seconds per byte (reciprocal bandwidth)

    def time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` over this link (one message)."""
        if nbytes < 0:
            raise ValueError(f"message size must be non-negative, got {nbytes}")
        return self.alpha + self.beta * float(nbytes)


@dataclass(frozen=True)
class DeviceModel:
    """Roofline compute model for one device (a GPU in the paper).

    ``time = kernel_overhead + max(flops / flops_per_s, bytes / mem_bw)``

    The per-kernel launch overhead is what makes *per-batch* sampling slow
    relative to *bulk* sampling: bulk sampling issues O(L) kernels per k
    minibatches instead of O(L) kernels per minibatch, which is exactly the
    amortization argument of the paper (section 4, section 8.1.1).
    """

    flops_per_s: float
    mem_bw: float  # bytes per second
    kernel_overhead: float  # seconds per kernel launch
    memory_bytes: float  # device memory capacity

    def time(self, flops: float = 0.0, nbytes: float = 0.0, kernels: int = 1) -> float:
        """Execution time of ``kernels`` launches doing ``flops``/``nbytes`` total."""
        if flops < 0 or nbytes < 0 or kernels < 0:
            raise ValueError("flops, bytes and kernel count must be non-negative")
        work = max(flops / self.flops_per_s, nbytes / self.mem_bw)
        return kernels * self.kernel_overhead + work


@dataclass(frozen=True)
class MachineConfig:
    """A cluster: homogeneous devices grouped into nodes with two link tiers."""

    name: str
    devices_per_node: int
    device: DeviceModel
    intra_node: LinkModel
    inter_node: LinkModel
    # Host-side (CPU/DRAM over PCIe) path, used by the Quiver-UVA baseline
    # and by CPU reference baselines.
    host_bw: float = 25e9  # bytes/s DRAM<->GPU over PCIe-ish link
    host_flops_per_s: float = 1e12  # CPU throughput for CPU-side sampling

    def node_of(self, rank: int) -> int:
        """Node index hosting device ``rank``."""
        if rank < 0:
            raise ValueError(f"rank must be non-negative, got {rank}")
        return rank // self.devices_per_node

    def link(self, src: int, dst: int) -> LinkModel:
        """The link model connecting two device ranks."""
        if self.node_of(src) == self.node_of(dst):
            return self.intra_node
        return self.inter_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)


#: Default machine: Perlmutter-like A100 nodes.  Bandwidths follow the paper's
#: system description (section 7.2); FLOP rate is A100 fp32 tensor-core order.
PERLMUTTER_LIKE = MachineConfig(
    name="perlmutter-like",
    devices_per_node=4,
    device=DeviceModel(
        flops_per_s=19.5e12,  # A100 fp32
        mem_bw=1555e9,  # HBM2e
        kernel_overhead=8e-6,  # ~8us per kernel launch
        memory_bytes=80e9,
    ),
    intra_node=LinkModel(alpha=2.5e-6, beta=1.0 / 100e9),  # NVLink 3.0
    inter_node=LinkModel(alpha=10e-6, beta=1.0 / 25e9),  # Slingshot 11 NIC
)


@dataclass(frozen=True)
class ArchitectureConfig:
    """GNN architecture hyper-parameters (paper Table 4)."""

    name: str
    batch_size: int
    fanout: tuple[int, ...]  # per-layer sample counts, last layer first
    hidden: int
    layers: int
    test_fanout: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.layers != len(self.fanout):
            raise ValueError(
                f"fanout {self.fanout} must list one sample count per layer "
                f"(layers={self.layers})"
            )
        if self.batch_size <= 0 or self.hidden <= 0:
            raise ValueError("batch_size and hidden must be positive")


#: Paper Table 4, row 1: GraphSAGE with batch 1024, fanout (15, 10, 5).
SAGE_ARCH = ArchitectureConfig(
    name="SAGE",
    batch_size=1024,
    fanout=(15, 10, 5),
    hidden=256,
    layers=3,
    test_fanout=(20, 20, 20),
)

#: Paper Table 4, row 2: LADIES with batch 512, layer width 512, one layer.
LADIES_ARCH = ArchitectureConfig(
    name="LADIES",
    batch_size=512,
    fanout=(512,),
    hidden=256,
    layers=1,
)
