"""Synthetic graph generators (vectorized numpy).

These stand in for the paper's datasets (OGB Products/Papers100M, HipMCL
Protein).  R-MAT reproduces the skewed degree
distributions of real web/citation graphs, Chung-Lu gives direct control of
the degree-law exponent, Erdos-Renyi provides a flat control, and the
planted-partition generator produces learnable community structure for the
accuracy experiments (paper section 8.1.3).
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSRMatrix

__all__ = ["rmat", "erdos_renyi", "chung_lu", "planted_partition"]


def _dedupe_and_build(
    rows: np.ndarray, cols: np.ndarray, n: int, *, drop_self_loops: bool = True
) -> CSRMatrix:
    if drop_self_loops:
        keep = rows != cols
        rows, cols = rows[keep], cols[keep]
    mat = CSRMatrix.from_coo(rows, cols, None, (n, n))
    # Duplicate edges were summed into values > 1; flatten back to binary.
    mat.data.fill(1.0)
    return mat


def rmat(
    scale: int,
    edge_factor: int,
    rng: np.random.Generator,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    make_undirected: bool = False,
) -> CSRMatrix:
    """Recursive-matrix (Kronecker) graph with ``2**scale`` vertices.

    ``edge_factor`` edges per vertex are drawn; the (a, b, c, 1-a-b-c)
    quadrant probabilities default to the Graph500 values, which yield the
    heavy-tailed degree distributions of the paper's datasets.
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be non-negative")
    if scale <= 0 or edge_factor <= 0:
        raise ValueError("scale and edge_factor must be positive")
    n = 1 << scale
    m = n * edge_factor
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    # One quadrant choice per (edge, bit); fully vectorized over edges.
    for bit in range(scale):
        quad = rng.choice(4, size=m, p=[a, b, c, d])
        rows |= ((quad >> 1) & 1).astype(np.int64) << bit
        cols |= (quad & 1).astype(np.int64) << bit
    # Permute vertex ids so high-degree vertices are not clustered at id 0.
    perm = rng.permutation(n)
    rows, cols = perm[rows], perm[cols]
    if make_undirected:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
    return _dedupe_and_build(rows, cols, n)


def erdos_renyi(
    n: int, avg_degree: float, rng: np.random.Generator
) -> CSRMatrix:
    """G(n, m) random directed graph with ``n * avg_degree`` edges."""
    if n <= 0 or avg_degree < 0:
        raise ValueError("n must be positive and avg_degree non-negative")
    m = int(round(n * avg_degree))
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    return _dedupe_and_build(rows, cols, n)


def chung_lu(
    n: int,
    avg_degree: float,
    rng: np.random.Generator,
    *,
    exponent: float = 2.5,
) -> CSRMatrix:
    """Power-law graph: vertex weights ``w_i ~ i^{-1/(exponent-1)}``.

    Edges are drawn with endpoint probabilities proportional to the weights,
    giving an expected degree sequence following the power law.
    """
    if exponent <= 1:
        raise ValueError("exponent must exceed 1")
    if n <= 0 or avg_degree <= 0:
        raise ValueError("n and avg_degree must be positive")
    weights = np.arange(1, n + 1, dtype=np.float64) ** (-1.0 / (exponent - 1.0))
    probs = weights / weights.sum()
    m = int(round(n * avg_degree))
    rows = rng.choice(n, size=m, p=probs)
    cols = rng.choice(n, size=m, p=probs)
    perm = rng.permutation(n)
    return _dedupe_and_build(perm[rows], perm[cols], n)


def planted_partition(
    n: int,
    n_classes: int,
    avg_degree: float,
    rng: np.random.Generator,
    *,
    intra_fraction: float = 0.8,
) -> tuple[CSRMatrix, np.ndarray]:
    """Community graph with labels: ``intra_fraction`` of edges stay in-class.

    Returns ``(adjacency, labels)``.  A GNN can recover the labels from the
    connectivity, which is what the accuracy-parity experiment needs.
    """
    if not 0.0 <= intra_fraction <= 1.0:
        raise ValueError("intra_fraction must be in [0, 1]")
    if n_classes <= 0 or n < n_classes:
        raise ValueError("need at least one vertex per class")
    labels = rng.integers(0, n_classes, size=n)
    m = int(round(n * avg_degree))
    rows = rng.integers(0, n, size=m)
    intra = rng.random(m) < intra_fraction
    # Intra-class edges: pick a target uniformly from the source's class.
    # Vectorized via per-class vertex pools and random indices into them.
    cols = rng.integers(0, n, size=m)
    order = np.argsort(labels, kind="stable")
    class_start = np.searchsorted(labels[order], np.arange(n_classes))
    class_size = np.bincount(labels, minlength=n_classes)
    src_class = labels[rows[intra]]
    offsets = (rng.random(int(intra.sum())) * class_size[src_class]).astype(np.int64)
    cols[intra] = order[class_start[src_class] + offsets]
    adj = _dedupe_and_build(
        np.concatenate([rows, cols]), np.concatenate([cols, rows]), n
    )
    return adj, labels
