"""The Graph container: CSR adjacency plus node features, labels and splits."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sparse import CSRMatrix

__all__ = ["Graph"]


@dataclass
class Graph:
    """A node-classification graph dataset.

    ``adj[u, v] != 0`` means an edge ``u -> v``; aggregation in layer ``l``
    pulls messages along rows, matching the paper's ``Q A`` orientation where
    row ``u`` of ``A`` lists the neighbors ``u`` aggregates from.
    """

    name: str
    adj: CSRMatrix
    features: np.ndarray | None = None
    labels: np.ndarray | None = None
    train_idx: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    val_idx: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    test_idx: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    def __post_init__(self) -> None:
        if self.adj.shape[0] != self.adj.shape[1]:
            raise ValueError(f"adjacency must be square, got {self.adj.shape}")
        try:
            self.adj.check()
        except ValueError as exc:
            raise ValueError(
                f"graph {self.name!r} adjacency is not canonical CSR: {exc}. "
                f"Samplers and the delta-CSR overlay rely on sorted, "
                f"duplicate-free column indices per row; build the matrix "
                f"through CSRMatrix.from_coo (which sorts and merges "
                f"duplicates) instead of assembling indptr/indices by hand"
            ) from exc
        if self.features is not None and self.features.shape[0] != self.n:
            raise ValueError("one feature row per vertex required")
        if self.labels is not None and self.labels.shape[0] != self.n:
            raise ValueError("one label per vertex required")
        for idx in (self.train_idx, self.val_idx, self.test_idx):
            if idx.size and (idx.min() < 0 or idx.max() >= self.n):
                raise ValueError("split index out of range")

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.adj.shape[0]

    @property
    def m(self) -> int:
        """Number of (directed) edges."""
        return self.adj.nnz

    @property
    def n_features(self) -> int:
        return 0 if self.features is None else self.features.shape[1]

    @property
    def n_classes(self) -> int:
        return 0 if self.labels is None else int(self.labels.max()) + 1

    def out_degrees(self) -> np.ndarray:
        """Out-degree (number of aggregation sources) of every vertex."""
        return self.adj.nnz_per_row()

    def avg_degree(self) -> float:
        """Mean directed degree m / n."""
        return self.m / self.n if self.n else 0.0

    def num_batches(self, batch_size: int) -> int:
        """Full minibatches available from the training split."""
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        return self.train_idx.size // batch_size

    def make_batches(
        self, batch_size: int, rng: np.random.Generator | None = None
    ) -> list[np.ndarray]:
        """Partition the training vertices into full-size minibatches.

        A ``rng`` shuffles vertices first (the usual epoch shuffle); without
        one the split is deterministic in index order.
        """
        idx = self.train_idx.copy()
        if rng is not None:
            rng.shuffle(idx)
        k = self.num_batches(batch_size)
        if k == 0:
            raise ValueError(
                f"training split ({idx.size}) smaller than one batch ({batch_size})"
            )
        return [idx[i * batch_size : (i + 1) * batch_size] for i in range(k)]
