"""Synthetic stand-ins for the paper's datasets (Table 3).

The paper evaluates on three graphs none of which can be used here (OGB
downloads and the HipMCL repository are network/storage gated, and the
full sizes need a GPU cluster's aggregate memory):

======== ========= ======== ======== ========== ==================
Name     Vertices  Edges    Batches  Features   Character
======== ========= ======== ======== ========== ==================
Products 2.4M      126M     196      100        dense (d about 53)
Protein  8.7M      1.3B     1024     128        densest (d about 150)
Papers   111M      1.6B     1172     128        sparse, huge n (d about 14)
======== ========= ======== ======== ========== ==================

Each stand-in keeps the property that drives the paper's performance story:
relative density and vertex count.  ``scale`` shrinks vertex counts while
preserving average degree, feature width and the train-fraction that yields
the paper's batch counts.  Protein's features are random in the paper too
(performance-only dataset), which we inherit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .generators import planted_partition, rmat
from .graph import Graph

__all__ = ["DatasetSpec", "PAPER_DATASETS", "load_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """Paper-scale statistics of one evaluation dataset (Table 3)."""

    name: str
    vertices: int
    edges: int
    batches: int
    features: int
    batch_size: int  # batch size the paper pairs with this dataset (Table 4)

    @property
    def avg_degree(self) -> float:
        return self.edges / self.vertices

    @property
    def train_fraction(self) -> float:
        """Fraction of vertices in the training split implied by Table 3."""
        return min(0.9, self.batches * self.batch_size / self.vertices)


PAPER_DATASETS: dict[str, DatasetSpec] = {
    "products": DatasetSpec("products", 2_449_029, 126_167_053, 196, 100, 1024),
    "protein": DatasetSpec("protein", 8_745_542, 1_300_000_000, 1024, 128, 1024),
    "papers": DatasetSpec("papers", 111_059_956, 1_615_685_872, 1172, 128, 1024),
}

#: RMAT scale exponent for each dataset at ``scale=1.0`` (sim-scale n = 2**exp).
_SIM_SCALE_EXP = {"products": 12, "protein": 13, "papers": 16}


def dataset_names() -> list[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(PAPER_DATASETS)


def load_dataset(
    name: str,
    *,
    scale: float = 1.0,
    seed: int = 0,
    with_labels: bool = False,
    n_classes: int = 16,
) -> Graph:
    """Generate the sim-scale stand-in for a paper dataset.

    ``scale`` multiplies the sim-scale vertex count (``scale=0.25`` quarters
    it); average degree, feature width and train fraction always follow the
    paper spec.  With ``with_labels`` the topology comes from the planted-
    partition generator so the labels are learnable (accuracy experiments);
    otherwise R-MAT topology with random features (performance experiments,
    like the paper's Protein dataset).
    """
    if name not in PAPER_DATASETS:
        raise KeyError(f"unknown dataset {name!r}; options: {dataset_names()}")
    if scale <= 0:
        raise ValueError("scale must be positive")
    spec = PAPER_DATASETS[name]
    rng = np.random.default_rng(seed)
    base_exp = _SIM_SCALE_EXP[name]
    n_target = max(256, int(round((1 << base_exp) * scale)))
    # Paper degree, capped so tiny sim graphs stay sparser than complete.
    avg_degree = min(spec.avg_degree, n_target / 8)

    labels: np.ndarray | None
    if with_labels:
        adj, labels = planted_partition(
            n_target, n_classes, avg_degree, rng, intra_fraction=0.85
        )
    else:
        scale_exp = max(8, int(round(np.log2(n_target))))
        edge_factor = max(1, int(round(avg_degree)))
        adj = rmat(scale_exp, edge_factor, rng)
        labels = rng.integers(0, n_classes, size=adj.shape[0])
    n = adj.shape[0]

    if with_labels:
        # Features carry a noisy class signal so the model can learn.
        centroids = rng.standard_normal((n_classes, spec.features))
        features = centroids[labels] + 0.5 * rng.standard_normal((n, spec.features))
    else:
        features = rng.standard_normal((n, spec.features))
    features = features.astype(np.float64)

    perm = rng.permutation(n)
    n_train = max(1, int(round(spec.train_fraction * n)))
    n_val = max(1, min(n - n_train, n // 10)) if n > n_train else 0
    return Graph(
        name=f"{name}-sim",
        adj=adj,
        features=features,
        labels=labels,
        train_idx=np.sort(perm[:n_train]),
        val_idx=np.sort(perm[n_train : n_train + n_val]),
        test_idx=np.sort(perm[n_train + n_val :]),
    )
