"""Dataset statistics: the Table 3 summary and degree-distribution probes."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .datasets import PAPER_DATASETS
from .graph import Graph

__all__ = ["GraphStats", "summarize", "table3_rows"]


@dataclass(frozen=True)
class GraphStats:
    """Observed statistics of a generated graph."""

    name: str
    vertices: int
    edges: int
    avg_degree: float
    max_degree: int
    features: int
    train_vertices: int

    def row(self) -> dict[str, object]:
        """Flat dict for tabular reporting."""
        return {
            "name": self.name,
            "vertices": self.vertices,
            "edges": self.edges,
            "avg_degree": round(self.avg_degree, 1),
            "max_degree": self.max_degree,
            "features": self.features,
            "train_vertices": self.train_vertices,
        }


def summarize(graph: Graph) -> GraphStats:
    """Compute :class:`GraphStats` for a graph."""
    degs = graph.out_degrees()
    return GraphStats(
        name=graph.name,
        vertices=graph.n,
        edges=graph.m,
        avg_degree=graph.avg_degree(),
        max_degree=int(degs.max()) if degs.size else 0,
        features=graph.n_features,
        train_vertices=int(graph.train_idx.size),
    )


def table3_rows(batch_size: int = 1024) -> list[dict[str, object]]:
    """The paper's Table 3 at full (paper) scale, one dict per dataset."""
    rows = []
    for spec in PAPER_DATASETS.values():
        rows.append(
            {
                "name": spec.name,
                "vertices": spec.vertices,
                "edges": spec.edges,
                "batches": spec.batches,
                "features": spec.features,
                "avg_degree": round(spec.avg_degree, 1),
            }
        )
    return rows


def degree_histogram(graph: Graph, bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
    """Log-spaced degree histogram (counts, bin_edges) for skew inspection."""
    degs = graph.out_degrees()
    degs = degs[degs > 0]
    if degs.size == 0:
        return np.zeros(bins, dtype=np.int64), np.arange(bins + 1, dtype=np.float64)
    edges = np.unique(
        np.logspace(0, np.log10(degs.max() + 1), bins + 1).astype(np.int64)
    )
    counts, edges = np.histogram(degs, bins=edges)
    return counts, edges
