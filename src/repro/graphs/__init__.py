"""Graph dataset substrate: containers, generators and paper stand-ins."""

from .datasets import PAPER_DATASETS, DatasetSpec, dataset_names, load_dataset
from .generators import chung_lu, erdos_renyi, planted_partition, rmat
from .graph import Graph
from .io import load_graph, save_graph
from .stats import GraphStats, summarize, table3_rows

__all__ = [
    "Graph",
    "save_graph",
    "load_graph",
    "rmat",
    "erdos_renyi",
    "chung_lu",
    "planted_partition",
    "DatasetSpec",
    "PAPER_DATASETS",
    "load_dataset",
    "dataset_names",
    "GraphStats",
    "summarize",
    "table3_rows",
]
