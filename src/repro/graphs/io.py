"""Graph serialization: save/load the Graph container as a single .npz.

Generating the larger sim-scale stand-ins takes tens of seconds; persisting
them lets benchmark sweeps and examples share one generated instance.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..sparse import CSRMatrix
from .graph import Graph

__all__ = ["save_graph", "load_graph"]

_FORMAT_VERSION = 1


def save_graph(graph: Graph, path: str | Path) -> Path:
    """Write a graph (topology, features, labels, splits) to ``path``."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {
        "version": np.array([_FORMAT_VERSION]),
        "name": np.array([graph.name]),
        "indptr": graph.adj.indptr,
        "indices": graph.adj.indices,
        "data": graph.adj.data,
        "shape": np.array(graph.adj.shape),
        "train_idx": graph.train_idx,
        "val_idx": graph.val_idx,
        "test_idx": graph.test_idx,
    }
    if graph.features is not None:
        arrays["features"] = graph.features
    if graph.labels is not None:
        arrays["labels"] = graph.labels
    np.savez_compressed(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_graph(path: str | Path) -> Graph:
    """Read a graph previously written by :func:`save_graph`."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported graph file version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        adj = CSRMatrix(
            data["indptr"], data["indices"], data["data"],
            tuple(int(x) for x in data["shape"]),
        )
        return Graph(
            name=str(data["name"][0]),
            adj=adj,
            features=data["features"] if "features" in data else None,
            labels=data["labels"] if "labels" in data else None,
            train_idx=data["train_idx"],
            val_idx=data["val_idx"],
            test_idx=data["test_idx"],
        )
