"""The sampling-plan IR: Algorithm 1 as *data*, interpreted by executors.

The paper's central claim is that LADIES, FastGCN, GraphSAGE (and, with one
extra step kind, GraphSAINT) are the *same* matrix program — PROB (an
SpGEMM), NORM, SAMPLE (inverse transform sampling), EXTRACT — differing
only in how each step is parameterized.  This module makes that claim
operational: a :class:`MatrixSampler` *emits* a declarative
:class:`SamplingPlan` built from four step types, and an executor
*interprets* it.  Two executors interpret identical plans:

* :class:`LocalExecutor` (here) — one device, serial SpGEMMs; the loop of
  Algorithm 1.
* :class:`~repro.distributed.partitioned.PartitionedExecutor` — the same
  program over the 1.5D ``p/c x c`` grid of Algorithm 2, with PROB and the
  row-extraction half of EXTRACT running as distributed SpGEMMs.

Because distribution is a property of the *executor* rather than of the
sampler, any sampler that emits a plan — including registry plugins — runs
partitioned for free, and per-phase time attribution (``probability`` /
``sampling`` / ``extraction``) is derived from step types via
:func:`step_phase` instead of hand-placed phase calls.

Step vocabulary (paper mapping)
-------------------------------
``ProbStep``
    ``P^l = Q^l A`` (Algorithm 1 line 2).  ``source`` picks how ``Q`` is
    built: ``"frontier"`` (one row-selector row per frontier vertex —
    node-wise), ``"indicator"`` (one indicator row per batch — layer-wise),
    or ``"global"`` (a batch-independent importance row from A's column
    norms — FastGCN; no per-layer SpGEMM).
``NormStep``
    ``P = NORM(P)`` — the sampler's row-local normalization.
``SampleStep``
    ``Q^{l-1} = SAMPLE(P, count)`` — ITS/Gumbel, ``count`` draws per row.
``ExtractStep``
    ``A^l = EXTRACT(...)``: ``"compact"`` (per-batch column compaction,
    section 4.1.3), ``"bipartite"`` (row-extraction SpGEMM + per-batch
    column extraction, section 4.2.4), ``"walk"`` (advance random-walk
    positions — GraphSAINT's inner step), or ``"subgraph"`` (induce ``A``
    on the visited set and emit all layers — GraphSAINT's EXTRACT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence, Union

import numpy as np

from ..obs.trace import get_tracer, plan_step_name
from ..sparse import CSRMatrix, vstack
from .frontier import LayerSample, MinibatchSample

if TYPE_CHECKING:  # pragma: no cover
    from .sampler_base import MatrixSampler, SpGEMMFn

__all__ = [
    "ProbStep",
    "NormStep",
    "SampleStep",
    "ExtractStep",
    "Step",
    "SamplingPlan",
    "step_phase",
    "LocalExecutor",
]

_PROB_SOURCES = ("frontier", "indicator", "global")
_EXTRACT_KINDS = ("compact", "bipartite", "walk", "subgraph")


@dataclass(frozen=True)
class ProbStep:
    """PROB: build this stage's probability matrix ``P``."""

    source: str = "frontier"

    #: Set on fused step subclasses (see :mod:`repro.core.compile`); plain
    #: interpreters refuse steps with ``fused=True``.
    fused = False

    def __post_init__(self) -> None:
        if self.source not in _PROB_SOURCES:
            raise ValueError(
                f"unknown PROB source {self.source!r}; "
                f"expected one of {_PROB_SOURCES}"
            )

    def describe_args(self) -> list[str]:
        return [self.source]


@dataclass(frozen=True)
class NormStep:
    """NORM: the sampler's row-local normalization of ``P``."""

    fused = False

    def describe_args(self) -> list[str]:
        return []


@dataclass(frozen=True)
class SampleStep:
    """SAMPLE: draw ``count`` distinct columns per row of ``P``."""

    count: int

    fused = False

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"SAMPLE count must be positive, got {self.count}")

    def describe_args(self) -> list[str]:
        return [f"s={self.count}"]


@dataclass(frozen=True)
class ExtractStep:
    """EXTRACT: turn the sampled ``Q^{l-1}`` into layers / a new frontier.

    ``union_dst`` unions each batch's destination vertices into its sampled
    set (the root-term trick); ``debias`` importance-reweights the layer
    (pure LADIES only); ``n_layers`` is the GNN depth a ``"subgraph"``
    extraction emits.
    """

    kind: str = "compact"
    union_dst: bool = False
    debias: bool = False
    n_layers: int | None = None

    fused = False

    def describe_args(self) -> list[str]:
        args = [self.kind]
        if self.union_dst:
            args.append("union_dst")
        if self.debias:
            args.append("debias")
        if self.n_layers is not None:
            args.append(f"n_layers={self.n_layers}")
        return args

    def __post_init__(self) -> None:
        if self.kind not in _EXTRACT_KINDS:
            raise ValueError(
                f"unknown EXTRACT kind {self.kind!r}; "
                f"expected one of {_EXTRACT_KINDS}"
            )
        if self.kind == "subgraph" and (
            self.n_layers is None or self.n_layers <= 0
        ):
            raise ValueError("subgraph extraction needs n_layers >= 1")


Step = Union[ProbStep, NormStep, SampleStep, ExtractStep]


def step_phase(step: Step) -> str:
    """The Figure-7 phase a step's work is attributed to, by step type."""
    if isinstance(step, ProbStep):
        return "probability"
    if isinstance(step, (NormStep, SampleStep)):
        return "sampling"
    if isinstance(step, ExtractStep):
        return "extraction"
    raise TypeError(f"not a plan step: {step!r}")


@dataclass(frozen=True)
class SamplingPlan:
    """A sampler's whole bulk computation as a linear program of steps.

    Plans are emitted for a *concrete* fanout (``SampleStep.count`` values
    are literal), so one plan fully describes one bulk call and can be
    interpreted by any executor.  Construction validates basic dataflow:
    SAMPLE needs a preceding PROB, and every EXTRACT needs a preceding
    SAMPLE (except ``"subgraph"``, which reads the walk history).
    """

    steps: tuple[Step, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a sampling plan needs at least one step")
        have_p = have_q = False
        for step in self.steps:
            if isinstance(step, ProbStep):
                have_p = True
            elif isinstance(step, NormStep):
                if not have_p:
                    raise ValueError("NORM before any PROB step")
            elif isinstance(step, SampleStep):
                if not have_p:
                    raise ValueError("SAMPLE before any PROB step")
                have_q = True
            elif isinstance(step, ExtractStep):
                if step.kind != "subgraph" and not have_q:
                    raise ValueError(
                        f"EXTRACT {step.kind!r} before any SAMPLE step"
                    )
            else:
                raise TypeError(f"not a plan step: {step!r}")

    def __len__(self) -> int:
        return len(self.steps)

    def digest(self) -> str:
        """Stable content hash of the program (steps are frozen dataclasses
        with value reprs).  Worker pools key warm per-process sampler state
        by this digest so the hot-path task message carries 16 bytes, not
        a pickled plan; two plans share a digest iff they would execute
        identically."""
        import hashlib

        h = hashlib.blake2b(digest_size=16)
        for step in self.steps:
            h.update(type(step).__name__.encode())
            h.update(repr(step).encode())
        return h.hexdigest()

    def describe(self) -> str:
        """One line per step: ``phase  STEP(args)`` — for docs and debug.

        Fused steps (from :func:`repro.core.compile.optimize`) render under
        their own display names (``PROB+NORM``, ``SAMPLE+EXTRACT``) so an
        optimized program shows its fusions.
        """
        lines = []
        for step in self.steps:
            name = getattr(
                step,
                "display_name",
                type(step).__name__.removesuffix("Step").upper(),
            )
            args = step.describe_args()
            lines.append(f"{step_phase(step):<12} {name}({', '.join(args)})")
        return "\n".join(lines)


class LocalExecutor:
    """Interpret a :class:`SamplingPlan` on one device.

    Carries the executor state Algorithm 1 threads between steps: the
    per-batch frontiers, the current ``P`` / sampled ``Q`` pair with its
    row-to-batch ``bounds``, the collected layers, and (for graph-wise
    plans) the walk history.  RNG handling matches the historical loops
    exactly — a single generator is consumed across the whole stacked bulk,
    per-batch generators draw per row block — so fixed-seed output is
    bit-identical to the pre-IR implementations (pinned by the golden
    digest suite).
    """

    def __init__(
        self,
        sampler: "MatrixSampler",
        adj: CSRMatrix,
        batches: Sequence[np.ndarray],
        rng,
        spgemm_fn: "SpGEMMFn",
    ) -> None:
        self.sampler = sampler
        self.adj = adj
        self.n = adj.shape[0]
        self.batches = [np.asarray(b, dtype=np.int64) for b in batches]
        self.k = len(self.batches)
        self.rng = rng
        self.spgemm = spgemm_fn
        # Frontier state: per-batch destination lists, batch-outward layers.
        self.dst_lists: list[np.ndarray] = [b for b in self.batches]
        self.layers_rev: list[list[LayerSample]] = [[] for _ in range(self.k)]
        self.results: list[MinibatchSample | None] = [None] * self.k
        # Step-to-step dataflow.
        self.p: CSRMatrix | None = None
        self.q_next: CSRMatrix | None = None
        self.bounds: np.ndarray | None = None
        self.s: int | None = None
        self.frontier: np.ndarray | None = None
        self.importance: CSRMatrix | None = None
        self.visited: list[np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # Driver
    # ------------------------------------------------------------------ #
    def run(self, plan: SamplingPlan) -> list[MinibatchSample]:
        tracer = get_tracer()
        if tracer is None:
            for step in plan.steps:
                self._dispatch(step)
        else:
            # One wall-clock span per plan step (the sim clock is charged
            # per whole plan, not per step).  Wrapping here, not in
            # _dispatch, covers the compiled executor's fused-step
            # override through the same single hook.
            for step in plan.steps:
                with tracer.span(
                    plan_step_name(step),
                    cat="plan",
                    domain="wall",
                    args={"phase": step_phase(step), "k": self.k},
                ):
                    self._dispatch(step)
        return [
            self.results[i]
            if self.results[i] is not None
            else MinibatchSample(
                self.batches[i], list(reversed(self.layers_rev[i]))
            )
            for i in range(self.k)
        ]

    def _dispatch(self, step: Step) -> None:
        """Interpret one step.  Subclasses (the compiled executor) override
        this to handle fused steps; the plain interpreter refuses them so a
        half-threaded optimized plan fails loudly instead of silently
        skipping work."""
        if step.fused:
            raise TypeError(
                f"{type(step).__name__} needs the compiled executor "
                f"(kernel='compiled'); the plain interpreter cannot run "
                f"fused steps"
            )
        if isinstance(step, ProbStep):
            self._prob(step)
        elif isinstance(step, NormStep):
            self.p = self.sampler.norm(self.p)
        elif isinstance(step, SampleStep):
            self._sample(step)
        else:
            self._extract(step)

    # ------------------------------------------------------------------ #
    # PROB
    # ------------------------------------------------------------------ #
    def _prob(self, step: ProbStep) -> None:
        if step.source == "frontier":
            self.frontier = np.concatenate(self.dst_lists)
            self.bounds = np.cumsum([0] + [len(d) for d in self.dst_lists])
            q = self.sampler.make_q(self.frontier, self.n)
            self.p = self.spgemm(q, self.adj)
        elif step.source == "indicator":
            self.bounds = np.arange(self.k + 1)
            q = self.sampler.make_q(self.dst_lists, self.n)
            self.p = self.spgemm(q, self.adj)
        else:  # global importance: computed once, stacked per batch
            if self.importance is None:
                self.importance = self.sampler.importance_row(self.adj)
            self.bounds = np.arange(self.k + 1)
            self.p = vstack([self.importance] * self.k)

    # ------------------------------------------------------------------ #
    # SAMPLE
    # ------------------------------------------------------------------ #
    def _sample(self, step: SampleStep) -> None:
        self.s = step.count
        self.q_next = self.sampler.sample_stacked(
            self.p, step.count, self.rng, self.bounds
        )

    # ------------------------------------------------------------------ #
    # EXTRACT
    # ------------------------------------------------------------------ #
    def _extract(self, step: ExtractStep) -> None:
        if step.kind == "compact":
            self._extract_compact()
        elif step.kind == "bipartite":
            self._extract_bipartite(step)
        elif step.kind == "walk":
            self._extract_walk()
        else:
            self._extract_subgraph(step)

    def _extract_compact(self) -> None:
        new_dsts: list[np.ndarray] = []
        for i in range(self.k):
            rows = self.q_next.row_block(
                int(self.bounds[i]), int(self.bounds[i + 1])
            )
            layer = self.sampler.extract_batch_layer(rows, self.dst_lists[i])
            self.layers_rev[i].append(layer)
            new_dsts.append(layer.src_ids)
        self.dst_lists = new_dsts

    def _extract_bipartite(self, step: ExtractStep) -> None:
        sampled = [self.q_next.row(i)[0] for i in range(self.k)]
        self._extract_bipartite_from(sampled, step)

    def _extract_bipartite_from(
        self, sampled: list[np.ndarray], step: ExtractStep
    ) -> None:
        """Bipartite extraction given the per-batch sampled vertex lists
        (read off ``q_next`` rows, or off the selection mask in the compiled
        executor)."""
        if step.union_dst:
            sampled = [
                np.union1d(sv, dv) for sv, dv in zip(sampled, self.dst_lists)
            ]
        a_r = self.sampler.row_extract(
            self.adj, self.dst_lists, spgemm_fn=self.spgemm
        )
        a_s = self.sampler.col_extract(
            a_r, self.dst_lists, sampled, spgemm_fn=self.spgemm
        )
        for i in range(self.k):
            layer = LayerSample(a_s[i], sampled[i], self.dst_lists[i])
            if step.debias:
                probs = np.zeros(self.n)
                cols, vals = self.p.row(i)
                probs[cols] = vals
                layer = self.sampler.debias_layer(layer, probs, self.s)
            self.layers_rev[i].append(layer)
        self.dst_lists = sampled

    def _extract_walk(self) -> None:
        if self.visited is None:
            self.visited = [self.frontier]
        nxt = self.frontier.copy()
        picked = np.flatnonzero(self.q_next.nnz_per_row() > 0)
        nxt[picked] = self.q_next.indices
        self.visited.append(nxt)
        self.dst_lists = [
            nxt[int(self.bounds[i]) : int(self.bounds[i + 1])]
            for i in range(self.k)
        ]

    def _extract_subgraph(self, step: ExtractStep) -> None:
        if self.visited is None:  # degenerate zero-step walk
            self.visited = [np.concatenate(self.dst_lists)]
            self.bounds = np.cumsum([0] + [len(d) for d in self.dst_lists])
        for i in range(self.k):
            batch = self.batches[i]
            lo, hi = int(self.bounds[i]), int(self.bounds[i + 1])
            mine = np.unique(
                np.concatenate([stepv[lo:hi] for stepv in self.visited])
            )
            verts = np.union1d(mine, batch)
            sub = self.sampler.induced_subgraph(
                self.adj, verts, spgemm_fn=self.spgemm
            )
            layers = [
                LayerSample(sub, verts, verts)
                for _ in range(step.n_layers - 1)
            ]
            pos = np.searchsorted(verts, batch)
            layers.append(LayerSample(sub.extract_rows(pos), verts, batch))
            self.results[i] = MinibatchSample(batch, layers)
