"""The paper's primary contribution: matrix-based bulk sampling.

Algorithm 1's NORM/SAMPLE/EXTRACT abstraction, inverse transform sampling,
and its GraphSAGE, LADIES and FastGCN instantiations.
"""

from .bulk import (
    assign_round_robin,
    batch_rng,
    chunk_bulks,
    reassemble_round_robin,
    split_stacked,
    stack_batches,
)
from .compile import (
    CompiledLocalExecutor,
    FusedProbNormStep,
    FusedSampleExtractStep,
    ProbCache,
    eliminate_dead_steps,
    fuse_prob_norm,
    fuse_sample_extract,
    optimize,
)
from .fastgcn_sampler import FastGCNSampler
from .frontier import LayerSample, MinibatchSample
from .its import gumbel_topk_rows, its_flops, its_sample_rows
from .ladies_sampler import LadiesSampler
from .plan import (
    ExtractStep,
    LocalExecutor,
    NormStep,
    ProbStep,
    SampleStep,
    SamplingPlan,
    step_phase,
)
from .sage_sampler import SageSampler
from .saint_sampler import GraphSaintRWSampler
from .sampler_base import MatrixSampler, SpGEMMFn

__all__ = [
    "MatrixSampler",
    "SpGEMMFn",
    "SageSampler",
    "LadiesSampler",
    "FastGCNSampler",
    "GraphSaintRWSampler",
    "LayerSample",
    "MinibatchSample",
    "SamplingPlan",
    "ProbStep",
    "NormStep",
    "SampleStep",
    "ExtractStep",
    "step_phase",
    "LocalExecutor",
    "CompiledLocalExecutor",
    "FusedProbNormStep",
    "FusedSampleExtractStep",
    "ProbCache",
    "eliminate_dead_steps",
    "fuse_prob_norm",
    "fuse_sample_extract",
    "optimize",
    "its_sample_rows",
    "gumbel_topk_rows",
    "its_flops",
    "chunk_bulks",
    "assign_round_robin",
    "reassemble_round_robin",
    "batch_rng",
    "stack_batches",
    "split_stacked",
]
