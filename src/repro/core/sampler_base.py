"""The matrix-based sampling abstraction (paper Algorithm 1).

Every sampling algorithm is the same program over layers::

    for l = L .. 1:
        P       = Q^l A          # generate probability distributions
        P       = NORM(P)        # sampler-specific normalization
        Q^{l-1} = SAMPLE(P, b, s)  # inverse transform sampling per row
        A^l     = EXTRACT(A, Q^l, Q^{l-1})

Samplers differ only in how ``Q`` is constructed, how ``NORM`` turns the
SpGEMM output into per-row distributions, and what ``EXTRACT`` keeps.  The
:class:`MatrixSampler` base class pins that contract: a sampler *emits*
that program as a declarative :class:`~repro.core.plan.SamplingPlan` (four
step types — PROB / NORM / SAMPLE / EXTRACT) via :meth:`MatrixSampler.plan`
and implements the row-local primitives the steps reference.  The SAMPLE
step is shared (ITS, with a Gumbel backend option) and lives in
:mod:`repro.core.its`.

Execution is an executor concern, not a sampler concern:
:meth:`MatrixSampler.sample_bulk` hands the plan to the single-device
:class:`~repro.core.plan.LocalExecutor`, while the distributed drivers
(:mod:`repro.distributed`) interpret the *same* plan with distributed
SpGEMMs substituted for the ``Q^l A`` products — so sampler semantics are
defined exactly once and distributed support is a derived capability
("the sampler has a plan").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence, Union

import numpy as np

from ..sparse import CSRMatrix, vstack
from ..sparse.kernels import KernelSpec, get_kernel
from .frontier import MinibatchSample
from .its import (
    gumbel_select_mask,
    gumbel_topk_rows,
    its_sample_rows,
    its_select_mask,
)
from .plan import LocalExecutor, SamplingPlan

__all__ = ["MatrixSampler", "SpGEMMFn", "RngSpec"]

#: Signature of the SpGEMM used for the probability product; distributed
#: algorithms substitute their own.
SpGEMMFn = Callable[[CSRMatrix, CSRMatrix], CSRMatrix]

#: Randomness accepted by ``sample_bulk``: one generator consumed across the
#: whole stacked bulk (the historical behaviour), or one independent
#: generator per batch.  Per-batch streams make a batch's draws depend only
#: on its own stream and its own frontier — the property the replicated
#: driver uses to seed by *global* batch index so sampling output is
#: invariant to the world size.
RngSpec = Union[np.random.Generator, Sequence[np.random.Generator]]


class MatrixSampler(ABC):
    """Base class for matrix-expressible sampling algorithms.

    ``sample_backend`` selects the SAMPLE implementation: ``"its"`` (the
    paper's inverse transform sampling) or ``"gumbel"`` (equivalent
    distribution, single pass).  ``kernel`` selects the sparse-kernel
    backend (a :data:`repro.sparse.KERNELS` name or a
    :class:`~repro.sparse.KernelBackend` instance) used for the sampler's
    own SpGEMMs; ``None`` means the process-wide default.  The spec is
    kept as given and resolved per call, so a ``None``-kernel sampler
    tracks later :func:`~repro.sparse.set_default_kernel` /
    :func:`~repro.sparse.use_kernel` changes instead of snapshotting the
    default at construction.
    """

    name: str = "abstract"

    def __init__(
        self, sample_backend: str = "its", kernel: KernelSpec = None
    ) -> None:
        if sample_backend not in ("its", "gumbel"):
            raise ValueError(f"unknown sample backend {sample_backend!r}")
        self.sample_backend = sample_backend
        get_kernel(kernel)  # fail fast on a typo'd registry name
        self.kernel = kernel

    def _resolve_spgemm(self, spgemm_fn: SpGEMMFn | None) -> SpGEMMFn:
        """The SpGEMM to use: an explicit override (e.g. a distributed or
        recording wrapper) or this sampler's kernel backend."""
        return get_kernel(self.kernel).spgemm if spgemm_fn is None else spgemm_fn

    # ------------------------------------------------------------------ #
    # Algorithm-1 pieces
    # ------------------------------------------------------------------ #
    @abstractmethod
    def norm(self, p: CSRMatrix) -> CSRMatrix:
        """NORM(P): turn the raw ``Q A`` product into per-row distributions."""

    def norm_inplace(self, p: CSRMatrix) -> CSRMatrix:
        """NORM(P) overwriting ``p`` — the fused PROB+NORM kernel.

        Called only on probability matrices the executor freshly computed
        (and therefore owns).  Must produce bit-identical values to
        :meth:`norm`; the base delegates to it (copying), so overriding is
        a pure optimization samplers opt into.
        """
        return self.norm(p)

    def sample(
        self, p: CSRMatrix, s: int, rng: np.random.Generator
    ) -> CSRMatrix:
        """SAMPLE(P, s): ``min(s, nnz)`` distinct columns per row of ``p``."""
        if self.sample_backend == "gumbel":
            return gumbel_topk_rows(p, s, rng)
        return its_sample_rows(p, s, rng)

    def sample_mask(
        self, p: CSRMatrix, s: int, rng: np.random.Generator
    ) -> np.ndarray:
        """:meth:`sample` as a boolean mask over ``p``'s nonzeros.

        Identical draws in identical order (the CSR build is the only
        thing skipped) — the form the fused SAMPLE+EXTRACT kernels read.
        """
        if self.sample_backend == "gumbel":
            return gumbel_select_mask(p, s, rng)
        return its_select_mask(p, s, rng)

    @staticmethod
    def _normalize_rng(rng: RngSpec, k: int):
        """Normalize a ``sample_bulk`` rng argument, materializing and
        validating a per-batch sequence (which may be a one-shot iterator)
        exactly once.

        Returns a single generator unchanged (legacy stacked consumption)
        or a list of one generator per batch.
        """
        if isinstance(rng, np.random.Generator):
            return rng
        rngs = list(rng)
        if len(rngs) != k:
            raise ValueError(
                f"need one rng per batch: got {len(rngs)} for {k} batches"
            )
        if not all(isinstance(g, np.random.Generator) for g in rngs):
            raise TypeError("per-batch rngs must be numpy Generators")
        return rngs

    def sample_stacked(
        self,
        p: CSRMatrix,
        s: int,
        rng: RngSpec,
        bounds: Sequence[int] | np.ndarray,
    ) -> CSRMatrix:
        """SAMPLE on a stacked ``P`` whose row blocks belong to batches.

        With a single generator this is exactly :meth:`sample` (one stream
        consumed across the whole stack).  With per-batch generators
        (a list from :meth:`_normalize_rng`) each block
        ``bounds[i]:bounds[i+1]`` is sampled from its own stream, so a
        batch's draws do not depend on what else happens to be stacked with
        it.  Rows are independent under ITS/Gumbel, so the distribution is
        identical either way.
        """
        if isinstance(rng, np.random.Generator):
            return self.sample(p, s, rng)
        if len(rng) != len(bounds) - 1:
            raise ValueError(
                f"need one rng per row block: got {len(rng)} for "
                f"{len(bounds) - 1} blocks"
            )
        parts = [
            self.sample(p.row_block(int(bounds[i]), int(bounds[i + 1])), s, g)
            for i, g in enumerate(rng)
        ]
        return vstack(parts)

    def sample_stacked_mask(
        self,
        p: CSRMatrix,
        s: int,
        rng: RngSpec,
        bounds: Sequence[int] | np.ndarray,
    ) -> np.ndarray:
        """:meth:`sample_stacked` as a mask over ``p``'s nonzeros.

        Per-batch generators sample each zero-copy row block separately
        (consuming each stream exactly as :meth:`sample_stacked` does) and
        the block masks concatenate back into ``p``'s global nonzero
        order, since the blocks tile ``p``'s nnz contiguously.
        """
        if isinstance(rng, np.random.Generator):
            return self.sample_mask(p, s, rng)
        if len(rng) != len(bounds) - 1:
            raise ValueError(
                f"need one rng per row block: got {len(rng)} for "
                f"{len(bounds) - 1} blocks"
            )
        parts = [
            self.sample_mask(
                p.row_block(int(bounds[i]), int(bounds[i + 1])), s, g
            )
            for i, g in enumerate(rng)
        ]
        if not parts:
            return np.zeros(0, dtype=bool)
        return np.concatenate(parts)

    # ------------------------------------------------------------------ #
    # Plan emission + whole-algorithm entry point (single device)
    # ------------------------------------------------------------------ #
    def plan(self, fanout: Sequence[int]) -> SamplingPlan | None:
        """Emit this sampler's declarative program for a concrete fanout.

        Returning a :class:`~repro.core.plan.SamplingPlan` is what makes a
        sampler executable — locally through :meth:`sample_bulk`, and
        under *every* distributed executor (replicated runs the local plan
        per rank; partitioned interprets the same plan over the 1.5D
        grid).  The base returns ``None``: no matrix program, so only a
        hand-written ``sample_bulk`` override could run it.
        """
        return None

    def sample_bulk(
        self,
        adj: CSRMatrix,
        batches: Sequence[np.ndarray],
        fanout: Sequence[int],
        rng: RngSpec,
        *,
        spgemm_fn: SpGEMMFn | None = None,
        prob_cache=None,
    ) -> list[MinibatchSample]:
        """Sample ``len(batches)`` minibatches in one bulk pass.

        ``fanout[0]`` is the sample count for the layer adjacent to the
        batch (the paper's layer ``L``) and ``fanout[-1]`` the furthest.
        Returns one :class:`MinibatchSample` per input batch, in order.
        ``rng`` is a single generator (draws consumed across the stacked
        bulk) or a sequence of one generator per batch (each batch draws
        only from its own stream — see :data:`RngSpec`).  ``spgemm_fn=None``
        uses the sampler's kernel backend; distributed drivers and cost
        recorders pass their own wrapper.

        The default implementation emits :meth:`plan` and interprets it
        with the single-device :class:`~repro.core.plan.LocalExecutor`;
        samplers without a plan must override this method instead.  When
        the sampler's kernel backend sets ``compiles_plans`` (the
        ``compiled`` registry entry), the plan is optimized
        (:func:`repro.core.compile.optimize`) and run by the
        :class:`~repro.core.compile.CompiledLocalExecutor` — bit-identical
        output, fused execution.  ``prob_cache`` (a
        :class:`~repro.core.compile.ProbCache`) then reuses probability
        matrices across bulk calls sharing a frontier; it is ignored on
        the interpreted path.
        """
        spgemm = self._resolve_spgemm(spgemm_fn)
        self._validate(adj, batches, fanout)
        program = self.plan(tuple(int(s) for s in fanout))
        if program is None:
            raise TypeError(
                f"{type(self).__name__} emits no sampling plan; implement "
                f"plan() (preferred — distribution comes for free) or "
                f"override sample_bulk()"
            )
        rng = self._normalize_rng(rng, len(batches))
        if getattr(get_kernel(self.kernel), "compiles_plans", False):
            from .compile import CompiledLocalExecutor, optimize

            executor = CompiledLocalExecutor(
                self, adj, batches, rng, spgemm, prob_cache=prob_cache
            )
            return executor.run(optimize(program))
        return LocalExecutor(self, adj, batches, rng, spgemm).run(program)

    # ------------------------------------------------------------------ #
    # Shared validation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate(
        adj: CSRMatrix,
        batches: Sequence[np.ndarray],
        fanout: Sequence[int],
    ) -> int:
        if adj.shape[0] != adj.shape[1]:
            raise ValueError(f"adjacency must be square, got {adj.shape}")
        if not batches:
            raise ValueError("need at least one batch")
        if not fanout:
            raise ValueError("need at least one layer fanout")
        if any(s <= 0 for s in fanout):
            raise ValueError(f"fanout entries must be positive, got {fanout}")
        n = adj.shape[0]
        for b in batches:
            b = np.asarray(b)
            if b.ndim != 1 or b.size == 0:
                raise ValueError("each batch must be a non-empty 1-D array")
            if b.min() < 0 or b.max() >= n:
                raise ValueError(f"batch vertex out of range [0, {n})")
        return n
