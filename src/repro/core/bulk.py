"""Bulk-minibatch bookkeeping: chunking an epoch into bulks of ``k`` batches
and distributing batches over ranks.

The pipeline samples ``k`` minibatches at a time (section 6.1).  When ``k``
is smaller than the epoch's batch count, sampling repeats per bulk; within
one bulk each of the ``p`` ranks owns ``k/p`` batches (Graph Replicated) or
each *process row* owns a block of stacked rows (Graph Partitioned).
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

T = TypeVar("T")

__all__ = [
    "chunk_bulks",
    "assign_round_robin",
    "reassemble_round_robin",
    "batch_rng",
    "stack_batches",
    "split_stacked",
]


def chunk_bulks(batches: Sequence[T], k: int) -> list[list[T]]:
    """Split an epoch's batches into bulks of (at most) ``k``."""
    if k <= 0:
        raise ValueError(f"bulk size k must be positive, got {k}")
    return [list(batches[i : i + k]) for i in range(0, len(batches), k)]


def assign_round_robin(n_items: int, n_owners: int) -> list[list[int]]:
    """Item indices owned by each of ``n_owners``, round-robin.

    Round-robin (rather than contiguous blocks) keeps ownership balanced
    when ``n_items`` is not a multiple of ``n_owners``.
    """
    if n_owners <= 0:
        raise ValueError("need at least one owner")
    return [list(range(r, n_items, n_owners)) for r in range(n_owners)]


def reassemble_round_robin(
    per_owner: Sequence[Sequence[T]], n_items: int
) -> list[T]:
    """Invert :func:`assign_round_robin`: rebuild the input-order list from
    each owner's items (owner ``r``'s ``x``-th item is input item
    ``r + x * n_owners``).

    Every distributed driver hands batches out round-robin and must return
    samples in the caller's batch order; this is the one shared inverse.
    """
    n_owners = len(per_owner)
    if n_owners <= 0:
        raise ValueError("need at least one owner")
    if sum(len(items) for items in per_owner) != n_items:
        raise ValueError(
            f"owner lists hold {sum(len(i) for i in per_owner)} items, "
            f"expected {n_items}"
        )
    out: list[T | None] = [None] * n_items
    for r, items in enumerate(per_owner):
        for x, item in enumerate(items):
            idx = r + x * n_owners
            if idx >= n_items:
                raise ValueError(
                    f"owner {r} holds {len(items)} items; round-robin over "
                    f"{n_owners} owners allows at most "
                    f"{len(assign_round_robin(n_items, n_owners)[r])} "
                    f"for {n_items} items"
                )
            out[idx] = item
    return out  # type: ignore[return-value]


def batch_rng(seed: int, batch_index: int) -> np.random.Generator:
    """The RNG stream of one minibatch, keyed by its *global* batch index.

    Seeding by global batch index (not by rank or process row) makes
    distributed sampling output invariant to the cluster shape: batch ``i``
    draws the same samples whether 8 ranks own 4 batches each or 1 rank
    owns all 32 — and whether the grid is replicated or 1.5D partitioned —
    because its draws come from its own stream and its frontier evolution
    is batch-local.
    """
    return np.random.default_rng(np.random.SeedSequence([seed, batch_index]))


def stack_batches(batches: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Equation 1's vertical stacking at the vertex level.

    Returns ``(stacked_vertices, batch_of_row)`` — the concatenated batch
    vertices and, for every stacked row, which batch it came from.
    """
    if not batches:
        raise ValueError("need at least one batch")
    stacked = np.concatenate([np.asarray(b, dtype=np.int64) for b in batches])
    owner = np.repeat(
        np.arange(len(batches), dtype=np.int64),
        [len(b) for b in batches],
    )
    return stacked, owner


def split_stacked(
    values: np.ndarray, batch_of_row: np.ndarray, n_batches: int
) -> list[np.ndarray]:
    """Invert :func:`stack_batches` for any row-aligned array."""
    if values.shape[0] != batch_of_row.shape[0]:
        raise ValueError("values and batch_of_row must align")
    return [values[batch_of_row == i] for i in range(n_batches)]
