"""Matrix-based LADIES sampling (paper section 4.2).

Layer-wise sampling: a whole batch samples one set of ``s`` vertices from
the batch's *aggregated* neighborhood, with vertex ``v`` weighted by the
square of its in-neighbor count ``e_v`` within the previous layer:
``p_v = e_v^2 / sum_u e_u^2`` (Zou et al., 2019).

In matrix form ``Q^L`` has one row per batch with ``b`` ones (the batch
indicator); ``P = Q A`` counts, for every column ``v``, how many batch
vertices neighbor ``v`` — exactly ``e_v``.  NORM squares and normalizes the
row.  EXTRACT keeps *every* edge between the previous layer and the sampled
set: a row-extraction SpGEMM ``A_R = Q_R A`` followed by a column-extraction
SpGEMM ``A_S = A_R Q_C``.

Bulk sampling stacks the per-batch indicator rows; bulk column extraction
is block-diagonal (section 4.2.4) and — because a CSR representation of the
hypersparse stacked ``Q_C`` is memory-hostile (section 8.2.2) — is executed
as a sequence of per-batch SpGEMMs by default, with the literal block-
diagonal single SpGEMM available for cross-checking.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..sparse import (
    CSRMatrix,
    block_diag,
    col_selector,
    indicator_rows,
    row_normalize,
    row_normalize_inplace,
    row_selector,
    spgemm,
)
from .frontier import LayerSample
from .plan import ExtractStep, NormStep, ProbStep, SampleStep, SamplingPlan
from .sampler_base import MatrixSampler, SpGEMMFn

__all__ = ["LadiesSampler"]


class LadiesSampler(MatrixSampler):
    """LADIES expressed in the matrix framework.

    ``include_dst`` unions the destination (batch) vertices into the sampled
    layer so models can keep a self term.  ``split_col_extract`` executes
    bulk column extraction as per-batch SpGEMMs (the paper's memory
    workaround); set it False to run the single block-diagonal SpGEMM.
    """

    name = "ladies"

    def __init__(
        self,
        *,
        include_dst: bool = False,
        split_col_extract: bool = True,
        debias: bool = False,
        sample_backend: str = "its",
        kernel=None,
    ) -> None:
        super().__init__(sample_backend, kernel)
        if debias and include_dst:
            raise ValueError(
                "debias needs pure LADIES samples: destinations unioned "
                "into the layer have no inclusion probability"
            )
        self.include_dst = include_dst
        self.split_col_extract = split_col_extract
        self.debias = debias

    @staticmethod
    def debias_layer(
        layer: LayerSample, probs: np.ndarray, s: int
    ) -> LayerSample:
        """Importance-reweight a sampled layer for unbiased aggregation.

        Zou et al. scale each kept column by ``1 / (s p_v)`` so that the
        sampled aggregation is an unbiased estimator of the full
        aggregation: ``E[A_S x_S] = A x``.  ``probs`` holds the inclusion
        distribution over all of V that the layer was sampled from.
        """
        weights = probs[layer.src_ids] * s
        if np.any(weights <= 0):
            raise ValueError("sampled a vertex with zero probability")
        adj = CSRMatrix(
            layer.adj.indptr.copy(),
            layer.adj.indices.copy(),
            layer.adj.data / weights[layer.adj.indices],
            layer.adj.shape,
        )
        return LayerSample(adj, layer.src_ids, layer.dst_ids)

    # ------------------------------------------------------------------ #
    # Algorithm-1 pieces
    # ------------------------------------------------------------------ #
    @staticmethod
    def make_q(batches: Sequence[np.ndarray], n: int) -> CSRMatrix:
        """The LADIES ``Q^L``: one indicator row per batch."""
        return indicator_rows(batches, n)

    def norm(self, p: CSRMatrix) -> CSRMatrix:
        """LADIES weights: square the neighbor counts, normalize each row."""
        squared = CSRMatrix(
            p.indptr.copy(), p.indices.copy(), p.data**2, p.shape
        )
        return row_normalize(squared)

    def norm_inplace(self, p: CSRMatrix) -> CSRMatrix:
        """Fused-NORM variant: square + normalize without the copies.

        ``np.power(x, 2)`` is exactly what ``x**2`` computes, so the data
        values match :meth:`norm` bit for bit.
        """
        np.power(p.data, 2, out=p.data)
        return row_normalize_inplace(p)

    @staticmethod
    def row_extract(
        adj: CSRMatrix,
        dst_lists: Sequence[np.ndarray],
        *,
        spgemm_fn: SpGEMMFn = spgemm,
    ) -> CSRMatrix:
        """Stacked row extraction ``A_R = Q_R A`` across all batches."""
        q_r = row_selector(np.concatenate(list(dst_lists)), adj.shape[0])
        return spgemm_fn(q_r, adj)

    def col_extract(
        self,
        a_r: CSRMatrix,
        dst_lists: Sequence[np.ndarray],
        sampled_lists: Sequence[np.ndarray],
        *,
        spgemm_fn: SpGEMMFn | None = None,
    ) -> list[CSRMatrix]:
        """Per-batch column extraction ``A_Si = A_Ri Q_Ci``.

        ``a_r`` is the stacked row-extraction result; batch ``i`` owns the
        rows matching ``dst_lists[i]``.  Returns one ``(b_i, s_i)`` sampled
        adjacency per batch.
        """
        spgemm_fn = self._resolve_spgemm(spgemm_fn)
        bounds = np.cumsum([0] + [len(d) for d in dst_lists])
        n = a_r.shape[1]
        if self.split_col_extract:
            out = []
            for i, sampled in enumerate(sampled_lists):
                block = a_r.row_block(int(bounds[i]), int(bounds[i + 1]))
                out.append(spgemm_fn(block, col_selector(sampled, n)))
            return out
        # Literal section-4.2.4 construction: block-diagonal A_R times the
        # stacked Q_C in one SpGEMM.  The stacked Q_C is (k n x s): batch
        # i's sampled vertex j sits at row i*n + v_j, column j, so every
        # batch's sample shares the column space 0..s-1.  Memory-hungry
        # (the hypersparse kn-row CSR the paper calls out) but kept for
        # cross-checking the split path.
        blocks = [
            a_r.row_block(int(bounds[i]), int(bounds[i + 1]))
            for i in range(len(dst_lists))
        ]
        s_max = max(len(s) for s in sampled_lists)
        qc_rows = np.concatenate(
            [np.asarray(s, dtype=np.int64) + i * n for i, s in enumerate(sampled_lists)]
        )
        qc_cols = np.concatenate(
            [np.arange(len(s), dtype=np.int64) for s in sampled_lists]
        )
        q_c = CSRMatrix.from_coo(
            qc_rows, qc_cols, None, (len(dst_lists) * n, s_max)
        )
        a_s = spgemm_fn(block_diag(blocks), q_c)
        out = []
        for i, sampled in enumerate(sampled_lists):
            rows = a_s.row_block(int(bounds[i]), int(bounds[i + 1]))
            mask = np.zeros(s_max, dtype=bool)
            mask[: len(sampled)] = True
            out.append(rows.select_columns(mask))
        return out

    # ------------------------------------------------------------------ #
    # Plan emission: the layer-wise Algorithm-1 program
    # ------------------------------------------------------------------ #
    def plan(self, fanout: Sequence[int]) -> SamplingPlan:
        steps: list = []
        for s in fanout:
            steps += [
                ProbStep("indicator"),
                NormStep(),
                SampleStep(int(s)),
                ExtractStep(
                    "bipartite",
                    union_dst=self.include_dst,
                    debias=self.debias,
                ),
            ]
        return SamplingPlan(tuple(steps))
