"""Result types of sampling: per-layer frontiers and per-minibatch samples."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse import CSRMatrix

__all__ = ["LayerSample", "MinibatchSample"]


@dataclass
class LayerSample:
    """One sampled layer: a bipartite adjacency from sources to destinations.

    ``adj`` has shape ``(len(dst_ids), len(src_ids))``: row ``r`` lists which
    source vertices destination ``dst_ids[r]`` aggregates from.  ``src_ids``
    and ``dst_ids`` are global vertex ids; columns/rows of ``adj`` are local
    positions into them.
    """

    adj: CSRMatrix
    src_ids: np.ndarray
    dst_ids: np.ndarray

    def __post_init__(self) -> None:
        if self.adj.shape != (len(self.dst_ids), len(self.src_ids)):
            raise ValueError(
                f"adj shape {self.adj.shape} does not match "
                f"(dst={len(self.dst_ids)}, src={len(self.src_ids)})"
            )

    @property
    def n_src(self) -> int:
        return len(self.src_ids)

    @property
    def n_dst(self) -> int:
        return len(self.dst_ids)

    def check_chain(self, next_layer: "LayerSample") -> None:
        """Verify this layer's destinations are the next layer's sources."""
        if not np.array_equal(self.dst_ids, next_layer.src_ids):
            raise ValueError("layer chain broken: dst_ids != next src_ids")


@dataclass
class MinibatchSample:
    """A fully sampled minibatch: the batch vertices plus L sampled layers.

    ``layers[0]`` is the layer furthest from the batch (the paper's layer 1)
    and ``layers[-1]`` aggregates directly into the batch vertices, i.e.
    ``layers[-1].dst_ids == batch``.  ``layers[0].src_ids`` is the input
    frontier whose feature rows must be fetched before propagation.
    """

    batch: np.ndarray
    layers: list[LayerSample]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a sample must contain at least one layer")
        if not np.array_equal(self.layers[-1].dst_ids, self.batch):
            raise ValueError("last layer must aggregate into the batch vertices")
        for lo, hi in zip(self.layers, self.layers[1:]):
            lo.check_chain(hi)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def input_frontier(self) -> np.ndarray:
        """Global vertex ids whose features are needed for forward prop."""
        return self.layers[0].src_ids

    def total_edges(self) -> int:
        """Sampled edges across all layers (proxy for propagation cost)."""
        return sum(layer.adj.nnz for layer in self.layers)

    def total_vertices(self) -> int:
        """Distinct vertex slots across all frontiers (with batch)."""
        return len(self.batch) + sum(layer.n_src for layer in self.layers)
