"""Matrix-based graph-wise sampling (GraphSAINT-style random-walk subgraphs).

The paper's taxonomy (section 2.2) has three sampler families — node-wise,
layer-wise and graph-wise — and its conclusion names expressing more
algorithms in the matrix framework as future work.  This module adds the
third family: a GraphSAINT-flavoured sampler (Zeng et al., 2020) that grows
a vertex set with short random walks from the batch roots and trains on the
**induced subgraph**.

Everything is built from the same Algorithm-1 pieces:

* each walk step is the GraphSAGE machinery with ``s = 1`` — one uniform
  neighbor per frontier vertex via ``P = Q A``, NORM, SAMPLE;
* the induced subgraph is an EXTRACT: rows *and* columns of ``A``
  restricted to the walk's vertex set (a row-selector SpGEMM followed by a
  column compaction), the same primitives LADIES extraction uses.

The result is presented as a :class:`MinibatchSample` whose ``L`` layers
all share the same frontier (the subgraph's vertex set), which is exactly
how GraphSAINT trains an L-layer GCN on its subgraph.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..sparse import CSRMatrix, row_selector
from .frontier import LayerSample, MinibatchSample
from .sage_sampler import SageSampler
from .sampler_base import RngSpec, SpGEMMFn

__all__ = ["GraphSaintRWSampler"]


class GraphSaintRWSampler(SageSampler):
    """Random-walk subgraph sampling in the matrix framework.

    ``fanout`` is interpreted as the GNN depth only (its values are
    ignored); ``walk_length`` controls how far each root walks.  Each batch
    vertex starts one walk; the union of visited vertices induces the
    training subgraph.
    """

    name = "graphsaint-rw"

    def __init__(
        self, *, walk_length: int = 3, sample_backend: str = "its", kernel=None
    ) -> None:
        super().__init__(
            include_dst=True, sample_backend=sample_backend, kernel=kernel
        )
        if walk_length <= 0:
            raise ValueError("walk_length must be positive")
        self.walk_length = walk_length

    def _walk(
        self,
        adj: CSRMatrix,
        roots: np.ndarray,
        rng: np.random.Generator,
        spgemm_fn: SpGEMMFn,
    ) -> np.ndarray:
        """Visited vertex set of one random walk per root (roots included)."""
        n = adj.shape[0]
        visited = [roots]
        frontier = roots
        for _ in range(self.walk_length):
            q = self.make_q(frontier, n)
            p = self.norm(spgemm_fn(q, adj))
            step = self.sample(p, 1, rng)
            # Walkers on isolated vertices stay in place.
            next_frontier = frontier.copy()
            rows_with_pick = np.flatnonzero(step.nnz_per_row() > 0)
            next_frontier[rows_with_pick] = step.indices
            visited.append(next_frontier)
            frontier = next_frontier
        return np.unique(np.concatenate(visited))

    def induced_subgraph(
        self,
        adj: CSRMatrix,
        vertices: np.ndarray,
        *,
        spgemm_fn: SpGEMMFn | None = None,
    ) -> CSRMatrix:
        """EXTRACT: ``A`` restricted to ``vertices`` on both axes."""
        spgemm_fn = self._resolve_spgemm(spgemm_fn)
        rows = spgemm_fn(row_selector(vertices, adj.shape[0]), adj)
        mask = np.zeros(adj.shape[1], dtype=bool)
        mask[vertices] = True
        return rows.select_columns(mask)

    def sample_bulk(
        self,
        adj: CSRMatrix,
        batches: Sequence[np.ndarray],
        fanout: Sequence[int],
        rng: RngSpec,
        *,
        spgemm_fn: SpGEMMFn | None = None,
    ) -> list[MinibatchSample]:
        spgemm_fn = self._resolve_spgemm(spgemm_fn)
        self._validate(adj, batches, fanout)
        rng = self._normalize_rng(rng, len(batches))
        n_layers = len(fanout)
        # Bulk: all batches' walks run in one stacked frontier per step.
        stacked = np.concatenate([np.asarray(b, dtype=np.int64) for b in batches])
        bounds = np.cumsum([0] + [len(b) for b in batches])
        # Walk the stacked roots together (Equation 1 stacking), then split.
        visited_all = self._split_walk(adj, stacked, bounds, rng, spgemm_fn)

        out: list[MinibatchSample] = []
        for i, batch in enumerate(batches):
            batch = np.asarray(batch, dtype=np.int64)
            verts = np.union1d(visited_all[i], batch)
            sub = self.induced_subgraph(adj, verts, spgemm_fn=spgemm_fn)
            # L identical subgraph layers, then a final restriction onto
            # the batch vertices so the last dst set is the batch.
            layers = [
                LayerSample(sub, verts, verts) for _ in range(n_layers - 1)
            ]
            pos = np.searchsorted(verts, batch)
            batch_rows = sub.extract_rows(pos)
            layers.append(LayerSample(batch_rows, verts, batch))
            out.append(MinibatchSample(batch, layers))
        return out

    def _split_walk(self, adj, stacked, bounds, rng, spgemm_fn):
        """Per-batch visited sets from one stacked (bulk) walk."""
        n = adj.shape[0]
        frontier = stacked.copy()
        per_step = [stacked.copy()]
        for _ in range(self.walk_length):
            q = self.make_q(frontier, n)
            p = self.norm(spgemm_fn(q, adj))
            step = self.sample_stacked(p, 1, rng, bounds)
            nxt = frontier.copy()
            rows_with_pick = np.flatnonzero(step.nnz_per_row() > 0)
            nxt[rows_with_pick] = step.indices
            per_step.append(nxt)
            frontier = nxt
        k = len(bounds) - 1
        return [
            np.unique(
                np.concatenate(
                    [stepv[bounds[i] : bounds[i + 1]] for stepv in per_step]
                )
            )
            for i in range(k)
        ]
