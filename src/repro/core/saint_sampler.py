"""Matrix-based graph-wise sampling (GraphSAINT-style random-walk subgraphs).

The paper's taxonomy (section 2.2) has three sampler families — node-wise,
layer-wise and graph-wise — and its conclusion names expressing more
algorithms in the matrix framework as future work.  This module adds the
third family: a GraphSAINT-flavoured sampler (Zeng et al., 2020) that grows
a vertex set with short random walks from the batch roots and trains on the
**induced subgraph**.

Everything is built from the same Algorithm-1 pieces:

* each walk step is the GraphSAGE machinery with ``s = 1`` — one uniform
  neighbor per frontier vertex via ``P = Q A``, NORM, SAMPLE — emitted as
  the plan stage ``PROB(frontier) -> NORM -> SAMPLE(1) -> EXTRACT(walk)``;
* the induced subgraph is an EXTRACT: rows *and* columns of ``A``
  restricted to the walk's vertex set (a row-selector SpGEMM followed by a
  column compaction), the same primitives LADIES extraction uses — the
  plan's final ``EXTRACT(subgraph)`` step.

The result is presented as a :class:`MinibatchSample` whose ``L`` layers
all share the same frontier (the subgraph's vertex set), which is exactly
how GraphSAINT trains an L-layer GCN on its subgraph.  Because the whole
algorithm is a plan, SAINT runs under the partitioned executor too: the
walk's probability products and the induction's row extraction become 1.5D
SpGEMMs, with no SAINT-specific distributed code.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..sparse import CSRMatrix, row_selector
from .plan import ExtractStep, NormStep, ProbStep, SampleStep, SamplingPlan
from .sage_sampler import SageSampler
from .sampler_base import SpGEMMFn

__all__ = ["GraphSaintRWSampler"]


class GraphSaintRWSampler(SageSampler):
    """Random-walk subgraph sampling in the matrix framework.

    ``fanout`` is interpreted as the GNN depth only (its values are
    ignored); ``walk_length`` controls how far each root walks.  Each batch
    vertex starts one walk; the union of visited vertices induces the
    training subgraph.
    """

    name = "graphsaint-rw"

    def __init__(
        self, *, walk_length: int = 3, sample_backend: str = "its", kernel=None
    ) -> None:
        super().__init__(
            include_dst=True, sample_backend=sample_backend, kernel=kernel
        )
        if walk_length <= 0:
            raise ValueError("walk_length must be positive")
        self.walk_length = walk_length

    def induced_subgraph(
        self,
        adj: CSRMatrix,
        vertices: np.ndarray,
        *,
        spgemm_fn: SpGEMMFn | None = None,
    ) -> CSRMatrix:
        """EXTRACT: ``A`` restricted to ``vertices`` on both axes."""
        spgemm_fn = self._resolve_spgemm(spgemm_fn)
        rows = spgemm_fn(row_selector(vertices, adj.shape[0]), adj)
        mask = np.zeros(adj.shape[1], dtype=bool)
        mask[vertices] = True
        return rows.select_columns(mask)

    # ------------------------------------------------------------------ #
    # Plan emission: the graph-wise Algorithm-1 program
    # ------------------------------------------------------------------ #
    def plan(self, fanout: Sequence[int]) -> SamplingPlan:
        """``walk_length`` GraphSAGE-with-``s=1`` stages advancing every
        root's walk position, then one subgraph induction emitting all
        ``len(fanout)`` layers (fanout values are only the GNN depth)."""
        steps: list = []
        for _ in range(self.walk_length):
            steps += [
                ProbStep("frontier"),
                NormStep(),
                SampleStep(1),
                ExtractStep("walk"),
            ]
        steps.append(ExtractStep("subgraph", n_layers=len(fanout)))
        return SamplingPlan(tuple(steps))
