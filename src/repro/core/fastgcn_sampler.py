"""Matrix-based FastGCN sampling (Chen et al., 2018).

The paper's background (section 2.2.2) describes FastGCN as the simplest
layer-wise sampler — each layer draws ``s`` vertices from a *global*,
batch-independent importance distribution ``q(v) ∝ ||A(:, v)||^2`` — and
its conclusion names extending the framework to more samplers as future
work.  This module is that extension: FastGCN drops into the same
Algorithm-1 skeleton with a different probability construction (the
distribution comes from column norms of ``A`` rather than a ``Q A``
product) while sharing SAMPLE and the LADIES-style EXTRACT.

Unlike LADIES, sampled vertices need not lie in the batch's aggregated
neighborhood, so sampled adjacencies may contain empty rows — the accuracy
tradeoff the paper points out.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..sparse import CSRMatrix, row_normalize
from .ladies_sampler import LadiesSampler
from .plan import ExtractStep, ProbStep, SampleStep, SamplingPlan

__all__ = ["FastGCNSampler"]


class FastGCNSampler(LadiesSampler):
    """FastGCN: layer-wise sampling from a global degree-based distribution."""

    name = "fastgcn"

    @staticmethod
    def importance_row(adj: CSRMatrix) -> CSRMatrix:
        """The global FastGCN distribution as a ``1 x n`` CSR row.

        ``q(v) ∝ ||A(:, v)||_2^2``, i.e. the squared column norms; for a
        binary adjacency this is the in-degree of ``v``.
        """
        col_sq = np.zeros(adj.shape[1], dtype=np.float64)
        if adj.nnz:
            np.add.at(col_sq, adj.indices, adj.data**2)
        cols = np.flatnonzero(col_sq)
        row = CSRMatrix.from_coo(
            np.zeros(cols.size, dtype=np.int64), cols, col_sq[cols], (1, adj.shape[1])
        )
        return row_normalize(row)

    def plan(self, fanout: Sequence[int]) -> SamplingPlan:
        """Per layer: stack ``k`` copies of the global importance row (no
        per-layer SpGEMM, no NORM — the row is already a distribution),
        SAMPLE, then LADIES-style bipartite extraction."""
        steps: list = []
        for s in fanout:
            steps += [
                ProbStep("global"),
                SampleStep(int(s)),
                ExtractStep("bipartite", union_dst=self.include_dst),
            ]
        return SamplingPlan(tuple(steps))
