"""Matrix-based FastGCN sampling (Chen et al., 2018).

The paper's background (section 2.2.2) describes FastGCN as the simplest
layer-wise sampler — each layer draws ``s`` vertices from a *global*,
batch-independent importance distribution ``q(v) ∝ ||A(:, v)||^2`` — and
its conclusion names extending the framework to more samplers as future
work.  This module is that extension: FastGCN drops into the same
Algorithm-1 skeleton with a different probability construction (the
distribution comes from column norms of ``A`` rather than a ``Q A``
product) while sharing SAMPLE and the LADIES-style EXTRACT.

Unlike LADIES, sampled vertices need not lie in the batch's aggregated
neighborhood, so sampled adjacencies may contain empty rows — the accuracy
tradeoff the paper points out.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..sparse import CSRMatrix, row_normalize, vstack
from .frontier import LayerSample, MinibatchSample
from .ladies_sampler import LadiesSampler
from .sampler_base import RngSpec, SpGEMMFn

__all__ = ["FastGCNSampler"]


class FastGCNSampler(LadiesSampler):
    """FastGCN: layer-wise sampling from a global degree-based distribution."""

    name = "fastgcn"

    @staticmethod
    def importance_row(adj: CSRMatrix) -> CSRMatrix:
        """The global FastGCN distribution as a ``1 x n`` CSR row.

        ``q(v) ∝ ||A(:, v)||_2^2``, i.e. the squared column norms; for a
        binary adjacency this is the in-degree of ``v``.
        """
        col_sq = np.zeros(adj.shape[1], dtype=np.float64)
        if adj.nnz:
            np.add.at(col_sq, adj.indices, adj.data**2)
        cols = np.flatnonzero(col_sq)
        row = CSRMatrix.from_coo(
            np.zeros(cols.size, dtype=np.int64), cols, col_sq[cols], (1, adj.shape[1])
        )
        return row_normalize(row)

    def sample_bulk(
        self,
        adj: CSRMatrix,
        batches: Sequence[np.ndarray],
        fanout: Sequence[int],
        rng: RngSpec,
        *,
        spgemm_fn: SpGEMMFn | None = None,
    ) -> list[MinibatchSample]:
        spgemm_fn = self._resolve_spgemm(spgemm_fn)
        self._validate(adj, batches, fanout)
        k = len(batches)
        rng = self._normalize_rng(rng, k)
        dst_lists = [np.asarray(b, dtype=np.int64) for b in batches]
        layers_rev: list[list[LayerSample]] = [[] for _ in range(k)]
        importance = self.importance_row(adj)

        for s in fanout:
            # One independent draw from the same global distribution per
            # batch: stack k copies of the importance row and SAMPLE.
            p = vstack([importance] * k)
            q_next = self.sample_stacked(p, s, rng, np.arange(k + 1))
            sampled_lists = [q_next.row(i)[0] for i in range(k)]
            if self.include_dst:
                sampled_lists = [
                    np.union1d(sampled_lists[i], dst_lists[i]) for i in range(k)
                ]
            a_r = self.row_extract(adj, dst_lists, spgemm_fn=spgemm_fn)
            a_s = self.col_extract(
                a_r, dst_lists, sampled_lists, spgemm_fn=spgemm_fn
            )
            for i in range(k):
                layers_rev[i].append(
                    LayerSample(a_s[i], sampled_lists[i], dst_lists[i])
                )
            dst_lists = sampled_lists

        return [
            MinibatchSample(
                np.asarray(batches[i], dtype=np.int64), list(reversed(layers_rev[i]))
            )
            for i in range(k)
        ]
