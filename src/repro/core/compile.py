"""The sampling-plan compiler: optimizer passes + fused-step execution.

PR 4 turned every sampler into a declarative :class:`SamplingPlan` that the
executors interpret step by step, materializing every intermediate: NORM
copies the whole probability matrix to rescale it, SAMPLE builds the
``Q^{l-1}`` CSR only for EXTRACT to immediately tear it apart again, and
every micro-batch recomputes probability products that an identical
frontier computed moments earlier.  This module removes that interpretive
overhead without changing a single output bit:

* :func:`eliminate_dead_steps` — drop PROB/NORM steps whose results are
  overwritten before any step reads them.  SAMPLE steps are **never**
  eliminated even when their output is dead: they consume randomness, and
  the compiled executor must replay the interpreter's RNG stream exactly.
* :func:`fuse_prob_norm` — replace adjacent ``PROB, NORM`` with a single
  :class:`FusedProbNormStep`: the probability product is normalized
  *in place* (the executor owns the freshly computed product), skipping
  the full indptr/indices/data copy of the interpreted NORM.
* :func:`fuse_sample_extract` — replace adjacent ``SAMPLE, EXTRACT`` with
  a :class:`FusedSampleExtractStep`: ITS/Gumbel selection is kept as a
  boolean mask over ``P``'s nonzeros (:func:`~repro.core.its.its_select_mask`)
  and extraction reads the selected entries straight out of ``P`` —
  the intermediate ``Q^{l-1}`` CSR is never materialized.  Fusion is
  skipped when a later step still reads ``Q^{l-1}``.
* :class:`ProbCache` — memoize normalized probability matrices across bulk
  calls that share a frontier (serving micro-batches hitting the same
  targets, FastGCN's batch-independent global importance row).
* :func:`selector_aware_spgemm` — the row-wise gather kernel: when the
  left operand of an SpGEMM selects exactly one source row per output row
  with unit weight (GraphSAGE's ``Q``, LADIES' ``Q_R``, every SAINT walk
  frontier), the product is a pure row gather of the right operand — no
  hashing, no expand/sort, no accumulation — and the compiled executor
  runs it as ``a.extract_rows(...)`` instead of the general kernel.

Executors: :class:`CompiledLocalExecutor` here and
:class:`~repro.distributed.partitioned.CompiledPartitionedExecutor` extend
the interpreters with handlers for the fused steps; every unfused step
falls through to the interpreter's own handler, so the compiled path can
run any mix of fused and plain steps.  The plain interpreters refuse fused
steps outright (loud failure beats silent divergence).

Bit-identity is the contract and the test surface: the golden-digest
suites pin all four samplers under ``kernel="compiled"``, and
``tests/test_compile_differential.py`` fuzzes hundreds of random plans
through interpreter and compiler asserting byte-equal samples.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..sparse import CSRMatrix
from .frontier import LayerSample
from .plan import (
    ExtractStep,
    LocalExecutor,
    NormStep,
    ProbStep,
    SampleStep,
    SamplingPlan,
)
from .sage_sampler import SageSampler

__all__ = [
    "FusedProbNormStep",
    "FusedSampleExtractStep",
    "eliminate_dead_steps",
    "fuse_prob_norm",
    "fuse_sample_extract",
    "optimize",
    "DEFAULT_PASSES",
    "ProbCache",
    "CompiledLocalExecutor",
    "selector_aware_spgemm",
    "compact_layer_from_mask",
    "sampled_rows_from_mask",
    "selected_row_cols",
    "mask_row_counts",
]


# ---------------------------------------------------------------------- #
# Fused step types
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class FusedProbNormStep(ProbStep):
    """``PROB`` immediately followed by ``NORM``, as one step.

    The executor normalizes the probability product in place (it owns the
    freshly computed matrix), producing bit-identical values to the
    interpreted ``norm`` without the copy.  Subclassing :class:`ProbStep`
    keeps plan validation and :func:`~repro.core.plan.step_phase` working
    unchanged; the whole fused step is attributed to the ``probability``
    phase (the interpreter attributed the NORM half to ``sampling``).
    """

    fused = True
    display_name = "PROB+NORM"


@dataclass(frozen=True)
class FusedSampleExtractStep(SampleStep):
    """``SAMPLE`` immediately followed by a non-subgraph ``EXTRACT``.

    Selection stays a boolean mask over ``P``'s nonzeros; extraction reads
    the selected columns directly, skipping the ``Q^{l-1}`` CSR build.
    Attributed wholly to the ``sampling`` phase (via the
    :class:`SampleStep` base).
    """

    extract: ExtractStep

    fused = True
    display_name = "SAMPLE+EXTRACT"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not isinstance(self.extract, ExtractStep):
            raise TypeError(f"extract must be an ExtractStep, got {self.extract!r}")
        if self.extract.kind == "subgraph":
            raise ValueError(
                "subgraph extraction reads the walk history, not the "
                "sampled Q — it cannot fuse with SAMPLE"
            )

    def describe_args(self) -> list[str]:
        return [f"s={self.count}"] + self.extract.describe_args()


# ---------------------------------------------------------------------- #
# Optimizer passes (SamplingPlan -> SamplingPlan, semantics-preserving)
# ---------------------------------------------------------------------- #
def _norm_is_dead(steps: list, i: int) -> bool:
    """NORM at ``i`` is dead iff ``P`` is overwritten before anything reads
    it.  Readers of ``P``: NORM, SAMPLE, and debiased bipartite EXTRACT."""
    for step in steps[i + 1 :]:
        if isinstance(step, ProbStep):
            return True
        if isinstance(step, (NormStep, SampleStep)):
            return False
        if isinstance(step, ExtractStep):
            if step.kind == "bipartite" and step.debias:
                return False
    return True  # nothing after reads P


def _prob_is_dead(steps: list, i: int) -> bool:
    """PROB at ``i`` is dead iff the very next step is another PROB (every
    other step type reads something PROB wrote), with one frontier caveat:
    a ``frontier``-source PROB also records the walk frontier, which a
    non-frontier PROB does not rewrite on the local executor — so it stays
    live if any walk extraction could still read it."""
    if i + 1 >= len(steps):
        return True  # trailing PROB: nothing reads it
    nxt = steps[i + 1]
    if not isinstance(nxt, ProbStep):
        return False
    if steps[i].source == "frontier" and nxt.source != "frontier":
        if any(
            isinstance(s, ExtractStep) and s.kind == "walk"
            for s in steps[i + 1 :]
        ):
            return False
    return True


def eliminate_dead_steps(plan: SamplingPlan) -> SamplingPlan:
    """Drop PROB/NORM steps whose output is overwritten before being read.

    SAMPLE steps are never dead — they consume RNG draws, and eliminating
    one would shift every later draw, breaking bit-identity with the
    interpreter.  EXTRACT steps always produce observable output.  Runs to
    a fixpoint; a plan that optimizes to nothing is returned unchanged
    (its output is layer-free either way, and plans must be non-empty).
    """
    steps = list(plan.steps)
    changed = True
    while changed:
        changed = False
        for i, step in enumerate(steps):
            if type(step) is NormStep and _norm_is_dead(steps, i):
                del steps[i]
                changed = True
                break
            if type(step) is ProbStep and _prob_is_dead(steps, i):
                del steps[i]
                changed = True
                break
    if not steps:
        return plan
    return SamplingPlan(tuple(steps))


def fuse_prob_norm(plan: SamplingPlan) -> SamplingPlan:
    """Fuse every adjacent ``PROB, NORM`` pair (always legal: nothing can
    observe the unnormalized ``P`` between two adjacent steps)."""
    steps = list(plan.steps)
    out: list = []
    i = 0
    while i < len(steps):
        if (
            type(steps[i]) is ProbStep
            and i + 1 < len(steps)
            and type(steps[i + 1]) is NormStep
        ):
            out.append(FusedProbNormStep(steps[i].source))
            i += 2
        else:
            out.append(steps[i])
            i += 1
    return SamplingPlan(tuple(out))


def _q_next_read_after(steps: list, j: int) -> bool:
    """Would a step at position >= ``j`` read the sampled ``Q^{l-1}``
    produced before ``j``?  True when the first relevant step is a
    q-reading EXTRACT; a SAMPLE (fused or not) rewrites ``Q`` first."""
    for step in steps[j:]:
        if isinstance(step, SampleStep):
            return False
        if type(step) is ExtractStep and step.kind in (
            "compact",
            "bipartite",
            "walk",
        ):
            return True
    return False


def fuse_sample_extract(plan: SamplingPlan) -> SamplingPlan:
    """Fuse adjacent ``SAMPLE, EXTRACT`` pairs where legal.

    Illegal when the extraction is ``subgraph`` (reads the walk history,
    not ``Q``) or when a *later* step still reads the materialized
    ``Q^{l-1}`` (e.g. two EXTRACTs sharing one SAMPLE) — those stay
    interpreted.
    """
    steps = list(plan.steps)
    out: list = []
    i = 0
    while i < len(steps):
        if (
            type(steps[i]) is SampleStep
            and i + 1 < len(steps)
            and type(steps[i + 1]) is ExtractStep
            and steps[i + 1].kind != "subgraph"
            and not _q_next_read_after(steps, i + 2)
        ):
            out.append(
                FusedSampleExtractStep(steps[i].count, steps[i + 1])
            )
            i += 2
        else:
            out.append(steps[i])
            i += 1
    return SamplingPlan(tuple(out))


DEFAULT_PASSES: tuple[Callable[[SamplingPlan], SamplingPlan], ...] = (
    eliminate_dead_steps,
    fuse_prob_norm,
    fuse_sample_extract,
)


def optimize(
    plan: SamplingPlan,
    passes: Sequence[Callable[[SamplingPlan], SamplingPlan]] = DEFAULT_PASSES,
) -> SamplingPlan:
    """Run the optimizer pass pipeline over a plan.

    Every pass is individually semantics-preserving (same samples, same
    RNG consumption), so any subset/ordering is safe; the default order is
    dead-step elimination first (so fusions see the cleaned plan), then
    the two fusions.
    """
    for pass_fn in passes:
        plan = pass_fn(plan)
    return plan


# ---------------------------------------------------------------------- #
# Probability-matrix reuse across bulks
# ---------------------------------------------------------------------- #
class ProbCache:
    """LRU cache of probability matrices keyed by frontier identity.

    PROB (and fused PROB+NORM) output is a pure function of the adjacency,
    the sampler, and the per-batch destination lists — no randomness — so
    bulk calls sharing a frontier (serving micro-batches re-requesting the
    same targets, FastGCN's batch-count-only global importance stack) can
    reuse the exact matrix object.  Cached matrices are never mutated by
    the executors (in-place normalization happens only on freshly computed
    products, before insertion), so a hit restores bit-identical state.

    The cache must be invalidated when the adjacency changes; keys embed
    ``(id(adj), adj.nnz)`` as a cheap guard, and
    :meth:`ServingEngine.apply_update <repro.serve.engine.ServingEngine.apply_update>`
    calls :meth:`clear` on every graph update.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._store: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key):
        value = self._store.get(key)
        if value is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)

    def clear(self) -> None:
        self._store.clear()

    def publish(self, registry, **labels) -> None:
        """Copy the hit/miss counters into a metrics registry
        (:mod:`repro.obs.metrics`) under ``prob_cache_*`` names."""
        registry.counter(
            "prob_cache_hits_total",
            "probability-matrix cache hits", **labels,
        ).set(self.hits)
        registry.counter(
            "prob_cache_misses_total",
            "probability-matrix cache misses", **labels,
        ).set(self.misses)
        registry.gauge(
            "prob_cache_entries",
            "probability matrices currently cached", **labels,
        ).set(len(self._store))


# ---------------------------------------------------------------------- #
# The row-gather SpGEMM specialization
# ---------------------------------------------------------------------- #
def _is_unit_row_selector(q: CSRMatrix) -> bool:
    """True iff every row of ``q`` holds exactly one entry of value 1.0."""
    return (
        q.nnz == q.shape[0]
        and bool(np.all(np.diff(q.indptr) == 1))
        and bool(np.all(q.data == 1.0))
    )


def selector_aware_spgemm(spgemm_fn):
    """Wrap ``spgemm_fn`` with the row-gather fast path.

    When the left operand is a unit row selector, each output row is
    ``1.0 * b[q.indices[i]]`` — a single source row, so there is nothing
    to accumulate, ``1.0 * x == x`` exactly, and the gathered rows keep
    ``b``'s canonical column order.  The result is therefore bit-identical
    to any general SpGEMM backend, at the cost of one fancy-indexed copy
    instead of a full hash/expand-sort pass.  Everything else falls
    through to the wrapped kernel unchanged.
    """

    def run(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        if _is_unit_row_selector(a):
            return b.extract_rows(a.indices)
        return spgemm_fn(a, b)

    return run


# ---------------------------------------------------------------------- #
# Fused row-wise extraction kernels (shared by local + partitioned)
# ---------------------------------------------------------------------- #
def mask_row_counts(p: CSRMatrix, sel: np.ndarray) -> np.ndarray:
    """Selected entries per row of ``p`` (== ``q_next.nnz_per_row()``)."""
    if sel.size == 0:
        return np.zeros(p.shape[0], dtype=np.int64)
    return np.bincount(p.row_ids()[sel], minlength=p.shape[0])


def selected_row_cols(p: CSRMatrix, sel: np.ndarray, i: int) -> np.ndarray:
    """Selected columns of row ``i`` (== ``q_next.row(i)[0]``)."""
    lo, hi = int(p.indptr[i]), int(p.indptr[i + 1])
    return p.indices[lo:hi][sel[lo:hi]]


def _block_selection(
    p: CSRMatrix, sel: np.ndarray, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray]:
    """(local row ids, columns) of the selected entries in rows [lo, hi)."""
    a, b = int(p.indptr[lo]), int(p.indptr[hi])
    block_sel = sel[a:b]
    cols = p.indices[a:b][block_sel]
    local_rows = np.repeat(
        np.arange(hi - lo, dtype=np.int64), np.diff(p.indptr[lo : hi + 1])
    )[block_sel]
    return local_rows, cols


def _block_indptr(local_rows: np.ndarray, n_rows: int) -> np.ndarray:
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    counts = np.bincount(local_rows, minlength=n_rows)
    np.cumsum(counts, out=indptr[1:])
    return indptr


def sampled_rows_from_mask(
    p: CSRMatrix, sel: np.ndarray, lo: int, hi: int
) -> CSRMatrix:
    """Materialize ``q_next.row_block(lo, hi)`` from the selection mask.

    Fallback for samplers that override ``extract_batch_layer``: the fused
    executor still skips the *global* ``Q^{l-1}`` build and hands the
    override a bit-identical per-batch block.
    """
    local_rows, cols = _block_selection(p, sel, lo, hi)
    return CSRMatrix(
        _block_indptr(local_rows, hi - lo),
        cols,
        np.ones(cols.size, dtype=np.float64),
        (hi - lo, p.shape[1]),
    )


def compact_layer_from_mask(
    p: CSRMatrix,
    sel: np.ndarray,
    lo: int,
    hi: int,
    dst_ids: np.ndarray,
    *,
    include_dst: bool,
) -> LayerSample:
    """Fused GraphSAGE extraction: sample mask -> compacted layer directly.

    Produces exactly what ``extract_batch_layer(q_next.row_block(lo, hi))``
    produces — ``np.searchsorted(kept, cols)`` assigns the same dense ranks
    as ``compact_columns``'s cumsum remap — without materializing the
    ``Q^{l-1}`` rows or scanning an O(n) column mask per batch.
    """
    local_rows, cols = _block_selection(p, sel, lo, hi)
    indptr = _block_indptr(local_rows, hi - lo)
    kept = np.unique(cols)
    new_cols = np.searchsorted(kept, cols).astype(np.int64)
    data = np.ones(cols.size, dtype=np.float64)
    if not include_dst:
        adj = CSRMatrix(indptr, new_cols, data, (hi - lo, int(kept.size)))
        return LayerSample(adj, kept, dst_ids)
    src = np.union1d(kept, dst_ids)
    pos = np.searchsorted(src, kept)
    adj = CSRMatrix(indptr, pos[new_cols], data, (hi - lo, int(src.size)))
    return LayerSample(adj, src, dst_ids)


def _lowers_compact(sampler) -> bool:
    """Fully lower compact extraction only for the stock GraphSAGE
    ``extract_batch_layer`` (subclasses inheriting it included); samplers
    overriding it get the mask materialized as a per-batch block instead."""
    return (
        getattr(type(sampler), "extract_batch_layer", None)
        is SageSampler.extract_batch_layer
    )


# ---------------------------------------------------------------------- #
# The compiled local executor
# ---------------------------------------------------------------------- #
class CompiledLocalExecutor(LocalExecutor):
    """A :class:`LocalExecutor` that additionally runs fused steps.

    Unfused steps fall through to the interpreter's handlers, so any mix
    of fused and plain steps executes; plain PROB steps also consult the
    optional :class:`ProbCache`.  After a fused SAMPLE+EXTRACT, ``q_next``
    is reset to ``None`` so an (optimizer-excluded) later read fails
    loudly instead of using stale state.
    """

    def __init__(
        self,
        sampler,
        adj: CSRMatrix,
        batches,
        rng,
        spgemm_fn,
        *,
        prob_cache: ProbCache | None = None,
    ) -> None:
        super().__init__(sampler, adj, batches, rng, spgemm_fn)
        self.spgemm = selector_aware_spgemm(self.spgemm)
        self.prob_cache = prob_cache
        self.sel: np.ndarray | None = None

    def _dispatch(self, step) -> None:
        if isinstance(step, FusedProbNormStep):
            self._prob_maybe_cached(step, normalized=True)
        elif isinstance(step, FusedSampleExtractStep):
            self._fused_sample_extract(step)
        elif isinstance(step, ProbStep):
            self._prob_maybe_cached(step, normalized=False)
        else:
            super()._dispatch(step)

    # -------------------------- PROB(+NORM) -------------------------- #
    def _cache_key(self, source: str, normalized: bool):
        if source == "global":
            # The global importance stack depends only on the batch count.
            ident = self.k
        else:
            ident = tuple(d.tobytes() for d in self.dst_lists)
        return (
            id(self.sampler),
            type(self.sampler).__qualname__,
            source,
            normalized,
            id(self.adj),
            self.adj.nnz,
            ident,
        )

    def _prob_maybe_cached(self, step: ProbStep, *, normalized: bool) -> None:
        cache = self.prob_cache
        key = None
        if cache is not None:
            key = self._cache_key(step.source, normalized)
            hit = cache.get(key)
            if hit is not None:
                p, bounds, frontier = hit
                self.p = p
                self.bounds = bounds
                if step.source == "frontier":
                    # frontier is a pure function of the key for this
                    # source; other sources leave it untouched, exactly
                    # like the interpreter.
                    self.frontier = frontier
                return
        self._prob(step)
        if normalized:
            self.p = self.sampler.norm_inplace(self.p)
        if cache is not None:
            cache.put(key, (self.p, self.bounds, self.frontier))

    # ------------------------- SAMPLE+EXTRACT ------------------------- #
    def _fused_sample_extract(self, step: FusedSampleExtractStep) -> None:
        self.s = step.count
        self.sel = self.sampler.sample_stacked_mask(
            self.p, step.count, self.rng, self.bounds
        )
        extract = step.extract
        if extract.kind == "compact":
            self._fused_extract_compact()
        elif extract.kind == "bipartite":
            sampled = [
                selected_row_cols(self.p, self.sel, i) for i in range(self.k)
            ]
            self._extract_bipartite_from(sampled, extract)
        else:  # walk
            self._fused_extract_walk()
        self.q_next = None

    def _fused_extract_compact(self) -> None:
        lower = _lowers_compact(self.sampler)
        new_dsts: list[np.ndarray] = []
        for i in range(self.k):
            lo, hi = int(self.bounds[i]), int(self.bounds[i + 1])
            if lower:
                layer = compact_layer_from_mask(
                    self.p,
                    self.sel,
                    lo,
                    hi,
                    self.dst_lists[i],
                    include_dst=self.sampler.include_dst,
                )
            else:
                layer = self.sampler.extract_batch_layer(
                    sampled_rows_from_mask(self.p, self.sel, lo, hi),
                    self.dst_lists[i],
                )
            self.layers_rev[i].append(layer)
            new_dsts.append(layer.src_ids)
        self.dst_lists = new_dsts

    def _fused_extract_walk(self) -> None:
        if self.visited is None:
            self.visited = [self.frontier]
        nxt = self.frontier.copy()
        picked = np.flatnonzero(mask_row_counts(self.p, self.sel) > 0)
        nxt[picked] = self.p.indices[self.sel]
        self.visited.append(nxt)
        self.dst_lists = [
            nxt[int(self.bounds[i]) : int(self.bounds[i + 1])]
            for i in range(self.k)
        ]
