"""Matrix-based GraphSAGE sampling (paper section 4.1).

Node-wise sampling: every frontier vertex draws ``s`` of its own neighbors.
In matrix form, the frontier is encoded as ``Q`` with one row per frontier
vertex (a single 1 at that vertex's column), so ``P = Q A`` gathers each
vertex's neighborhood as a row; NORM divides by the row degree, giving the
uniform distribution over neighbors; SAMPLE keeps ``s`` per row; EXTRACT is
just dropping the empty columns of the sampled ``Q^{l-1}`` (section 4.1.3).

Bulk sampling of ``k`` minibatches stacks the per-batch frontiers vertically
(Equation 1); all matrix steps are oblivious to the stacking.  The whole
algorithm is emitted as a sampling plan — per layer ``PROB(frontier) ->
NORM -> SAMPLE(s) -> EXTRACT(compact)`` — and interpreted by the executors
in :mod:`repro.core.plan` and :mod:`repro.distributed.partitioned`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..sparse import (
    CSRMatrix,
    compact_columns,
    row_normalize,
    row_normalize_inplace,
    row_selector,
)
from .frontier import LayerSample
from .plan import ExtractStep, NormStep, ProbStep, SampleStep, SamplingPlan
from .sampler_base import MatrixSampler

__all__ = ["SageSampler"]


class SageSampler(MatrixSampler):
    """GraphSAGE expressed in the matrix framework.

    ``include_dst`` adds each layer's destination vertices to its source
    frontier (the standard trick that lets models keep a self/root term);
    the pure paper formulation is ``include_dst=False``.
    """

    name = "graphsage"

    def __init__(
        self,
        *,
        include_dst: bool = True,
        sample_backend: str = "its",
        kernel=None,
    ) -> None:
        super().__init__(sample_backend, kernel)
        self.include_dst = include_dst

    # ------------------------------------------------------------------ #
    # Algorithm-1 pieces (also called by the distributed drivers)
    # ------------------------------------------------------------------ #
    @staticmethod
    def make_q(frontier: np.ndarray, n: int) -> CSRMatrix:
        """The GraphSAGE ``Q^l``: one row per frontier vertex."""
        return row_selector(frontier, n)

    def norm(self, p: CSRMatrix) -> CSRMatrix:
        """Uniform distribution over each vertex's neighbors: 1/|N(v)|."""
        return row_normalize(p)

    def norm_inplace(self, p: CSRMatrix) -> CSRMatrix:
        """Fused-NORM variant: same divide, no copy (see MatrixSampler)."""
        return row_normalize_inplace(p)

    def extract_batch_layer(
        self,
        q_next_rows: CSRMatrix,
        dst_ids: np.ndarray,
    ) -> LayerSample:
        """EXTRACT for one batch at one layer.

        ``q_next_rows`` is the slice of the sampled ``Q^{l-1}`` belonging to
        this batch (one row per destination vertex, columns over all of V).
        Removing its empty columns yields the sampled adjacency; the kept
        column ids are the new frontier.
        """
        compacted, kept = compact_columns(q_next_rows)
        if not self.include_dst:
            return LayerSample(compacted, kept, dst_ids)
        # Source frontier = sampled union destinations, kept sorted so the
        # column remap is a searchsorted.
        src = np.union1d(kept, dst_ids)
        pos = np.searchsorted(src, kept)
        adj = CSRMatrix(
            compacted.indptr.copy(),
            pos[compacted.indices],
            compacted.data.copy(),
            (compacted.shape[0], src.size),
        )
        return LayerSample(adj, src, dst_ids)

    # ------------------------------------------------------------------ #
    # Plan emission: the node-wise Algorithm-1 program
    # ------------------------------------------------------------------ #
    def plan(self, fanout: Sequence[int]) -> SamplingPlan:
        steps: list = []
        for s in fanout:
            steps += [
                ProbStep("frontier"),
                NormStep(),
                SampleStep(int(s)),
                ExtractStep("compact"),
            ]
        return SamplingPlan(tuple(steps))
