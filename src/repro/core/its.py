"""Inverse transform sampling (ITS) over the rows of a CSR matrix.

Each row of ``P`` is an unnormalized probability distribution over its
stored nonzeros; :func:`its_sample_rows` draws up to ``s`` *distinct*
columns per row, exactly the SAMPLE step of the paper's Algorithm 1:

1. prefix-sum each row's values,
2. draw uniforms and binary-search them into the prefix sums,
3. repeat on the not-yet-chosen entries until ``s`` distinct columns per
   row are selected (or the row runs out of nonzeros).

Everything is vectorized across all rows at once — one global cumulative
sum and one batched ``searchsorted`` per round — which is the bulk-sampling
amortization the paper exploits (many minibatches stacked into ``P`` share
the same kernel launches).

:func:`gumbel_topk_rows` offers an equivalent single-pass alternative
(exponential races / Gumbel top-k), used in tests as a statistical
cross-check and available as an optional sampler backend.
"""

from __future__ import annotations

import numpy as np

from ..sparse import CSRMatrix

__all__ = [
    "its_sample_rows",
    "its_select_mask",
    "gumbel_topk_rows",
    "gumbel_select_mask",
    "its_flops",
]

_MAX_ROUNDS = 256  # termination backstop; each round makes progress


def its_select_mask(
    p: CSRMatrix,
    s: int,
    rng: np.random.Generator,
    *,
    replace: bool = False,
) -> np.ndarray:
    """ITS selection as a boolean mask over ``p``'s stored nonzeros.

    Draws exactly the same uniforms in the same order as
    :func:`its_sample_rows` (which is this function plus a CSR build), so
    the two are interchangeable under a fixed seed.  The mask form is what
    the fused SAMPLE+EXTRACT kernels consume — extraction reads the
    selected entries straight out of ``p`` without materializing the
    intermediate ``Q^{l-1}`` CSR.

    An empty ``p`` consumes no randomness and returns an empty mask.
    """
    if s <= 0:
        raise ValueError(f"sample count s must be positive, got {s}")
    if np.any(p.data < 0):
        raise ValueError("P must be non-negative to be sampled")
    n_rows = p.shape[0]
    if p.nnz == 0:
        return np.zeros(0, dtype=bool)

    row_ids = p.row_ids()
    selected = np.zeros(p.nnz, dtype=bool)
    # Target distinct picks per row: min(s, positive nonzeros in the row).
    positive = p.data > 0
    pos_per_row = np.bincount(row_ids[positive], minlength=n_rows)
    target = np.minimum(s, pos_per_row)

    have = np.zeros(n_rows, dtype=np.int64)
    for _ in range(1 if replace else _MAX_ROUNDS):
        need = target - have
        todo = np.flatnonzero(need > 0)
        if todo.size == 0:
            break
        # Mass of the not-yet-selected entries, cumulated globally; row
        # boundaries are recovered through indptr so one cumsum serves all rows.
        live = np.where(selected, 0.0, p.data)
        cums = np.cumsum(live)
        row_end = p.indptr[1:]
        row_start = p.indptr[:-1]
        base = np.where(row_start > 0, cums[row_start - 1], 0.0)
        mass = np.where(row_end > row_start, cums[row_end - 1], 0.0) - base

        counts = need[todo] if not replace else np.full(todo.size, s)
        draw_rows = np.repeat(todo, counts)
        u = rng.random(draw_rows.size)
        targets = base[draw_rows] + u * mass[draw_rows]
        picks = np.searchsorted(cums, targets, side="left")
        # Guard against floating-point landing exactly on a row boundary.
        picks = np.minimum(picks, p.indptr[draw_rows + 1] - 1)
        picks = np.maximum(picks, p.indptr[draw_rows])
        selected[picks] = True
        have = np.bincount(row_ids[selected], minlength=n_rows)
        if replace:
            break
    else:
        raise RuntimeError("ITS failed to converge; is P malformed?")

    return selected


def _mask_to_csr(p: CSRMatrix, selected: np.ndarray) -> CSRMatrix:
    """Materialize a selection mask as the binary sampled ``Q^{l-1}``."""
    if selected.size == 0:
        return CSRMatrix.zeros(p.shape)
    out_rows = p.row_ids()[selected]
    indptr = np.zeros(p.shape[0] + 1, dtype=np.int64)
    np.add.at(indptr, out_rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    # Column order within a row follows the original CSR order (sorted).
    return CSRMatrix(
        indptr,
        p.indices[selected],
        np.ones(int(selected.sum())),
        p.shape,
    )


def its_sample_rows(
    p: CSRMatrix,
    s: int,
    rng: np.random.Generator,
    *,
    replace: bool = False,
) -> CSRMatrix:
    """SAMPLE(P, s): draw ``min(s, nnz(row))`` distinct columns per row.

    Returns a binary CSR matrix of the same shape as ``p`` with the selected
    columns set to 1.  With ``replace=True`` a single round of draws is made
    (duplicates collapse, so rows may carry fewer than ``s`` ones — the
    with-replacement semantics of e.g. DGL's default neighbor sampler).

    Rows whose values sum to zero (including empty rows) yield no samples.
    """
    return _mask_to_csr(p, its_select_mask(p, s, rng, replace=replace))


def gumbel_select_mask(
    p: CSRMatrix, s: int, rng: np.random.Generator
) -> np.ndarray:
    """Gumbel top-k selection as a boolean mask over ``p``'s nonzeros.

    Same draws in the same order as :func:`gumbel_topk_rows`; see
    :func:`its_select_mask` for the mask contract.
    """
    if s <= 0:
        raise ValueError(f"sample count s must be positive, got {s}")
    if np.any(p.data < 0):
        raise ValueError("P must be non-negative to be sampled")
    if p.nnz == 0:
        return np.zeros(0, dtype=bool)
    row_ids = p.row_ids()
    with np.errstate(divide="ignore"):
        keys = np.log(p.data) + rng.gumbel(size=p.nnz)
    keys[p.data == 0] = -np.inf
    # Rank entries within each row by descending key: sort by (row, -key).
    order = np.lexsort((-keys, row_ids))
    ranks = np.empty(p.nnz, dtype=np.int64)
    starts = p.indptr[:-1]
    pos = np.arange(p.nnz, dtype=np.int64)
    ranks[order] = pos - np.repeat(starts, np.diff(p.indptr))
    return (ranks < s) & (p.data > 0)


def gumbel_topk_rows(
    p: CSRMatrix, s: int, rng: np.random.Generator
) -> CSRMatrix:
    """Weighted sampling without replacement via the Gumbel top-k trick.

    Draws the same distribution as sequential ITS without replacement, in a
    single vectorized pass: each nonzero gets the key ``log(w) + Gumbel``;
    the ``s`` largest keys per row win.
    """
    return _mask_to_csr(p, gumbel_select_mask(p, s, rng))


def its_flops(p: CSRMatrix, s: int) -> int:
    """Operation count of ITS on ``p``: prefix sum + s binary searches/row.

    The paper argues (section 2.3) the prefix sum is a negligible cost; this
    estimate feeds the simulated compute model so that claim is measurable.
    """
    searches = p.shape[0] * s * max(1, int(np.log2(max(2, p.nnz))))
    return int(p.nnz + searches)
