"""Sparse general matrix-matrix multiplication (SpGEMM).

The kernel is an expand-sort-compress formulation, the same family as the
GPU nsparse kernels the paper uses: every nonzero ``A[i, j]`` contributes
``A[i, j] * B[j, :]`` to row ``i`` of the output; the expanded triplets are
then sorted and duplicate (row, col) pairs summed.

Besides the plain kernel this module exposes:

* :func:`spgemm_flops` — the multiply-add count, used by the simulated
  compute-cost model.
* :func:`required_rows` — which rows of ``B`` a given ``A`` block actually
  touches; this is the sparsity-aware communication optimization of the
  paper's Algorithm 2 (only ship rows of ``A_k`` whose column appears in
  ``Q_ik``).
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix, _ranges

__all__ = ["spgemm", "spgemm_flops", "required_rows"]


def spgemm(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Compute ``a @ b`` for two CSR matrices.

    Raises ``ValueError`` on inner-dimension mismatch.  The result has
    duplicates summed and explicit zeros kept only if a cancellation
    produces one (callers that care use :meth:`CSRMatrix.prune_zeros`).
    """
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    out_shape = (a.shape[0], b.shape[1])
    if a.nnz == 0 or b.nnz == 0:
        return CSRMatrix.zeros(out_shape)

    b_row_nnz = b.nnz_per_row()
    counts = b_row_nnz[a.indices]  # expansion count per A nonzero
    take = _ranges(b.indptr[a.indices], counts)
    rows = np.repeat(a.row_ids(), counts)
    cols = b.indices[take]
    vals = np.repeat(a.data, counts) * b.data[take]
    return CSRMatrix.from_coo(rows, cols, vals, out_shape)


def spgemm_flops(a: CSRMatrix, b: CSRMatrix) -> int:
    """Multiply-add count of ``a @ b`` (size of the expanded intermediate)."""
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    if a.nnz == 0 or b.nnz == 0:
        return 0
    return int(b.nnz_per_row()[a.indices].sum())


def required_rows(a: CSRMatrix, n_rows_b: int) -> np.ndarray:
    """Rows of the right-hand matrix actually read when computing ``a @ b``.

    These are exactly the nonzero column ids of ``a``.  In the 1.5D
    sparsity-aware algorithm only these rows of ``A_k`` are communicated
    instead of broadcasting the whole block row.
    """
    cols = a.nonzero_columns()
    if cols.size and cols[-1] >= n_rows_b:
        raise ValueError("a has columns beyond the right matrix's row count")
    return cols
