"""Sparse general matrix-matrix multiplication (SpGEMM).

Two serial kernels share the row-gather expansion (every nonzero
``A[i, j]`` contributes ``A[i, j] * B[j, :]`` to row ``i`` of the output)
but differ in how the expanded triplets are compressed:

* :func:`spgemm` — expand-sort-compress, the same family as the GPU
  nsparse kernels the paper uses: a global lexsort of the expanded
  triplets followed by a segmented sum over duplicate (row, col) pairs.
* :func:`spgemm_hash` — a row-wise hash accumulator (the nsparse /
  cuSPARSE "hash SpGEMM" family): expanded triplets are inserted into an
  open-addressing table keyed by their flat output position, so only the
  *distinct* output entries are ever sorted.  On the duplicate-heavy
  frontier products samplers produce (many batch vertices sharing
  neighbors) this avoids the ``O(F log F)`` sort over the full expanded
  intermediate.

Kernel selection is a registry concern — see :mod:`repro.sparse.kernels`;
this module holds the raw implementations.  Besides the kernels it exposes:

* :func:`spgemm_flops` — the multiply-add count, used by the simulated
  compute-cost model.
* :func:`required_rows` — which rows of ``B`` a given ``A`` block actually
  touches; this is the sparsity-aware communication optimization of the
  paper's Algorithm 2 (only ship rows of ``A_k`` whose column appears in
  ``Q_ik``).
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix, _ranges

__all__ = ["spgemm", "spgemm_hash", "spgemm_flops", "required_rows"]


def spgemm(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Compute ``a @ b`` for two CSR matrices.

    Raises ``ValueError`` on inner-dimension mismatch.  The result has
    duplicates summed and explicit zeros kept only if a cancellation
    produces one (callers that care use :meth:`CSRMatrix.prune_zeros`).
    """
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    out_shape = (a.shape[0], b.shape[1])
    if a.nnz == 0 or b.nnz == 0:
        return CSRMatrix.zeros(out_shape)

    rows, cols, vals = _expand(a, b)
    return CSRMatrix.from_coo(rows, cols, vals, out_shape)


def _expand(a: CSRMatrix, b: CSRMatrix) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The shared row-gather expansion: COO triplets of every partial
    product ``A[i, j] * B[j, :]``, with duplicates not yet combined."""
    counts = b.nnz_per_row()[a.indices]  # expansion count per A nonzero
    take = _ranges(b.indptr[a.indices], counts)
    rows = np.repeat(a.row_ids(), counts)
    cols = b.indices[take]
    vals = np.repeat(a.data, counts) * b.data[take]
    return rows, cols, vals


#: Fibonacci hashing multiplier (2^64 / golden ratio), the standard mixer
#: for power-of-two open-addressing tables.
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)


def _hash_slots(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Insert ``keys`` (non-negative int64) into an open-addressing table.

    Returns ``(slot, table)`` where ``slot[i]`` is the table position key
    ``i`` resolved to (equal keys share a slot) and ``table`` holds the key
    stored in each slot (-1 = empty).  The insert loop is vectorized:
    every pending key tries to claim its probe slot at once (last writer
    wins on a contested empty slot), matched keys retire, and the rest
    linearly probe onward.  The table is sized to at most 50% load, so
    every round retires at least one key per contested slot and the loop
    terminates.
    """
    n = keys.shape[0]
    log2_size = max(3, int(2 * n - 1).bit_length())
    size = 1 << log2_size
    mask = np.int64(size - 1)
    slot = (
        (keys.astype(np.uint64) * _HASH_MULT) >> np.uint64(64 - log2_size)
    ).astype(np.int64)
    table = np.full(size, -1, dtype=np.int64)
    pending = np.arange(n, dtype=np.int64)
    while pending.size:
        probe = slot[pending]
        free = table[probe] == -1
        table[probe[free]] = keys[pending[free]]
        matched = table[probe] == keys[pending]
        pending = pending[~matched]
        slot[pending] = (slot[pending] + 1) & mask
    return slot, table


def spgemm_hash(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Compute ``a @ b`` with a hash-accumulator compression.

    Semantics match :func:`spgemm` (duplicates summed, explicit zeros kept
    only when produced by cancellation); only the accumulation strategy —
    and therefore floating-point summation order — differs.  Output keys
    are flattened to ``row * n_cols + col``; shapes whose flat index space
    would overflow int64 fall back to the sort-based kernel.
    """
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    out_shape = (a.shape[0], b.shape[1])
    if a.nnz == 0 or b.nnz == 0:
        return CSRMatrix.zeros(out_shape)
    n_rows, n_cols = out_shape
    if n_rows * n_cols >= 2**63:  # flat keys would overflow int64
        return spgemm(a, b)
    rows, cols, vals = _expand(a, b)
    if rows.size == 0:
        return CSRMatrix.zeros(out_shape)
    keys = rows * np.int64(n_cols) + cols
    slot, table = _hash_slots(keys)
    acc = np.bincount(slot, weights=vals, minlength=table.shape[0])
    used = np.flatnonzero(table != -1)
    out_keys = table[used]
    order = np.argsort(out_keys)  # only the distinct outputs are sorted
    out_keys = out_keys[order]
    out_rows = out_keys // n_cols
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.add.at(indptr, out_rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRMatrix(
        indptr, out_keys - out_rows * n_cols, acc[used][order], out_shape
    )


def spgemm_flops(a: CSRMatrix, b: CSRMatrix) -> int:
    """Multiply-add count of ``a @ b`` (size of the expanded intermediate)."""
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    if a.nnz == 0 or b.nnz == 0:
        return 0
    return int(b.nnz_per_row()[a.indices].sum())


def required_rows(a: CSRMatrix, n_rows_b: int) -> np.ndarray:
    """Rows of the right-hand matrix actually read when computing ``a @ b``.

    These are exactly the nonzero column ids of ``a``.  In the 1.5D
    sparsity-aware algorithm only these rows of ``A_k`` are communicated
    instead of broadcasting the whole block row.
    """
    cols = a.nonzero_columns()
    if cols.size and cols[-1] >= n_rows_b:
        raise ValueError("a has columns beyond the right matrix's row count")
    return cols
