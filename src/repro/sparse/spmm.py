"""Sparse-times-dense multiplication (SpMM), SDDMM, and flop accounting.

Forward propagation of a sampled minibatch is an SpMM between the sampled
adjacency matrix and the fetched feature matrix (paper section 6.2); the
backward pass reuses the same kernel with the transposed adjacency.
:func:`sddmm` is the companion sampled dense-dense product (per-edge score
computation, e.g. attention logits) restricted to a sparse pattern.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix

__all__ = ["spmm", "sddmm", "spmm_flops"]


def spmm(a: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    """Compute ``a @ dense`` where ``dense`` is a 2-D (or 1-D) array."""
    dense = np.asarray(dense, dtype=np.float64)
    squeeze = dense.ndim == 1
    if squeeze:
        dense = dense[:, None]
    if dense.ndim != 2:
        raise ValueError(f"dense operand must be 1-D or 2-D, got {dense.ndim}-D")
    if a.shape[1] != dense.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} @ {dense.shape}")
    out = np.zeros((a.shape[0], dense.shape[1]), dtype=np.float64)
    if a.nnz:
        contrib = a.data[:, None] * dense[a.indices]
        # CSR entries are already grouped by row, so a segmented reduction
        # over non-empty rows is exact (and far faster than scatter-add).
        nonempty = np.flatnonzero(np.diff(a.indptr) > 0)
        out[nonempty] = np.add.reduceat(contrib, a.indptr[nonempty], axis=0)
    return out[:, 0] if squeeze else out


def sddmm(pattern: CSRMatrix, x: np.ndarray, y: np.ndarray) -> CSRMatrix:
    """Sampled dense-dense matmul: ``out[i, j] = pattern[i, j] * <x[i], y[j]>``
    for every stored ``(i, j)`` of ``pattern``.

    ``x`` is ``(m, f)`` and ``y`` is ``(n, f)`` for an ``(m, n)`` pattern —
    both operands row-major, as in per-edge attention scoring.  The output
    shares the pattern's structure exactly (explicit zeros included).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.ndim != 2 or y.ndim != 2 or x.shape[1] != y.shape[1]:
        raise ValueError(
            f"operands must be 2-D with matching feature dims, got "
            f"{x.shape} and {y.shape}"
        )
    if x.shape[0] != pattern.shape[0] or y.shape[0] != pattern.shape[1]:
        raise ValueError(
            f"pattern {pattern.shape} needs x with {pattern.shape[0]} rows "
            f"and y with {pattern.shape[1]} rows, got {x.shape} and {y.shape}"
        )
    if pattern.nnz == 0:
        return pattern.copy()
    dots = np.einsum(
        "ij,ij->i", x[pattern.row_ids()], y[pattern.indices]
    )
    return CSRMatrix(
        pattern.indptr.copy(),
        pattern.indices.copy(),
        pattern.data * dots,
        pattern.shape,
    )


def spmm_flops(a: CSRMatrix, n_features: int) -> int:
    """Multiply-add count of an SpMM with ``n_features`` dense columns."""
    return 2 * a.nnz * int(n_features)
