"""Sparse-times-dense multiplication (SpMM) and its flop accounting.

Forward propagation of a sampled minibatch is an SpMM between the sampled
adjacency matrix and the fetched feature matrix (paper section 6.2); the
backward pass reuses the same kernel with the transposed adjacency.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix

__all__ = ["spmm", "spmm_flops"]


def spmm(a: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    """Compute ``a @ dense`` where ``dense`` is a 2-D (or 1-D) array."""
    dense = np.asarray(dense, dtype=np.float64)
    squeeze = dense.ndim == 1
    if squeeze:
        dense = dense[:, None]
    if dense.ndim != 2:
        raise ValueError(f"dense operand must be 1-D or 2-D, got {dense.ndim}-D")
    if a.shape[1] != dense.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} @ {dense.shape}")
    out = np.zeros((a.shape[0], dense.shape[1]), dtype=np.float64)
    if a.nnz:
        contrib = a.data[:, None] * dense[a.indices]
        # CSR entries are already grouped by row, so a segmented reduction
        # over non-empty rows is exact (and far faster than scatter-add).
        nonempty = np.flatnonzero(np.diff(a.indptr) > 0)
        out[nonempty] = np.add.reduceat(contrib, a.indptr[nonempty], axis=0)
    return out[:, 0] if squeeze else out


def spmm_flops(a: CSRMatrix, n_features: int) -> int:
    """Multiply-add count of an SpMM with ``n_features`` dense columns."""
    return 2 * a.nnz * int(n_features)
