"""Pluggable sparse-kernel backends: the :data:`KERNELS` registry.

The hot path of the whole reproduction — bulk matrix-based sampling — is a
handful of sparse kernels (SpGEMM, SpMM, SDDMM).  This module makes the
kernel implementation a pluggable axis, exactly like samplers, execution
algorithms and datasets: a :class:`KernelBackend` bundles one
implementation of each kernel, and the :data:`KERNELS` registry (the same
generic :class:`~repro.api.registry.Registry` the other axes use) maps
names to backend instances.

Built-ins:

* ``esc`` — the expand-sort-compress numpy kernel the reproduction started
  with (global lexsort of the expanded intermediate).  The default.
* ``hash`` — a row-wise hash-accumulator SpGEMM that skips the global sort;
  wins on the duplicate-heavy frontier products samplers produce.
* ``scipy`` — auto-registered only when ``scipy`` is importable; delegates
  to ``scipy.sparse``'s compiled CSR kernels.

Selection is threaded everywhere a kernel runs: ``CSRMatrix.__matmul__``
dispatches through the process-wide default (:func:`set_default_kernel`,
:func:`use_kernel`), samplers take ``kernel=`` at construction,
``spgemm_15d`` takes ``kernel=``, ``RunConfig`` carries a ``kernel`` field,
and the CLI exposes ``--kernel``.  Registering a custom backend makes it
available to all of them at once::

    from repro.sparse.kernels import KERNELS, KernelBackend

    class MyKernel(KernelBackend):
        name = "mine"
        def spgemm(self, a, b):
            ...

    KERNELS.register("mine", MyKernel(), description="...")
    # now valid: RunConfig(kernel="mine"), repro train --kernel mine

Every backend must be *semantically interchangeable*: identical results up
to floating-point summation order (enforced by the cross-backend
equivalence suite in ``tests/test_kernel_equivalence.py`` and the golden
sampler-determinism tests).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Union

import numpy as np

# repro.api.registry is a standalone module (no repro imports), so pulling
# it from here cannot cycle even while repro.api's own __init__ is still
# executing higher up the import chain.
from ..api.registry import Registry
from .csr import CSRMatrix
from .spgemm import spgemm, spgemm_hash
from .spmm import sddmm, spmm

__all__ = [
    "KERNELS",
    "KernelBackend",
    "ESCKernel",
    "HashKernel",
    "CompiledKernel",
    "ScipyKernel",
    "KernelSpec",
    "get_kernel",
    "default_kernel",
    "set_default_kernel",
    "use_kernel",
]


class KernelBackend:
    """One interchangeable set of sparse kernels.

    Subclasses must implement :meth:`spgemm`; :meth:`spmm` and
    :meth:`sddmm` default to the shared numpy kernels, since SpGEMM is
    where implementations meaningfully diverge.  Backends are stateless —
    the registry stores one instance, shared by every caller.
    """

    name: str = "abstract"

    #: When True, plan-driven executors run sampling plans through the
    #: optimizer in :mod:`repro.core.compile` (PROB+NORM / SAMPLE+EXTRACT
    #: fusion, dead-step elimination) and interpret them with the compiled
    #: executors' fused row-wise kernels.  Output stays bit-identical to
    #: the step-by-step interpreter (enforced by the golden-digest and
    #: differential plan-fuzzing suites).
    compiles_plans: bool = False

    def spgemm(self, a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        """Sparse @ sparse -> sparse (duplicates summed)."""
        raise NotImplementedError

    def spmm(self, a: CSRMatrix, dense: np.ndarray) -> np.ndarray:
        """Sparse @ dense -> dense (1-D right operand allowed)."""
        return spmm(a, dense)

    def sddmm(
        self, pattern: CSRMatrix, x: np.ndarray, y: np.ndarray
    ) -> CSRMatrix:
        """Dense-dense product sampled at the pattern's nonzeros."""
        return sddmm(pattern, x, y)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ESCKernel(KernelBackend):
    """Expand-sort-compress: the original numpy kernel (global lexsort)."""

    name = "esc"

    def spgemm(self, a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        return spgemm(a, b)


class HashKernel(KernelBackend):
    """Row-wise hash accumulator: sorts only the distinct output entries."""

    name = "hash"

    def spgemm(self, a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        return spgemm_hash(a, b)


class CompiledKernel(HashKernel):
    """Hash SpGEMM plus sampling-plan compilation.

    The SpGEMM primitive is exactly the ``hash`` backend's (so individual
    products are bit-identical to it); the difference is the
    ``compiles_plans`` flag: executors seeing this backend optimize the
    sampling plan (:func:`repro.core.compile.optimize`) and run the fused
    steps through row-wise kernels that skip the NORM copy and the
    intermediate ``Q^{l-1}`` CSR materialization.
    """

    name = "compiled"
    compiles_plans = True


class ScipyKernel(KernelBackend):
    """Delegates to scipy.sparse's compiled CSR kernels (when available)."""

    name = "scipy"

    def spgemm(self, a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions differ: {a.shape} @ {b.shape}")
        if a.nnz == 0 or b.nnz == 0:
            return CSRMatrix.zeros((a.shape[0], b.shape[1]))
        return CSRMatrix.from_scipy(a.to_scipy() @ b.to_scipy())

    def spmm(self, a: CSRMatrix, dense: np.ndarray) -> np.ndarray:
        dense = np.asarray(dense, dtype=np.float64)
        squeeze = dense.ndim == 1
        if squeeze:
            dense = dense[:, None]
        if dense.ndim != 2:
            raise ValueError(
                f"dense operand must be 1-D or 2-D, got {dense.ndim}-D"
            )
        if a.shape[1] != dense.shape[0]:
            raise ValueError(
                f"inner dimensions differ: {a.shape} @ {dense.shape}"
            )
        out = np.asarray(a.to_scipy() @ dense, dtype=np.float64)
        return out[:, 0] if squeeze else out


#: All registered kernel backends, built-in and plugin.
KERNELS = Registry("kernel")

KERNELS.register(
    "esc",
    ESCKernel(),
    description="expand-sort-compress (global lexsort); the default",
    requires=None,
)
KERNELS.register(
    "hash",
    HashKernel(),
    description="row-wise hash accumulator; fast on duplicate-heavy products",
    requires=None,
)
KERNELS.register(
    "compiled",
    CompiledKernel(),
    description="hash SpGEMM + plan optimizer: fused PROB+NORM / "
    "SAMPLE+EXTRACT row-wise kernels",
    requires=None,
)


def _scipy_available() -> bool:
    try:
        import scipy.sparse  # noqa: F401
    except Exception:
        return False
    return True


if _scipy_available():
    KERNELS.register(
        "scipy",
        ScipyKernel(),
        description="scipy.sparse compiled CSR kernels",
        requires="scipy",
    )


#: Anything resolvable to a backend: a registry name, an instance, or None
#: (= the process-wide default).
KernelSpec = Union[str, KernelBackend, None]

_default_name = "esc"


def get_kernel(spec: KernelSpec = None) -> KernelBackend:
    """Resolve a kernel selection to a backend instance.

    ``None`` means the process-wide default; a string is a registry lookup
    (raising with the known names listed on a typo); a backend instance
    passes through, so callers can hand in unregistered ad-hoc backends.
    """
    if spec is None:
        return KERNELS.get(_default_name)
    if isinstance(spec, KernelBackend):
        return spec
    return KERNELS.get(spec)


def default_kernel() -> KernelBackend:
    """The backend ``CSRMatrix.__matmul__`` (and every unparameterized
    call site) currently dispatches to."""
    return KERNELS.get(_default_name)


def set_default_kernel(name: str) -> None:
    """Set the process-wide default backend (must be registered)."""
    global _default_name
    KERNELS.spec(name)  # raises RegistryKeyError with known names on typo
    _default_name = name


@contextmanager
def use_kernel(name: str) -> Iterator[KernelBackend]:
    """Temporarily switch the process-wide default backend::

        with use_kernel("hash"):
            p = q @ adj  # dispatches to the hash SpGEMM
    """
    global _default_name
    KERNELS.spec(name)
    previous = _default_name
    _default_name = name
    try:
        yield KERNELS.get(name)
    finally:
        _default_name = previous
