"""Compressed sparse row matrices built on numpy arrays.

This is the sparse substrate the paper's sampling framework runs on.  The
paper uses cuSPARSE/nsparse CSR kernels on GPU; here the same operations are
implemented as vectorized numpy kernels.  Only CSR supports SpGEMM (matching
the constraint the paper works around in section 8.2.2), so everything
funnels through this class.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """A CSR sparse matrix with float64 values and int64 indices.

    Invariants (checked by :meth:`check`):

    * ``indptr`` has length ``shape[0] + 1``, is non-decreasing, starts at 0
      and ends at ``nnz``.
    * ``indices`` and ``data`` have length ``nnz``; column indices are within
      ``[0, shape[1])`` and sorted within each row with no duplicates.
    """

    __slots__ = ("indptr", "indices", "data", "shape")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray | None,
        shape: tuple[int, int],
        *,
        sum_duplicates: bool = True,
    ) -> "CSRMatrix":
        """Build from COO triplets, sorting and (optionally) summing duplicates."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if vals is None:
            vals = np.ones(rows.shape[0], dtype=np.float64)
        else:
            vals = np.asarray(vals, dtype=np.float64)
        if not (rows.shape == cols.shape == vals.shape):
            raise ValueError("rows, cols and vals must have identical shapes")
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if rows.size:
            if rows.min() < 0 or rows.max() >= n_rows:
                raise ValueError("row index out of range")
            if cols.min() < 0 or cols.max() >= n_cols:
                raise ValueError("column index out of range")
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if sum_duplicates and rows.size:
            boundary = np.empty(rows.size, dtype=bool)
            boundary[0] = True
            boundary[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            starts = np.flatnonzero(boundary)
            vals = np.add.reduceat(vals, starts)
            rows, cols = rows[starts], cols[starts]
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, cols, vals, (n_rows, n_cols))

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build from a 2-D dense array, keeping exact nonzeros."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(f"expected a 2-D array, got shape {dense.shape}")
        rows, cols = np.nonzero(dense)
        return cls.from_coo(rows, cols, dense[rows, cols], dense.shape)

    @classmethod
    def zeros(cls, shape: tuple[int, int]) -> "CSRMatrix":
        """An empty matrix of the given shape."""
        return cls(
            np.zeros(int(shape[0]) + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            shape,
        )

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        """The n-by-n identity."""
        idx = np.arange(n, dtype=np.int64)
        return cls(np.arange(n + 1, dtype=np.int64), idx, np.ones(n), (n, n))

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Convert from a scipy.sparse matrix (used by tests as an oracle)."""
        mat = mat.tocsr()
        mat.sum_duplicates()
        mat.sort_indices()
        return cls(mat.indptr, mat.indices, mat.data, mat.shape)

    # ------------------------------------------------------------------ #
    # Buffer export (zero-copy shared-memory publication)
    # ------------------------------------------------------------------ #
    def buffers(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The three CSR arrays ``(indptr, indices, data)``, by reference.

        The constructor normalizes to contiguous int64/int64/float64, so
        these are directly publishable into shared memory; mutating them
        mutates the matrix.
        """
        return self.indptr, self.indices, self.data

    @classmethod
    def from_buffers(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
    ) -> "CSRMatrix":
        """Rebuild from :meth:`buffers` output without copying.

        Arrays that are already contiguous with the canonical dtypes
        (int64/int64/float64) — e.g. views over an attached shared-memory
        segment — pass through ``np.ascontiguousarray`` untouched, so the
        matrix aliases the caller's buffers (read-only views stay
        read-only).  No invariant checking happens here; callers exporting
        untrusted buffers should :meth:`check`.
        """
        return cls(indptr, indices, data, shape)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.indices.shape[0])

    def nnz_per_row(self) -> np.ndarray:
        """Stored entries in each row, length ``shape[0]``."""
        return np.diff(self.indptr)

    def row_sums(self) -> np.ndarray:
        """Sum of values in each row."""
        out = np.zeros(self.shape[0], dtype=np.float64)
        if self.nnz:
            np.add.at(out, self.row_ids(), self.data)
        return out

    def row_ids(self) -> np.ndarray:
        """Row index of every stored entry (COO expansion of ``indptr``)."""
        return np.repeat(np.arange(self.shape[0], dtype=np.int64), self.nnz_per_row())

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(columns, values) of row ``i``."""
        if not 0 <= i < self.shape[0]:
            raise IndexError(f"row {i} out of range for shape {self.shape}")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def check(self) -> None:
        """Validate CSR invariants; raise ``ValueError`` on violation."""
        if self.indptr.shape[0] != self.shape[0] + 1:
            raise ValueError("indptr length does not match row count")
        if self.indptr[0] != 0 or self.indptr[-1] != self.nnz:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape:
            raise ValueError("indices and data length mismatch")
        if self.nnz:
            if self.indices.min() < 0 or self.indices.max() >= self.shape[1]:
                raise ValueError("column index out of range")
            rows = self.row_ids()
            keys = rows * self.shape[1] + self.indices
            if np.any(np.diff(keys) <= 0):
                raise ValueError("columns must be strictly increasing within rows")

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Materialize as a dense 2-D array."""
        out = np.zeros(self.shape, dtype=np.float64)
        if self.nnz:
            out[self.row_ids(), self.indices] = self.data
        return out

    def to_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(rows, cols, vals) triplets in row-major order."""
        return self.row_ids(), self.indices.copy(), self.data.copy()

    def to_scipy(self):
        """Convert to ``scipy.sparse.csr_matrix`` (tests only)."""
        from scipy.sparse import csr_matrix

        return csr_matrix(
            (self.data, self.indices, self.indptr), shape=self.shape
        )

    def copy(self) -> "CSRMatrix":
        """Deep copy."""
        return CSRMatrix(
            self.indptr.copy(), self.indices.copy(), self.data.copy(), self.shape
        )

    # ------------------------------------------------------------------ #
    # Structural operations
    # ------------------------------------------------------------------ #
    def transpose(self) -> "CSRMatrix":
        """Transposed matrix (CSR of the CSC view)."""
        rows, cols, vals = self.to_coo()
        return CSRMatrix.from_coo(
            cols, rows, vals, (self.shape[1], self.shape[0]), sum_duplicates=False
        )

    def extract_rows(self, rows: Iterable[int] | np.ndarray) -> "CSRMatrix":
        """Gather ``rows`` (in the given order, duplicates allowed) into a new matrix."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.shape[0]):
            raise IndexError("row index out of range")
        counts = self.nnz_per_row()[rows]
        starts = self.indptr[rows]
        take = _ranges(starts, counts)
        indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRMatrix(indptr, self.indices[take], self.data[take], (rows.size, self.shape[1]))

    def row_block(self, start: int, stop: int) -> "CSRMatrix":
        """Contiguous block of rows ``[start, stop)`` (zero-copy on indices/data)."""
        if not 0 <= start <= stop <= self.shape[0]:
            raise IndexError(f"block [{start}, {stop}) out of range")
        lo, hi = self.indptr[start], self.indptr[stop]
        return CSRMatrix(
            self.indptr[start : stop + 1] - lo,
            self.indices[lo:hi],
            self.data[lo:hi],
            (stop - start, self.shape[1]),
        )

    def select_columns(self, mask: np.ndarray) -> "CSRMatrix":
        """Keep only columns where ``mask`` is true, renumbering them densely."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self.shape[1]:
            raise ValueError("mask length must equal column count")
        new_id = np.cumsum(mask, dtype=np.int64) - 1
        keep = mask[self.indices]
        rows = self.row_ids()[keep]
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(
            indptr,
            new_id[self.indices[keep]],
            self.data[keep],
            (self.shape[0], int(mask.sum())),
        )

    def nonzero_columns(self) -> np.ndarray:
        """Sorted unique column ids that hold at least one nonzero."""
        return np.unique(self.indices)

    def scale_rows(self, factors: np.ndarray) -> "CSRMatrix":
        """Multiply each row by a scalar factor (returns a new matrix)."""
        factors = np.asarray(factors, dtype=np.float64)
        if factors.shape[0] != self.shape[0]:
            raise ValueError("one factor per row required")
        return CSRMatrix(
            self.indptr.copy(),
            self.indices.copy(),
            self.data * factors[self.row_ids()] if self.nnz else self.data.copy(),
            self.shape,
        )

    def prune_zeros(self, tol: float = 0.0) -> "CSRMatrix":
        """Drop stored entries with ``|value| <= tol``."""
        keep = np.abs(self.data) > tol
        rows = self.row_ids()[keep]
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(indptr, self.indices[keep], self.data[keep], self.shape)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __matmul__(self, other):
        # Dispatch through the process-wide kernel backend so `q @ adj`
        # call sites pick up --kernel / use_kernel() selections.
        from .kernels import default_kernel

        kernel = default_kernel()
        if isinstance(other, CSRMatrix):
            return kernel.spgemm(self, other)
        return kernel.spmm(self, np.asarray(other))

    def add(self, other: "CSRMatrix") -> "CSRMatrix":
        """Element-wise sum with another matrix of the same shape."""
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch {self.shape} vs {other.shape}")
        rows = np.concatenate([self.row_ids(), other.row_ids()])
        cols = np.concatenate([self.indices, other.indices])
        vals = np.concatenate([self.data, other.data])
        return CSRMatrix.from_coo(rows, cols, vals, self.shape)

    def equal(self, other: "CSRMatrix", tol: float = 1e-12) -> bool:
        """Structural + numeric equality after pruning entries at ``tol``.

        Pruning uses ``tol`` (not 0) so that a cancellation one operand
        resolves to an exact 0.0 and another to ~1e-17 — kernels are free
        to differ in summation order — does not read as a structural
        mismatch.
        """
        a, b = self.prune_zeros(tol), other.prune_zeros(tol)
        return (
            a.shape == b.shape
            and np.array_equal(a.indptr, b.indptr)
            and np.array_equal(a.indices, b.indices)
            and np.allclose(a.data, b.data, atol=tol)
        )

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"


def _ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(start, start+count)`` for each pair, vectorized."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.repeat(starts, counts)
    offsets = np.arange(total, dtype=np.int64)
    offsets -= np.repeat(np.cumsum(counts) - counts, counts)
    return out + offsets
