"""Structural sparse operations used by the sampling framework.

These are the building blocks of the paper's matrix constructions:

* :func:`vstack` — Equation 1's vertical stacking of per-minibatch
  ``Q`` / ``P`` / ``A^l`` matrices into one bulk matrix.
* :func:`block_diag` — the block-diagonal expansion of the stacked ``A_R``
  used by LADIES bulk column extraction (section 4.2.4).
* :func:`row_selector` / :func:`col_selector` / :func:`indicator_rows` —
  the ``Q``, ``Q_R`` and ``Q_C`` extraction-matrix constructions.
* :func:`row_normalize` — the NORM step of Algorithm 1.
* :func:`compact_columns` — dropping empty columns of ``Q^{l-1}`` to form a
  sampled adjacency matrix (GraphSAGE extraction, section 4.1.3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .csr import CSRMatrix

__all__ = [
    "vstack",
    "hstack",
    "block_diag",
    "row_selector",
    "col_selector",
    "indicator_rows",
    "row_normalize",
    "row_normalize_inplace",
    "compact_columns",
]


def vstack(mats: Sequence[CSRMatrix]) -> CSRMatrix:
    """Stack matrices vertically; all must share a column count."""
    if not mats:
        raise ValueError("need at least one matrix to stack")
    n_cols = mats[0].shape[1]
    if any(m.shape[1] != n_cols for m in mats):
        raise ValueError("all matrices must have the same number of columns")
    indptr_parts = [mats[0].indptr]
    offset = mats[0].nnz
    for m in mats[1:]:
        indptr_parts.append(m.indptr[1:] + offset)
        offset += m.nnz
    return CSRMatrix(
        np.concatenate(indptr_parts),
        np.concatenate([m.indices for m in mats]),
        np.concatenate([m.data for m in mats]),
        (sum(m.shape[0] for m in mats), n_cols),
    )


def hstack(mats: Sequence[CSRMatrix]) -> CSRMatrix:
    """Stack matrices horizontally; all must share a row count."""
    if not mats:
        raise ValueError("need at least one matrix to stack")
    n_rows = mats[0].shape[0]
    if any(m.shape[0] != n_rows for m in mats):
        raise ValueError("all matrices must have the same number of rows")
    rows = np.concatenate([m.row_ids() for m in mats])
    col_offsets = np.cumsum([0] + [m.shape[1] for m in mats])
    cols = np.concatenate(
        [m.indices + off for m, off in zip(mats, col_offsets[:-1])]
    )
    vals = np.concatenate([m.data for m in mats])
    return CSRMatrix.from_coo(
        rows, cols, vals, (n_rows, int(col_offsets[-1])), sum_duplicates=False
    )


def block_diag(mats: Sequence[CSRMatrix]) -> CSRMatrix:
    """Place matrices along the diagonal of an otherwise-zero matrix."""
    if not mats:
        raise ValueError("need at least one matrix")
    row_off = np.cumsum([0] + [m.shape[0] for m in mats])
    col_off = np.cumsum([0] + [m.shape[1] for m in mats])
    indptr_parts = [mats[0].indptr]
    nnz_off = mats[0].nnz
    for m in mats[1:]:
        indptr_parts.append(m.indptr[1:] + nnz_off)
        nnz_off += m.nnz
    indices = np.concatenate(
        [m.indices + off for m, off in zip(mats, col_off[:-1])]
    )
    data = np.concatenate([m.data for m in mats])
    return CSRMatrix(
        np.concatenate(indptr_parts),
        indices,
        data,
        (int(row_off[-1]), int(col_off[-1])),
    )


def row_selector(vertices: np.ndarray, n: int) -> CSRMatrix:
    """The GraphSAGE ``Q`` / LADIES ``Q_R`` construction.

    One row per vertex in ``vertices``; row ``i`` has a single 1 in column
    ``vertices[i]``.  Multiplying ``row_selector(v, n) @ A`` gathers the
    adjacency rows of the selected vertices, in order.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.ndim != 1:
        raise ValueError("vertices must be a 1-D array")
    if vertices.size and (vertices.min() < 0 or vertices.max() >= n):
        raise ValueError(f"vertex id out of range [0, {n})")
    return CSRMatrix(
        np.arange(vertices.size + 1, dtype=np.int64),
        vertices.copy(),
        np.ones(vertices.size, dtype=np.float64),
        (vertices.size, n),
    )


def col_selector(vertices: np.ndarray, n: int) -> CSRMatrix:
    """The LADIES ``Q_C`` construction (section 4.2.3).

    An ``n x len(vertices)`` matrix with one 1 per column, at the row index
    of each vertex to extract; ``A_R @ col_selector(v, n)`` gathers columns.
    """
    return row_selector(vertices, n).transpose()


def indicator_rows(batches: Sequence[np.ndarray], n: int) -> CSRMatrix:
    """The LADIES ``Q^L`` construction: one row per batch, ``b`` ones per row.

    Row ``i`` has a 1 in column ``v`` for every vertex ``v`` in batch ``i``.
    """
    if not batches:
        raise ValueError("need at least one batch")
    rows = np.concatenate(
        [np.full(len(b), i, dtype=np.int64) for i, b in enumerate(batches)]
    )
    cols = np.concatenate([np.asarray(b, dtype=np.int64) for b in batches])
    return CSRMatrix.from_coo(rows, cols, None, (len(batches), n))


def row_normalize(mat: CSRMatrix) -> CSRMatrix:
    """Divide each row by its sum so each row becomes a distribution.

    Rows that sum to zero are left untouched (they stay empty / all-zero).
    Division is done directly (not via a reciprocal) so rows with subnormal
    sums normalize cleanly instead of overflowing to inf.
    """
    sums = mat.row_sums()
    if mat.nnz == 0:
        return mat.copy()
    row_sums = sums[mat.row_ids()]
    data = np.divide(
        mat.data, row_sums, out=np.zeros_like(mat.data), where=row_sums != 0
    )
    return CSRMatrix(mat.indptr.copy(), mat.indices.copy(), data, mat.shape)


def row_normalize_inplace(mat: CSRMatrix) -> CSRMatrix:
    """:func:`row_normalize`, overwriting ``mat.data`` instead of copying.

    Bit-identical values to :func:`row_normalize` (same divide, same
    zero-sum-row handling); only the copies of ``indptr``/``indices``/
    ``data`` are skipped.  Callers must own ``mat`` — the fused PROB+NORM
    kernel does, since the probability product it normalizes is freshly
    computed.
    """
    if mat.nnz == 0:
        return mat
    sums = mat.row_sums()
    row_sums = sums[mat.row_ids()]
    nonzero = row_sums != 0
    np.divide(mat.data, row_sums, out=mat.data, where=nonzero)
    if not nonzero.all():
        # Match row_normalize's out=np.zeros_like: untouched lanes are 0.
        mat.data[~nonzero] = 0.0
    return mat


def compact_columns(mat: CSRMatrix) -> tuple[CSRMatrix, np.ndarray]:
    """Drop empty columns, returning the compacted matrix and the kept ids.

    This is GraphSAGE extraction: the sampled adjacency ``A^l`` is ``Q^{l-1}``
    with its empty columns removed, and the kept column ids are the frontier
    vertices of the next layer (in ascending vertex order).
    """
    kept = mat.nonzero_columns()
    mask = np.zeros(mat.shape[1], dtype=bool)
    mask[kept] = True
    return mat.select_columns(mask), kept
