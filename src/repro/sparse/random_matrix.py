"""Random sparse-matrix generators (tests, benchmarks, property checks)."""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix

__all__ = ["sprand", "sprand_per_row"]


def sprand(
    n_rows: int,
    n_cols: int,
    density: float,
    rng: np.random.Generator,
    *,
    values: str = "uniform",
) -> CSRMatrix:
    """A random CSR matrix with roughly ``density`` fraction of nonzeros.

    ``values`` selects the nonzero distribution: ``"uniform"`` in (0, 1],
    or ``"ones"`` for a binary matrix.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    nnz = int(round(density * n_rows * n_cols))
    nnz = min(nnz, n_rows * n_cols)
    if nnz == 0:
        return CSRMatrix.zeros((n_rows, n_cols))
    flat = rng.choice(n_rows * n_cols, size=nnz, replace=False)
    rows, cols = np.divmod(flat, n_cols)
    if values == "uniform":
        vals = rng.uniform(1e-6, 1.0, size=nnz)
    elif values == "ones":
        vals = np.ones(nnz)
    else:
        raise ValueError(f"unknown values kind {values!r}")
    return CSRMatrix.from_coo(rows, cols, vals, (n_rows, n_cols))


def sprand_per_row(
    n_rows: int,
    n_cols: int,
    nnz_per_row: int,
    rng: np.random.Generator,
) -> CSRMatrix:
    """A random binary matrix with exactly ``nnz_per_row`` nonzeros per row."""
    if nnz_per_row > n_cols:
        raise ValueError("cannot place more nonzeros per row than columns")
    cols = np.empty((n_rows, nnz_per_row), dtype=np.int64)
    for i in range(n_rows):  # permutation draw per row; rows are independent
        cols[i] = rng.choice(n_cols, size=nnz_per_row, replace=False)
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), nnz_per_row)
    return CSRMatrix.from_coo(rows, cols.ravel(), None, (n_rows, n_cols))
