"""Sparse-matrix substrate: CSR storage, SpGEMM/SpMM kernels, structural ops.

Everything the paper's sampling framework needs from cuSPARSE/nsparse,
implemented from scratch with vectorized numpy kernels.
"""

from .csr import CSRMatrix
from .ops import (
    block_diag,
    col_selector,
    compact_columns,
    hstack,
    indicator_rows,
    row_normalize,
    row_selector,
    vstack,
)
from .random_matrix import sprand, sprand_per_row
from .spgemm import required_rows, spgemm, spgemm_flops
from .spmm import spmm, spmm_flops

__all__ = [
    "CSRMatrix",
    "spgemm",
    "spgemm_flops",
    "required_rows",
    "spmm",
    "spmm_flops",
    "vstack",
    "hstack",
    "block_diag",
    "row_selector",
    "col_selector",
    "indicator_rows",
    "row_normalize",
    "compact_columns",
    "sprand",
    "sprand_per_row",
]
