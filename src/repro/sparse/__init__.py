"""Sparse-matrix substrate: CSR storage, pluggable kernels, structural ops.

Everything the paper's sampling framework needs from cuSPARSE/nsparse,
implemented from scratch with vectorized numpy kernels.  Kernel
implementations (SpGEMM/SpMM/SDDMM) are a registry axis — see
:mod:`repro.sparse.kernels` — so samplers, the distributed drivers and the
CLI can swap backends (``esc``, ``hash``, ``scipy``, plugins) without code
changes.
"""

from .csr import CSRMatrix
from .ops import (
    block_diag,
    col_selector,
    compact_columns,
    hstack,
    indicator_rows,
    row_normalize,
    row_normalize_inplace,
    row_selector,
    vstack,
)
from .random_matrix import sprand, sprand_per_row
from .spgemm import required_rows, spgemm, spgemm_flops, spgemm_hash
from .spmm import sddmm, spmm, spmm_flops

# Must come after the raw-kernel imports above: the registry wraps them.
from .kernels import (
    KERNELS,
    KernelBackend,
    default_kernel,
    get_kernel,
    set_default_kernel,
    use_kernel,
)

__all__ = [
    "CSRMatrix",
    "KERNELS",
    "KernelBackend",
    "get_kernel",
    "default_kernel",
    "set_default_kernel",
    "use_kernel",
    "spgemm",
    "spgemm_hash",
    "spgemm_flops",
    "required_rows",
    "spmm",
    "sddmm",
    "spmm_flops",
    "vstack",
    "hstack",
    "block_diag",
    "row_selector",
    "col_selector",
    "indicator_rows",
    "row_normalize",
    "row_normalize_inplace",
    "compact_columns",
    "sprand",
    "sprand_per_row",
]
