"""ASCII reporting helpers for the benchmark harness.

Benchmarks print the same rows/series the paper's tables and figures show;
these helpers render them readably in test output.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "format_table",
    "format_stacked_bars",
    "format_series",
    "percentiles",
    "latency_summary",
    "format_latency_summary",
]


def format_table(
    rows: Sequence[Mapping[str, object]], *, title: str | None = None
) -> str:
    """Render dict-rows as an aligned ASCII table (column order from row 0)."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    cols = list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_stacked_bars(
    rows: Sequence[Mapping[str, object]],
    label_key: str,
    part_keys: Sequence[str],
    *,
    width: int = 50,
    title: str | None = None,
) -> str:
    """Render stacked horizontal bars (the paper's figure style) in ASCII.

    Each row becomes one bar, split into ``part_keys`` segments scaled so
    the longest bar spans ``width`` characters.
    """
    if not rows:
        return f"{title or 'bars'}: (no rows)"
    totals = [sum(float(r[k]) for k in part_keys) for r in rows]
    peak = max(totals) or 1.0
    glyphs = "#=+*o@%&"
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={k}" for i, k in enumerate(part_keys)
    )
    lines.append(f"[{legend}]")
    label_w = max(len(str(r[label_key])) for r in rows)
    for r, total in zip(rows, totals):
        bar = ""
        for i, k in enumerate(part_keys):
            n = int(round(width * float(r[k]) / peak))
            bar += glyphs[i % len(glyphs)] * n
        lines.append(
            f"{str(r[label_key]).ljust(label_w)} |{bar}  ({total:.4g}s)"
        )
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[object],
    *,
    title: str | None = None,
    unit: str = "s",
) -> str:
    """Render named series over shared x values (a figure's line plot)."""
    rows = [
        {"x": x, **{name: f"{vals[i]:.5g}{unit}" for name, vals in series.items()}}
        for i, x in enumerate(x_values)
    ]
    return format_table(rows, title=title)


def percentiles(
    values: Sequence[float], qs: Sequence[float] = (50, 95, 99)
) -> dict[float, float]:
    """Nearest-rank percentiles of ``values``: ``{q: value}``.

    Nearest-rank (the value at index ``ceil(q/100 * n) - 1`` of the sorted
    sample) always returns an *observed* value, so latency reports quote
    real request latencies and the result is exactly reproducible — no
    interpolation between samples.
    """
    if len(values) == 0:
        raise ValueError("percentiles need at least one value")
    for q in qs:
        if not 0 < q <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {q}")
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    n = ordered.size
    return {
        q: float(ordered[min(n - 1, max(0, int(np.ceil(q / 100.0 * n)) - 1))])
        for q in qs
    }


def latency_summary(values: Sequence[float]) -> dict[str, float]:
    """The standard latency row: n, mean, p50/p95/p99 and max."""
    if len(values) == 0:
        raise ValueError("latency_summary needs at least one value")
    arr = np.asarray(values, dtype=np.float64)
    pct = percentiles(arr, (50, 95, 99))
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "p50": pct[50],
        "p95": pct[95],
        "p99": pct[99],
        "max": float(arr.max()),
    }


def format_latency_summary(
    values: Sequence[float], *, label: str = "latency", unit: str = "s"
) -> str:
    """One-line p50/p95/p99 summary, e.g. for per-request serving latency."""
    s = latency_summary(values)
    return (
        f"{label}: p50 {s['p50']:.5g}{unit}  p95 {s['p95']:.5g}{unit}  "
        f"p99 {s['p99']:.5g}{unit}  mean {s['mean']:.5g}{unit}  "
        f"max {s['max']:.5g}{unit}  (n={s['n']})"
    )


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.5g}"
    return str(v)
