"""ASCII reporting helpers for the benchmark harness.

Benchmarks print the same rows/series the paper's tables and figures show;
these helpers render them readably in test output.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_stacked_bars", "format_series"]


def format_table(
    rows: Sequence[Mapping[str, object]], *, title: str | None = None
) -> str:
    """Render dict-rows as an aligned ASCII table (column order from row 0)."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    cols = list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_stacked_bars(
    rows: Sequence[Mapping[str, object]],
    label_key: str,
    part_keys: Sequence[str],
    *,
    width: int = 50,
    title: str | None = None,
) -> str:
    """Render stacked horizontal bars (the paper's figure style) in ASCII.

    Each row becomes one bar, split into ``part_keys`` segments scaled so
    the longest bar spans ``width`` characters.
    """
    if not rows:
        return f"{title or 'bars'}: (no rows)"
    totals = [sum(float(r[k]) for k in part_keys) for r in rows]
    peak = max(totals) or 1.0
    glyphs = "#=+*o@%&"
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={k}" for i, k in enumerate(part_keys)
    )
    lines.append(f"[{legend}]")
    label_w = max(len(str(r[label_key])) for r in rows)
    for r, total in zip(rows, totals):
        bar = ""
        for i, k in enumerate(part_keys):
            n = int(round(width * float(r[k]) / peak))
            bar += glyphs[i % len(glyphs)] * n
        lines.append(
            f"{str(r[label_key]).ljust(label_w)} |{bar}  ({total:.4g}s)"
        )
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[object],
    *,
    title: str | None = None,
    unit: str = "s",
) -> str:
    """Render named series over shared x values (a figure's line plot)."""
    rows = [
        {"x": x, **{name: f"{vals[i]:.5g}{unit}" for name, vals in series.items()}}
        for i, x in enumerate(x_values)
    ]
    return format_table(rows, title=title)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.5g}"
    return str(v)
