"""Schema-versioned benchmark artifacts: the committed perf trajectory.

Benchmarks historically printed tables and persisted nothing, so there was
no machine-readable perf history to diff a PR against.  Every
``benchmarks/bench_*.py`` now funnels its headline numbers through
:func:`write_bench_artifact`, producing ``BENCH_<name>.json`` files under
``benchmarks/results/`` that are committed per PR:

.. code-block:: json

    {
      "schema_version": 1,
      "bench": "serving",
      "params": {"dataset": "products", "scale": 0.1},
      "metrics": {"peak_req_per_s": 10512.3},
      "rows": [{"clients": 1, "p50_ms": 0.41}, ...]
    }

``schema_version`` guards future readers: bump it when a field changes
meaning, and keep :func:`load_bench_artifact` refusing versions it does not
understand rather than silently misreading a trajectory point.

*Simulated* artifacts deliberately carry no timestamps or host info —
simulated metrics are deterministic, and a byte-stable file makes
regressions show up as a git diff.  *Wall-clock* artifacts (e.g. the
multi-core ``bench_parallel``) are machine-dependent, so they attach an
optional ``"env"`` key (:func:`env_fingerprint`: cpu count,
python/numpy versions, platform) and the regression gate refuses to
compare artifacts from different environments unless told to
(``--ignore-env``) — a speedup measured on 16 cores says nothing about a
1-core box, and that incomparability must fail loudly, not drift by.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "bench_artifact",
    "write_bench_artifact",
    "load_bench_artifact",
    "default_artifact_path",
    "env_fingerprint",
]

#: Current artifact schema.  Version 1: ``schema_version`` / ``bench`` /
#: ``params`` / ``metrics`` / ``rows`` keys, JSON-native values only.
BENCH_SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars and tuples so artifacts stay plain JSON."""
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (TypeError, ValueError):
            pass
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float):
        # Round so re-runs differing only in 1e-15 noise don't churn git.
        return round(value, 9)
    return value


def env_fingerprint(*, workers: int | None = None) -> dict[str, Any]:
    """The environment facts that make wall-clock numbers comparable.

    Attach this (via ``bench_artifact(..., env=...)``) to any benchmark
    whose metrics depend on the machine: core count, interpreter and numpy
    versions, platform.  ``workers`` records how many worker processes the
    run actually used when that is an environment choice rather than a
    swept parameter.
    """
    import os
    import platform

    import numpy

    env: dict[str, Any] = {
        "cpu_count": int(os.cpu_count() or 1),
        "python": platform.python_version(),
        "numpy": str(numpy.__version__),
        "platform": f"{platform.system()}-{platform.machine()}",
    }
    if workers is not None:
        env["workers"] = int(workers)
    return env


def bench_artifact(
    name: str,
    *,
    params: Mapping[str, Any] | None = None,
    metrics: Mapping[str, Any] | None = None,
    rows: Sequence[Mapping[str, Any]] | None = None,
    env: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble one schema-versioned artifact payload.

    ``params`` records the knobs the run used (so a trajectory point is
    self-describing), ``metrics`` the headline scalars a regression gate
    would compare, ``rows`` the full sweep table.  ``env`` (only present
    when given — simulated benches stay byte-stable) carries the
    :func:`env_fingerprint` of machine-dependent runs; the regression
    gate refuses cross-environment comparisons unless overridden.
    """
    if not name or not name.replace("_", "").isalnum():
        raise ValueError(
            f"bench name {name!r} must be alphanumeric/underscore "
            f"(it becomes the BENCH_<name>.json filename)"
        )
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": name,
        "params": _jsonable(dict(params or {})),
        "metrics": _jsonable(dict(metrics or {})),
        "rows": _jsonable(list(rows or [])),
    }
    if env is not None:
        payload["env"] = _jsonable(dict(env))
    return payload


def default_artifact_path(name: str, out_dir: str | Path | None = None) -> Path:
    """``<out_dir>/BENCH_<name>.json`` (default ``benchmarks/results/``
    next to the repo's benchmarks package, falling back to cwd)."""
    if out_dir is None:
        here = Path(__file__).resolve()
        for parent in here.parents:
            if (parent / "benchmarks").is_dir():
                out_dir = parent / "benchmarks" / "results"
                break
        else:  # pragma: no cover - installed without the benchmarks tree
            out_dir = Path.cwd() / "benchmarks" / "results"
    return Path(out_dir) / f"BENCH_{name}.json"


def write_bench_artifact(
    name: str,
    *,
    params: Mapping[str, Any] | None = None,
    metrics: Mapping[str, Any] | None = None,
    rows: Sequence[Mapping[str, Any]] | None = None,
    env: Mapping[str, Any] | None = None,
    path: str | Path | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``path`` overrides the default location (benchmark scripts expose it
    as ``--json``); parent directories are created.
    """
    payload = bench_artifact(
        name, params=params, metrics=metrics, rows=rows, env=env
    )
    out = Path(path) if path is not None else default_artifact_path(name)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


def load_bench_artifact(path: str | Path) -> dict[str, Any]:
    """Read an artifact back, refusing unknown schema versions."""
    data = json.loads(Path(path).read_text())
    version = data.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"artifact {path} has schema_version {version!r}; this reader "
            f"understands {BENCH_SCHEMA_VERSION} — regenerate the artifact "
            f"or upgrade the reader"
        )
    for key in ("bench", "params", "metrics", "rows"):
        if key not in data:
            raise ValueError(f"artifact {path} is missing the {key!r} key")
    return data
