"""Perf-regression gate over committed ``BENCH_*.json`` artifacts.

The artifact layer (:mod:`repro.bench.artifact`) records each benchmark's
headline metrics per PR; this module makes those claims *enforceable*: it
diffs a freshly emitted artifact against the committed baseline and fails
when a metric moved the wrong way by more than a tolerance.

Comparability is strict by design.  Two artifacts are only diffed when
they are the same bench (``bench`` key), the same schema version (the
loader refuses others), and were produced with the same ``params`` —
a throughput measured at 16 clients says nothing about one measured at
128.  A params mismatch is its own failure mode
(:class:`ParamsMismatch`), distinct from a regression, so CI output tells
you whether to fix the invocation or the code.

Metric direction is inferred from the key name (``*_req_per_s`` and
``*speedup*`` are higher-better; ``*_ms``, ``p50/p95/p99``, ``makespan``
are lower-better; anything unrecognized is informational and skipped) —
the same convention every ``benchmarks/bench_*.py`` already follows.
Simulated metrics are deterministic, so the default tolerance is tight;
it exists to absorb intentional-but-small drift, not measurement noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from .artifact import load_bench_artifact

__all__ = [
    "Regression",
    "ParamsMismatch",
    "EnvMismatch",
    "metric_direction",
    "compare_artifacts",
    "compare_artifact_files",
]

#: Key-name fragments that classify a metric's good direction.  Checked in
#: order; first match wins (so "p99_ms" is lower-better even though a
#: hypothetical "p99_ms_speedup" would be higher-better — list higher-
#: better fragments first to keep ratios meaningful).
_HIGHER_BETTER = (
    "req_per_s", "speedup", "throughput", "hit_rate",
    "fetch_reduction", "overlap_saving", "retention",
)
_LOWER_BETTER = ("_ms", "p50", "p95", "p99", "makespan", "latency", "seconds")


class ParamsMismatch(ValueError):
    """Fresh and baseline artifacts were produced with different params."""


class EnvMismatch(ValueError):
    """Fresh and baseline artifacts carry different environment
    fingerprints (``env`` key) — wall-clock numbers measured on different
    machines prove nothing about each other.  Pass ``ignore_env=True``
    (CLI ``--ignore-env``) to compare anyway, e.g. to gate speedup
    *ratios* across machines."""


@dataclass(frozen=True)
class Regression:
    """One metric that moved the wrong way beyond tolerance."""

    metric: str
    baseline: float
    fresh: float
    direction: str  # "higher" or "lower" (the *good* direction)
    tolerance: float

    def __str__(self) -> str:
        verb = "dropped" if self.direction == "higher" else "rose"
        return (
            f"{self.metric}: {verb} from {self.baseline:g} to {self.fresh:g} "
            f"({self.fresh / self.baseline:.3f}x, tolerance "
            f"{self.tolerance:.0%})"
        )


def metric_direction(name: str) -> str | None:
    """``"higher"``, ``"lower"``, or ``None`` for informational metrics."""
    lowered = name.lower()
    for fragment in _HIGHER_BETTER:
        if fragment in lowered:
            return "higher"
    for fragment in _LOWER_BETTER:
        if fragment in lowered:
            return "lower"
    return None


def compare_artifacts(
    baseline: Mapping[str, Any],
    fresh: Mapping[str, Any],
    *,
    tolerance: float = 0.05,
    ignore_params: tuple[str, ...] = (),
    ignore_env: bool = False,
) -> list[Regression]:
    """Diff two artifact payloads; returns the list of regressions.

    Raises :class:`ValueError` when the artifacts are for different
    benches, :class:`ParamsMismatch` when their params differ (keys in
    ``ignore_params`` are excused), :class:`EnvMismatch` when either
    carries an environment fingerprint and they disagree (unless
    ``ignore_env``), and flags a baseline metric that vanished from the
    fresh run as a regression-shaped failure too — silently dropping a
    gated metric must not pass the gate.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if baseline.get("bench") != fresh.get("bench"):
        raise ValueError(
            f"cannot compare different benches: baseline is "
            f"{baseline.get('bench')!r}, fresh is {fresh.get('bench')!r}"
        )
    if not ignore_env:
        base_env = baseline.get("env")
        fresh_env = fresh.get("env")
        if base_env != fresh_env:
            keys = sorted(
                k
                for k in set(base_env or {}) | set(fresh_env or {})
                if (base_env or {}).get(k) != (fresh_env or {}).get(k)
            ) or ["env"]
            raise EnvMismatch(
                f"artifacts come from different environments (differ on "
                f"{', '.join(keys)}: baseline "
                f"{ {k: (base_env or {}).get(k) for k in keys} } vs fresh "
                f"{ {k: (fresh_env or {}).get(k) for k in keys} }); "
                f"wall-clock numbers are machine-specific — regenerate the "
                f"baseline on this machine or pass ignore_env to gate "
                f"ratios only"
            )
    base_params = {
        k: v for k, v in baseline.get("params", {}).items()
        if k not in ignore_params
    }
    fresh_params = {
        k: v for k, v in fresh.get("params", {}).items()
        if k not in ignore_params
    }
    if base_params != fresh_params:
        differing = sorted(
            k
            for k in set(base_params) | set(fresh_params)
            if base_params.get(k) != fresh_params.get(k)
        )
        raise ParamsMismatch(
            f"artifacts are not comparable: params differ on "
            f"{', '.join(differing)} (baseline "
            f"{ {k: base_params.get(k) for k in differing} } vs fresh "
            f"{ {k: fresh_params.get(k) for k in differing} })"
        )
    regressions: list[Regression] = []
    base_metrics = baseline.get("metrics", {})
    fresh_metrics = fresh.get("metrics", {})
    for name, base_value in sorted(base_metrics.items()):
        direction = metric_direction(name)
        if direction is None or not isinstance(base_value, (int, float)):
            continue
        if name not in fresh_metrics:
            regressions.append(
                Regression(
                    metric=f"{name} (missing from fresh artifact)",
                    baseline=float(base_value),
                    fresh=float("nan"),
                    direction=direction,
                    tolerance=tolerance,
                )
            )
            continue
        fresh_value = float(fresh_metrics[name])
        base_value = float(base_value)
        if direction == "higher":
            bad = fresh_value < base_value * (1.0 - tolerance)
        else:
            bad = fresh_value > base_value * (1.0 + tolerance)
        if bad:
            regressions.append(
                Regression(
                    metric=name,
                    baseline=base_value,
                    fresh=fresh_value,
                    direction=direction,
                    tolerance=tolerance,
                )
            )
    return regressions


def compare_artifact_files(
    baseline_path: str | Path,
    fresh_path: str | Path,
    *,
    tolerance: float = 0.05,
    ignore_params: tuple[str, ...] = (),
    ignore_env: bool = False,
) -> list[Regression]:
    """File-path convenience over :func:`compare_artifacts` (both loads
    are schema-version checked)."""
    return compare_artifacts(
        load_bench_artifact(baseline_path),
        load_bench_artifact(fresh_path),
        tolerance=tolerance,
        ignore_params=ignore_params,
        ignore_env=ignore_env,
    )
