"""Benchmark harness: sim-scale workloads, ASCII figure reporting, and the
schema-versioned ``BENCH_<name>.json`` perf-trajectory artifacts."""

from .artifact import (
    BENCH_SCHEMA_VERSION,
    bench_artifact,
    default_artifact_path,
    env_fingerprint,
    load_bench_artifact,
    write_bench_artifact,
)
from .harness import SIM_WORKLOADS, BenchWorkload, load_bench_graph, run_pipeline_epoch
from .regression import (
    EnvMismatch,
    ParamsMismatch,
    Regression,
    compare_artifact_files,
    compare_artifacts,
    metric_direction,
)
from .reporting import (
    format_latency_summary,
    format_series,
    format_stacked_bars,
    format_table,
    latency_summary,
    percentiles,
)

__all__ = [
    "BenchWorkload",
    "SIM_WORKLOADS",
    "load_bench_graph",
    "run_pipeline_epoch",
    "format_table",
    "format_stacked_bars",
    "format_series",
    "percentiles",
    "latency_summary",
    "format_latency_summary",
    "BENCH_SCHEMA_VERSION",
    "bench_artifact",
    "default_artifact_path",
    "env_fingerprint",
    "load_bench_artifact",
    "write_bench_artifact",
    "Regression",
    "ParamsMismatch",
    "EnvMismatch",
    "metric_direction",
    "compare_artifacts",
    "compare_artifact_files",
]
