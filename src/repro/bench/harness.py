"""Shared experiment harness for the paper-figure benchmarks.

Each benchmark regenerates one table or figure: it sweeps the paper's
parameter axis (GPU count, replication factor, bulk size), runs the
simulated pipeline, and prints the same rows/series the paper reports.
This module centralizes the sweep plumbing and the sim-scale workload
definitions so benchmark files stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..api.config import RunConfig
from ..config import PERLMUTTER_LIKE, MachineConfig
from ..graphs import Graph, load_dataset
from ..graphs.datasets import PAPER_DATASETS
from ..pipeline import TrainingPipeline, choose_c_k
from ..pipeline.stats import EpochStats

__all__ = ["BenchWorkload", "SIM_WORKLOADS", "load_bench_graph", "run_pipeline_epoch"]


@dataclass(frozen=True)
class BenchWorkload:
    """Sim-scale stand-in workload for one paper dataset.

    ``scale`` feeds :func:`repro.graphs.load_dataset`; ``batch_size`` and
    ``n_batches`` are chosen so the bulk-vs-per-batch dynamics (many
    minibatches per epoch) survive the downscaling; ``fanout`` is the
    paper's shape shrunk proportionally.
    """

    dataset: str
    scale: float
    batch_size: int
    n_batches: int
    fanout: tuple[int, ...]
    ladies_width: int
    seed: int = 0

    @property
    def spec(self):
        return PAPER_DATASETS[self.dataset]


#: Sim-scale versions of Table 3 + Table 4, sized so one figure bench runs
#: in minutes.  Relative density ordering (protein > products > papers) and
#: the papers dataset's large-n/low-d character are preserved.
SIM_WORKLOADS: dict[str, BenchWorkload] = {
    "products": BenchWorkload(
        dataset="products", scale=1.0, batch_size=32, n_batches=64,
        fanout=(5, 3, 2), ladies_width=64,
    ),
    "protein": BenchWorkload(
        dataset="protein", scale=1.0, batch_size=32, n_batches=64,
        fanout=(5, 3, 2), ladies_width=64,
    ),
    "papers": BenchWorkload(
        dataset="papers", scale=0.25, batch_size=32, n_batches=128,
        fanout=(5, 3, 2), ladies_width=64,
    ),
}


def load_bench_graph(workload: BenchWorkload) -> Graph:
    """Generate the workload's graph with a training split sized to yield
    exactly ``n_batches`` full minibatches."""
    g = load_dataset(workload.dataset, scale=workload.scale, seed=workload.seed)
    need = workload.batch_size * workload.n_batches
    if need > g.n:
        raise ValueError(
            f"workload wants {need} training vertices but graph has {g.n}"
        )
    rng = np.random.default_rng(workload.seed + 99)
    g.train_idx = np.sort(rng.choice(g.n, size=need, replace=False))
    return g


def run_pipeline_epoch(
    graph: Graph,
    workload: BenchWorkload,
    *,
    p: int,
    c: int | None = None,
    k: int | None = None,
    algorithm: str = "replicated",
    sampler: str = "sage",
    sparsity_aware: bool = True,
    machine: MachineConfig = PERLMUTTER_LIKE,
    seed: int = 0,
) -> tuple[EpochStats, int, int]:
    """Run one perf-only epoch; returns (stats, c, k) actually used.

    When ``c``/``k`` are omitted they are chosen by the paper-scale memory
    model (section 7.3's "highest c and k that fit"), capped to the sim
    workload's batch count.
    """
    from ..api.registries import SAMPLERS
    from ..config import ArchitectureConfig

    # Layer-wise samplers (LADIES family) take one wide layer; everything
    # else uses the workload's per-layer fanout shape.
    layerwise = SAMPLERS.spec(sampler).meta("family") == "layer-wise"
    fanout = workload.fanout if not layerwise else (workload.ladies_width,)
    arch = ArchitectureConfig(
        name=sampler.upper(),
        batch_size=workload.spec.batch_size,
        fanout=fanout,
        hidden=256,
        layers=len(fanout),
    )
    if c is None or k is None:
        auto_c, auto_k = choose_c_k(
            workload.spec, arch, p,
            replicated_graph=(algorithm == "replicated"), machine=machine,
        )
        c = c if c is not None else auto_c
        # Scale the paper-sized k down to the sim batch count.
        if k is None:
            k = max(1, int(round(workload.n_batches * auto_k / workload.spec.batches)))
    cfg = RunConfig(
        p=p,
        c=c,
        algorithm=algorithm,
        sampler=sampler,
        fanout=fanout,
        batch_size=workload.batch_size,
        k=k,
        hidden=workload_hidden(),
        train_model=False,
        sparsity_aware=sparsity_aware,
        machine=machine,
        seed=seed,
        work_scale=work_scale_for(workload, graph),
    )
    pipe = TrainingPipeline(graph, cfg)
    return pipe.train_epoch(), c, k


def workload_hidden() -> int:
    """Model width shared by the pipeline and the Quiver baseline in
    benchmarks, so propagation costs are directly comparable."""
    return 64


def work_scale_for(workload: BenchWorkload, graph: Graph) -> float:
    """Sim-to-paper workload scale: the ratio of paper edges to sim edges.

    Charging costs at this scale restores the paper's balance between fixed
    kernel overheads and scalable flop/byte work (see Communicator docs).
    """
    return max(1.0, workload.spec.edges / max(1, graph.m))
