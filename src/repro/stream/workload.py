"""UpdateStream: edge churn interleaved with inference traffic.

An :class:`UpdateStream` wraps any request workload (open-loop trace or
closed-loop clients, :mod:`repro.serve.workload`) and adds a time-sorted
stream of :class:`~repro.stream.delta.EdgeBatch` mutations.  The serving
engine applies each batch when the simulated clock reaches its arrival,
before dispatching micro-batches scheduled after it — so requests always
see the graph as of their dispatch time, exactly like a real online system
applying writes between inference batches.

:meth:`UpdateStream.synthetic` builds the deterministic churn scenario the
benchmarks sweep: a request trace over a vertex pool plus interleaved
insert/delete batches at a configurable update:request ratio.  Deletions
target distinct existing base edges and insertions distinct absent edges,
so the final edge set is well-defined regardless of interleaving.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..sparse import CSRMatrix
from ..serve.request import InferenceRequest, InferenceResult
from ..serve.workload import TraceWorkload
from .delta import EdgeBatch

__all__ = ["UpdateStream"]


class UpdateStream:
    """A request workload plus a time-sorted stream of edge batches."""

    def __init__(
        self,
        requests,
        updates: Sequence[EdgeBatch],
    ) -> None:
        self.requests = requests
        self.edge_batches = sorted(updates, key=lambda b: b.at)

    # -- the request-workload protocol (delegated) ---------------------- #
    @property
    def open_loop(self) -> bool:
        """Whether the wrapped request source is open-loop (the parallel
        fleet path keys off this; default-closed for unknown sources)."""
        return bool(getattr(self.requests, "open_loop", False))

    def initial(self) -> list[InferenceRequest]:
        return self.requests.initial()

    def on_complete(self, result: InferenceResult) -> list[InferenceRequest]:
        return self.requests.on_complete(result)

    # -- the update stream ---------------------------------------------- #
    def updates(self) -> list[EdgeBatch]:
        """The edge batches, sorted by arrival time."""
        return list(self.edge_batches)

    @property
    def n_update_edges(self) -> int:
        return sum(b.n_edges for b in self.edge_batches)

    @classmethod
    def synthetic(
        cls,
        adj: CSRMatrix,
        vertex_pool: np.ndarray,
        *,
        n_requests: int,
        update_ratio: float = 0.25,
        edges_per_update: int = 8,
        delete_fraction: float = 0.5,
        seed: int = 0,
        interarrival: float = 1e-4,
    ) -> "UpdateStream":
        """Deterministic churn: requests at a fixed gap, update batches
        interleaved at ``update_ratio`` batches per request.

        Each update batch carries ``edges_per_update`` edges; a
        ``delete_fraction`` of batches delete distinct *existing* edges of
        ``adj`` and the rest insert distinct *absent* edges, so replaying
        the stream always converges to the same final edge set.
        """
        if update_ratio < 0:
            raise ValueError("update_ratio must be non-negative")
        if not 0.0 <= delete_fraction <= 1.0:
            raise ValueError("delete_fraction must be in [0, 1]")
        if edges_per_update <= 0:
            raise ValueError("edges_per_update must be positive")
        requests = TraceWorkload.synthetic(
            n_requests, vertex_pool, seed=seed, interarrival=interarrival
        )
        n_updates = int(round(update_ratio * n_requests))
        rng = np.random.default_rng(np.random.SeedSequence([seed, 577]))
        n = adj.shape[0]
        # Distinct existing edges to delete, distinct absent pairs to insert.
        rows, cols, _ = adj.to_coo()
        n_batches_del = int(round(delete_fraction * n_updates))
        need_del = n_batches_del * edges_per_update
        if need_del > rows.size:
            raise ValueError(
                f"cannot delete {need_del} distinct edges from a graph with "
                f"{rows.size}; lower update_ratio or edges_per_update"
            )
        del_pick = (
            rng.choice(rows.size, size=need_del, replace=False)
            if need_del
            else np.empty(0, dtype=np.int64)
        )
        existing = set(zip(rows.tolist(), cols.tolist()))
        inserts: list[tuple[int, int]] = []
        need_ins = (n_updates - n_batches_del) * edges_per_update
        taken: set[tuple[int, int]] = set()
        while len(inserts) < need_ins:
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if u == v or (u, v) in existing or (u, v) in taken:
                continue
            taken.add((u, v))
            inserts.append((u, v))
        batches: list[EdgeBatch] = []
        span = n_requests * interarrival
        gap = span / max(1, n_updates)
        d = i = 0
        for k in range(n_updates):
            at = (k + 0.5) * gap
            if k < n_batches_del:
                pick = del_pick[d : d + edges_per_update]
                d += edges_per_update
                batches.append(
                    EdgeBatch(rows[pick], cols[pick], "delete", at=at)
                )
            else:
                pairs = inserts[i : i + edges_per_update]
                i += edges_per_update
                batches.append(
                    EdgeBatch(
                        np.array([u for u, _ in pairs], dtype=np.int64),
                        np.array([v for _, v in pairs], dtype=np.int64),
                        "insert",
                        at=at,
                    )
                )
        return cls(requests, batches)
