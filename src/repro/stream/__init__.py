"""repro.stream — dynamic-graph ingestion over the frozen-CSR stack.

Production graphs mutate under traffic; everything else in this repo
assumes a frozen CSR.  This package bridges the two:

* :class:`DeltaCSR` — edge insertions/deletions absorbed into a per-row
  delta log over a frozen base, exposing canonical frozen views and
  threshold-triggered compaction with a from-scratch parity assert.
* :class:`StreamingGraph` — a :class:`~repro.graphs.Graph` wrapper that
  refreshes ``graph.adj`` on every update, so samplers / executors /
  inference transparently run on the current graph.
* :func:`dirty_closure` — which cached layer-``k`` representations an edge
  change invalidates (reverse reachability on the new adjacency).
* :class:`UpdateStream` — a serving workload interleaving edge batches
  with inference requests on the simulated clock.

Quickstart::

    from repro.api import Engine, RunConfig
    from repro.stream import UpdateStream

    engine = Engine(RunConfig(dataset="products", scale=0.25, epochs=1,
                              stream_updates=True, embed_budget=65536.0))
    engine.train()
    server = engine.serving()                    # streaming-aware server
    workload = UpdateStream.synthetic(
        engine.graph.adj, engine.graph.test_idx,
        n_requests=64, update_ratio=0.25,
    )
    report = server.process(workload)
    print(report.update_stats.row(), report.digest())
"""

from .delta import DeltaCSR, EdgeBatch, UpdateResult
from .graph import StreamingGraph, StreamStats, dirty_closure
from .workload import UpdateStream

__all__ = [
    "DeltaCSR",
    "EdgeBatch",
    "UpdateResult",
    "StreamingGraph",
    "StreamStats",
    "dirty_closure",
    "UpdateStream",
]
