"""Delta-CSR: a mutable overlay absorbing edge churn over a frozen CSR.

Everything upstream of this module — the samplers, the plan executors, the
feature and embedding caches — consumes a *frozen* :class:`~repro.sparse.CSRMatrix`.
Production graphs mutate under traffic, so :class:`DeltaCSR` gives them a
frozen view of a moving target: edge insertions and deletions accumulate in
a per-row delta log, :meth:`view` splices the changed rows into the base
CSR (only dirty rows are re-merged; clean rows are block-copied), and once
the log crosses ``compaction_threshold`` of the base size the overlay
*compacts* into a fresh frozen CSR.

Two invariants make the overlay safe to put under the sampling stack:

* **Canonical views.**  Every :meth:`view` satisfies the full CSR contract
  (sorted, duplicate-free columns — ``CSRMatrix.check``), so a view is
  indistinguishable from a from-scratch build of the same edge set and
  sampling from it is bit-identical.
* **Compaction parity.**  Every :meth:`compact` re-derives the matrix
  through the independent :meth:`CSRMatrix.from_coo` path (a global
  lexsort, no splicing) and asserts the incremental merge produced the
  exact same ``indptr``/``indices``/``data`` arrays before promoting it to
  the new base.

The delta log stores *final* per-edge outcomes (an insert overwrites a
pending insert; a delete cancels one), so the log is bounded by the number
of distinct touched edges, not the number of operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sparse import CSRMatrix

__all__ = ["EdgeBatch", "UpdateResult", "DeltaCSR"]


@dataclass(frozen=True)
class EdgeBatch:
    """One batch of edge mutations arriving at simulated time ``at``.

    ``op`` is ``"insert"`` or ``"delete"``; ``src``/``dst`` are equal-length
    vertex arrays (edge ``src[i] -> dst[i]``), ``vals`` optional insert
    weights (default 1.0, ignored for deletes).
    """

    src: np.ndarray
    dst: np.ndarray
    op: str = "insert"
    vals: np.ndarray | None = None
    at: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in ("insert", "delete"):
            raise ValueError(f"unknown edge op {self.op!r}; use insert or delete")
        src = np.asarray(self.src, dtype=np.int64)
        dst = np.asarray(self.dst, dtype=np.int64)
        if src.ndim != 1 or src.shape != dst.shape:
            raise ValueError("src and dst must be equal-length 1-D arrays")
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)
        if self.vals is not None:
            vals = np.asarray(self.vals, dtype=np.float64)
            if vals.shape != src.shape:
                raise ValueError("vals must align with src/dst")
            object.__setattr__(self, "vals", vals)
        if self.at < 0:
            raise ValueError(f"arrival time must be non-negative, got {self.at}")

    @property
    def n_edges(self) -> int:
        return int(self.src.size)


@dataclass
class UpdateResult:
    """What applying one :class:`EdgeBatch` did to the overlay."""

    dirty_rows: np.ndarray  # rows whose adjacency actually changed
    applied: int = 0  # edge ops that changed the edge set
    skipped: int = 0  # no-ops (duplicate inserts / missing deletes)
    compacted: bool = False
    pending: int = 0  # delta-log size after the batch
    sim_cost: dict[str, float] = field(default_factory=dict)


class DeltaCSR:
    """A frozen-CSR view over a sorted per-row delta log.

    ``compaction_threshold`` is the delta-log size (as a fraction of the
    base nnz, minimum one edge) at which :meth:`maybe_compact` folds the
    log into a fresh base; reaching the threshold *exactly* compacts.
    """

    def __init__(
        self, base: CSRMatrix, *, compaction_threshold: float = 0.25
    ) -> None:
        if base.shape[0] != base.shape[1]:
            raise ValueError(f"adjacency must be square, got {base.shape}")
        if compaction_threshold <= 0:
            raise ValueError("compaction_threshold must be positive")
        self.base = base
        self.compaction_threshold = float(compaction_threshold)
        # Final outcome per touched edge: value (insert) or None (delete).
        self._ops: dict[tuple[int, int], float | None] = {}
        self._dirty_rows: set[int] = set()
        self._view: CSRMatrix | None = base
        self.compactions = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, int]:
        return self.base.shape

    @property
    def n(self) -> int:
        return self.base.shape[0]

    @property
    def pending(self) -> int:
        """Distinct edges with an outstanding (un-compacted) mutation."""
        return len(self._ops)

    @property
    def compaction_limit(self) -> int:
        """Delta-log size that triggers :meth:`maybe_compact`."""
        return max(1, int(np.ceil(self.compaction_threshold * self.base.nnz)))

    @property
    def dirty_row_ids(self) -> np.ndarray:
        """Sorted rows the next :meth:`view` must re-merge."""
        return np.array(sorted(self._dirty_rows), dtype=np.int64)

    def _has_edge(self, u: int, v: int) -> bool:
        """Edge existence in the *current* (base + log) graph."""
        key = (u, v)
        if key in self._ops:
            return self._ops[key] is not None
        cols, _ = self.base.row(u)
        i = int(np.searchsorted(cols, v))
        return i < cols.size and cols[i] == v

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def apply(self, batch: EdgeBatch, *, strict: bool = False) -> UpdateResult:
        """Absorb one edge batch into the delta log.

        Inserting an edge that already exists with the same value, or
        deleting an edge that does not exist, is a *no-op*: it neither
        dirties the row nor grows the log.  With ``strict=True`` a missing
        delete raises instead (an actionable error naming the edge).
        Within one batch, later ops win (insert-then-delete deletes).
        """
        n = self.n
        if batch.n_edges and (
            batch.src.min() < 0 or batch.src.max() >= n
            or batch.dst.min() < 0 or batch.dst.max() >= n
        ):
            raise ValueError(
                f"edge endpoint out of range [0, {n}); streaming updates "
                f"mutate edges only — the vertex set is fixed at build time"
            )
        inserting = batch.op == "insert"
        vals = (
            batch.vals
            if batch.vals is not None
            else np.ones(batch.n_edges, dtype=np.float64)
        )
        dirty: set[int] = set()
        applied = skipped = 0
        for i in range(batch.n_edges):
            u, v = int(batch.src[i]), int(batch.dst[i])
            key = (u, v)
            if inserting:
                val = float(vals[i])
                if self._edge_value(u, v) == val:
                    skipped += 1  # duplicate insert: already present as-is
                    continue
                new_op = val
            else:
                if not self._has_edge(u, v):
                    if strict:
                        raise ValueError(
                            f"cannot delete edge {u} -> {v}: not present in "
                            f"the current graph (pass strict=False to skip "
                            f"missing deletes)"
                        )
                    skipped += 1
                    continue
                new_op = None
            # Record the final outcome; drop ops that restore the base.
            base_val = self._base_value(u, v)
            if new_op == base_val:
                self._ops.pop(key, None)
            else:
                self._ops[key] = new_op
            dirty.add(u)
            applied += 1
        if dirty:
            self._dirty_rows.update(dirty)
            self._view = None  # stale: next view() re-splices
        return UpdateResult(
            dirty_rows=np.array(sorted(dirty), dtype=np.int64),
            applied=applied,
            skipped=skipped,
            pending=self.pending,
        )

    def insert_edges(
        self, src, dst, vals: np.ndarray | None = None
    ) -> UpdateResult:
        """Convenience wrapper: apply one insert batch."""
        return self.apply(EdgeBatch(np.asarray(src), np.asarray(dst), "insert", vals))

    def delete_edges(self, src, dst, *, strict: bool = False) -> UpdateResult:
        """Convenience wrapper: apply one delete batch."""
        return self.apply(
            EdgeBatch(np.asarray(src), np.asarray(dst), "delete"), strict=strict
        )

    def _base_value(self, u: int, v: int) -> float | None:
        cols, data = self.base.row(u)
        i = int(np.searchsorted(cols, v))
        if i < cols.size and cols[i] == v:
            return float(data[i])
        return None

    def _edge_value(self, u: int, v: int) -> float | None:
        key = (u, v)
        if key in self._ops:
            return self._ops[key]
        return self._base_value(u, v)

    # ------------------------------------------------------------------ #
    # The frozen view
    # ------------------------------------------------------------------ #
    def view(self) -> CSRMatrix:
        """The current graph as a canonical frozen CSR.

        Cached between mutations.  Rebuilds only the rows in the dirty set:
        clean row segments are copied from the base in one vectorized move,
        dirty rows are merged (base row minus deletes/overwrites, plus
        inserts, column-sorted) and spliced in.
        """
        if self._view is not None:
            return self._view
        base = self.base
        merged: dict[int, tuple[np.ndarray, np.ndarray]] = {
            r: self._merge_row(r) for r in self._dirty_rows
        }
        counts = base.nnz_per_row().copy()
        for r, (cols, _) in merged.items():
            counts[r] = cols.size
        indptr = np.zeros(base.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        data = np.empty(int(indptr[-1]), dtype=np.float64)
        # Copy clean segments between consecutive dirty rows en bloc.
        dirty_sorted = sorted(self._dirty_rows)
        prev = 0
        for r in dirty_sorted:
            self._copy_clean(base, indptr, indices, data, prev, r)
            cols, vals = merged[r]
            lo = indptr[r]
            indices[lo : lo + cols.size] = cols
            data[lo : lo + cols.size] = vals
            prev = r + 1
        self._copy_clean(base, indptr, indices, data, prev, base.shape[0])
        self._view = CSRMatrix(indptr, indices, data, base.shape)
        return self._view

    @staticmethod
    def _copy_clean(
        base: CSRMatrix,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        start: int,
        stop: int,
    ) -> None:
        if start >= stop:
            return
        src_lo, src_hi = base.indptr[start], base.indptr[stop]
        dst_lo = indptr[start]
        span = src_hi - src_lo
        indices[dst_lo : dst_lo + span] = base.indices[src_lo:src_hi]
        data[dst_lo : dst_lo + span] = base.data[src_lo:src_hi]

    def _merge_row(self, r: int) -> tuple[np.ndarray, np.ndarray]:
        """Row ``r`` of base merged with its pending ops, column-sorted."""
        cols, vals = self.base.row(r)
        ops = [(v, op) for (u, v), op in self._ops.items() if u == r]
        if not ops:
            return cols.copy(), vals.copy()
        touched = np.array([v for v, _ in ops], dtype=np.int64)
        keep = ~np.isin(cols, touched)
        ins = [(v, op) for v, op in ops if op is not None]
        out_cols = np.concatenate(
            [cols[keep], np.array([v for v, _ in ins], dtype=np.int64)]
        )
        out_vals = np.concatenate(
            [vals[keep], np.array([op for _, op in ins], dtype=np.float64)]
        )
        order = np.argsort(out_cols, kind="stable")
        return out_cols[order], out_vals[order]

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #
    def compact(self) -> CSRMatrix:
        """Fold the delta log into a fresh frozen base CSR.

        Parity with a from-scratch rebuild is asserted on every call: the
        incremental splice (:meth:`view`) must equal the matrix built by
        filtering the base COO through the log and re-canonicalizing with
        :meth:`CSRMatrix.from_coo` — array-for-array, not just numerically.
        """
        spliced = self.view()
        rebuilt = self._rebuild_from_scratch()
        if not (
            np.array_equal(spliced.indptr, rebuilt.indptr)
            and np.array_equal(spliced.indices, rebuilt.indices)
            and np.array_equal(spliced.data, rebuilt.data)
        ):
            raise AssertionError(
                "delta-CSR compaction parity violated: incremental merge "
                "differs from the from-scratch rebuild of the same edge set"
            )
        spliced.check()
        self.base = spliced
        self._ops.clear()
        self._dirty_rows.clear()
        self._view = spliced
        self.compactions += 1
        return spliced

    def maybe_compact(self) -> bool:
        """Compact iff the log has reached :attr:`compaction_limit`."""
        if self.pending >= self.compaction_limit:
            self.compact()
            return True
        return False

    def _rebuild_from_scratch(self) -> CSRMatrix:
        """The current edge set built through the independent COO path."""
        rows, cols, vals = self.base.to_coo()
        if self._ops:
            touched = np.array(sorted(self._ops), dtype=np.int64).reshape(-1, 2)
            width = self.base.shape[1]
            op_keys = touched[:, 0] * width + touched[:, 1]
            keep = ~np.isin(rows * width + cols, op_keys)
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
            ins = [(k, v) for k, v in self._ops.items() if v is not None]
            if ins:
                rows = np.concatenate(
                    [rows, np.array([u for (u, _), _ in ins], dtype=np.int64)]
                )
                cols = np.concatenate(
                    [cols, np.array([c for (_, c), _ in ins], dtype=np.int64)]
                )
                vals = np.concatenate(
                    [vals, np.array([v for _, v in ins], dtype=np.float64)]
                )
        return CSRMatrix.from_coo(
            rows, cols, vals, self.base.shape, sum_duplicates=False
        )

    def __repr__(self) -> str:
        return (
            f"DeltaCSR(shape={self.shape}, base_nnz={self.base.nnz}, "
            f"pending={self.pending}, compactions={self.compactions})"
        )
