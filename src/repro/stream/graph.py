"""StreamingGraph: a :class:`~repro.graphs.Graph` under edge churn.

Wraps a ``Graph`` around a :class:`~repro.stream.delta.DeltaCSR` overlay:
every applied :class:`~repro.stream.delta.EdgeBatch` refreshes
``graph.adj`` to the overlay's current frozen view, so *every* consumer of
the graph — samplers, the plan executors, layer-wise inference, the serving
engine — transparently sees the post-update adjacency without any code
change.  The wrapper also owns the invalidation bookkeeping: which rows a
batch dirtied, and (via :func:`dirty_closure`) which vertices' layer-``k``
representations that reaches.

The vertex set is fixed (features/labels/splits stay valid); only edges
move.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs import Graph
from ..sparse import CSRMatrix
from .delta import DeltaCSR, EdgeBatch, UpdateResult

__all__ = ["StreamingGraph", "StreamStats", "dirty_closure"]


def dirty_closure(
    adj: CSRMatrix, dirty_rows: np.ndarray, hops: int
) -> np.ndarray:
    """Vertices whose depth-``hops`` representation a row change can reach.

    ``h^k(w)`` depends on row ``w`` of the adjacency and on ``h^{k-1}`` of
    ``w``'s aggregation sources (the columns of row ``w``), so a changed
    row ``u`` dirties ``h^k(w)`` exactly when ``w`` reaches ``u`` along at
    most ``hops`` forward edges.  This walks that reverse reachability on
    the *post-update* adjacency: ``hops = L - 2`` covers a cache of
    ``h^{L-1}`` rows (a vertex whose own row changed is always included).
    """
    out = np.unique(np.asarray(dirty_rows, dtype=np.int64))
    if out.size == 0:
        return out
    frontier = out
    row_ids = None
    for _ in range(max(0, hops)):
        if frontier.size == 0:
            break
        mask = np.isin(adj.indices, frontier)
        if not mask.any():
            break
        if row_ids is None:
            row_ids = adj.row_ids()
        preds = np.unique(row_ids[mask])
        frontier = np.setdiff1d(preds, out, assume_unique=True)
        out = np.union1d(out, frontier)
    return out


@dataclass
class StreamStats:
    """Cumulative counters of one :class:`StreamingGraph`."""

    batches: int = 0
    applied: int = 0  # edge ops that changed the graph
    skipped: int = 0  # duplicate inserts / missing deletes
    compactions: int = 0
    dirty_vertices: int = 0  # sum of per-batch dirty-row counts
    merged_rows: int = 0  # rows re-merged across view refreshes

    def row(self) -> dict[str, object]:
        return {
            "update_batches": self.batches,
            "edits": self.applied,
            "skipped": self.skipped,
            "compactions": self.compactions,
            "dirty_vertices": self.dirty_vertices,
        }

    def publish(self, registry, **labels) -> None:
        """Copy the counters into a metrics registry
        (:mod:`repro.obs.metrics`) under ``stream_*`` names."""
        for name, help_text, value in (
            ("stream_update_batches_total", "edge batches applied", self.batches),
            ("stream_edits_total", "edge ops that changed the graph", self.applied),
            ("stream_skipped_total", "duplicate inserts / missing deletes", self.skipped),
            ("stream_compactions_total", "delta-log compactions", self.compactions),
            ("stream_dirty_vertices_total", "dirty rows across batches", self.dirty_vertices),
            ("stream_merged_rows_total", "rows re-merged on view refreshes", self.merged_rows),
        ):
            registry.counter(name, help_text, **labels).set(value)


@dataclass
class StreamingGraph:
    """A Graph whose adjacency absorbs edge batches through a delta log.

    ``auto_compact`` folds the log into a fresh base whenever it crosses
    ``compaction_threshold`` of the base nnz (parity with a from-scratch
    rebuild asserted inside :meth:`DeltaCSR.compact`); pass ``False`` to
    drive :meth:`compact` manually (benchmarks sweeping the policy do).
    """

    graph: Graph
    compaction_threshold: float = 0.25
    auto_compact: bool = True
    delta: DeltaCSR = field(init=False)
    stats: StreamStats = field(default_factory=StreamStats)
    #: Called with the fresh base adjacency after every compaction.  The
    #: shared-memory layer registers a re-publication here
    #: (:meth:`repro.parallel.shm.SharedGraph.track`) so worker pools see
    #: the compacted CSR instead of an ever-growing delta view.
    compaction_hooks: list = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self.delta = DeltaCSR(
            self.graph.adj, compaction_threshold=self.compaction_threshold
        )

    @property
    def adj(self) -> CSRMatrix:
        return self.graph.adj

    @property
    def n(self) -> int:
        return self.graph.n

    def apply(self, batch: EdgeBatch, *, strict: bool = False) -> UpdateResult:
        """Apply one edge batch; refresh ``graph.adj``; maybe compact.

        Returns the :class:`UpdateResult` (dirty rows, applied/skipped
        counts, whether a compaction ran) so callers can invalidate their
        caches and charge simulated cost.
        """
        result = self.delta.apply(batch, strict=strict)
        merged_nnz = 0
        if result.dirty_rows.size:
            dirty = self.delta.dirty_row_ids
            merged_nnz = int(self.delta.base.nnz_per_row()[dirty].sum())
            self.stats.merged_rows += int(dirty.size)
            self.graph.adj = self.delta.view()
        compacted_nnz = 0
        if self.auto_compact and self.delta.maybe_compact():
            result.compacted = True
            result.pending = 0
            self.graph.adj = self.delta.base
            compacted_nnz = self.graph.adj.nnz
            for hook in self.compaction_hooks:
                hook(self.graph.adj)
        # What the simulated clock should charge: log absorb + dirty-row
        # re-merge, plus (rarely) the full canonicalizing compaction.
        result.sim_cost = {
            "batch_edges": float(batch.n_edges),
            "merged_nnz": float(merged_nnz),
            "compacted_nnz": float(compacted_nnz),
        }
        self.stats.batches += 1
        self.stats.applied += result.applied
        self.stats.skipped += result.skipped
        self.stats.compactions = self.delta.compactions
        self.stats.dirty_vertices += int(result.dirty_rows.size)
        return result

    def compact(self) -> CSRMatrix:
        """Force a compaction now (parity-asserted)."""
        self.graph.adj = self.delta.compact()
        self.stats.compactions = self.delta.compactions
        for hook in self.compaction_hooks:
            hook(self.graph.adj)
        return self.graph.adj

    def rebuild_from_scratch(self) -> Graph:
        """An independent Graph holding the same current edge set.

        Built through the full ``from_coo`` canonicalization path — the
        reference the parity tests compare sampling and serving digests
        against.
        """
        rows, cols, vals = self.graph.adj.to_coo()
        g = self.graph
        return Graph(
            name=f"{g.name}-rebuilt",
            adj=CSRMatrix.from_coo(
                rows, cols, vals, g.adj.shape, sum_duplicates=False
            ),
            features=g.features,
            labels=g.labels,
            train_idx=g.train_idx,
            val_idx=g.val_idx,
            test_idx=g.test_idx,
        )
