"""repro.parallel: real multi-core execution over shared-memory graphs.

Three layers (see each module's docstring):

* :mod:`~repro.parallel.shm` — publish frozen CSR/feature arrays into
  named shared-memory segments once; workers get zero-copy read-only
  views; refcounted + crash-guarded cleanup; re-publication hooks for
  streaming compaction.
* :mod:`~repro.parallel.pool` — a persistent spawn-safe
  :class:`WorkerPool` of warm workers executing sampling plans
  batch-parallel (bit-identical to serial by the per-global-batch-index
  RNG discipline).
* :mod:`~repro.parallel.backend` / :mod:`~repro.parallel.fleet` — the
  ``parallel`` :class:`~repro.api.backends.ExecutionBackend` and the
  per-replica-process serving-fleet path behind
  ``RunConfig.workers`` / ``repro train|serve|stream --workers``.

Importing this package (or :class:`ParallelBackend`) must stay free of
``multiprocessing`` imports — the registry pulls it in unconditionally
and ``workers=0`` platforms without shared-memory support must keep
working.  Everything heavier loads lazily via ``__getattr__``.
"""

from __future__ import annotations

from .backend import ParallelBackend

__all__ = [
    "ParallelBackend",
    "SharedGraph",
    "SharedFeatures",
    "SegmentGroup",
    "SharedArraySpec",
    "WorkerPool",
    "SamplerSpec",
    "WorkerError",
    "parallel_support_error",
    "ensure_parallel_support",
    "process_parallel",
]

_LAZY = {
    "SharedGraph": "shm",
    "SharedFeatures": "shm",
    "SegmentGroup": "shm",
    "SharedArraySpec": "shm",
    "parallel_support_error": "shm",
    "ensure_parallel_support": "shm",
    "WorkerPool": "pool",
    "SamplerSpec": "pool",
    "WorkerError": "pool",
    "process_parallel": "fleet",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)
