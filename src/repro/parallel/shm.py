"""Shared-memory publication of frozen graph and feature arrays.

The sampling and serving hot paths are read-only over the CSR adjacency
(``indptr``/``indices``/``data``) and the feature matrix.  To run them on
real cores instead of the simulated clock, those arrays are placed into
named ``multiprocessing.shared_memory`` segments **once** by the owning
process; workers attach and get zero-copy ``np.ndarray`` views (marked
read-only, so a buggy worker cannot corrupt the shared graph).

Lifecycle rules, because leaked segments outlive the process:

* Only the publishing process owns segments.  Ownership is tracked in a
  module registry cleaned by ``atexit`` and by chained SIGINT/SIGTERM
  handlers, so segments are unlinked even when the owner crashes or is
  interrupted mid-run.
* :class:`SegmentGroup` refcounts a publication: every consumer that
  stores a handle calls :meth:`~SegmentGroup.retain` and later
  :meth:`~SegmentGroup.release`; the backing segments are unlinked when
  the count reaches zero (or immediately via the context manager).
* Workers *attach* but never own: only the owner ever calls ``unlink``.
  Spawn children share the owner's ``resource_tracker`` process, whose
  cache is a set — a worker's attach-time register dedups against the
  owner's, and the owner's single unlink performs the one matching
  unregister (see :func:`attach_array`).

This module is only imported when parallelism is requested —
``workers=0`` paths never touch ``multiprocessing`` (see
:mod:`repro.parallel.backend`).
"""

from __future__ import annotations

import atexit
import os
import secrets
import signal
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..sparse import CSRMatrix

if TYPE_CHECKING:  # pragma: no cover
    from ..stream.graph import StreamingGraph

__all__ = [
    "parallel_support_error",
    "ensure_parallel_support",
    "SharedArraySpec",
    "SegmentGroup",
    "SharedGraph",
    "SharedFeatures",
    "publish_array",
    "attach_array",
    "owned_segment_names",
]


# ---------------------------------------------------------------------- #
# Support probe
# ---------------------------------------------------------------------- #
def parallel_support_error() -> str | None:
    """``None`` when shared-memory parallelism can work here, else an
    actionable description of why it cannot (missing module, no writable
    ``/dev/shm``, ...).  Probes by creating and unlinking a 1-byte
    segment — the only authoritative test."""
    try:
        from multiprocessing import shared_memory
    except ImportError as exc:  # pragma: no cover - platform-specific
        return (
            f"multiprocessing.shared_memory is unavailable on this "
            f"platform ({exc}); run with workers=0 for the serial path"
        )
    try:
        probe = shared_memory.SharedMemory(create=True, size=1)
    except OSError as exc:  # pragma: no cover - platform-specific
        return (
            f"cannot create shared-memory segments ({exc}); check that "
            f"/dev/shm is mounted and writable, or run with workers=0"
        )
    probe.close()
    probe.unlink()
    return None


def ensure_parallel_support() -> None:
    """Raise ``RuntimeError`` with an actionable message when shared-memory
    parallelism is unsupported.  Called once per pool/publication, *only*
    when parallelism was actually requested."""
    error = parallel_support_error()
    if error is not None:
        raise RuntimeError(f"parallel execution unavailable: {error}")


# ---------------------------------------------------------------------- #
# Owned-segment registry: atexit + signal guards
# ---------------------------------------------------------------------- #
_OWNED: dict[str, "object"] = {}  # name -> SharedMemory owned by this process
_OWNED_LOCK = threading.Lock()
_GUARDS_INSTALLED = False


def owned_segment_names() -> tuple[str, ...]:
    """Names of segments this process currently owns (for tests)."""
    with _OWNED_LOCK:
        return tuple(_OWNED)


def _cleanup_owned() -> None:
    """Unlink every segment this process still owns.  Idempotent; runs at
    interpreter exit and on fatal signals."""
    with _OWNED_LOCK:
        segments = list(_OWNED.values())
        _OWNED.clear()
    for shm in segments:
        try:
            shm.close()
            shm.unlink()
        except OSError:  # pragma: no cover - already gone
            pass


def _install_guards() -> None:
    """Register the atexit hook and chain SIGINT/SIGTERM handlers (once,
    lazily, on first publication — importing this module has no side
    effects).  The signal handlers clean up and then defer to whatever
    handler was installed before, so KeyboardInterrupt semantics are
    preserved."""
    global _GUARDS_INSTALLED
    if _GUARDS_INSTALLED:
        return
    _GUARDS_INSTALLED = True
    atexit.register(_cleanup_owned)
    if threading.current_thread() is not threading.main_thread():
        return  # pragma: no cover - signal API needs the main thread
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous = signal.getsignal(signum)

            def _guard(sig, frame, _previous=previous):
                _cleanup_owned()
                if callable(_previous):
                    _previous(sig, frame)
                else:
                    signal.signal(sig, signal.SIG_DFL)
                    signal.raise_signal(sig)

            signal.signal(signum, _guard)
        except (ValueError, OSError):  # pragma: no cover - exotic runtime
            pass


# ---------------------------------------------------------------------- #
# Array publication / attachment
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SharedArraySpec:
    """The picklable handle a worker needs to attach one published array."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * max(1, int(np.prod(self.shape))))


def publish_array(array: np.ndarray, label: str):
    """Copy ``array`` into a fresh named segment owned by this process.

    Returns ``(spec, shm)``: the picklable :class:`SharedArraySpec` and
    the owning ``SharedMemory`` handle (registered for crash cleanup).
    """
    from multiprocessing import shared_memory

    _install_guards()
    array = np.ascontiguousarray(array)
    name = f"repro-{os.getpid()}-{label}-{secrets.token_hex(4)}"
    shm = shared_memory.SharedMemory(
        create=True, size=max(1, array.nbytes), name=name
    )
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
    view[...] = array
    with _OWNED_LOCK:
        _OWNED[name] = shm
    spec = SharedArraySpec(name=name, shape=tuple(array.shape), dtype=str(array.dtype))
    return spec, shm


def attach_array(spec: SharedArraySpec):
    """Attach to a published array from a *worker* process.

    Returns ``(view, shm)``; the view is read-only and zero-copy, and the
    handle must be kept alive as long as the view is used.

    Python 3.11 registers every attach with the ``resource_tracker``; our
    workers are spawn children of the publisher, so they share its tracker
    process and the register is a set-add dedup — the owner's eventual
    ``unlink`` performs the single matching unregister.  Workers must NOT
    unregister here: with a shared tracker that would strip the owner's
    registration and make the tracker error on the owner's own cleanup.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=spec.name)
    view = np.ndarray(spec.shape, dtype=spec.dtype, buffer=shm.buf)
    view.flags.writeable = False
    return view, shm


def _unpublish(shm) -> None:
    with _OWNED_LOCK:
        _OWNED.pop(shm.name, None)
    try:
        shm.close()
        shm.unlink()
    except OSError:  # pragma: no cover - already cleaned by a guard
        pass


# ---------------------------------------------------------------------- #
# Refcounted publication groups
# ---------------------------------------------------------------------- #
class SegmentGroup:
    """Refcounted ownership of a set of published segments.

    Created with one reference; :meth:`retain`/:meth:`release` let several
    consumers (a worker pool, a fleet run, a benchmark) share one
    publication, with the backing segments unlinked exactly once when the
    last consumer releases.  Usable as a context manager for scoped runs.
    """

    def __init__(self) -> None:
        self._handles: list = []
        self._refs = 1
        self._lock = threading.Lock()
        self.closed = False

    def adopt(self, shm) -> None:
        """Take ownership of one published segment handle."""
        self._handles.append(shm)

    def retain(self) -> "SegmentGroup":
        with self._lock:
            if self.closed:
                raise RuntimeError("segment group is already closed")
            self._refs += 1
        return self

    def release(self) -> None:
        with self._lock:
            if self.closed:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self.closed = True
        for shm in self._handles:
            _unpublish(shm)
        self._handles.clear()

    def close(self) -> None:
        """Unconditionally unlink now, regardless of refcount (used by the
        crash-path tests; normal code paths release)."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
        for shm in self._handles:
            _unpublish(shm)
        self._handles.clear()

    def __enter__(self) -> "SegmentGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


# ---------------------------------------------------------------------- #
# Graph / feature publications
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _GraphHandle:
    """Picklable attachment recipe for one published CSR adjacency."""

    indptr: SharedArraySpec
    indices: SharedArraySpec
    data: SharedArraySpec
    shape: tuple[int, int]
    version: int

    def attach(self):
        """Zero-copy :class:`CSRMatrix` view in a worker.  Returns
        ``(adj, handles)`` — keep ``handles`` alive with the matrix."""
        indptr, h1 = attach_array(self.indptr)
        indices, h2 = attach_array(self.indices)
        data, h3 = attach_array(self.data)
        # from_buffers is a no-copy passthrough for these contiguous,
        # correctly-typed views, so the worker's matrix reads the
        # publisher's pages directly.
        adj = CSRMatrix.from_buffers(indptr, indices, data, self.shape)
        return adj, (h1, h2, h3)


class SharedGraph:
    """One frozen CSR adjacency published to shared memory.

    ``publish`` copies the three CSR arrays out once; ``handle`` is the
    small picklable message workers attach from.  ``republish`` swaps in
    a new adjacency (streaming compaction produces one) under a bumped
    ``version`` so warm workers know to re-attach, and :meth:`track`
    wires that into a :class:`~repro.stream.graph.StreamingGraph`'s
    compaction hook.
    """

    def __init__(self, adj: CSRMatrix, *, label: str = "graph") -> None:
        ensure_parallel_support()
        self._label = label
        self.group = SegmentGroup()
        self.handle = self._publish(adj, version=0)

    @classmethod
    def publish(cls, adj: CSRMatrix, *, label: str = "graph") -> "SharedGraph":
        return cls(adj, label=label)

    def _publish(self, adj: CSRMatrix, version: int) -> _GraphHandle:
        indptr, indices, data = adj.buffers()
        spec_p, h_p = publish_array(indptr, f"{self._label}-indptr")
        spec_i, h_i = publish_array(indices, f"{self._label}-indices")
        spec_d, h_d = publish_array(data, f"{self._label}-data")
        for h in (h_p, h_i, h_d):
            self.group.adopt(h)
        return _GraphHandle(
            indptr=spec_p, indices=spec_i, data=spec_d,
            shape=adj.shape, version=version,
        )

    def republish(self, adj: CSRMatrix) -> _GraphHandle:
        """Publish a replacement adjacency (new segments, bumped version).

        The old segments stay linked until the group is released — warm
        workers may still hold views of them mid-batch; they re-attach on
        the next task that carries the new handle.
        """
        if self.group.closed:
            raise RuntimeError("cannot republish through a closed SharedGraph")
        self.handle = self._publish(adj, version=self.handle.version + 1)
        return self.handle

    def track(self, stream: "StreamingGraph") -> None:
        """Re-publish automatically whenever ``stream`` compacts."""
        stream.compaction_hooks.append(lambda adj: self.republish(adj))

    # Delegate lifecycle to the group.
    def retain(self) -> "SharedGraph":
        self.group.retain()
        return self

    def release(self) -> None:
        self.group.release()

    def close(self) -> None:
        self.group.close()

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


@dataclass(frozen=True)
class _FeatureHandle:
    """Picklable attachment recipe for one published feature matrix."""

    spec: SharedArraySpec
    version: int

    def attach(self):
        """Read-only zero-copy feature view; keep the handle alive."""
        view, h = attach_array(self.spec)
        return view, (h,)


class SharedFeatures:
    """A dense feature matrix published to shared memory (same lifecycle
    contract as :class:`SharedGraph`)."""

    def __init__(self, features: np.ndarray, *, label: str = "features") -> None:
        ensure_parallel_support()
        self._label = label
        self.group = SegmentGroup()
        spec, h = publish_array(np.ascontiguousarray(features), label)
        self.group.adopt(h)
        self.handle = _FeatureHandle(spec=spec, version=0)

    @classmethod
    def publish(
        cls, features: np.ndarray, *, label: str = "features"
    ) -> "SharedFeatures":
        return cls(features, label=label)

    def republish(self, features: np.ndarray) -> _FeatureHandle:
        if self.group.closed:
            raise RuntimeError("cannot republish through closed SharedFeatures")
        spec, h = publish_array(np.ascontiguousarray(features), self._label)
        self.group.adopt(h)
        self.handle = _FeatureHandle(spec=spec, version=self.handle.version + 1)
        return self.handle

    def retain(self) -> "SharedFeatures":
        self.group.retain()
        return self

    def release(self) -> None:
        self.group.release()

    def close(self) -> None:
        self.group.close()

    def __enter__(self) -> "SharedFeatures":
        return self

    def __exit__(self, *exc) -> None:
        self.release()
