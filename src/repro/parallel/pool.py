"""Persistent spawn-safe worker pool over the shared-memory graph.

Workers are *warm*: each one attaches the published CSR/feature segments
exactly once at startup, builds each sampler the first time its spec
digest appears, and from then on receives only small
``(spec_digest, batch_indices, seed)`` messages per task — no graph
bytes, no sampler state, no plan objects cross the pipe on the hot path.
Results (the sampled minibatches plus compact cost totals) come back the
same pipe.

Bit-identity with serial execution is free, not engineered here: every
minibatch draws from its own RNG stream keyed by *global* batch index
(:func:`repro.core.bulk.batch_rng`) and frontier evolution is
batch-local, so the partition of batches over workers — like the
partition over simulated ranks — cannot change the sampled output.

The pool uses the ``spawn`` start method unconditionally: fork would
duplicate the owner's arbitrary state (open files, locks mid-acquire)
and is unsafe under threads; spawn re-imports ``repro`` cleanly.  That
makes worker startup cost ~1s each, which is why the pool is persistent
and why ``workers=0`` (run serial, import nothing from
``multiprocessing``) is the right call for tiny graphs.
"""

from __future__ import annotations

import hashlib
import traceback
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..core.bulk import assign_round_robin, batch_rng, reassemble_round_robin
from ..obs.trace import Tracer, get_tracer, maybe_span, set_tracer
from .shm import SharedFeatures, SharedGraph, ensure_parallel_support

__all__ = ["SamplerSpec", "WorkerPool", "WorkerError", "sampling_cost_totals"]


class WorkerError(RuntimeError):
    """A worker raised while executing a task; carries its traceback."""


@dataclass(frozen=True)
class SamplerSpec:
    """Everything a worker needs to rebuild the owner's sampler, as data.

    ``overrides`` are the extra constructor kwargs (sorted item tuple so
    the spec hashes).  The digest keys the worker-side sampler cache and
    doubles as the message identifier — it folds in the emitted sampling
    plan when the sampler has one, so two specs that would execute
    different plans never collide.
    """

    sampler: str
    fanout: tuple[int, ...]
    kernel: str | None = None
    for_training: bool = True
    overrides: tuple[tuple[str, Any], ...] = ()

    def digest(self) -> str:
        from ..api.registries import SAMPLERS, make_sampler

        h = hashlib.blake2b(digest_size=16)
        h.update(repr((self.sampler, self.fanout, self.kernel,
                       self.for_training, self.overrides)).encode())
        entry = SAMPLERS.spec(self.sampler)
        obj = entry.obj
        if isinstance(obj, type) and not entry.meta("graph_aware", False):
            sampler = make_sampler(
                self.sampler, for_training=self.for_training,
                kernel=self.kernel, **dict(self.overrides),
            )
            plan = sampler.plan(tuple(self.fanout))
            if plan is not None:
                h.update(plan.digest().encode())
        return h.hexdigest()

    def build(self, adj=None):
        """Instantiate the sampler in a worker (graph-aware samplers get a
        minimal :class:`~repro.graphs.Graph` over the attached adjacency)."""
        from ..api.registries import SAMPLERS, make_sampler

        graph = None
        if SAMPLERS.spec(self.sampler).meta("graph_aware", False):
            from ..graphs import Graph

            graph = Graph(name="shared", adj=adj)
        return make_sampler(
            self.sampler, graph=graph, for_training=self.for_training,
            kernel=self.kernel, **dict(self.overrides),
        )


def sampling_cost_totals(recorder, fanout: Sequence[int]) -> dict[str, float]:
    """Collapse one worker's :class:`RecordingSpGEMM` into the additive
    totals :func:`repro.distributed.instrument.charge_sampling` would
    charge — computed worker-side so intermediate matrices never cross
    the pipe."""
    from ..distributed.instrument import sample_norm_flops

    s_mean = int(np.mean(list(fanout))) if len(fanout) else 1
    return {
        "flops": recorder.flops
        + sum(sample_norm_flops(p, s_mean) for p in recorder.outputs),
        "nbytes": recorder.nbytes + sum(24.0 * p.nnz for p in recorder.outputs),
        "kernels": float(recorder.kernels),
    }


# ---------------------------------------------------------------------- #
# Worker side
# ---------------------------------------------------------------------- #
def _worker_main(
    conn, graph_handle, features_handle, worker_index: int = 0,
    trace: bool = False,
) -> None:
    """Entry point of one warm worker (module-level: spawn pickles it by
    qualified name).  Attach once, then serve tasks until shutdown.

    With ``trace`` on (the owner had a tracer installed at pool startup)
    the worker installs its own :class:`~repro.obs.trace.Tracer`, wraps
    each task in a wall span on the ``worker{i}`` track, and ships the
    drained spans back with every reply — the owner absorbs them, so the
    merged trace shows worker-side time without any shared state.
    """
    import signal

    # The owner coordinates interrupts: a ^C in the parent must not also
    # kill workers mid-send, or the parent's cleanup path sees EOFErrors
    # instead of its own KeyboardInterrupt.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    from ..distributed.instrument import RecordingSpGEMM

    if trace and get_tracer() is None:
        # REPRO_TRACE in the environment already installed one at import
        # (spawn re-imports repro); this covers owner-side set_tracer().
        set_tracer(Tracer())
    tracer = get_tracer()
    track = f"worker{worker_index}"

    adj, _keep = graph_handle.attach()
    features = None
    _fkeep = ()
    if features_handle is not None:
        features, _fkeep = features_handle.attach()
    samplers: dict[str, Any] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return  # owner vanished; shm handles die with the process
        kind, task_id = msg[0], msg[1]
        if kind == "shutdown":
            conn.send(("ok", task_id, None))
            return
        try:
            if kind == "rebind":
                adj, _keep = msg[2].attach()
                result = None
            elif kind == "spec":
                digest, spec = msg[2], msg[3]
                samplers[digest] = spec.build(adj)
                result = None
            elif kind == "sample":
                digest, spec, indices, batches, seed = msg[2:]
                sampler = samplers.get(digest)
                if sampler is None:  # owner never pre-registered; build now
                    sampler = samplers[digest] = spec.build(adj)
                recorder = RecordingSpGEMM(kernel=getattr(sampler, "kernel", None))
                rngs = [batch_rng(seed, int(i)) for i in indices]
                with maybe_span(
                    "sample_bulk", cat="pool", domain="wall", track=track,
                    args={"batches": len(batches)},
                ):
                    samples = sampler.sample_bulk(
                        adj, batches, spec.fanout, rngs, spgemm_fn=recorder
                    )
                result = (samples, sampling_cost_totals(recorder, spec.fanout))
            elif kind == "call":
                func, payload = msg[2], msg[3]
                with maybe_span(
                    getattr(func, "__name__", "call"), cat="pool",
                    domain="wall", track=track,
                ):
                    result = func(adj, features, payload)
            else:
                raise ValueError(f"unknown pool message kind {kind!r}")
            spans = tracer.drain() if tracer is not None else []
            conn.send(("ok", task_id, result, spans))
        except BaseException:
            if tracer is not None:
                tracer.drain()  # never let a failed task's spans pile up
            conn.send(("error", task_id, traceback.format_exc(), []))


# ---------------------------------------------------------------------- #
# Owner side
# ---------------------------------------------------------------------- #
@dataclass
class _Worker:
    process: Any
    conn: Any
    graph_version: int
    specs: set = field(default_factory=set)


class WorkerPool:
    """Owner-side handle on ``n`` warm worker processes.

    Retains the shared publications for its lifetime (refcounted — the
    caller may release its own reference immediately after construction).
    ``shutdown`` is idempotent and also runs via ``weakref.finalize`` so
    an abandoned pool does not strand processes or segment refs.
    """

    def __init__(
        self,
        workers: int,
        shared_graph: SharedGraph,
        shared_features: SharedFeatures | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"WorkerPool needs workers >= 1, got {workers}")
        ensure_parallel_support()
        import multiprocessing as mp

        ctx = mp.get_context("spawn")
        self.graph = shared_graph.retain()
        self.features = shared_features.retain() if shared_features else None
        self._workers: list[_Worker] = []
        self._task_seq = 0
        try:
            for index in range(workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        shared_graph.handle,
                        self.features.handle if self.features else None,
                        index,
                        get_tracer() is not None,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._workers.append(
                    _Worker(proc, parent_conn, shared_graph.handle.version)
                )
        except BaseException:
            self.shutdown()
            raise
        self._finalizer = weakref.finalize(
            self, WorkerPool._shutdown_impl,
            list(self._workers), self.graph, self.features,
        )

    def __len__(self) -> int:
        return len(self._workers)

    # ------------------------------------------------------------------ #
    # Messaging
    # ------------------------------------------------------------------ #
    def _next_id(self) -> int:
        self._task_seq += 1
        return self._task_seq

    def _recv(self, worker: _Worker, task_id):
        while not worker.conn.poll(0.2):
            if not worker.process.is_alive():
                raise WorkerError(
                    f"pool worker pid={worker.process.pid} died with exit "
                    f"code {worker.process.exitcode} before replying"
                )
        reply = worker.conn.recv()
        status, got_id, payload = reply[0], reply[1], reply[2]
        # Shipped worker spans ride every reply (4th element); absorb them
        # before any error handling so a raising task still reports time.
        if len(reply) > 3 and reply[3]:
            tracer = get_tracer()
            if tracer is not None:
                tracer.absorb(reply[3])
        if status == "error":
            raise WorkerError(
                f"pool worker pid={worker.process.pid} raised:\n{payload}"
            )
        if got_id != task_id:
            raise WorkerError(
                f"pool protocol error: expected reply {task_id}, got {got_id}"
            )
        return payload

    def _sync_graph(self) -> None:
        """Rebind workers to a republished graph (streaming compaction)."""
        handle = self.graph.handle
        for worker in self._workers:
            if worker.graph_version != handle.version:
                tid = self._next_id()
                worker.conn.send(("rebind", tid, handle))
                self._recv(worker, tid)
                worker.graph_version = handle.version

    def register(self, spec: SamplerSpec) -> str:
        """Pre-build ``spec``'s sampler on every worker; returns its digest
        (idempotent — the hot path then sends only the digest)."""
        digest = spec.digest()
        for worker in self._workers:
            if digest not in worker.specs:
                tid = self._next_id()
                worker.conn.send(("spec", tid, digest, spec))
                self._recv(worker, tid)
                worker.specs.add(digest)
        return digest

    # ------------------------------------------------------------------ #
    # Tasks
    # ------------------------------------------------------------------ #
    def sample_bulk(
        self,
        spec: SamplerSpec,
        batches: Sequence[np.ndarray],
        global_indices: Sequence[int],
        seed: int,
    ):
        """Execute one bulk batch-parallel; returns ``(samples, totals)``
        with ``samples`` in input batch order (bit-identical to serial)
        and ``totals`` the summed sampling cost dict."""
        if len(batches) != len(global_indices):
            raise ValueError("need one global index per batch")
        self._sync_graph()
        digest = self.register(spec)
        active = min(len(self._workers), len(batches))
        owners = assign_round_robin(len(batches), active)
        inflight: list[tuple[_Worker, int]] = []
        for rank, idxs in enumerate(owners):
            worker = self._workers[rank]
            tid = self._next_id()
            worker.conn.send((
                "sample", tid, digest, spec,
                [int(global_indices[i]) for i in idxs],
                [batches[i] for i in idxs],
                int(seed),
            ))
            inflight.append((worker, tid))
        per_owner: list[list] = []
        totals = {"flops": 0.0, "nbytes": 0.0, "kernels": 0.0}
        for worker, tid in inflight:
            samples, cost = self._recv(worker, tid)
            per_owner.append(samples)
            for key in totals:
                totals[key] += cost[key]
        return reassemble_round_robin(per_owner, len(batches)), totals

    def run(self, func: Callable, payloads: Sequence[Any]) -> list[Any]:
        """Fan ``func(adj, features, payload)`` out over the pool, one call
        per payload (``func`` must be a module-level function).  Returns
        results in payload order; used by the serving fleet."""
        self._sync_graph()
        results: list[Any] = [None] * len(payloads)
        pending = list(enumerate(payloads))
        inflight: list[tuple[_Worker, int, int]] = []
        for worker in self._workers[: len(pending)]:
            index, payload = pending.pop(0)
            tid = self._next_id()
            worker.conn.send(("call", tid, func, payload))
            inflight.append((worker, tid, index))
        while inflight:
            worker, tid, index = inflight.pop(0)
            results[index] = self._recv(worker, tid)
            if pending:
                nxt_index, payload = pending.pop(0)
                nxt_tid = self._next_id()
                worker.conn.send(("call", nxt_tid, func, payload))
                inflight.append((worker, nxt_tid, nxt_index))
        return results

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @staticmethod
    def _shutdown_impl(workers, graph, features) -> None:
        for worker in workers:
            try:
                if worker.process.is_alive():
                    worker.conn.send(("shutdown", 0, None))
            except (OSError, ValueError):
                pass
        for worker in workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            worker.conn.close()
        graph.release()
        if features is not None:
            features.release()

    def shutdown(self) -> None:
        """Stop workers and drop the pool's publication references."""
        finalizer = getattr(self, "_finalizer", None)
        if finalizer is not None and finalizer.alive:
            finalizer()  # runs _shutdown_impl exactly once
        else:
            WorkerPool._shutdown_impl(self._workers, self.graph, self.features)
        self._workers = []

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
