"""Parallel serving fleet: each replica's timeline in its own process.

The serial :meth:`~repro.serve.cluster.ServingCluster.process` loop is an
earliest-``(t, rid)`` merge of per-replica timelines.  When three
conditions hold, that merge *decomposes exactly* into independent
per-replica runs:

* **No autoscaler** (``slo_p99 == 0``): replica membership is fixed, so
  no global evaluation point couples the timelines.
* **Open-loop workload** (``workload.open_loop``): every request exists
  up front and ``on_complete`` issues nothing, so routing and
  queue-depth admission are a pure function of the submission order —
  they run in the parent, before any serving.
* **Exact mode**: logits consume no randomness and depend only on the
  requested vertices and the graph state at dispatch, so the global
  batch-index RNG key is metadata, not math.

Under those conditions each worker replays its replica's full timeline —
micro-batch dispatch, deadline shedding, streaming-update absorption at
``max(free, update.at)``, embedding-cache fills — against zero-copy
shared-memory graph/feature views, and returns results, clock state and
counters.  The parent reassembles the global order (dispatches sort by
``(t, rid)``, exactly the serial merge order), renumbers batch indices,
replays the updates once on its own stream for final graph state, and
emits the same :class:`~repro.serve.engine.ServeReport` the serial loop
would.  Digest bit-identity at every worker count is pinned in
``tests/test_fleet_parallel.py``.

Anything outside the decomposable regime raises an actionable error
pointing at the serial path rather than silently serving different
semantics.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any

from ..comm.clock import SimClock
from ..obs.trace import get_tracer

if TYPE_CHECKING:  # pragma: no cover
    from ..serve.cluster import ServingCluster
    from ..serve.engine import ServeReport

__all__ = ["process_parallel", "clock_state", "restore_clock"]


# ---------------------------------------------------------------------- #
# SimClock (de)serialization — the defaultdict inside SimClock holds a
# lambda, so clocks cannot cross a pipe directly.
# ---------------------------------------------------------------------- #
def clock_state(clock: SimClock) -> tuple:
    """A picklable snapshot of one clock's time and phase accounting."""
    return (
        clock.world_size,
        list(clock._time),
        {key: list(per_rank) for key, per_rank in clock._phase_time.items()},
    )


def restore_clock(state: tuple) -> SimClock:
    """Rebuild a :class:`SimClock` from :func:`clock_state`."""
    world_size, times, phase_time = state
    clock = SimClock(world_size)
    clock._time = list(times)
    for key, per_rank in phase_time.items():
        clock._phase_time[key] = list(per_rank)
    return clock


# ---------------------------------------------------------------------- #
# Worker side: one replica's complete timeline
# ---------------------------------------------------------------------- #
def _serve_replica_task(adj, features, payload: dict) -> dict:
    """Run one replica's whole serving timeline in a pool worker.

    ``adj``/``features`` are the worker's shared-memory views; the payload
    carries the replica id, its admitted requests in submission order, the
    full update stream, the model and the config.  Mirrors the serial
    loop's per-replica decisions exactly (see module docstring).
    """
    from ..graphs import Graph
    from ..serve.admission import AdmissionController
    from ..serve.replica import Replica

    config = payload["config"]
    graph = Graph(name=payload["graph_name"], adj=adj, features=features)
    updates = payload["updates"]
    stream = None
    if updates:
        from ..stream.graph import StreamingGraph

        stream = StreamingGraph(
            graph,
            compaction_threshold=getattr(config, "compaction_threshold", 0.25),
        )
    rep = Replica(config=config, model=payload["model"], graph=graph,
                  fanout=None, rid=payload["rid"])
    admission = AdmissionController(
        getattr(config, "shed_policy", "none"),
        queue_depth=getattr(config, "shed_queue_depth", 64),
        deadline=getattr(config, "shed_deadline", 0.0),
    )
    for req in payload["requests"]:
        rep.queue.push(req)

    results: list[list] = []
    dispatch_times: list[float] = []
    next_update = 0
    local_index = 0

    def absorb(update) -> None:
        result = stream.apply(update)
        at = max(rep.free, update.at)
        rep.free = at + rep.absorb_update(result, at=at)

    while True:
        dispatch = rep.batcher.next_dispatch(rep.queue, rep.free)
        if dispatch is None:
            if next_update < len(updates):
                absorb(updates[next_update])
                next_update += 1
                continue
            break
        t, batch = dispatch
        if next_update < len(updates) and updates[next_update].at <= t:
            rep.queue.pending = batch + rep.queue.pending
            absorb(updates[next_update])
            next_update += 1
            continue
        batch = admission.filter_batch(rep, batch, t)
        if not batch:
            continue
        batch_results = rep.serve_batch(batch, t, local_index)
        rep.free = batch_results[0].completed
        rep.batches += 1
        rep.served += len(batch_results)
        results.append(batch_results)
        dispatch_times.append(t)
        local_index += 1

    return {
        "rid": payload["rid"],
        "results": results,
        "dispatch_times": dispatch_times,
        "clock": clock_state(rep.clock),
        "stats": rep.stats,
        "batches": rep.batches,
        "served": rep.served,
        "free": rep.free,
    }


# ---------------------------------------------------------------------- #
# Parent side
# ---------------------------------------------------------------------- #
def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"parallel serving (workers > 0) {message}")


def process_parallel(
    cluster: "ServingCluster", workload, workers: int
) -> "ServeReport":
    """The ``workers > 0`` path of :meth:`ServingCluster.process`."""
    from ..serve.cache import ServeStats
    from ..serve.request import RequestQueue
    from .pool import WorkerPool
    from .shm import SharedFeatures, SharedGraph

    _require(cluster.exact, "requires exact serving (fanout=None): sampled "
             "serving draws from a global batch-index RNG the per-replica "
             "decomposition cannot reproduce")
    _require(cluster.autoscaler is None, "is incompatible with autoscaling "
             "(slo_p99 > 0): scaling decisions couple replica timelines; "
             "run with workers=0")
    _require(bool(getattr(workload, "open_loop", False)),
             "needs an open-loop workload (a request trace): closed-loop "
             "clients submit based on completions, which couples replica "
             "timelines; run with workers=0")
    _require(not any(rep.batches or rep.served for rep in cluster.replicas),
             "must start from fresh replicas: a reused cluster carries warm "
             "embedding caches the cold worker replicas would diverge from")

    for rep in cluster.replicas:
        rep.reset()
    cluster.router.rebalance([rep.rid for rep in cluster.replicas])
    updates = list(workload.updates()) if hasattr(workload, "updates") else []
    if updates and cluster.stream is None:
        raise ValueError(
            "workload interleaves edge updates but this cluster serves "
            "a frozen graph; build it over a StreamingGraph "
            "(RunConfig(stream_updates=True))"
        )

    # Routing + queue-depth admission in submission order (parent side) —
    # identical to the serial loop because every request is submitted
    # before any serving starts in an open-loop run.
    by_rid = cluster._by_rid()
    assigned: dict[int, list] = {rep.rid: [] for rep in cluster.replicas}
    tracer = get_tracer()
    for req in workload.initial():
        rid = cluster.router.route(req)
        rep = by_rid[rid]
        admitted = cluster.admission.admit(rep, req)
        if tracer is not None:
            # Identical to ServingCluster._submit's route instant, so the
            # router track matches the serial run event for event.
            tracer.instant(
                "route", t=req.arrival, cat="router", track="router",
                args={
                    "req": int(req.rid),
                    "replica": int(rid),
                    "admitted": bool(admitted),
                },
            )
        if admitted:
            rep.queue.push(req)
            assigned[rep.rid].append(req)

    shared_graph = SharedGraph.publish(cluster.graph.adj)
    shared_features = SharedFeatures.publish(cluster.graph.features)
    payloads = [
        {
            "rid": rep.rid,
            "graph_name": cluster.graph.name,
            "requests": assigned[rep.rid],
            "updates": updates,
            "model": cluster.model,
            "config": cluster.config,
        }
        for rep in cluster.replicas
    ]
    pool = WorkerPool(
        min(int(workers), len(cluster.replicas)), shared_graph, shared_features
    )
    try:
        outcomes = pool.run(_serve_replica_task, payloads)
    finally:
        pool.shutdown()
        shared_graph.release()
        shared_features.release()

    # Global dispatch order = the serial merge order: each replica's
    # dispatch times increase, and the serial loop always takes the
    # earliest (t, rid) — a k-way merge of sorted streams.
    schedule: list[tuple[float, int, int]] = []
    for outcome in outcomes:
        for local_index, t in enumerate(outcome["dispatch_times"]):
            schedule.append((t, outcome["rid"], local_index))
    schedule.sort()
    renumber = {
        (rid, local): global_index
        for global_index, (_, rid, local) in enumerate(schedule)
    }
    results = []
    for outcome in outcomes:
        rid = outcome["rid"]
        for local_index, batch_results in enumerate(outcome["results"]):
            global_index = renumber[(rid, local_index)]
            results.extend(
                dataclasses.replace(r, batch_index=global_index)
                for r in batch_results
            )

    # Merge worker state back onto the parent replicas so _report (and any
    # later inspection) sees the same fleet the serial loop would leave.
    for outcome in outcomes:
        rep = by_rid[outcome["rid"]]
        rep.clock = restore_clock(outcome["clock"])
        for f in dataclasses.fields(ServeStats):
            setattr(rep.stats, f.name,
                    getattr(rep.stats, f.name) + getattr(outcome["stats"], f.name))
        rep.batches = outcome["batches"]
        rep.served = outcome["served"]
        rep.free = outcome["free"]
        rep.queue = RequestQueue()

    # Replay the churn once on the parent's stream: final adjacency and
    # StreamStats match the serial run (workers applied updates only to
    # their private copies).
    for update in updates:
        cluster.stream.apply(update)

    results.sort(key=lambda r: r.request.rid)
    trace = [(0.0, len(cluster.replicas))]
    return cluster._report(results, len(schedule), updates, trace)
