"""The ``parallel`` execution backend: real cores, same samples.

Registered in :data:`repro.api.registries.ALGORITHMS` like every other
backend, so ``RunConfig(algorithm="parallel", workers=N)`` and
``repro train --workers N`` reach it through the normal lookup path.
Unlike ``replicated``/``partitioned`` — which *simulate* a cluster on
one core and charge modeled time — this backend executes the bulk on a
:class:`~repro.parallel.pool.WorkerPool` over shared-memory graph
segments, batch-parallel across real processes.

Two invariants make it safe to swap in:

* **Bit-identity.**  Each minibatch samples from its own RNG stream
  keyed by global batch index, exactly as the simulated replicated
  driver does, so output is identical at every worker count — including
  ``workers=0``.
* **Serial purity.**  ``workers=0`` (the default) runs fully in-process
  via the replicated driver at world size 1 and imports nothing from
  ``multiprocessing`` — this module's pool/shm imports happen inside
  :meth:`ParallelBackend.setup`, only when workers were requested, and
  failure to support shared memory raises an actionable error then, not
  at import time.

Simulated time is still charged (summed worker cost totals), so epoch
reports remain comparable; note the totals legitimately differ from the
one-stack serial numbers because splitting a bulk into per-worker stacks
re-pays per-call kernel launches — the bulk-amortization effect the
paper measures, now visible across real processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..core import MinibatchSample
from ..distributed import replicated_bulk_sampling
from ..distributed.instrument import CALL_OVERHEAD_S, KERNELS_PER_LAYER
from ..obs.trace import maybe_span

if TYPE_CHECKING:  # pragma: no cover
    from ..pipeline.trainer import TrainingPipeline
    from .pool import SamplerSpec, WorkerPool

__all__ = ["ParallelBackend"]


class ParallelBackend:
    """Multi-core bulk sampling over shared-memory workers.

    ``p`` is pinned to 1 by config validation: this backend parallelizes
    over *real* processes, not simulated ranks, and reports on rank 0's
    clock.  ``config.workers`` picks the pool size; 0 = serial.
    """

    name = "parallel"

    def __init__(self) -> None:
        self.pool: "WorkerPool | None" = None
        self.spec: "SamplerSpec | None" = None

    def setup(self, pipeline: "TrainingPipeline") -> None:
        cfg = pipeline.config
        workers = int(getattr(cfg, "workers", 0))
        if workers <= 0:
            return  # serial fallback: no multiprocessing imports at all
        from .pool import SamplerSpec, WorkerPool
        from .shm import SharedGraph

        shared = SharedGraph.publish(pipeline.graph.adj)
        try:
            self.pool = WorkerPool(workers, shared)
        finally:
            shared.release()  # the pool holds its own reference now
        self.spec = SamplerSpec(
            sampler=cfg.sampler,
            fanout=tuple(cfg.fanout),
            kernel=cfg.kernel,
            for_training=True,
        )
        self.pool.register(self.spec)

    def close(self) -> None:
        """Stop the pool and unlink its segments (idempotent; also runs
        via the pool's finalizer if nobody calls this)."""
        if self.pool is not None:
            self.pool.shutdown()
            self.pool = None

    def sample_bulk(
        self, pipeline: "TrainingPipeline", bulk: list[np.ndarray], seed: int
    ) -> list[list[MinibatchSample]]:
        comm, cfg = pipeline.comm, pipeline.config
        if self.pool is None:
            return replicated_bulk_sampling(
                comm, pipeline.sampler, pipeline.graph.adj, bulk,
                cfg.fanout, seed=seed, kernel=cfg.kernel,
            )
        with comm.phase("sampling"):
            # Wall-domain: the pool round-trip is real elapsed time the
            # simulated clock cannot see (it charges modeled totals below).
            with maybe_span(
                "pool.sample_bulk", cat="pool", domain="wall", track="pool",
                args={"batches": len(bulk), "workers": len(self.pool)},
            ):
                samples, totals = self.pool.sample_bulk(
                    self.spec, list(bulk), list(range(len(bulk))), seed
                )
            comm.compute(
                0,
                flops=totals["flops"],
                nbytes=totals["nbytes"],
                kernels=int(totals["kernels"])
                + KERNELS_PER_LAYER * len(cfg.fanout),
            )
            comm.clock.advance(0, CALL_OVERHEAD_S, "compute")
            comm.clock.barrier()
        return [samples]
