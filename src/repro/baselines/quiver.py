"""A cost-model reimplementation of the Quiver baseline (paper section 7.3).

Quiver (torch-quiver) is the paper's GraphSAGE comparator: a PyG extension
that replicates the graph on every device, samples each minibatch
individually on GPU (or with UVA: the topology in host DRAM accessed
through unified addressing) and fetches features without the paper's
replication-aware all-to-allv.  The strategic differences from our
pipeline, all reproduced here:

* **Per-batch sampling** — no bulk amortization: every minibatch re-issues
  the full set of sampling kernels (section 8.1.1's amortization argument).
* **Flat feature fetching** — features are 1D-partitioned over all ``p``
  ranks and every fetch is an all-to-allv across all of them, with no
  dedup of repeated neighbors; on dense graphs the duplicated volume is
  what keeps Quiver from scaling (section 8.1.1).
* **UVA mode** — sampling reads the topology from host DRAM over a
  PCIe-class link, and 80% of feature rows come from DRAM with 20% cached
  on device (Figure 5's configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..comm import Communicator, ProcessGrid, Unscaled
from ..config import MachineConfig, PERLMUTTER_LIKE
from ..core import MinibatchSample, SageSampler, assign_round_robin
from ..distributed import RecordingSpGEMM, charge_sampling
from ..graphs import Graph
from ..partition import FeatureStore
from ..pipeline.stats import EpochStats

__all__ = ["QuiverConfig", "QuiverBaseline"]


@dataclass
class QuiverConfig:
    """Configuration of one Quiver run."""

    p: int
    mode: str = "gpu"  # "gpu" (topology on device) | "uva" (topology in DRAM)
    fanout: tuple[int, ...] = (15, 10, 5)
    batch_size: int = 1024
    seed: int = 0
    hidden: int = 256  # model width used for propagation cost parity
    dram_feature_fraction: float = 0.8  # UVA: rows served from host DRAM
    #: Fraction of UVA topology traffic hidden behind GPU compute.  UVA
    #: reads are prefetched/coalesced and overlap with the sampling
    #: kernels, so only the non-overlapped remainder stalls the pipeline.
    uva_overlap: float = 0.875
    work_scale: float = 1.0  # sim-to-paper workload scale (see Communicator)
    machine: MachineConfig = field(default_factory=lambda: PERLMUTTER_LIKE)

    def __post_init__(self) -> None:
        if self.mode not in ("gpu", "uva"):
            raise ValueError(f"unknown Quiver mode {self.mode!r}")
        if self.p <= 0:
            raise ValueError("p must be positive")
        if not 0.0 <= self.dram_feature_fraction <= 1.0:
            raise ValueError("dram_feature_fraction must be in [0, 1]")
        if not 0.0 <= self.uva_overlap < 1.0:
            raise ValueError("uva_overlap must be in [0, 1)")


class QuiverBaseline:
    """Simulated per-epoch timing of Quiver GraphSAGE training."""

    def __init__(self, graph: Graph, config: QuiverConfig) -> None:
        if graph.features is None:
            raise ValueError("Quiver baseline needs node features")
        self.graph = graph
        self.config = config
        self.comm = Communicator(
            config.p, config.machine, work_scale=config.work_scale
        )
        # Features flat-sharded over all ranks: a 1.5D grid with c = 1.
        self.grid = ProcessGrid(config.p, 1)
        self.store = FeatureStore(graph.features, self.grid)
        self.sampler = SageSampler(include_dst=True)

    # ------------------------------------------------------------------ #
    def _sample_per_batch(
        self, batches: list[np.ndarray], seed: int
    ) -> list[list[MinibatchSample]]:
        """Per-batch (non-bulk) sampling on every rank's share."""
        cfg = self.config
        owners = assign_round_robin(len(batches), cfg.p)
        per_rank: list[list[MinibatchSample]] = []
        with self.comm.phase("sampling"):
            for rank in range(cfg.p):
                mine: list[MinibatchSample] = []
                rng = np.random.default_rng(np.random.SeedSequence([seed, rank]))
                for i in owners[rank]:
                    recorder = RecordingSpGEMM()
                    out = self.sampler.sample_bulk(
                        self.graph.adj, [batches[i]], cfg.fanout, rng,
                        spgemm_fn=recorder,
                    )
                    charge_sampling(self.comm, rank, recorder, cfg.fanout)
                    if cfg.mode == "uva":
                        # Topology reads traverse the host link; most of the
                        # traffic overlaps with the sampling kernels.
                        self.comm.host_transfer(
                            rank, (1.0 - cfg.uva_overlap) * recorder.nbytes
                        )
                    mine.extend(out)
                per_rank.append(mine)
            self.comm.clock.barrier()
        return per_rank

    def _fetch_round(self, current: list[MinibatchSample | None]) -> None:
        """One round of Quiver feature fetching (no dedup, flat group)."""
        cfg = self.config
        needed = []
        for mb in current:
            if mb is None:
                needed.append(np.empty(0, dtype=np.int64))
                continue
            # No dedup: each sampled edge pulls its source row separately.
            layer0 = mb.layers[0]
            needed.append(layer0.src_ids[layer0.adj.indices])
        with self.comm.phase("feature_fetch"):
            self.store.fetch(self.comm, needed)
            if cfg.mode == "uva":
                for rank, ids in enumerate(needed):
                    dram_rows = cfg.dram_feature_fraction * len(ids)
                    self.comm.host_transfer(
                        rank, self.store.wire_bytes(int(dram_rows))
                    )

    def _propagation_round(self, current: list[MinibatchSample | None]) -> None:
        from ..gnn.model import propagation_flops

        cfg = self.config
        hidden = cfg.hidden
        n_classes = max(2, self.graph.n_classes)
        with self.comm.phase("propagation"):
            for rank, mb in enumerate(current):
                if mb is None:
                    continue
                dims = (
                    [self.graph.n_features]
                    + [hidden] * (len(cfg.fanout) - 1)
                    + [n_classes]
                )
                self.comm.compute(
                    rank,
                    flops=propagation_flops(mb, dims),
                    nbytes=32.0 * mb.total_edges(),
                    kernels=6 * len(mb.layers),
                )
            # Gradients are model-sized (not graph-sized): unscaled wire.
            grad_payload = Unscaled(
                np.empty(
                    (self.graph.n_features + len(cfg.fanout) * hidden)
                    * hidden
                    // 8
                )
            )
            self.comm.allreduce(
                [grad_payload] * cfg.p, list(range(cfg.p)),
                op=lambda vals: vals[0],
            )

    # ------------------------------------------------------------------ #
    def train_epoch(self, epoch: int = 0) -> EpochStats:
        """Simulate one epoch; returns the Figure-4-style phase breakdown."""
        cfg = self.config
        self.comm.clock.reset()
        self.comm.ledger.reset()
        rng = np.random.default_rng(np.random.SeedSequence([cfg.seed, 17, epoch]))
        batches = self.graph.make_batches(cfg.batch_size, rng)
        per_rank = self._sample_per_batch(batches, seed=cfg.seed + epoch)
        rounds = max(len(s) for s in per_rank)
        for t in range(rounds):
            current = [s[t] if t < len(s) else None for s in per_rank]
            self._fetch_round(current)
            self._propagation_round(current)
        sub = self.comm.clock.breakdown()
        return EpochStats(
            sampling=sub.get("sampling", 0.0),
            feature_fetch=sub.get("feature_fetch", 0.0),
            propagation=sub.get("propagation", 0.0),
            bytes_sent=self.comm.ledger.sent(),
            n_batches=len(batches),
        )
