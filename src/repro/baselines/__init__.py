"""Baseline systems the paper compares against: Quiver (GPU and UVA modes),
the serial CPU LADIES reference, and per-batch (non-bulk) matrix sampling."""

from .cpu_ladies import CpuLadiesResult, reference_cpu_ladies
from .per_batch import per_batch_sampling
from .quiver import QuiverBaseline, QuiverConfig

__all__ = [
    "QuiverBaseline",
    "QuiverConfig",
    "reference_cpu_ladies",
    "CpuLadiesResult",
    "per_batch_sampling",
]
