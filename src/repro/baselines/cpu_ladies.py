"""The reference serial CPU LADIES implementation (paper section 8.2.2).

The paper compares its distributed LADIES against "the reference CPU
implementation", which samples minibatches one at a time on a single host
(43.9 s for all Papers minibatches, 3.12 s for Protein); the distributed
GPU runs begin to beat it at 64 GPUs.  This module reproduces that
comparator: the same matrix-based LADIES semantics executed per batch and
charged at host (CPU) speed, including per-batch software overheads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm import Communicator
from ..config import MachineConfig, PERLMUTTER_LIKE
from ..core import LadiesSampler, MinibatchSample
from ..distributed import RecordingSpGEMM
from ..distributed.instrument import sample_norm_flops
from ..graphs import Graph

__all__ = ["CpuLadiesResult", "reference_cpu_ladies"]

#: Serial software overhead per minibatch (Python/driver bookkeeping the
#: reference implementation pays per batch).
_PER_BATCH_OVERHEAD_S = 1e-3


@dataclass(frozen=True)
class CpuLadiesResult:
    """Outcome of a serial reference run."""

    seconds: float
    n_batches: int
    samples: list[MinibatchSample]


def reference_cpu_ladies(
    graph: Graph,
    batches: list[np.ndarray],
    s: int,
    *,
    layers: int = 1,
    seed: int = 0,
    machine: MachineConfig = PERLMUTTER_LIKE,
    work_scale: float = 1.0,
) -> CpuLadiesResult:
    """Sample every batch serially on one CPU; returns simulated seconds."""
    if s <= 0:
        raise ValueError("layer width s must be positive")
    comm = Communicator(1, machine, work_scale=work_scale)
    sampler = LadiesSampler()
    rng = np.random.default_rng(seed)
    out: list[MinibatchSample] = []
    fanout = tuple([s] * layers)
    with comm.phase("cpu_sampling"):
        for batch in batches:
            recorder = RecordingSpGEMM()
            out.extend(
                sampler.sample_bulk(
                    graph.adj, [batch], fanout, rng, spgemm_fn=recorder
                )
            )
            extra = sum(sample_norm_flops(p, s) for p in recorder.outputs)
            comm.host_compute(
                0, flops=recorder.flops + extra, nbytes=recorder.nbytes
            )
            comm.clock.advance(0, _PER_BATCH_OVERHEAD_S, "compute")
    return CpuLadiesResult(
        seconds=comm.clock.elapsed(), n_batches=len(batches), samples=out
    )
