"""Per-batch (non-bulk) GPU matrix sampling — the amortization ablation.

Identical semantics and distribution to the Graph Replicated bulk sampler,
except each minibatch is sampled in its own call, re-paying the per-call
kernel-launch overheads.  Comparing this against bulk sampling isolates the
paper's amortization claim (sections 4, 8.1.1) from everything else.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..comm import Communicator
from ..core import MatrixSampler, MinibatchSample, assign_round_robin
from ..distributed import RecordingSpGEMM, charge_sampling
from ..sparse import CSRMatrix

__all__ = ["per_batch_sampling"]


def per_batch_sampling(
    comm: Communicator,
    sampler: MatrixSampler,
    adj: CSRMatrix,
    batches: Sequence[np.ndarray],
    fanout: Sequence[int],
    seed: int = 0,
) -> list[list[MinibatchSample]]:
    """Sample every batch with its own sampler call (bulk size 1).

    Same ownership, output layout and per-batch RNG streams as
    :func:`repro.distributed.replicated_bulk_sampling`, so the sampled
    minibatches are bit-identical to the bulk path — the comparison
    isolates the per-call overhead, not sampling noise.
    """
    from ..distributed.replicated import batch_rng

    owners = assign_round_robin(len(batches), comm.world_size)
    results: list[list[MinibatchSample]] = []
    with comm.phase("sampling"):
        for rank in range(comm.world_size):
            mine: list[MinibatchSample] = []
            for i in owners[rank]:
                recorder = RecordingSpGEMM()
                mine.extend(
                    sampler.sample_bulk(
                        adj, [batches[i]], fanout, [batch_rng(seed, int(i))],
                        spgemm_fn=recorder,
                    )
                )
                charge_sampling(comm, rank, recorder, tuple(fanout))
            results.append(mine)
        comm.clock.barrier()
    return results
