"""Command-line interface: generate datasets, sample, train, run sweeps.

Usage (after install)::

    python -m repro info
    python -m repro generate products --scale 0.5 --out products.npz
    python -m repro sample products --sampler ladies --batches 8
    python -m repro train products --epochs 5 --p 4 --c 2
    python -m repro sweep products --algorithm replicated

Every subcommand prints human-readable tables; simulated times follow the
same semantics as the benchmarks (see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed matrix-based GNN sampling (MLSys 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print version and simulated machine config")

    gen = sub.add_parser("generate", help="generate a dataset stand-in to .npz")
    gen.add_argument("dataset", choices=["products", "protein", "papers"])
    gen.add_argument("--scale", type=float, default=0.5)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--labels", action="store_true", help="planted labels")
    gen.add_argument("--out", required=True)

    smp = sub.add_parser("sample", help="bulk-sample minibatches, print stats")
    smp.add_argument("dataset", choices=["products", "protein", "papers"])
    smp.add_argument("--sampler", default="sage",
                     choices=["sage", "ladies", "fastgcn", "saint"])
    smp.add_argument("--scale", type=float, default=0.25)
    smp.add_argument("--batches", type=int, default=8)
    smp.add_argument("--batch-size", type=int, default=32)
    smp.add_argument("--fanout", default="5,3")
    smp.add_argument("--seed", type=int, default=0)

    trn = sub.add_parser("train", help="train the pipeline on a sim cluster")
    trn.add_argument("dataset", choices=["products", "protein", "papers"])
    trn.add_argument("--scale", type=float, default=0.25)
    trn.add_argument("--epochs", type=int, default=3)
    trn.add_argument("--p", type=int, default=4)
    trn.add_argument("--c", type=int, default=1)
    trn.add_argument("--algorithm", default="replicated",
                     choices=["replicated", "partitioned"])
    trn.add_argument("--sampler", default="sage",
                     choices=["sage", "ladies", "fastgcn"])
    trn.add_argument("--batch-size", type=int, default=32)
    trn.add_argument("--seed", type=int, default=0)

    swp = sub.add_parser("sweep", help="figure-4-style GPU-count sweep")
    swp.add_argument("dataset", choices=["products", "protein", "papers"])
    swp.add_argument("--algorithm", default="replicated",
                     choices=["replicated", "partitioned"])
    swp.add_argument("--gpus", default="4,8,16,32")
    return parser


def _cmd_info() -> int:
    import repro
    from repro.config import PERLMUTTER_LIKE

    m = PERLMUTTER_LIKE
    print(f"repro {repro.__version__}")
    print(f"machine: {m.name} ({m.devices_per_node} devices/node)")
    print(f"  device: {m.device.flops_per_s / 1e12:.1f} TF/s, "
          f"{m.device.mem_bw / 1e9:.0f} GB/s HBM, "
          f"{m.device.memory_bytes / 1e9:.0f} GB")
    print(f"  intra-node link: {1 / m.intra_node.beta / 1e9:.0f} GB/s")
    print(f"  inter-node link: {1 / m.inter_node.beta / 1e9:.0f} GB/s")
    return 0


def _cmd_generate(args) -> int:
    from repro.graphs import load_dataset, save_graph, summarize

    graph = load_dataset(
        args.dataset, scale=args.scale, seed=args.seed,
        with_labels=args.labels,
    )
    path = save_graph(graph, args.out)
    row = summarize(graph).row()
    print(f"wrote {path}")
    for k, v in row.items():
        print(f"  {k}: {v}")
    return 0


def _cmd_sample(args) -> int:
    from repro.core import (
        FastGCNSampler,
        GraphSaintRWSampler,
        LadiesSampler,
        SageSampler,
    )
    from repro.graphs import load_dataset

    samplers = {
        "sage": SageSampler,
        "ladies": LadiesSampler,
        "fastgcn": FastGCNSampler,
        "saint": GraphSaintRWSampler,
    }
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    rng = np.random.default_rng(args.seed)
    fanout = tuple(int(x) for x in args.fanout.split(","))
    batches = [
        rng.choice(graph.n, args.batch_size, replace=False)
        for _ in range(args.batches)
    ]
    sampler = samplers[args.sampler]()
    t0 = time.perf_counter()
    samples = sampler.sample_bulk(graph.adj, batches, fanout, rng)
    dt = time.perf_counter() - t0
    edges = sum(mb.total_edges() for mb in samples)
    frontier = sum(mb.input_frontier.size for mb in samples)
    print(f"sampled {len(samples)} minibatches with {sampler.name} "
          f"in {dt * 1e3:.1f} ms (wall)")
    print(f"  total sampled edges: {edges}")
    print(f"  total input frontier: {frontier} vertices")
    print(f"  layers per batch: {samples[0].num_layers}")
    return 0


def _cmd_train(args) -> int:
    from repro.graphs import load_dataset
    from repro.pipeline import PipelineConfig, TrainingPipeline

    graph = load_dataset(
        args.dataset, scale=args.scale, seed=args.seed, with_labels=True
    )
    graph.train_idx = np.arange(0, graph.n, 2)
    fanout = (5, 3) if args.sampler == "sage" else (64,)
    cfg = PipelineConfig(
        p=args.p, c=args.c, algorithm=args.algorithm, sampler=args.sampler,
        fanout=fanout, batch_size=args.batch_size, hidden=32, lr=0.01,
        seed=args.seed,
    )
    pipe = TrainingPipeline(graph, cfg)
    for epoch in range(args.epochs):
        stats = pipe.train_epoch(epoch)
        print(f"epoch {epoch}: loss {stats.loss:.4f}  "
              f"sim-time {stats.total:.5f}s "
              f"(sampling {stats.sampling:.5f} / fetch {stats.feature_fetch:.5f}"
              f" / prop {stats.propagation:.5f})")
    print(f"test accuracy: {pipe.evaluate('test'):.3f}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.bench import SIM_WORKLOADS, format_table, load_bench_graph
    from repro.bench.harness import run_pipeline_epoch

    workload = SIM_WORKLOADS[args.dataset]
    graph = load_bench_graph(workload)
    rows = []
    for p in (int(x) for x in args.gpus.split(",")):
        stats, c, k = run_pipeline_epoch(
            graph, workload, p=p, algorithm=args.algorithm
        )
        rows.append(
            {
                "p": p,
                "c": c,
                "k": k,
                "sampling_s": stats.sampling,
                "fetch_s": stats.feature_fetch,
                "prop_s": stats.propagation,
                "total_s": stats.total,
            }
        )
    print(format_table(rows, title=f"{args.dataset} / {args.algorithm} sweep"))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "sample":
        return _cmd_sample(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
