"""Command-line interface: generate datasets, sample, train, run sweeps.

Usage (after install)::

    python -m repro info
    python -m repro generate products --scale 0.5 --out products.npz
    python -m repro sample products --sampler ladies --batches 8
    python -m repro train products --epochs 5 --p 4 --c 2 --fanout 10,5
    python -m repro train --config examples/run_config.json
    python -m repro sweep products --algorithm replicated

Every choice list (datasets, samplers, execution algorithms) is driven by
the :mod:`repro.api` registries, so plugins loaded with ``--plugin
my_module`` (importable module that registers itself) appear as valid
options everywhere.  ``repro train`` accepts a ``--config file.json``
RunConfig; explicit flags override the file.  Subcommands print
human-readable tables; simulated times follow the same semantics as the
benchmarks.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

import numpy as np

__all__ = ["main", "build_parser"]

#: ``repro train`` / ``repro serve`` flags that override the corresponding
#: RunConfig field (None = not given, fall back to --config / defaults;
#: flags a subcommand does not define are simply absent).
_TRAIN_OVERRIDES = (
    "scale", "epochs", "p", "c", "algorithm", "sampler", "kernel",
    "batch_size", "seed", "hidden", "lr", "k", "train_split",
    "cache_budget", "cache_policy", "overlap", "activation",
    "serve_batch_size", "serve_max_wait", "embed_budget",
    "compaction_threshold",
    "replicas", "router", "shed_policy", "shed_queue_depth",
    "shed_deadline", "slo_p99", "autoscale_min", "autoscale_max",
    "autoscale_interval", "workers",
)


def _parse_fanout(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(x) for x in text.split(","))
    except ValueError:
        raise ValueError(
            f"invalid --fanout {text!r}: expected comma-separated integers "
            f"like 15,10,5"
        ) from None


def _user_error(exc: object) -> int:
    """Report a config/registry/input problem as one line, exit code 2."""
    print(f"error: {exc}", file=sys.stderr)
    return 2


def build_parser() -> argparse.ArgumentParser:
    from repro.api import ALGORITHMS, DATASETS, KERNELS, SAMPLERS
    from repro.gnn import ACTIVATIONS as activations
    from repro.partition import CACHE_POLICIES as cache_policies

    datasets = DATASETS.names()
    samplers = SAMPLERS.names()
    algorithms = ALGORITHMS.names()
    kernels = KERNELS.names()
    sweep_algorithms = [
        n for n in algorithms if ALGORITHMS.spec(n).meta("scalable", True)
    ]

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed matrix-based GNN sampling (MLSys 2024 reproduction)",
    )
    parser.add_argument(
        "--plugin", action="append", default=[], metavar="MODULE",
        help="import MODULE before running (for registry plugins); repeatable",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print version and simulated machine config")

    gen = sub.add_parser("generate", help="generate a dataset stand-in to .npz")
    gen.add_argument("dataset", choices=datasets)
    gen.add_argument("--scale", type=float, default=0.5)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--labels", action="store_true", help="planted labels")
    gen.add_argument("--out", required=True)

    smp = sub.add_parser("sample", help="bulk-sample minibatches, print stats")
    smp.add_argument("dataset", choices=datasets)
    smp.add_argument("--sampler", default="sage", choices=samplers)
    smp.add_argument("--scale", type=float, default=0.25)
    smp.add_argument("--batches", type=int, default=8)
    smp.add_argument("--batch-size", type=int, default=32)
    smp.add_argument("--fanout", default="5,3")
    smp.add_argument("--kernel", default=None, choices=kernels,
                     help="sparse-kernel backend, default esc")
    smp.add_argument("--seed", type=int, default=0)

    trn = sub.add_parser(
        "train",
        help="train the pipeline on a sim cluster",
        description="Flags override --config; without --config unset flags "
        "use the defaults shown (dataset defaults to 'products'). Giving "
        "--c > 1 without --algorithm selects the partitioned algorithm, "
        "the only one a replication group is meaningful for; --workers > 0 "
        "without --algorithm/--p selects the parallel algorithm (real "
        "worker processes instead of simulated ranks).",
    )
    trn.add_argument("dataset", nargs="?", default=None, choices=datasets)
    trn.add_argument("--config", default=None, metavar="FILE.json",
                     help="RunConfig JSON (repro.api.RunConfig.to_json)")
    trn.add_argument("--scale", type=float, default=None, help="default 0.25")
    trn.add_argument("--epochs", type=int, default=None, help="default 3")
    trn.add_argument("--p", type=int, default=None, help="GPU count, default 4")
    trn.add_argument("--c", type=int, default=None,
                     help="replication factor of the p/c x c grid, default "
                     "1; must divide --p (c > 1 implies --algorithm "
                     "partitioned unless given)")
    trn.add_argument("--k", type=int, default=None,
                     help="bulk size in minibatches, default whole epoch")
    trn.add_argument("--workers", type=int, default=None,
                     help="real worker processes for bulk sampling "
                     "(default 0 = serial; > 0 implies --algorithm "
                     "parallel unless given)")
    trn.add_argument("--algorithm", default=None, choices=algorithms)
    trn.add_argument("--sampler", default=None, choices=samplers)
    trn.add_argument("--kernel", default=None, choices=kernels,
                     help="sparse-kernel backend, default esc")
    trn.add_argument("--fanout", default=None, metavar="N,N,...",
                     help="per-layer sample counts; default per sampler")
    trn.add_argument("--train-split", type=float, default=None,
                     dest="train_split", metavar="FRAC",
                     help="fraction of vertices used for training, default 0.5")
    trn.add_argument("--batch-size", type=int, default=None, help="default 32")
    trn.add_argument("--hidden", type=int, default=None, help="default 32")
    trn.add_argument("--lr", type=float, default=None, help="default 0.01")
    trn.add_argument("--seed", type=int, default=None, help="default 0")
    trn.add_argument("--activation", default=None, choices=list(activations),
                     help="inter-layer nonlinearity, default relu")
    trn.add_argument("--cache-budget", type=float, default=None,
                     dest="cache_budget", metavar="BYTES",
                     help="per-rank feature-cache budget in bytes; replicated "
                     "hot rows are served locally instead of all-to-allv'd "
                     "(default 0 = off)")
    trn.add_argument("--cache-policy", default=None, dest="cache_policy",
                     choices=list(cache_policies),
                     help="feature-cache replication policy, default degree")
    trn.add_argument("--overlap", action=argparse.BooleanOptionalAction,
                     default=None,
                     help="double-buffer bulks: overlap sampling+fetch of "
                     "bulk k+1 with training on bulk k (simulated clock)")
    _add_obs_flags(trn)

    srv = sub.add_parser(
        "serve",
        help="online inference serving over a request trace",
        description="Trains a model (--epochs, default 1), then serves a "
        "request trace through the micro-batching ServingEngine and "
        "reports p50/p95/p99 latency, throughput and a deterministic "
        "logits digest.  Without --requests, a synthetic trace of "
        "--synthetic requests against the test split is generated.",
    )
    srv.add_argument("dataset", nargs="?", default=None, choices=datasets)
    srv.add_argument("--config", default=None, metavar="FILE.json",
                     help="RunConfig JSON (repro.api.RunConfig.to_json)")
    srv.add_argument("--requests", default=None, metavar="TRACE.json",
                     help="JSON request trace: a list of "
                     '{"arrival": seconds, "vertices": [ids]} objects')
    srv.add_argument("--synthetic", type=int, default=32, metavar="N",
                     help="synthetic trace size when --requests is absent")
    srv.add_argument("--scale", type=float, default=None, help="default 0.25")
    srv.add_argument("--epochs", type=int, default=None,
                     help="training epochs before serving, default 1")
    srv.add_argument("--sampler", default=None, choices=samplers)
    srv.add_argument("--kernel", default=None, choices=kernels,
                     help="sparse-kernel backend, default esc")
    srv.add_argument("--fanout", default=None, metavar="N,N,...",
                     help="model fanout during training; serving itself "
                     "always uses exact full neighborhoods")
    srv.add_argument("--batch-size", type=int, default=None, help="default 32")
    srv.add_argument("--hidden", type=int, default=None, help="default 32")
    srv.add_argument("--seed", type=int, default=None, help="default 0")
    srv.add_argument("--activation", default=None, choices=list(activations),
                     help="inter-layer nonlinearity, default relu")
    srv.add_argument("--serve-batch-size", type=int, default=None,
                     dest="serve_batch_size",
                     help="micro-batch size cap, default 8 (1 = per-request)")
    srv.add_argument("--serve-max-wait", type=float, default=None,
                     dest="serve_max_wait", metavar="SECONDS",
                     help="max simulated queueing delay, default 1e-3")
    srv.add_argument("--embed-budget", type=float, default=None,
                     dest="embed_budget", metavar="BYTES",
                     help="embedding-cache budget for hot penultimate-layer "
                     "rows (default 0 = off)")
    srv.add_argument("--replicas", type=int, default=None,
                     help="serving fleet size, default 1 (>1 builds a "
                     "routed ServingCluster)")
    srv.add_argument("--router", default=None,
                     choices=["direct", "round_robin", "consistent_hash"],
                     help="fleet routing policy, default direct")
    srv.add_argument("--shed-policy", default=None, dest="shed_policy",
                     choices=["none", "queue", "deadline"],
                     help="admission control: shed on per-replica queue "
                     "depth or request deadline, default none")
    srv.add_argument("--shed-queue-depth", type=int, default=None,
                     dest="shed_queue_depth", metavar="N",
                     help="per-replica queue bound for --shed-policy queue, "
                     "default 64")
    srv.add_argument("--shed-deadline", type=float, default=None,
                     dest="shed_deadline", metavar="SECONDS",
                     help="staleness bound for --shed-policy deadline")
    srv.add_argument("--slo-p99", type=float, default=None, dest="slo_p99",
                     metavar="SECONDS",
                     help="p99 latency SLO driving the autoscaler "
                     "(default 0 = autoscaling off)")
    srv.add_argument("--autoscale-min", type=int, default=None,
                     dest="autoscale_min", metavar="N",
                     help="autoscaler replica floor, default 1")
    srv.add_argument("--autoscale-max", type=int, default=None,
                     dest="autoscale_max", metavar="N",
                     help="autoscaler replica ceiling, default 8")
    srv.add_argument("--autoscale-interval", type=float, default=None,
                     dest="autoscale_interval", metavar="SECONDS",
                     help="autoscaler evaluation window, default 0.01")
    srv.add_argument("--workers", type=int, default=None,
                     help="serve each replica in its own worker process "
                     "over a shared-memory graph (default 0 = in-process; "
                     "needs an open-loop trace and no autoscaler)")
    _add_obs_flags(srv)

    stm = sub.add_parser(
        "stream",
        help="serving under live edge churn (delta-CSR + invalidation)",
        description="Trains a model (--epochs, default 1), then serves a "
        "synthetic request trace interleaved with edge insert/delete "
        "batches through the streaming ServingEngine: updates land in a "
        "delta-CSR overlay, compact at --compaction-threshold (parity "
        "with a from-scratch rebuild asserted), and invalidate the dirty "
        "vertices' cached embeddings.  Reports latency, update/compaction "
        "counts, a deterministic logits digest, and (with --verify) "
        "asserts post-churn logits are bit-identical to layer-wise "
        "inference on a from-scratch rebuild of the final graph.",
    )
    stm.add_argument("dataset", nargs="?", default=None, choices=datasets)
    stm.add_argument("--config", default=None, metavar="FILE.json",
                     help="RunConfig JSON (repro.api.RunConfig.to_json)")
    stm.add_argument("--requests", type=int, default=48, metavar="N",
                     help="synthetic request count, default 48")
    stm.add_argument("--update-ratio", type=float, default=0.25,
                     dest="update_ratio", metavar="R",
                     help="edge-update batches per request, default 0.25")
    stm.add_argument("--edges-per-update", type=int, default=8,
                     dest="edges_per_update", metavar="E",
                     help="edges per update batch, default 8")
    stm.add_argument("--delete-fraction", type=float, default=0.5,
                     dest="delete_fraction", metavar="F",
                     help="fraction of update batches that delete, default 0.5")
    stm.add_argument("--compaction-threshold", type=float, default=None,
                     dest="compaction_threshold", metavar="FRAC",
                     help="delta-log fraction of nnz that compacts, "
                     "default 0.25")
    stm.add_argument("--verify", action="store_true",
                     help="assert post-churn parity with a from-scratch "
                     "rebuild of the final graph")
    stm.add_argument("--scale", type=float, default=None, help="default 0.25")
    stm.add_argument("--epochs", type=int, default=None,
                     help="training epochs before serving, default 1")
    stm.add_argument("--sampler", default=None, choices=samplers)
    stm.add_argument("--kernel", default=None, choices=kernels,
                     help="sparse-kernel backend, default esc")
    stm.add_argument("--fanout", default=None, metavar="N,N,...",
                     help="model fanout during training; streaming serving "
                     "always uses exact full neighborhoods")
    stm.add_argument("--batch-size", type=int, default=None, help="default 32")
    stm.add_argument("--hidden", type=int, default=None, help="default 32")
    stm.add_argument("--seed", type=int, default=None, help="default 0")
    stm.add_argument("--serve-batch-size", type=int, default=None,
                     dest="serve_batch_size",
                     help="micro-batch size cap, default 8 (1 = per-request)")
    stm.add_argument("--serve-max-wait", type=float, default=None,
                     dest="serve_max_wait", metavar="SECONDS",
                     help="max simulated queueing delay, default 1e-3")
    stm.add_argument("--embed-budget", type=float, default=None,
                     dest="embed_budget", metavar="BYTES",
                     help="embedding-cache budget; updates invalidate dirty "
                     "rows (default 0 = off)")
    stm.add_argument("--workers", type=int, default=None,
                     help="serve each replica in its own worker process "
                     "over a shared-memory graph (default 0 = in-process)")
    _add_obs_flags(stm)

    swp = sub.add_parser("sweep", help="figure-4-style GPU-count sweep")
    swp.add_argument("dataset", choices=datasets)
    swp.add_argument("--algorithm", default="replicated",
                     choices=sweep_algorithms)
    swp.add_argument("--gpus", default="4,8,16,32")

    trc = sub.add_parser(
        "trace",
        help="summarize (or schema-check) an exported trace JSON",
        description="Reads a Chrome trace-event JSON written by "
        "--trace (or any Perfetto-loadable file) and prints the top "
        "spans by self-time, the per-category breakdown, and the "
        "slowest-request exemplars.",
    )
    trc.add_argument("file", metavar="TRACE.json")
    trc.add_argument("--top", type=int, default=10, metavar="N",
                     help="rows per section, default 10")
    trc.add_argument("--validate", action="store_true",
                     help="schema-check only: exit 0 if the file is a "
                     "well-formed Chrome trace, 1 with errors listed")
    return parser


def _add_obs_flags(sub_parser) -> None:
    sub_parser.add_argument(
        "--trace", default=None, metavar="OUT.json", dest="trace",
        help="record spans and write a Chrome trace-event JSON "
        "(load in Perfetto or chrome://tracing; summarize with "
        "`repro trace OUT.json`)",
    )
    sub_parser.add_argument(
        "--metrics", action="store_true",
        help="collect counters/histograms and print a Prometheus-style "
        "text dump after the run",
    )


def _setup_obs(args) -> None:
    """Install the tracer / metrics registry the flags ask for (before
    any engine or worker-pool construction, so pools inherit tracing)."""
    from repro.obs import MetricsRegistry, Tracer, set_registry, set_tracer
    from repro.obs.trace import get_tracer

    if getattr(args, "trace", None) and get_tracer() is None:
        set_tracer(Tracer())
    if getattr(args, "metrics", False):
        set_registry(MetricsRegistry())


def _finish_obs(args) -> None:
    """Write the trace file / print the metrics dump, if enabled."""
    from repro.obs import get_registry, write_chrome_trace
    from repro.obs.trace import get_tracer

    tracer = get_tracer()
    if getattr(args, "trace", None) and tracer is not None:
        path = write_chrome_trace(args.trace, tracer.spans)
        print(f"wrote trace: {path} ({len(tracer)} spans)")
    registry = get_registry()
    if getattr(args, "metrics", False) and registry is not None:
        print(registry.render(), end="")


def _cmd_info() -> int:
    import repro
    from repro.api import ALGORITHMS, KERNELS, SAMPLERS
    from repro.config import PERLMUTTER_LIKE

    m = PERLMUTTER_LIKE
    print(f"repro {repro.__version__}")
    print(f"machine: {m.name} ({m.devices_per_node} devices/node)")
    print(f"  device: {m.device.flops_per_s / 1e12:.1f} TF/s, "
          f"{m.device.mem_bw / 1e9:.0f} GB/s HBM, "
          f"{m.device.memory_bytes / 1e9:.0f} GB")
    print(f"  intra-node link: {1 / m.intra_node.beta / 1e9:.0f} GB/s")
    print(f"  inter-node link: {1 / m.inter_node.beta / 1e9:.0f} GB/s")
    print(f"samplers: {', '.join(SAMPLERS.names())}")
    print(f"algorithms: {', '.join(ALGORITHMS.names())}")
    print(f"kernels: {', '.join(KERNELS.names())}")
    return 0


def _cmd_generate(args) -> int:
    from repro.api import load_graph_from_registry
    from repro.graphs import save_graph, summarize

    try:
        graph = load_graph_from_registry(
            args.dataset, scale=args.scale, seed=args.seed,
            with_labels=args.labels,
        )
    except (ValueError, KeyError) as exc:
        return _user_error(exc)
    path = save_graph(graph, args.out)
    row = summarize(graph).row()
    print(f"wrote {path}")
    for k, v in row.items():
        print(f"  {k}: {v}")
    return 0


def _cmd_sample(args) -> int:
    from repro.api import load_graph_from_registry, make_sampler

    try:
        fanout = _parse_fanout(args.fanout)
        graph = load_graph_from_registry(
            args.dataset, scale=args.scale, seed=args.seed
        )
        sampler = make_sampler(args.sampler, graph=graph, kernel=args.kernel)
    except (ValueError, KeyError) as exc:
        return _user_error(exc)
    rng = np.random.default_rng(args.seed)
    batches = [
        rng.choice(graph.n, args.batch_size, replace=False)
        for _ in range(args.batches)
    ]
    t0 = time.perf_counter()
    try:
        # sample_bulk validates user input (fanout entries, batch ranges).
        samples = sampler.sample_bulk(graph.adj, batches, fanout, rng)
    except ValueError as exc:
        return _user_error(exc)
    dt = time.perf_counter() - t0
    edges = sum(mb.total_edges() for mb in samples)
    frontier = sum(mb.input_frontier.size for mb in samples)
    print(f"sampled {len(samples)} minibatches with {sampler.name} "
          f"in {dt * 1e3:.1f} ms (wall)")
    print(f"  total sampled edges: {edges}")
    print(f"  total input frontier: {frontier} vertices")
    print(f"  layers per batch: {samples[0].num_layers}")
    return 0


def _resolve_train_config(args):
    """Merge --config (if any), explicit flags, and CLI defaults into one
    validated RunConfig."""
    from repro.api import RunConfig, SAMPLERS

    overrides = {
        name: getattr(args, name, None)
        for name in _TRAIN_OVERRIDES
        if getattr(args, name, None) is not None
    }
    if args.dataset is not None:
        overrides["dataset"] = args.dataset
    if args.fanout is not None:
        overrides["fanout"] = _parse_fanout(args.fanout)
    if args.config is not None:
        return RunConfig.from_json(args.config).replace(**overrides)
    settings = dict(
        p=4, c=1, algorithm="replicated", sampler="sage", batch_size=32,
        seed=0, scale=0.25, epochs=3, hidden=32, lr=0.01, train_split=0.5,
        dataset="products",
    )
    # A replication group only means something on the p/c x c grid, so an
    # explicit --c > 1 without --algorithm selects the partitioned path
    # instead of failing the grid validation downstream.
    if overrides.get("c", 1) > 1 and "algorithm" not in overrides:
        settings["algorithm"] = "partitioned"
    # Worker processes parallelize over real cores, not simulated ranks,
    # so `train --workers N` without --algorithm/--p selects the parallel
    # backend at p=1.  serve/stream keep their training defaults: there
    # --workers drives the serving fleet, not the training backend.
    if (
        getattr(args, "command", None) == "train"
        and overrides.get("workers", 0) > 0
        and "algorithm" not in overrides
        and "p" not in overrides
    ):
        settings["algorithm"] = "parallel"
        settings["p"] = 1
    settings.update(overrides)
    settings.setdefault(
        "fanout",
        SAMPLERS.spec(settings["sampler"]).meta("default_fanout", (5, 3)),
    )
    return RunConfig(**settings)


def _cmd_train(args) -> int:
    from repro.api import Engine

    try:
        cfg = _resolve_train_config(args)
        if cfg.dataset is None:
            raise ValueError(
                "no dataset given (positional argument or --config)"
            )
        _setup_obs(args)
        engine = Engine(cfg)
        print(f"dataset {cfg.dataset} (scale {cfg.scale}): "
              f"sampler {cfg.sampler}, algorithm {cfg.algorithm}, "
              f"p={cfg.p} c={cfg.c}")
        engine.pipeline  # resolve registries/capabilities before training
    except (ValueError, KeyError, FileNotFoundError) as exc:
        return _user_error(exc)
    try:
        epoch_times = []
        for epoch in range(cfg.epochs):
            stats = engine.train_epoch(epoch)
            epoch_times.append(stats.epoch_seconds)
            loss_txt = (
                f"loss {stats.loss:.4f}" if stats.loss is not None
                else "loss n/a"
            )
            line = (f"epoch {epoch}: {loss_txt}  "
                    f"sim-time {stats.epoch_seconds:.5f}s "
                    f"(sampling {stats.sampling:.5f} / "
                    f"fetch {stats.feature_fetch:.5f}"
                    f" / prop {stats.propagation:.5f})")
            if stats.pipelined_total is not None:
                line += f" overlap saved {stats.overlap_saved:.5f}s"
            if stats.fetch_hit_rate is not None:
                line += f" cache hit-rate {stats.fetch_hit_rate:.2%}"
            print(line)
        if len(epoch_times) > 1:
            from repro.bench.reporting import format_latency_summary

            print(format_latency_summary(epoch_times,
                                         label="sim-time summary"))
        print(f"test accuracy: {engine.evaluate('test'):.3f}")
    finally:
        engine.close()  # shut down worker pools (--workers) promptly
    _finish_obs(args)
    return 0


def _cmd_serve(args) -> int:
    from repro.api import Engine
    from repro.bench.reporting import format_latency_summary
    from repro.serve import TraceWorkload, load_trace

    try:
        cfg = _resolve_train_config(args)
        if cfg.dataset is None:
            raise ValueError(
                "no dataset given (positional argument or --config)"
            )
        if args.epochs is None and args.config is None:
            cfg = cfg.replace(epochs=1)
        _setup_obs(args)
        engine = Engine(cfg)
        # One consolidated banner up front: the dataset/serving knobs plus
        # — when anything forces the fleet path (including --workers) —
        # the effective replica/router/worker config with the kernel.
        print(f"dataset {cfg.dataset} (scale {cfg.scale}): sampler "
              f"{cfg.sampler}, kernel {cfg.kernel}, "
              f"serve_batch_size={cfg.serve_batch_size}, "
              f"serve_max_wait={cfg.serve_max_wait}, "
              f"embed_budget={cfg.embed_budget:.0f}")
        fleet_line = _fleet_banner(cfg)
        if fleet_line is not None:
            print(fleet_line)
        engine.train(cfg.epochs)
        server = engine.serving()
        if args.requests is not None:
            workload = load_trace(args.requests)
        else:
            pool = engine.graph.test_idx
            if pool.size == 0:
                pool = np.arange(engine.graph.n, dtype=np.int64)
            workload = TraceWorkload.synthetic(
                args.synthetic, pool, seed=cfg.seed, interarrival=1e-4
            )
        # Serving validates request vertices against the graph lazily, so
        # a malformed trace surfaces here — still a user error, not a bug.
        report = server.process(workload)
    except (ValueError, KeyError, FileNotFoundError) as exc:
        return _user_error(exc)
    print(f"served {report.n_requests} requests in {report.batches} "
          f"micro-batches (mean {report.mean_batch_size:.2f} req/batch)")
    print(format_latency_summary(report.latencies, label="latency"))
    line = f"throughput: {report.throughput:.0f} req/s (simulated)"
    if report.cache_stats is not None:
        line += f"  embed-cache hit-rate: {report.cache_stats.hit_rate:.2%}"
    print(line)
    if report.per_replica:
        spread = "  ".join(
            f"r{rid}:{n}" for rid, n in sorted(report.per_replica.items())
        )
        print(f"per-replica requests: {spread}")
    if report.shed:
        print(f"shed requests: {report.shed}")
    if len(report.replica_trace) > 1:
        steps = " -> ".join(str(n) for _, n in report.replica_trace)
        print(f"autoscaler replica trace: {steps}")
    phases = "  ".join(
        f"{ph} {s:.6f}s" for ph, s in sorted(report.phase_seconds.items())
    )
    print(f"service breakdown: {phases}")
    print(f"logits digest: {report.digest()}")
    _finish_obs(args)
    return 0


def _fleet_banner(cfg) -> str | None:
    """The serve/stream fleet banner, or None for a single-server run.

    Mirrors Engine.serving's fleet auto-detection, so the banner prints
    exactly when a ServingCluster will be built — including when --workers
    alone forces the fleet path.
    """
    fleet = (
        cfg.replicas > 1
        or cfg.router != "direct"
        or cfg.shed_policy != "none"
        or cfg.slo_p99 > 0
        or cfg.workers > 0
    )
    if not fleet:
        return None
    line = (f"fleet: {cfg.replicas} replica(s), router {cfg.router}, "
            f"shed_policy {cfg.shed_policy}, workers {cfg.workers}, "
            f"kernel {cfg.kernel}")
    if cfg.slo_p99 > 0:
        line += (f", autoscaling to p99<={cfg.slo_p99:g}s in "
                 f"[{cfg.autoscale_min}, {cfg.autoscale_max}]")
    return line


def _cmd_stream(args) -> int:
    from repro.api import Engine
    from repro.bench.reporting import format_latency_summary
    from repro.stream import UpdateStream

    try:
        cfg = _resolve_train_config(args).replace(stream_updates=True)
        if cfg.dataset is None:
            raise ValueError(
                "no dataset given (positional argument or --config)"
            )
        if args.epochs is None and args.config is None:
            cfg = cfg.replace(epochs=1)
        _setup_obs(args)
        engine = Engine(cfg)
        print(f"dataset {cfg.dataset} (scale {cfg.scale}): sampler "
              f"{cfg.sampler}, kernel {cfg.kernel}, "
              f"serve_batch_size={cfg.serve_batch_size}, "
              f"embed_budget={cfg.embed_budget:.0f}, "
              f"compaction_threshold={cfg.compaction_threshold}")
        fleet_line = _fleet_banner(cfg)
        if fleet_line is not None:
            print(fleet_line)
        engine.train(cfg.epochs)
        server = engine.serving()
        pool = engine.graph.test_idx
        if pool.size == 0:
            pool = np.arange(engine.graph.n, dtype=np.int64)
        workload = UpdateStream.synthetic(
            engine.graph.adj, pool, n_requests=args.requests,
            update_ratio=args.update_ratio,
            edges_per_update=args.edges_per_update,
            delete_fraction=args.delete_fraction, seed=cfg.seed,
            interarrival=1e-4,
        )
        report = server.process(workload)
    except (ValueError, KeyError, FileNotFoundError) as exc:
        return _user_error(exc)
    if report.update_stats is not None:
        print(f"served {report.n_requests} requests in {report.batches} "
              f"micro-batches under {report.update_stats.batches} update "
              f"batches ({report.update_stats.applied} edge edits, "
              f"{report.update_stats.compactions} compactions)")
    else:
        print(f"served {report.n_requests} requests in {report.batches} "
              f"micro-batches (no edge updates)")
    print(format_latency_summary(report.latencies, label="latency"))
    line = f"throughput: {report.throughput:.0f} req/s (simulated)"
    if report.cache_stats is not None:
        line += (f"  embed-cache hit-rate: {report.cache_stats.hit_rate:.2%}"
                 f" ({report.cache_stats.invalidations} invalidations)")
    print(line)
    phases = "  ".join(
        f"{ph} {s:.6f}s" for ph, s in sorted(report.phase_seconds.items())
    )
    print(f"service breakdown: {phases}")
    print(f"logits digest: {report.digest()}")
    if args.verify:
        from repro.pipeline import layerwise_inference

        rebuilt = server.stream.rebuild_from_scratch()
        reference = layerwise_inference(engine.model, rebuilt)
        verts = pool[: min(64, pool.size)]
        if not np.array_equal(server.serve(verts), reference[verts]):
            print("error: post-churn logits differ from a from-scratch "
                  "rebuild of the final graph", file=sys.stderr)
            return 1
        print("verified: post-churn logits bit-identical to from-scratch "
              "rebuild")
    _finish_obs(args)
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import (
        format_trace_summary,
        load_trace_file,
        validate_chrome_trace,
    )

    try:
        payload = load_trace_file(args.file)
    except (OSError, ValueError) as exc:
        return _user_error(exc)
    if args.validate:
        errors = validate_chrome_trace(payload)
        if errors:
            for problem in errors[:20]:
                print(f"schema: {problem}", file=sys.stderr)
            if len(errors) > 20:
                print(f"schema: ... and {len(errors) - 20} more",
                      file=sys.stderr)
            return 1
        print(f"valid Chrome trace: {args.file}")
        return 0
    print(format_trace_summary(payload, top=args.top))
    return 0


def _cmd_sweep(args) -> int:
    from repro.bench import SIM_WORKLOADS, format_table, load_bench_graph
    from repro.bench.harness import run_pipeline_epoch

    workload = SIM_WORKLOADS[args.dataset]
    graph = load_bench_graph(workload)
    rows = []
    for p in (int(x) for x in args.gpus.split(",")):
        stats, c, k = run_pipeline_epoch(
            graph, workload, p=p, algorithm=args.algorithm
        )
        rows.append(
            {
                "p": p,
                "c": c,
                "k": k,
                "sampling_s": stats.sampling,
                "fetch_s": stats.feature_fetch,
                "prop_s": stats.propagation,
                "total_s": stats.total,
            }
        )
    print(format_table(rows, title=f"{args.dataset} / {args.algorithm} sweep"))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # Import plugin modules before building the parser so their registry
    # entries show up in the --sampler/--algorithm/dataset choices.  The
    # flag is consumed here (accepted anywhere, including after the
    # subcommand) and stripped before argparse sees the rest.
    remaining: list[str] = []
    plugins: list[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--plugin":
            plugins.append(next(it, ""))
        elif arg.startswith("--plugin="):
            plugins.append(arg.split("=", 1)[1])
        else:
            remaining.append(arg)
    try:
        for module in plugins:
            if not module:
                raise ImportError("--plugin needs a module name")
            importlib.import_module(module)
    except ImportError as exc:
        return _user_error(f"could not import plugin: {exc}")
    args = build_parser().parse_args(remaining)
    try:
        if args.command == "info":
            return _cmd_info()
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "sample":
            return _cmd_sample(args)
        if args.command == "train":
            return _cmd_train(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "stream":
            return _cmd_stream(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "trace":
            return _cmd_trace(args)
    except BrokenPipeError:  # e.g. `repro train ... | head`
        return 0
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
