"""repro: a reproduction of "Distributed Matrix-Based Sampling for Graph
Neural Network Training" (Tripathy, Yelick, Buluc - MLSys 2024).

The package implements the paper's matrix-based bulk sampling framework and
every substrate it depends on: a CSR sparse-matrix library with SpGEMM/SpMM
kernels, a simulated multi-GPU runtime with alpha-beta communication costs,
1D/1.5D matrix partitioning, the Graph Replicated and Graph Partitioned
distributed sampling algorithms, a numpy GNN training stack, the end-to-end
pipeline of Figure 3, and the baselines the paper compares against.

The public entry point is :mod:`repro.api` — pluggable registries
(samplers, execution algorithms, datasets), a serializable
:class:`~repro.api.RunConfig`, and the :class:`~repro.api.Engine` facade.

Quickstart::

    from repro.api import Engine, RunConfig

    cfg = RunConfig(dataset="products", scale=0.25, p=4,
                    sampler="sage", fanout=(15, 10, 5),
                    batch_size=32, hidden=32, epochs=3)
    engine = Engine(cfg)
    engine.train()
    print(engine.evaluate("test"))

See README.md for the system inventory and the benchmarks/ directory for
the paper-figure reproductions.
"""

from . import api, baselines, bench, comm, core, distributed, gnn, graphs, partition, pipeline, sparse
from .api import Engine, RunConfig
from .config import (
    LADIES_ARCH,
    PERLMUTTER_LIKE,
    SAGE_ARCH,
    ArchitectureConfig,
    DeviceModel,
    LinkModel,
    MachineConfig,
)

__version__ = "1.1.0"

__all__ = [
    "api",
    "sparse",
    "comm",
    "core",
    "partition",
    "distributed",
    "gnn",
    "pipeline",
    "baselines",
    "graphs",
    "bench",
    "Engine",
    "RunConfig",
    "MachineConfig",
    "DeviceModel",
    "LinkModel",
    "ArchitectureConfig",
    "PERLMUTTER_LIKE",
    "SAGE_ARCH",
    "LADIES_ARCH",
]
