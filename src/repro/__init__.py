"""repro: a reproduction of "Distributed Matrix-Based Sampling for Graph
Neural Network Training" (Tripathy, Yelick, Buluc - MLSys 2024).

The package implements the paper's matrix-based bulk sampling framework and
every substrate it depends on: a CSR sparse-matrix library with SpGEMM/SpMM
kernels, a simulated multi-GPU runtime with alpha-beta communication costs,
1D/1.5D matrix partitioning, the Graph Replicated and Graph Partitioned
distributed sampling algorithms, a numpy GNN training stack, the end-to-end
pipeline of Figure 3, and the baselines the paper compares against.

Quickstart::

    import numpy as np
    from repro.core import SageSampler
    from repro.graphs import load_dataset

    g = load_dataset("products", scale=0.5, seed=0)
    sampler = SageSampler()
    batches = g.make_batches(64)
    samples = sampler.sample_bulk(
        g.adj, batches, fanout=(15, 10, 5), rng=np.random.default_rng(0)
    )

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from . import baselines, bench, comm, core, distributed, gnn, graphs, partition, pipeline, sparse
from .config import (
    LADIES_ARCH,
    PERLMUTTER_LIKE,
    SAGE_ARCH,
    ArchitectureConfig,
    DeviceModel,
    LinkModel,
    MachineConfig,
)

__version__ = "1.0.0"

__all__ = [
    "sparse",
    "comm",
    "core",
    "partition",
    "distributed",
    "gnn",
    "pipeline",
    "baselines",
    "graphs",
    "bench",
    "MachineConfig",
    "DeviceModel",
    "LinkModel",
    "ArchitectureConfig",
    "PERLMUTTER_LIKE",
    "SAGE_ARCH",
    "LADIES_ARCH",
]
