"""Engine: the single entry point tying graph + config + backend together.

An :class:`Engine` owns one graph, one :class:`~repro.api.config.RunConfig`
and the execution backend the config's ``algorithm`` key resolves to, and
exposes the four things callers do::

    engine = Engine(RunConfig(dataset="products", scale=0.25, p=4))
    samples = engine.sample()          # bulk-sample minibatches
    stats   = engine.train()           # epochs of pipeline training
    acc     = engine.evaluate("test")  # full-neighbor accuracy
    for bulk in engine.stream_bulks(): # iterate bulks, don't materialize
        ...

``stream_bulks`` is a generator over one epoch's minibatch bulks — sampling
runs lazily per bulk, so callers can interleave their own work (logging,
early stopping, custom training) without an epoch's worth of samples in
memory; after exhaustion ``engine.epoch_stats`` holds the same
:class:`~repro.pipeline.stats.EpochStats` a ``train_epoch`` call returns.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterator, Sequence

import numpy as np

from ..core import MinibatchSample
from ..graphs import Graph
from ..pipeline.stats import BulkStats, EpochStats
from ..pipeline.trainer import TrainingPipeline
from .config import RunConfig
from .registries import load_graph_from_registry, make_sampler

__all__ = ["Engine"]


class Engine:
    """Facade over graph loading, sampling, training and evaluation.

    ``graph`` may be passed directly (any :class:`~repro.graphs.Graph`);
    otherwise ``config.dataset`` names a registered dataset to load, scaled
    by ``config.scale`` and seeded by ``config.seed``.  A non-``None``
    ``config.train_split`` re-splits the graph in place: that fraction of
    vertices becomes the training split and val/test are re-drawn from the
    remainder (deterministically from ``config.seed``), so the three splits
    stay disjoint and test accuracy is never measured on trained vertices.

    The training pipeline is built lazily on first use of a training verb
    (``train``/``evaluate``/``stream_bulks``/``backend``/``model``), so a
    sampling-only sampler still supports :meth:`sample`.
    """

    def __init__(self, config: RunConfig | dict, graph: Graph | None = None) -> None:
        if isinstance(config, dict):
            config = RunConfig.from_dict(config)
        self.config = config
        if graph is None:
            if config.dataset is None:
                raise ValueError(
                    "Engine needs a graph: pass one explicitly or set "
                    "RunConfig.dataset to a registered dataset name"
                )
            kwargs: dict[str, Any] = {"with_labels": True}
            kwargs.update(config.dataset_kwargs)
            graph = load_graph_from_registry(
                config.dataset, scale=config.scale, seed=config.seed, **kwargs
            )
        if config.train_split is not None:
            rng = np.random.default_rng(
                np.random.SeedSequence([config.seed, 7919])
            )
            perm = rng.permutation(graph.n)
            n_train = max(1, int(round(config.train_split * graph.n)))
            rest = perm[n_train:]
            n_val = min(rest.size, graph.n // 10)
            graph.train_idx = np.sort(perm[:n_train])
            graph.val_idx = np.sort(rest[:n_val])
            graph.test_idx = np.sort(rest[n_val:])
        self.graph = graph
        self._pipeline: TrainingPipeline | None = None
        self._sampler = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_json(cls, source: str | Path, graph: Graph | None = None) -> "Engine":
        """Build an engine from a JSON RunConfig (path or JSON string)."""
        return cls(RunConfig.from_json(source), graph=graph)

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def pipeline(self) -> TrainingPipeline:
        """The training pipeline, built on first access (this is where a
        sampling-only sampler raises its capability error)."""
        if self._pipeline is None:
            self._pipeline = TrainingPipeline(self.graph, self.config)
        return self._pipeline

    @property
    def sampler(self):
        """The registry-built sampler instance used by :meth:`sample`."""
        if self._sampler is None:
            self._sampler = make_sampler(
                self.config.sampler, graph=self.graph, for_training=True,
                kernel=self.config.kernel,
            )
        return self._sampler

    @property
    def backend(self):
        """The execution backend (resolved via the ALGORITHMS registry)."""
        return self.pipeline.backend

    @property
    def model(self):
        """The GNN model being trained."""
        return self.pipeline.model

    @property
    def epoch_stats(self) -> EpochStats | None:
        """Stats of the most recently completed epoch (train_epoch or a
        fully-consumed stream_bulks)."""
        if self._pipeline is None:
            return None
        return self._pipeline.last_epoch_stats

    @property
    def cache_stats(self):
        """Live hit/miss counters of the feature cache
        (:class:`~repro.partition.CacheStats`), or ``None`` when
        ``config.cache_budget`` is 0 or no pipeline exists yet."""
        if self._pipeline is None:
            return None
        return getattr(self._pipeline.store, "stats", None)

    def publish_metrics(self, registry=None) -> bool:
        """Publish the engine's current stats into a metrics registry.

        Uses the process-wide registry (``repro.obs.set_registry`` / the
        CLI's ``--metrics`` flag) when ``registry`` is omitted.  Covers the
        last epoch's :class:`EpochStats` and the feature cache's counters;
        serving reports publish themselves at the end of ``process``.
        Returns ``True`` if anything was published.

        Note: when a process-wide registry is installed *during* training,
        the pipeline already publishes every epoch as it completes — call
        this only with a private ``registry`` in that case, or you will
        count the last epoch twice.
        """
        if registry is None:
            from ..obs.metrics import get_registry

            registry = get_registry()
        if registry is None:
            return False
        published = False
        if self.epoch_stats is not None:
            self.epoch_stats.publish(registry)
            published = True
        cache = self.cache_stats
        if cache is not None and hasattr(cache, "publish"):
            cache.publish(registry)
            published = True
        return published

    # ------------------------------------------------------------------ #
    # The four verbs
    # ------------------------------------------------------------------ #
    def sample(
        self,
        batches: Sequence[np.ndarray] | None = None,
        *,
        seed: int | None = None,
    ) -> list[MinibatchSample]:
        """Bulk-sample minibatches with the configured sampler (local, no
        distribution).  Without ``batches``, one epoch's worth is drawn from
        the training split at ``config.batch_size``."""
        rng = np.random.default_rng(
            self.config.seed if seed is None else seed
        )
        if batches is None:
            batches = self.graph.make_batches(self.config.batch_size, rng)
        return self.sampler.sample_bulk(
            self.graph.adj, list(batches), self.config.fanout, rng
        )

    def train(self, epochs: int | None = None) -> list[EpochStats]:
        """Train for ``epochs`` (default ``config.epochs``); returns the
        per-epoch stats."""
        n = self.config.epochs if epochs is None else epochs
        return [self.pipeline.train_epoch(epoch) for epoch in range(n)]

    def train_epoch(self, epoch: int = 0) -> EpochStats:
        """Run a single epoch."""
        return self.pipeline.train_epoch(epoch)

    def evaluate(self, split: str = "test") -> float:
        """Full-neighbor accuracy on a split."""
        return self.pipeline.evaluate(split)

    def stream_bulks(self, epoch: int = 0) -> Iterator[BulkStats]:
        """Generator over one epoch's minibatch bulks (lazy sampling +
        training per bulk).  After exhaustion, :attr:`epoch_stats` matches
        what ``train_epoch(epoch)`` would have returned."""
        return self.pipeline.stream_bulks(epoch)

    def close(self) -> None:
        """Release backend resources — with ``algorithm="parallel"`` this
        shuts the worker pool down and frees its shared-memory segments.
        Idempotent, and a no-op when no pipeline was ever built; the pool
        also cleans itself up at garbage collection / interpreter exit,
        so calling this is only needed for prompt teardown."""
        if self._pipeline is not None:
            self._pipeline.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Online serving
    # ------------------------------------------------------------------ #
    def serving(
        self,
        *,
        fanout: Sequence[int] | None = None,
        stream: bool | None = None,
        fleet: bool | None = None,
    ):
        """Build a server over this engine's graph and (current) weights.

        Returns a single-server :class:`~repro.serve.ServingEngine`, or a
        :class:`~repro.serve.ServingCluster` when the config asks for a
        fleet — ``replicas > 1``, a non-``direct`` router, admission
        control, or a p99 SLO (autoscaling).  ``fleet`` forces the choice
        either way; both expose the same ``process(workload)`` →
        :class:`~repro.serve.ServeReport` surface, and an N=1 cluster is
        bit-identical to the engine.

        ``fanout=None`` (default) serves exact full-neighborhood logits —
        bit-identical to :func:`~repro.pipeline.layerwise_inference` — and
        honors ``config.embed_budget``; an explicit per-layer fanout serves
        approximate logits through the configured sampler.  Serving knobs
        (``serve_batch_size``, ``serve_max_wait``, ``embed_budget``) come
        from :attr:`config`.  The returned server snapshots nothing: it
        reads the live model, so serve after training (or call
        ``server.cache.clear()`` if weights change under a cache).

        ``stream`` (default ``config.stream_updates``) wraps the graph in
        a :class:`~repro.stream.StreamingGraph` so the server accepts
        :class:`~repro.stream.UpdateStream` workloads — edge churn applied
        between micro-batches (broadcast to every replica in a fleet),
        delta-log compaction at ``config.compaction_threshold``, and
        dirty-vertex invalidation of the embedding cache.  Note the
        StreamingGraph mutates this engine's ``graph.adj`` in place as
        updates land (serving tracks the *current* graph by design).
        """
        from ..serve import ServingCluster, ServingEngine

        cfg = self.config
        if fleet is None:
            fleet = (
                cfg.replicas > 1
                or cfg.router != "direct"
                or cfg.shed_policy != "none"
                or cfg.slo_p99 > 0
                # workers > 0 serves through the cluster's parallel path
                # (an N=1 fleet is bit-identical to the engine).
                or cfg.workers > 0
            )
        if stream is None:
            stream = cfg.stream_updates
        streaming_graph = None
        if stream:
            from ..stream import StreamingGraph

            streaming_graph = StreamingGraph(
                self.graph,
                compaction_threshold=cfg.compaction_threshold,
            )
        server_cls = ServingCluster if fleet else ServingEngine
        return server_cls(
            self.model, self.graph, cfg, fanout=fanout,
            stream=streaming_graph,
        )
