"""RunConfig: one serializable description of an end-to-end run.

A ``RunConfig`` names *what* to run entirely by registry keys — dataset,
sampler, execution algorithm — plus the numeric knobs, so a JSON file fully
reproduces a run::

    cfg = RunConfig(dataset="products", sampler="ladies", fanout=(64,))
    cfg.to_json("run.json")
    Engine.from_json("run.json").train()

Validation happens at construction and names the registry's known keys, so
a typo or a missing plugin import fails immediately with the accepted
options listed.  ``repro.pipeline.PipelineConfig`` is a deprecated alias
that delegates here.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..config import DeviceModel, LinkModel, MachineConfig, PERLMUTTER_LIKE
from ..gnn.activations import ACTIVATIONS
from ..partition.cache import CACHE_POLICIES
from ..sparse.kernels import KERNELS
from .registries import (
    ALGORITHMS,
    DATASETS,
    SAMPLERS,
    check_sampler_supports,
    check_sampler_trains,
)

__all__ = ["RunConfig", "machine_to_dict", "machine_from_dict"]


def machine_to_dict(machine: MachineConfig) -> dict[str, Any]:
    """JSON-ready nested dict for a :class:`MachineConfig`."""
    return dataclasses.asdict(machine)


def machine_from_dict(data: dict[str, Any]) -> MachineConfig:
    """Inverse of :func:`machine_to_dict`."""
    data = dict(data)
    data["device"] = DeviceModel(**data["device"])
    data["intra_node"] = LinkModel(**data["intra_node"])
    data["inter_node"] = LinkModel(**data["inter_node"])
    return MachineConfig(**data)


@dataclass
class RunConfig:
    """Configuration of one run: cluster shape, algorithm/sampler keys,
    model hyper-parameters and (optionally) the dataset to load.

    Field order up to ``machine`` matches the historical ``PipelineConfig``
    so existing call sites keep working; everything after it is new
    Engine-level configuration.
    """

    p: int = 1
    c: int = 1
    algorithm: str = "replicated"
    sampler: str = "sage"
    fanout: tuple[int, ...] = (15, 10, 5)
    batch_size: int = 1024
    k: int | None = None  # bulk size in minibatches; None = whole epoch
    hidden: int = 256
    lr: float = 3e-3
    seed: int = 0
    train_model: bool = True
    sparsity_aware: bool = True
    conv: str | None = None  # model conv type; defaults per sampler metadata
    work_scale: float = 1.0  # sim-to-paper workload scale (see Communicator)
    machine: MachineConfig = field(default_factory=lambda: PERLMUTTER_LIKE)
    # -- Engine-level configuration (new with repro.api) ----------------- #
    dataset: str | None = None  # registry key; None = caller supplies a graph
    scale: float = 1.0  # dataset down-scaling factor
    train_split: float | None = None  # override train fraction; None = keep
    epochs: int = 3  # default epoch count for engine.train()
    dataset_kwargs: dict[str, Any] = field(default_factory=dict)
    kernel: str = "esc"  # sparse-kernel backend (repro.sparse.KERNELS key)
    # -- feature cache + bulk scheduling (repro.partition.cache) --------- #
    cache_budget: float = 0.0  # per-rank bytes for replicated hot rows; 0 = off
    cache_policy: str = "degree"  # repro.partition.CACHE_POLICIES key
    overlap: bool = False  # double-buffer sampling+fetch with training
    # -- model --------------------------------------------------------- #
    activation: str = "relu"  # inter-layer nonlinearity (repro.gnn.ACTIVATIONS)
    # -- online serving (repro.serve) ----------------------------------- #
    serve_batch_size: int = 8  # micro-batch size cap for the serving engine
    serve_max_wait: float = 1e-3  # max simulated seconds a request queues
    embed_budget: float = 0.0  # bytes for cached h^{L-1} rows; 0 = off
    # -- streaming graphs (repro.stream) -------------------------------- #
    stream_updates: bool = False  # serve over a DeltaCSR accepting edge churn
    compaction_threshold: float = 0.25  # delta-log fraction of nnz that compacts
    # -- serving fleet (repro.serve.cluster) ----------------------------- #
    replicas: int = 1  # initial serving fleet size; 1 = single ServingEngine
    router: str = "direct"  # fleet routing policy (repro.serve.ROUTERS key)
    shed_policy: str = "none"  # admission control: none | queue | deadline
    shed_queue_depth: int = 64  # per-replica queue bound for shed_policy="queue"
    shed_deadline: float = 0.0  # staleness bound (s) for shed_policy="deadline"
    slo_p99: float = 0.0  # p99 latency SLO (s) driving the autoscaler; 0 = off
    autoscale_min: int = 1  # autoscaler replica-count floor
    autoscale_max: int = 8  # autoscaler replica-count ceiling
    autoscale_interval: float = 0.01  # seconds of sim time per autoscaler window
    # -- real multi-core execution (repro.parallel) ----------------------- #
    workers: int = 0  # shared-memory worker processes; 0 = serial, no mp import

    def __post_init__(self) -> None:
        if isinstance(self.fanout, list):
            self.fanout = tuple(int(x) for x in self.fanout)
        if isinstance(self.machine, dict):
            self.machine = machine_from_dict(self.machine)
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; known algorithms: "
                f"{', '.join(ALGORITHMS.names())}"
            )
        if self.sampler not in SAMPLERS:
            raise ValueError(
                f"unknown sampler {self.sampler!r}; known samplers: "
                f"{', '.join(SAMPLERS.names())}"
            )
        if self.dataset is not None and self.dataset not in DATASETS:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; known datasets: "
                f"{', '.join(DATASETS.names())}"
            )
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; known kernels: "
                f"{', '.join(KERNELS.names())}"
            )
        if self.cache_budget < 0:
            raise ValueError("cache_budget must be non-negative bytes")
        if self.cache_policy not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {self.cache_policy!r}; known "
                f"policies: {', '.join(CACHE_POLICIES)}"
            )
        check_sampler_supports(self.sampler, self.algorithm)
        if self.p <= 0 or self.c <= 0:
            raise ValueError(
                f"invalid process grid p={self.p}, c={self.c}: the GPU "
                f"count (--p) and the replication factor (--c) must both "
                f"be positive"
            )
        if self.p % self.c:
            raise ValueError(
                f"invalid process grid p={self.p}, c={self.c}: the "
                f"replication factor (--c) must divide the GPU count "
                f"(--p) — the {self.p} ranks form a p/c x c grid; try "
                f"--c 1 or a divisor of {self.p}"
            )
        if self.algorithm == "single" and self.p != 1:
            raise ValueError(
                f"algorithm 'single' requires p=1, got p={self.p}"
            )
        if self.workers < 0:
            raise ValueError(
                f"workers must be non-negative (0 = serial), got {self.workers}"
            )
        if self.algorithm == "parallel" and self.p != 1:
            raise ValueError(
                f"algorithm 'parallel' requires p=1, got p={self.p}: it "
                f"parallelizes over real worker processes (workers=N), not "
                f"simulated ranks — use algorithm='replicated' to sweep p"
            )
        if self.k is not None and self.k <= 0:
            raise ValueError("bulk size k must be positive")
        if self.scale <= 0:
            raise ValueError("dataset scale must be positive")
        if self.train_split is not None and not 0.0 < self.train_split <= 1.0:
            raise ValueError("train_split must be in (0, 1]")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.activation not in ACTIVATIONS:
            raise ValueError(
                f"unknown activation {self.activation!r}; known activations: "
                f"{', '.join(ACTIVATIONS)}"
            )
        if self.serve_batch_size <= 0:
            raise ValueError("serve_batch_size must be positive")
        if self.serve_max_wait < 0:
            raise ValueError("serve_max_wait must be non-negative seconds")
        if self.embed_budget < 0:
            raise ValueError("embed_budget must be non-negative bytes")
        if self.compaction_threshold <= 0:
            raise ValueError(
                "compaction_threshold must be positive (the delta-log size, "
                "as a fraction of the base nnz, at which the streaming "
                "overlay compacts into a fresh CSR)"
            )
        # Fleet knobs: import locally — repro.serve imports repro.api.
        from ..serve.admission import SHED_POLICIES
        from ..serve.router import ROUTERS

        if self.replicas <= 0:
            raise ValueError("replicas must be positive")
        if self.router not in ROUTERS:
            raise ValueError(
                f"unknown router {self.router!r}; known routers: "
                f"{', '.join(sorted(ROUTERS))}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {self.shed_policy!r}; known policies: "
                f"{', '.join(SHED_POLICIES)}"
            )
        if self.shed_queue_depth <= 0:
            raise ValueError("shed_queue_depth must be positive")
        if self.shed_deadline < 0:
            raise ValueError("shed_deadline must be non-negative seconds")
        if self.slo_p99 < 0:
            raise ValueError("slo_p99 must be non-negative seconds (0 = off)")
        if not (1 <= self.autoscale_min <= self.autoscale_max):
            raise ValueError(
                f"need 1 <= autoscale_min <= autoscale_max, got "
                f"[{self.autoscale_min}, {self.autoscale_max}]"
            )
        if self.autoscale_interval <= 0:
            raise ValueError("autoscale_interval must be positive seconds")
        if self.slo_p99 > 0 and self.replicas > self.autoscale_max:
            raise ValueError(
                "initial replicas exceed autoscale_max; raise the ceiling "
                "or start smaller"
            )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable dict that round-trips via :meth:`from_dict`."""
        out: dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if f.name == "machine":
                value = machine_to_dict(value)
            elif f.name == "fanout":
                value = list(value)
            elif f.name == "dataset_kwargs":
                value = dict(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunConfig":
        """Build from a (possibly partial) dict; unknown keys are an error
        that names the valid fields."""
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - valid)
        if unknown:
            raise ValueError(
                f"unknown RunConfig field(s) {', '.join(map(repr, unknown))}; "
                f"valid fields: {', '.join(sorted(valid))}"
            )
        return cls(**data)

    def to_json(self, path: str | Path | None = None, *, indent: int = 2) -> str:
        """Serialize to JSON; also writes ``path`` when given."""
        text = json.dumps(self.to_dict(), indent=indent) + "\n"
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, source: str | Path) -> "RunConfig":
        """Load from a JSON file path or a JSON string."""
        text = str(source)
        if not text.lstrip().startswith("{"):
            text = Path(source).read_text()
        return cls.from_dict(json.loads(text))

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Capability checks used by the pipeline
    # ------------------------------------------------------------------ #
    def require_trainable(self) -> None:
        """Raise CapabilityError if the sampler cannot drive training."""
        check_sampler_trains(self.sampler)

    def resolved_conv(self) -> str:
        """The model convolution to use: explicit ``conv`` or the sampler
        registry's ``default_conv``."""
        if self.conv is not None:
            return self.conv
        return SAMPLERS.spec(self.sampler).meta("default_conv", "gcn")
