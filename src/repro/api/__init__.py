"""repro.api — the public facade of the reproduction.

Everything user-facing goes through three pieces:

* **Registries** (:data:`SAMPLERS`, :data:`ALGORITHMS`, :data:`DATASETS`,
  :data:`KERNELS`) — the only name -> implementation tables in the system.
  Plugins register here and become available to the CLI, the pipeline, the
  benchmarks and the Engine at once.
* **RunConfig** — a validated, JSON-round-trippable description of a run.
* **Engine** — owns graph + config + execution backend; exposes
  ``sample()``, ``train()``, ``evaluate()`` and the generator
  ``stream_bulks()``.

Quickstart::

    from repro.api import Engine, RunConfig

    cfg = RunConfig(dataset="products", scale=0.25, p=4, fanout=(5, 3),
                    batch_size=32, hidden=32, epochs=3)
    engine = Engine(cfg)
    engine.train()
    print(engine.evaluate("test"))
"""

from .backends import (
    ExecutionBackend,
    PartitionedBackend,
    ReplicatedBackend,
    SingleDeviceBackend,
)
from .config import RunConfig, machine_from_dict, machine_to_dict
from .registries import (
    ALGORITHMS,
    DATASETS,
    SAMPLERS,
    CapabilityError,
    load_graph_from_registry,
    make_sampler,
    sampler_algorithms,
)
from .registry import Registry, RegistryEntry, RegistryKeyError
from ..sparse.kernels import KERNELS

__all__ = [
    "Registry",
    "RegistryEntry",
    "RegistryKeyError",
    "CapabilityError",
    "SAMPLERS",
    "ALGORITHMS",
    "DATASETS",
    "KERNELS",
    "make_sampler",
    "load_graph_from_registry",
    "sampler_algorithms",
    "ExecutionBackend",
    "SingleDeviceBackend",
    "ReplicatedBackend",
    "PartitionedBackend",
    "RunConfig",
    "machine_to_dict",
    "machine_from_dict",
    "Engine",
]


def __getattr__(name: str):
    # Engine pulls in the training pipeline, which itself resolves through
    # this package's registries — importing it lazily keeps the facade
    # importable from inside repro.pipeline without a cycle.
    if name == "Engine":
        from .engine import Engine

        return Engine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
