"""Execution backends: *where* bulk sampling runs, behind one protocol.

The trainer does not know whether sampling is local, replicated across a
simulated cluster, or 1.5D-partitioned — it asks its
:class:`ExecutionBackend` for one bulk of per-rank minibatch lists and the
backend does whatever its algorithm requires.  New execution strategies
register in :data:`repro.api.registries.ALGORITHMS` and become available to
``RunConfig``/CLI without touching the trainer.

The backend receives the pipeline object itself (duck-typed: it needs
``graph``, ``config``, ``comm``, ``grid`` and ``sampler``), so backends can
be written outside this package against the same surface the built-ins use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from ..core import MinibatchSample
from ..distributed import (
    RecordingSpGEMM,
    charge_sampling,
    partitioned_bulk_sampling,
    replicated_bulk_sampling,
)
from ..partition import BlockRows

if TYPE_CHECKING:  # pragma: no cover
    from ..pipeline.trainer import TrainingPipeline

__all__ = [
    "ExecutionBackend",
    "SingleDeviceBackend",
    "ReplicatedBackend",
    "PartitionedBackend",
]


@runtime_checkable
class ExecutionBackend(Protocol):
    """The contract an execution algorithm implements."""

    name: str

    def setup(self, pipeline: "TrainingPipeline") -> None:
        """One-time preparation against the pipeline's graph (e.g. block-row
        partitioning).  Called once from the trainer's constructor."""

    def sample_bulk(
        self, pipeline: "TrainingPipeline", bulk: list[np.ndarray], seed: int
    ) -> list[list[MinibatchSample]]:
        """Sample one bulk; returns per-rank lists of minibatches."""


class SingleDeviceBackend:
    """One device, no distribution: the paper's Algorithm-1 loop run
    locally, with device time charged from the recorded kernel costs."""

    name = "single"

    def setup(self, pipeline: "TrainingPipeline") -> None:
        # p == 1 is enforced by RunConfig validation.
        pass

    def sample_bulk(
        self, pipeline: "TrainingPipeline", bulk: list[np.ndarray], seed: int
    ) -> list[list[MinibatchSample]]:
        comm, cfg = pipeline.comm, pipeline.config
        with comm.phase("sampling"):
            recorder = RecordingSpGEMM(kernel=cfg.kernel)
            rng = np.random.default_rng(np.random.SeedSequence([seed, 0]))
            samples = pipeline.sampler.sample_bulk(
                pipeline.graph.adj, bulk, cfg.fanout, rng, spgemm_fn=recorder
            )
            charge_sampling(comm, 0, recorder, tuple(cfg.fanout))
        return [samples]


class ReplicatedBackend:
    """Graph Replicated (paper section 5.1): ``A`` on every rank, zero
    communication during sampling."""

    name = "replicated"

    def setup(self, pipeline: "TrainingPipeline") -> None:
        pass

    def sample_bulk(
        self, pipeline: "TrainingPipeline", bulk: list[np.ndarray], seed: int
    ) -> list[list[MinibatchSample]]:
        cfg = pipeline.config
        return replicated_bulk_sampling(
            pipeline.comm, pipeline.sampler, pipeline.graph.adj, bulk,
            cfg.fanout, seed=seed, kernel=cfg.kernel,
        )


class PartitionedBackend:
    """Graph Partitioned (paper section 5.2): 1.5D block-row partitioned
    ``A`` and ``Q`` with the sparsity-aware SpGEMM.

    Plan-driven: the sampler's :meth:`~repro.core.MatrixSampler.plan` is
    interpreted over the grid, so every plan-emitting sampler — node-wise,
    layer-wise, graph-wise, or a registry plugin — runs here without
    backend changes.
    """

    name = "partitioned"

    def __init__(self) -> None:
        self.a_blocks: BlockRows | None = None

    def setup(self, pipeline: "TrainingPipeline") -> None:
        self.a_blocks = BlockRows.partition(
            pipeline.graph.adj, pipeline.grid.n_rows
        )

    def sample_bulk(
        self, pipeline: "TrainingPipeline", bulk: list[np.ndarray], seed: int
    ) -> list[list[MinibatchSample]]:
        cfg, grid = pipeline.config, pipeline.grid
        samples, owners = partitioned_bulk_sampling(
            pipeline.comm, grid, pipeline.sampler, self.a_blocks, bulk,
            cfg.fanout, seed=seed, sparsity_aware=cfg.sparsity_aware,
            kernel=cfg.kernel,
        )
        # Each process row's batches are trained by its c replica ranks,
        # round-robin, so all p ranks participate in propagation.
        per_rank: list[list[MinibatchSample]] = [[] for _ in range(cfg.p)]
        for row, idxs in enumerate(owners):
            for pos, batch_idx in enumerate(idxs):
                rank = grid.rank(row, pos % grid.c)
                per_rank[rank].append(samples[batch_idx])
        return per_rank
